"""Ablation D — the paper's motivating design decision (Section IV-A):
SEED-based shuffle-free clustering vs the traditional shuffle-per-round
label propagation.

Measured: wall time, number of shuffle rounds, and shuffle bytes.  The
SEED design must show zero shuffle stages; the naive design pays a
join + reduceByKey per propagation round.
"""

from __future__ import annotations

from repro.data import EPS, MINPTS, make_dataset
from repro.dbscan import (
    NaiveSparkDBSCAN,
    SparkDBSCAN,
    adjusted_rand_index,
)
from repro.kdtree import KDTree

from _harness import print_table, save_results

CORES = [2, 4, 8]


def test_ablation_shuffle_vs_seed(benchmark):
    g = make_dataset("r10k")
    tree = KDTree(g.points)

    rows, payload = [], []
    for cores in CORES:
        seed_res = SparkDBSCAN(EPS, MINPTS, num_partitions=cores).fit(
            g.points, tree=tree
        )
        naive_res = NaiveSparkDBSCAN(EPS, MINPTS, num_partitions=cores).fit(g.points)
        ari = adjusted_rand_index(seed_res.labels, naive_res.labels)
        rows.append([
            cores,
            round(seed_res.timings.wall, 2), 0, 0,
            round(naive_res.timings.wall, 2), naive_res.shuffle_rounds,
            naive_res.shuffle_bytes, round(ari, 4),
        ])
        payload.append({
            "cores": cores,
            "seed_wall": seed_res.timings.wall,
            "naive_wall": naive_res.timings.wall,
            "naive_shuffle_rounds": naive_res.shuffle_rounds,
            "naive_shuffle_bytes": naive_res.shuffle_bytes,
            "ari": ari,
        })
        # Identical clusterings, radically different communication.
        assert ari > 0.999
        assert naive_res.shuffle_rounds >= 2
        assert naive_res.shuffle_bytes > 0
        # The SEED design wins on wall time.
        assert seed_res.timings.wall < naive_res.timings.wall

    print_table(
        "Ablation D: SEED (shuffle-free) vs traditional shuffle-based DBSCAN (r10k)",
        ["cores", "seed wall (s)", "seed rounds", "seed bytes",
         "naive wall (s)", "naive rounds", "naive bytes", "ARI"],
        rows,
    )
    save_results("ablation_shuffle_vs_seed", payload)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

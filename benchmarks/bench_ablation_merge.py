"""Ablation B — merge strategy: Algorithm 4's single pass vs union-find.

On real workloads partial clusters almost always seed back at each
other, so the single pass converges; adversarial merge *chains*
(cluster pieces linked A→B→C with one-directional seeds) expose the
difference.  This bench measures both on a real dataset and on
synthetic chains, plus the merge-time cost of each strategy.

B3 sweeps the *wire format* instead (DESIGN.md §11): shipping whole
partial clusters vs shipping edge digests, over 100k–1M-point datasets,
comparing driver merge time and the bytes the driver collects.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data import EPS, MINPTS, make_dataset
from repro.dbscan import (
    PartialCluster,
    SparkDBSCAN,
    SpatialSparkDBSCAN,
    apply_gid_map,
    digest_from_partials,
    digest_payload_nbytes,
    merge_edges,
    merge_paper,
    merge_union_find,
    partials_payload_nbytes,
)
from repro.kdtree import KDTree

from _harness import print_table, save_results, scaled_cores


def _synthetic_chain(length: int) -> tuple[list[PartialCluster], int]:
    """length partial clusters, each seeding only the next one."""
    per = 10
    n = length * per
    partials = []
    for i in range(length):
        lo, hi = i * per, (i + 1) * per
        seeds = [hi] if i < length - 1 else []
        partials.append(PartialCluster(
            partition=i, local_id=0, lo=lo, hi=hi,
            members=list(range(lo, hi)), seeds=seeds,
        ))
    return partials, n


def test_ablation_merge_chains(benchmark):
    rows, payload = [], []
    for length in (2, 3, 5, 10, 50):
        partials, n = _synthetic_chain(length)
        uf = merge_union_find([_copy(c) for c in partials], n)
        pp = merge_paper([_copy(c) for c in partials], n)
        rows.append([length, uf.num_global_clusters, pp.num_global_clusters])
        payload.append({
            "chain_length": length,
            "union_find_clusters": uf.num_global_clusters,
            "paper_clusters": pp.num_global_clusters,
        })
        assert uf.num_global_clusters == 1  # always closes the chain
        if length > 2:
            # The single pass cannot follow absorbed masters' seeds.
            assert pp.num_global_clusters > 1
    print_table(
        "Ablation B1: merge chains (1 true cluster split across k partitions)",
        ["chain length", "union-find clusters", "Algorithm-4 clusters"],
        rows,
    )
    save_results("ablation_merge_chains", payload)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_merge_on_real_data(benchmark):
    """On dense clusters both strategies agree — and we time them."""
    g = make_dataset("r10k")
    tree = KDTree(g.points)
    res = SparkDBSCAN(EPS, MINPTS, num_partitions=8, keep_partials=True).fit(
        g.points, tree=tree
    )
    partials = res.partials
    assert partials is not None

    t0 = time.perf_counter()
    uf = merge_union_find([_copy(c) for c in partials], g.n)
    t_uf = time.perf_counter() - t0
    t0 = time.perf_counter()
    pp = merge_paper([_copy(c) for c in partials], g.n)
    t_pp = time.perf_counter() - t0

    print_table(
        "Ablation B2: merge strategies on r10k (8 partitions)",
        ["strategy", "global clusters", "merge time (s)"],
        [["union_find", uf.num_global_clusters, round(t_uf, 4)],
         ["paper", pp.num_global_clusters, round(t_pp, 4)]],
    )
    save_results("ablation_merge_real", {
        "union_find": {"clusters": uf.num_global_clusters, "seconds": t_uf},
        "paper": {"clusters": pp.num_global_clusters, "seconds": t_pp},
    })
    assert uf.num_global_clusters == pp.num_global_clusters

    benchmark.pedantic(
        lambda: merge_union_find([_copy(c) for c in partials], g.n),
        rounds=3, iterations=1,
    )


def test_ablation_merge_payload_sweep(benchmark):
    """Ablation B3 — partials vs edge digests at 100k–1M points.

    One spatially-partitioned clustering per dataset produces the
    partial clusters; both merge paths then run over the same partials:
    the partials path measures `merge_union_find` over whole member
    lists, the edge path measures `merge_edges` over digests (with the
    label re-application included in its time).  Bytes are the canonical
    collect payloads the `repro_driver_collect_bytes` gauge reports.
    """
    rows, payload = [], []
    last_digests = None
    for dataset, paper_cores in (("c100k", 32), ("r1m", 64)):
        g = make_dataset(dataset)
        (_, cores), = scaled_cores(dataset, [paper_cores])
        res = SpatialSparkDBSCAN(
            EPS, MINPTS, num_partitions=cores, keep_partials=True,
            neighbor_mode="batched",
        ).fit(g.points)
        partials = sorted(res.partials, key=lambda c: c.members[0])

        t0 = time.perf_counter()
        ref = merge_union_find(partials, g.n)
        t_partials = time.perf_counter() - t0
        bytes_partials = partials_payload_nbytes(partials)

        digests = digest_from_partials(partials)
        last_digests = digests
        t0 = time.perf_counter()
        plan = merge_edges(digests)
        labels = apply_gid_map(partials, plan, g.n)
        t_edges = time.perf_counter() - t0
        bytes_edges = digest_payload_nbytes(digests)

        # The wire format must never change the answer.
        assert np.array_equal(labels, ref.labels)
        assert plan.num_global_clusters == ref.num_global_clusters
        # The point of the digest: the driver collects the boundary,
        # not the dataset.
        assert bytes_edges < bytes_partials

        rows.append([
            dataset, g.n, cores, len(partials), plan.num_edges,
            bytes_partials, bytes_edges,
            round(bytes_partials / bytes_edges, 2),
            round(t_partials * 1e3, 2), round(t_edges * 1e3, 2),
        ])
        payload.append({
            "dataset": dataset, "n": g.n, "cores": cores,
            "partials": len(partials), "edges": plan.num_edges,
            "partials_bytes": bytes_partials, "edge_bytes": bytes_edges,
            "partials_merge_s": t_partials, "edge_merge_s": t_edges,
        })
    print_table(
        "Ablation B3: collect payload + driver merge, partials vs edges",
        ["dataset", "n", "cores", "partials", "edges",
         "partials bytes", "edge bytes", "ratio",
         "partials merge (ms)", "edge merge+apply (ms)"],
        rows,
    )
    save_results("ablation_merge_payload", payload)
    benchmark.pedantic(lambda: merge_edges(last_digests), rounds=3,
                       iterations=1)


def _copy(c: PartialCluster) -> PartialCluster:
    return PartialCluster(c.partition, c.local_id, c.lo, c.hi,
                          members=list(c.members), seeds=list(c.seeds))

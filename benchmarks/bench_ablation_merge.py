"""Ablation B — merge strategy: Algorithm 4's single pass vs union-find.

On real workloads partial clusters almost always seed back at each
other, so the single pass converges; adversarial merge *chains*
(cluster pieces linked A→B→C with one-directional seeds) expose the
difference.  This bench measures both on a real dataset and on
synthetic chains, plus the merge-time cost of each strategy.
"""

from __future__ import annotations

import time

from repro.data import EPS, MINPTS, make_dataset
from repro.dbscan import PartialCluster, SparkDBSCAN, merge_paper, merge_union_find
from repro.kdtree import KDTree

from _harness import print_table, save_results


def _synthetic_chain(length: int) -> tuple[list[PartialCluster], int]:
    """length partial clusters, each seeding only the next one."""
    per = 10
    n = length * per
    partials = []
    for i in range(length):
        lo, hi = i * per, (i + 1) * per
        seeds = [hi] if i < length - 1 else []
        partials.append(PartialCluster(
            partition=i, local_id=0, lo=lo, hi=hi,
            members=list(range(lo, hi)), seeds=seeds,
        ))
    return partials, n


def test_ablation_merge_chains(benchmark):
    rows, payload = [], []
    for length in (2, 3, 5, 10, 50):
        partials, n = _synthetic_chain(length)
        uf = merge_union_find([_copy(c) for c in partials], n)
        pp = merge_paper([_copy(c) for c in partials], n)
        rows.append([length, uf.num_global_clusters, pp.num_global_clusters])
        payload.append({
            "chain_length": length,
            "union_find_clusters": uf.num_global_clusters,
            "paper_clusters": pp.num_global_clusters,
        })
        assert uf.num_global_clusters == 1  # always closes the chain
        if length > 2:
            # The single pass cannot follow absorbed masters' seeds.
            assert pp.num_global_clusters > 1
    print_table(
        "Ablation B1: merge chains (1 true cluster split across k partitions)",
        ["chain length", "union-find clusters", "Algorithm-4 clusters"],
        rows,
    )
    save_results("ablation_merge_chains", payload)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_merge_on_real_data(benchmark):
    """On dense clusters both strategies agree — and we time them."""
    g = make_dataset("r10k")
    tree = KDTree(g.points)
    res = SparkDBSCAN(EPS, MINPTS, num_partitions=8, keep_partials=True).fit(
        g.points, tree=tree
    )
    partials = res.partials
    assert partials is not None

    t0 = time.perf_counter()
    uf = merge_union_find([_copy(c) for c in partials], g.n)
    t_uf = time.perf_counter() - t0
    t0 = time.perf_counter()
    pp = merge_paper([_copy(c) for c in partials], g.n)
    t_pp = time.perf_counter() - t0

    print_table(
        "Ablation B2: merge strategies on r10k (8 partitions)",
        ["strategy", "global clusters", "merge time (s)"],
        [["union_find", uf.num_global_clusters, round(t_uf, 4)],
         ["paper", pp.num_global_clusters, round(t_pp, 4)]],
    )
    save_results("ablation_merge_real", {
        "union_find": {"clusters": uf.num_global_clusters, "seconds": t_uf},
        "paper": {"clusters": pp.num_global_clusters, "seconds": t_pp},
    })
    assert uf.num_global_clusters == pp.num_global_clusters

    benchmark.pedantic(
        lambda: merge_union_find([_copy(c) for c in partials], g.n),
        rounds=3, iterations=1,
    )


def _copy(c: PartialCluster) -> PartialCluster:
    return PartialCluster(c.partition, c.local_id, c.lo, c.hi,
                          members=list(c.members), seeds=list(c.seeds))

"""Figure 5 — kd-tree construction time as a fraction of whole DBSCAN.

Paper: 0.05%–0.5% (0.5–5.5 per-mille), measured with 8 partitions; the
fraction is *higher* for the small 10k datasets because the whole
algorithm is shorter.  We reproduce both the magnitude band and that
small-vs-large ordering.
"""

from __future__ import annotations

from repro.data import EPS, MINPTS, PAPER_SIZES, make_dataset
from repro.dbscan import SparkDBSCAN
from repro.kdtree import KDTree
from repro.obs import Tracer, TraceReport

from _harness import PAPER_FIG5_PERMILLE, print_table, save_results


def _measure(name: str) -> dict:
    """Run one traced fit; Figure 5's ratio falls out of the span report
    (``kdtree_permille`` = build / (build + executor work + merge))."""
    g = make_dataset(name)
    tracer = Tracer()
    with tracer.span("driver.kdtree_build", cat="driver"):
        tree = KDTree(g.points)
    SparkDBSCAN(EPS, MINPTS, num_partitions=8, tracer=tracer).fit(
        g.points, tree=tree
    )
    report = TraceReport.from_tracer(tracer)
    return {
        "dataset": name,
        "n": g.n,
        "build_s": report.kdtree_build_s,
        "whole_s": report.whole_s,
        "permille": report.kdtree_permille,
        "paper_permille": PAPER_FIG5_PERMILLE[name],
    }


def test_fig5_kdtree_construction_fraction(benchmark):
    rows = [_measure(name) for name in PAPER_SIZES]
    print_table(
        "Figure 5: kd-tree build / whole DBSCAN (per-mille, 8 partitions)",
        ["dataset", "n", "build (s)", "whole (s)", "measured ‰", "paper ‰"],
        [[r["dataset"], r["n"], round(r["build_s"], 4), round(r["whole_s"], 3),
          round(r["permille"], 2), r["paper_permille"]] for r in rows],
    )
    save_results("fig5_kdtree_fraction", rows)

    by_name = {r["dataset"]: r for r in rows}
    # Qualitative claim 1: construction is a tiny fraction (< 5% even at
    # our reduced scale; the paper reports < 0.55%).
    for r in rows:
        assert r["permille"] < 50, f"{r['dataset']}: build fraction too large"
    # Qualitative claim 2: the 10k datasets have a *larger* fraction than
    # their bigger siblings (paper: "percentages ... higher for r10k and
    # c10k ... because these data sets consist of small number of points").
    # (Compared within the c-family, where per-point query cost is held
    # constant; at the REPRO_SCALE-reduced sizes the r-family datasets are
    # close enough in size that the ordering needs full paper scale —
    # see EXPERIMENTS.md.)
    assert by_name["c10k"]["permille"] > by_name["c100k"]["permille"]

    g = make_dataset("r10k")
    benchmark.pedantic(lambda: KDTree(g.points), rounds=3, iterations=1)

"""Ablation E — spatial indexing (Sections II-A, V-B, V-E).

Three claims measured:
1. kd-tree range queries beat the O(n²) linear scan (the paper's
   complexity-reduction argument);
2. construction is O(n log n)-ish: build time grows near-linearly;
3. branch pruning (``max_neighbors``) trades a bounded accuracy loss
   for shorter, flatter query times — the paper's r1m trick.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data import EPS, MINPTS, make_dataset
from repro.dbscan import SparkDBSCAN, adjusted_rand_index
from repro.kdtree import BruteForceIndex, KDTree

from _harness import print_table, save_results


def test_ablation_kdtree_vs_bruteforce(benchmark):
    g = make_dataset("r10k")
    tree = KDTree(g.points)
    brute = BruteForceIndex(g.points)
    rng = np.random.default_rng(0)
    idx = rng.integers(0, g.n, 300)

    t0 = time.perf_counter()
    for i in idx:
        tree.query_radius(g.points[i], EPS)
    t_tree = time.perf_counter() - t0
    t0 = time.perf_counter()
    for i in idx:
        brute.query_radius(g.points[i], EPS)
    t_brute = time.perf_counter() - t0

    print_table(
        "Ablation E1: eps-range query cost, r10k (300 queries)",
        ["index", "seconds", "us/query"],
        [["kd-tree", round(t_tree, 4), round(t_tree / 300 * 1e6, 1)],
         ["brute force", round(t_brute, 4), round(t_brute / 300 * 1e6, 1)]],
    )
    save_results("ablation_kdtree_query", {"kdtree_s": t_tree, "brute_s": t_brute})
    assert t_tree < t_brute  # the reason the paper builds a kd-tree at all

    benchmark.pedantic(
        lambda: [tree.query_radius(g.points[i], EPS) for i in idx[:50]],
        rounds=3, iterations=1,
    )


def test_ablation_kdtree_build_scaling(benchmark):
    rng = np.random.default_rng(1)
    rows, payload = [], []
    times = {}
    for n in (5_000, 10_000, 20_000, 40_000):
        pts = rng.uniform(0, 1000, (n, 10))
        t0 = time.perf_counter()
        KDTree(pts)
        dt = time.perf_counter() - t0
        times[n] = dt
        rows.append([n, round(dt, 4), round(dt / n * 1e6, 2)])
        payload.append({"n": n, "seconds": dt})
    print_table(
        "Ablation E2: kd-tree construction scaling (d=10)",
        ["n", "build (s)", "us/point"],
        rows,
    )
    save_results("ablation_kdtree_build", payload)
    # Near-linear: 8x points must cost far less than 8^2 = 64x time.
    assert times[40_000] < times[5_000] * 40

    benchmark.pedantic(lambda: KDTree(rng.uniform(0, 1000, (10_000, 10))),
                       rounds=3, iterations=1)


def test_ablation_pruning_accuracy_speed(benchmark):
    """The r1m pruned-query mode: accuracy vs speed across caps."""
    g = make_dataset("r10k")
    tree = KDTree(g.points)
    exact = SparkDBSCAN(EPS, MINPTS, num_partitions=8).fit(g.points, tree=tree)

    rows, payload = [], []
    for cap in (None, 160, 80, 40, 20):
        t0 = time.perf_counter()
        res = SparkDBSCAN(EPS, MINPTS, num_partitions=8,
                          max_neighbors=cap).fit(g.points, tree=tree)
        wall = time.perf_counter() - t0
        ari = adjusted_rand_index(exact.labels, res.labels)
        rows.append([cap or "exact", round(wall, 3), round(ari, 4),
                     res.num_clusters])
        payload.append({"cap": cap, "seconds": wall, "ari": ari,
                        "clusters": res.num_clusters})
    print_table(
        "Ablation E3: pruned kd-tree queries (r10k, 8 partitions)",
        ["max-neighbors", "wall (s)", "ARI vs exact", "clusters"],
        rows,
    )
    save_results("ablation_pruning", payload)
    # Moderate caps must retain the structure (paper: removal "does not
    # impact the accuracy significantly").
    moderate = [p for p in payload if p["cap"] in (160, 80)]
    assert all(p["ari"] > 0.95 for p in moderate)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Table I — properties of the test data.

Regenerates the five datasets and prints their properties next to the
paper's row, plus the density sanity numbers (core-point rate at
eps=25/minpts=5) that make the substitution generator credible.
"""

from __future__ import annotations

import numpy as np

from repro.data import EPS, MINPTS, PAPER_SIZES, dataset_spec, make_dataset
from repro.kdtree import KDTree

from _harness import print_table, save_results


def _density_stats(points: np.ndarray, labels: np.ndarray, sample: int = 300):
    tree = KDTree(points)
    rng = np.random.default_rng(0)
    idx = rng.integers(0, len(points), min(sample, len(points)))
    counts = np.array([tree.query_radius(points[i], EPS).size for i in idx])
    member = labels[idx] >= 0
    member_core = float((counts[member] >= MINPTS).mean()) if member.any() else 0.0
    noise_core = float((counts[~member] >= MINPTS).mean()) if (~member).any() else 0.0
    return member_core, noise_core


def test_table1_dataset_properties(benchmark):
    rows = []
    payload = []
    for name in PAPER_SIZES:
        spec = dataset_spec(name)
        g = make_dataset(name)
        member_core, noise_core = _density_stats(g.points, g.true_labels)
        rows.append([
            name, spec.paper_n, g.n, g.d, spec.eps, spec.minpts,
            len(g.clusters), round(member_core, 3), round(noise_core, 3),
        ])
        payload.append({
            "name": name, "paper_points": spec.paper_n, "points": g.n,
            "d": g.d, "eps": spec.eps, "minpts": spec.minpts,
            "true_clusters": len(g.clusters),
            "member_core_rate": member_core, "noise_core_rate": noise_core,
        })
        # Table I invariants.
        assert g.d == 10 and spec.eps == 25.0 and spec.minpts == 5
        assert member_core > 0.9, f"{name}: cluster members must be core points"
        assert noise_core < 0.1, f"{name}: background noise must not be core"
    print_table(
        "Table I: properties of test data (paper n vs generated n)",
        ["name", "paper-points", "points", "d", "eps", "minpts",
         "true-clusters", "member-core-rate", "noise-core-rate"],
        rows,
    )
    save_results("table1_datasets", payload)
    # Representative kernel for pytest-benchmark: c10k generation.
    benchmark.pedantic(lambda: make_dataset("c10k"), rounds=3, iterations=1)

"""Ablation — telemetry overhead: tracing and profiling must be ~free.

The worker-telemetry layer (task spans, resource profiling) rides the
executor hot path, so its cost budget is explicit: tracing + profiling
must stay within a few percent of the plain run, and the clustering
must be byte-identical — observability that changes the observed system
is worthless.  Three configurations of the same job:

- **plain**    — NULL_TRACER, no profiling (the production fast path:
  one thread-local read per instrumentation site);
- **traced**   — a live Tracer: per-task `WorkerTelemetry` buffers,
  sub-phase spans (`task.expand`, `task.kdtree_query`, ...) recorded in
  the workers and merged into the driver trace;
- **profiled** — traced plus per-task resource profiling (CPU clock +
  getrusage high-water reads bracketing every task).

A `MetricsRegistry` is deliberately *not* part of this ablation: a
registry switches the executor to the instrumented operation-counting
kernel (`_expand_counted`, Section III-B counts), whose ~25% cost is a
pre-existing, separately-documented trade — not span/profile overhead.

Rounds are interleaved with the configuration order rotated every
round (running the same config in the same slot every time bakes
CPU-frequency/cache ordering bias into the comparison), and each
configuration keeps its best-of-N: overhead hides in the minimum —
means absorb scheduler noise that has nothing to do with
instrumentation.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data import EPS, MINPTS, make_dataset
from repro.dbscan import SparkDBSCAN
from repro.obs import NULL_TRACER, Tracer, TraceReport

from _harness import print_table, save_results

PARTITIONS = 4
ROUNDS = 5
#: Relative budget for traced/profiled vs plain, on best-of-N walls.
#: The design budget is 5%; the assertion allows 3x that because the
#: run-to-run noise floor of the whole job on shared hardware is ±10%+
#: (identical configs differ by that much back to back) — the budget
#: catches a real per-point instrumentation cost (which would show up
#: as 2x+, like the opt-in counted kernel does) without flaking on
#: scheduler jitter.
OVERHEAD_BUDGET = 0.15


def _fit(points, tracer, profile):
    model = SparkDBSCAN(
        EPS, MINPTS, num_partitions=PARTITIONS, neighbor_mode="batched",
        tracer=tracer, profile=profile,
    )
    t0 = time.perf_counter()
    res = model.fit(points)
    return time.perf_counter() - t0, res


def test_ablation_telemetry_overhead(benchmark):
    g = make_dataset("c100k")

    configs = [
        ("plain", lambda: (NULL_TRACER, False)),
        ("traced", lambda: (Tracer(), False)),
        ("profiled", lambda: (Tracer(), True)),
    ]

    walls: dict[str, float] = {name: float("inf") for name, _ in configs}
    labels: dict[str, np.ndarray] = {}
    last_tracer: Tracer | None = None
    for r in range(ROUNDS):
        # Rotate who goes first so ordering bias cancels across rounds.
        order = configs[r % len(configs):] + configs[:r % len(configs)]
        for name, make in order:
            tracer, profile = make()
            wall, res = _fit(g.points, tracer, profile)
            walls[name] = min(walls[name], wall)
            labels[name] = res.labels
            if name == "profiled":
                last_tracer = tracer

    rows, payload = [], []
    for name, _ in configs:
        overhead = walls[name] / walls["plain"] - 1.0
        rows.append([name, round(walls[name], 3), f"{overhead:+.1%}"])
        payload.append({
            "config": name, "wall": walls[name], "overhead": overhead,
        })
    print_table(
        f"Ablation: telemetry overhead (c100k = {g.n} points, "
        f"{PARTITIONS} partitions, best of {ROUNDS})",
        ["config", "wall (s)", "overhead vs plain"],
        rows,
    )
    save_results("ablation_telemetry", payload)

    # Observability must not change the answer: labels byte-identical.
    assert np.array_equal(labels["plain"], labels["traced"])
    assert np.array_equal(labels["plain"], labels["profiled"])

    # ...and must not meaningfully change the cost.
    for name in ("traced", "profiled"):
        overhead = walls[name] / walls["plain"] - 1.0
        assert overhead < OVERHEAD_BUDGET, (
            f"{name} run is {overhead:+.1%} over plain "
            f"(budget {OVERHEAD_BUDGET:.0%})"
        )

    # The profiled run actually collected worker telemetry.
    assert last_tracer is not None
    report = TraceReport.from_tracer(last_tracer)
    assert report.worker_phase_s, "no worker spans captured"
    assert "task.expand" in report.worker_phase_s

    benchmark.pedantic(
        lambda: _fit(g.points[:5000], Tracer(), True),
        rounds=2, iterations=1,
    )

"""Ablation C — the Section III-B data-structure study.

The paper argues for Java ``Hashtable`` (O(1) put/containsKey) and a
``LinkedList``-backed Queue for the expansion frontier.  The Python
equivalents: dict+deque ("hashtable" impl) vs numpy arrays ("array"
impl) for visited/assignment state.  Both must cluster identically;
the bench reports their runtime difference.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data import EPS, MINPTS, make_dataset
from repro.dbscan import dbscan_sequential, relabel_canonical
from repro.kdtree import KDTree

from _harness import print_table, save_results


def test_ablation_data_structures(benchmark):
    g = make_dataset("c10k")
    tree = KDTree(g.points)

    rows, payload = [], {}
    results = {}
    for impl in ("array", "hashtable"):
        t0 = time.perf_counter()
        res = dbscan_sequential(g.points, EPS, MINPTS, tree=tree, impl=impl)
        wall = time.perf_counter() - t0
        results[impl] = res
        rows.append([impl, round(wall, 3), res.num_clusters, res.num_noise])
        payload[impl] = {"seconds": wall, "clusters": res.num_clusters,
                         "noise": res.num_noise}

    print_table(
        "Ablation C: point-state data structures (c10k, sequential DBSCAN)",
        ["impl", "wall (s)", "clusters", "noise"],
        rows,
    )
    save_results("ablation_datastructures", payload)

    np.testing.assert_array_equal(
        relabel_canonical(results["array"].labels),
        relabel_canonical(results["hashtable"].labels),
    )

    benchmark.pedantic(
        lambda: dbscan_sequential(g.points[:3000], EPS, MINPTS, impl="hashtable"),
        rounds=2, iterations=1,
    )


def test_ablation_queue_discipline(benchmark):
    """Micro-ablation of the Queue choice: deque (the paper's LinkedList)
    vs list-as-queue (Java ArrayList/Vector), on the DBSCAN frontier
    access pattern (append-many, pop-front)."""
    from collections import deque

    ops = 200_000

    def run_deque():
        q = deque()
        for i in range(ops):
            q.append(i)
        while q:
            q.popleft()

    def run_list():
        q = []
        for i in range(ops):
            q.append(i)
        head = 0  # honest O(1) emulation needs an index; pop(0) is O(n)
        while head < len(q):
            head += 1

    def run_list_pop0():
        q = list(range(ops // 20))  # 10k only: pop(0) is quadratic
        while q:
            q.pop(0)

    t = {}
    for name, fn in (("deque", run_deque), ("list+index", run_list),
                     ("list.pop(0) (10k ops)", run_list_pop0)):
        t0 = time.perf_counter()
        fn()
        t[name] = time.perf_counter() - t0
    print_table(
        "Ablation C2: queue discipline (append/pop-front pattern)",
        ["structure", "seconds"],
        [[k, round(v, 4)] for k, v in t.items()],
    )
    save_results("ablation_queue", t)
    # The paper's point: linked-list-style O(1) removal wins over
    # array-shift removal.
    assert t["deque"] < t["list.pop(0) (10k ops)"] * 20

    benchmark.pedantic(run_deque, rounds=3, iterations=1)

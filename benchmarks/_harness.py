"""Shared benchmark harness: sweeps, tables, and the paper's reference data.

Every ``bench_*.py`` file regenerates one table or figure from the
paper's evaluation (Section V).  Experiments print a table with the
paper's reported numbers beside our measured ones, assert the
*qualitative* claims (who wins, how curves bend), and dump raw rows to
``benchmarks/results/*.json``.

Methodology (DESIGN.md §2): per-partition tasks are executed and timed
individually; wall-clock on p cores is the measured-task makespan plus
driver time.  With one partition per core (the paper's configuration)
that makespan is simply the slowest task.

Since the observability PR, every sweep point runs under a `Tracer` and
the row's timing columns come from `TraceReport` — the same span
arithmetic `repro trace` applies to a ``--trace-out`` file — so the
benchmark tables and the CLI report can never drift apart.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.data import make_dataset
from repro.dbscan import SparkDBSCAN, SparkDBSCANResult
from repro.kdtree import KDTree
from repro.obs import Tracer, TraceReport

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


# ---------------------------------------------------------------------------
# Paper-reported reference numbers (transcribed from Section V).
# ---------------------------------------------------------------------------

#: Figure 8: speedups "considering only the computation in executors".
PAPER_SPEEDUP_EXECUTOR = {
    "10k": {2: 1.9, 4: 3.6, 8: 6.2},
    "100k": {4: 3.3, 8: 6.0, 16: 8.8, 32: 10.2},
    "1m": {64: 58.0, 128: 83.0, 256: 110.0, 512: 137.0},
}

#: Figure 6: number of partial clusters per (dataset, cores).
PAPER_PARTIAL_CLUSTERS = {
    "r10k": {1: 10, 2: 20, 4: 78, 8: 392},
    "r1m": {64: 1875, 128: 3750, 256: 2478, 512: 7532},  # 256 read ~2478 off Fig 6b
    "c100k": {4: 720, 8: 2226, 16: 4649, 32: 9279},
    "r100k": {4: 607, 8: 2225, 16: 6040, 32: 9260},
}

#: Figure 7: wall seconds for 10k points (dimension 10, eps 25, minpts 5).
PAPER_FIG7 = {
    "mapreduce": {1: 1666, 2: 1248, 4: 832, 8: 521},
    "spark": {1: 178, 2: 93, 4: 50, 8: 31},
}

#: Figure 5: kd-tree build time / whole DBSCAN time, in 1/1000 units (8 partitions).
PAPER_FIG5_PERMILLE = {"r10k": 5.5, "c10k": 4.4, "c100k": 1.0, "r100k": 0.9, "r1m": 0.55}

#: Figure 8 right column: speedup of executors+driver where it diverges.
PAPER_SPEEDUP_TOTAL_100K_32 = 5.6  # "the speedup drops to 5.6 from 10.2"


# ---------------------------------------------------------------------------
# Sweep machinery.
# ---------------------------------------------------------------------------


@dataclass
class SweepRow:
    dataset: str
    cores: int
    executor_wall: float          # makespan of partition tasks on `cores`
    driver_time: float            # kd-tree build + setup + merge
    total_wall: float             # executor_wall + driver_time
    partial_clusters: int
    seeds: int
    num_clusters: int
    num_noise: int
    extras: dict[str, Any] = field(default_factory=dict)


#: Datasets at or below this size get best-of-2 timing: their tasks are
#: short enough that one OS hiccup on the max-task statistic distorts a
#: whole speedup curve.
BEST_OF_TWO_MAX_N = 60_000


def run_spark_once(
    points: np.ndarray,
    eps: float,
    minpts: int,
    cores: int,
    tree: KDTree | None = None,
    dataset: str = "?",
    **kwargs: Any,
) -> tuple[SweepRow, SparkDBSCANResult]:
    """One SEED-DBSCAN run with ``cores`` partitions (= paper's one
    partition per core); returns the measured row.

    Each attempt runs under its own `Tracer` and the row's timing
    columns are read back from the span trace (`TraceReport`), so they
    agree with ``repro trace`` by construction.  Small datasets run
    twice and keep the run with the smaller executor makespan (see
    BEST_OF_TWO_MAX_N).
    """
    def attempt() -> tuple[SparkDBSCANResult, TraceReport]:
        tracer = Tracer()
        model = SparkDBSCAN(
            eps, minpts, num_partitions=cores, tracer=tracer, **kwargs
        )
        fitted = model.fit(points, tree=tree)
        return fitted, TraceReport.from_tracer(tracer)

    res, report = attempt()
    if points.shape[0] <= BEST_OF_TWO_MAX_N:
        second, second_report = attempt()
        if second_report.executor_max_s < report.executor_max_s:
            res, report = second, second_report
    row = SweepRow(
        dataset=dataset,
        cores=cores,
        executor_wall=report.executor_max_s,
        driver_time=report.driver_s,
        total_wall=report.executor_max_s + report.driver_s,
        partial_clusters=report.total_partials,
        seeds=res.num_seeds,
        num_clusters=res.num_clusters,
        num_noise=res.num_noise,
        extras={
            "executor_total_s": report.executor_total_s,
            "kdtree_build_s": report.kdtree_build_s,
            "wall_s": report.wall_s,
            "driver_phases": dict(report.driver_phases),
        },
    )
    return row, res


def run_spark_sweep(
    name: str,
    cores_list: list[int],
    baseline_cores: int = 1,
    **kwargs: Any,
) -> tuple[SweepRow, list[SweepRow]]:
    """Run the baseline (1 core) plus every core count on dataset ``name``."""
    g = make_dataset(name)
    spec_eps, spec_minpts = 25.0, 5
    tree = KDTree(g.points)
    baseline, _ = run_spark_once(
        g.points, spec_eps, spec_minpts, baseline_cores, tree=tree,
        dataset=name, **kwargs,
    )
    rows = []
    for c in cores_list:
        row, _ = run_spark_once(
            g.points, spec_eps, spec_minpts, c, tree=tree, dataset=name, **kwargs
        )
        rows.append(row)
    return baseline, rows


def scaled_cores(dataset: str, paper_cores: list[int]) -> list[tuple[int, int]]:
    """Map the paper's core counts onto the REPRO_SCALE-reduced dataset.

    The SEED algorithm's regime is set by *points per partition*
    (n/p drives executor work; cluster-span-per-partition drives partial
    clusters and merge cost).  When the dataset is scaled to ``f·n``,
    running ``f·p`` cores preserves that regime exactly.  Returns
    ``(paper_cores, run_cores)`` pairs; at ``REPRO_SCALE=1.0`` they are
    identical.
    """
    from repro.data import PAPER_SIZES, effective_size

    f = effective_size(dataset) / PAPER_SIZES[dataset]
    return [(c, max(2, round(c * f))) for c in paper_cores]


def executor_speedup(baseline: SweepRow, row: SweepRow) -> float:
    """Figure 8, left column: executor computation only."""
    return baseline.executor_wall / row.executor_wall if row.executor_wall else float("inf")


def total_speedup(baseline: SweepRow, row: SweepRow) -> float:
    """Figure 8, right column: executors + driver."""
    return baseline.total_wall / row.total_wall if row.total_wall else float("inf")


# ---------------------------------------------------------------------------
# Reporting.
# ---------------------------------------------------------------------------


def print_table(title: str, headers: list[str], rows: list[list[Any]]) -> None:
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(_fmt(v).rjust(w) for v, w in zip(r, widths)))


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.3g}" if abs(v) < 1000 else f"{v:.0f}"
    return str(v)


def save_results(name: str, payload: Any) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, default=_jsonify)
    return path


def _jsonify(obj: Any) -> Any:
    if isinstance(obj, SweepRow):
        return {**obj.__dict__}
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    raise TypeError(f"not jsonable: {type(obj)}")

"""Figure 7 — MapReduce vs Spark wall time (10k points, 1/2/4/8 cores).

Paper: "9–16 times faster performance is obtained from Spark than
MapReduce" on the 10k dataset.  Our MapReduce pays its structural costs
honestly (per-task distributed-cache deserialisation of the kd-tree,
two jobs, disk-materialised sorted spills, full re-materialisation in
round 2); a configurable per-job startup overhead models job
submission.  Results are reported both with the modelled overhead
(Hadoop-realistic) and with zero overhead (pure I/O/structure cost).
"""

from __future__ import annotations

from repro.data import EPS, MINPTS, make_dataset
from repro.dbscan import MapReduceDBSCAN
from repro.kdtree import KDTree

from _harness import PAPER_FIG7, print_table, run_spark_once, save_results

CORES = [1, 2, 4, 8]
#: Modest stand-in for Hadoop job submission + JVM startup, per MR job.
MR_STARTUP_S = 1.0


def test_fig7_mapreduce_vs_spark(benchmark, tmp_path):
    g = make_dataset("c10k")
    tree = KDTree(g.points)

    rows = []
    results = []
    for cores in CORES:
        spark_row, spark_res = run_spark_once(
            g.points, EPS, MINPTS, cores, tree=tree, dataset="c10k"
        )
        mr = MapReduceDBSCAN(EPS, MINPTS, num_maps=cores,
                             startup_overhead=MR_STARTUP_S,
                             tmp_dir=str(tmp_path / f"mr{cores}")).fit(g.points)
        mr_wall = mr.wall_on(cores)
        mr_wall_no_oh = mr_wall - 2 * MR_STARTUP_S
        spark_wall = spark_row.total_wall
        rows.append([
            cores,
            round(mr_wall, 2), round(mr_wall_no_oh, 2), round(spark_wall, 2),
            round(mr_wall / spark_wall, 1),
            round(PAPER_FIG7["mapreduce"][cores] / PAPER_FIG7["spark"][cores], 1),
        ])
        results.append({
            "cores": cores, "mapreduce_s": mr_wall,
            "mapreduce_no_overhead_s": mr_wall_no_oh, "spark_s": spark_wall,
            "paper_mapreduce_s": PAPER_FIG7["mapreduce"][cores],
            "paper_spark_s": PAPER_FIG7["spark"][cores],
        })
        # Same clusters from both systems.
        assert mr.num_clusters == spark_res.num_clusters

    print_table(
        "Figure 7: MapReduce vs Spark wall time, 10k points",
        ["cores", "MR (s)", "MR-no-overhead (s)", "Spark (s)",
         "measured MR/Spark", "paper MR/Spark"],
        rows,
    )
    save_results("fig7_mapreduce_vs_spark", results)

    # Qualitative claims: Spark wins at every core count; MapReduce gets
    # faster with more cores; and even with zero modelled startup
    # overhead, MapReduce's structural disk costs lose in aggregate.
    for r in results:
        assert r["spark_s"] < r["mapreduce_s"]
    assert sum(r["spark_s"] for r in results) < sum(
        r["mapreduce_no_overhead_s"] for r in results
    )
    mr_walls = [r["mapreduce_s"] for r in results]
    assert mr_walls == sorted(mr_walls, reverse=True)

    benchmark.pedantic(
        lambda: MapReduceDBSCAN(EPS, MINPTS, num_maps=2, startup_overhead=0.0,
                                tmp_dir=str(tmp_path / "bm")).fit(g.points[:2000]),
        rounds=1, iterations=1,
    )

"""Ablation I — execution backends: what real process parallelism costs.

The measured-makespan (`simulated`) methodology claims that per-task
work is what matters and the slot count can be virtual.  This ablation
cross-checks it against *real* execution: the same DBSCAN job on the
serial, thread-pool, and process-pool backends, reporting wall time and
verifying identical clusterings.  The process backend pays real
serialization (cloudpickle closures, broadcast file loads) — the
overheads Spark engineers: it should win over serial on wall-clock but
show visible fixed costs.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data import EPS, MINPTS, make_dataset
from repro.dbscan import SparkDBSCAN, adjusted_rand_index
from repro.kdtree import KDTree

from _harness import print_table, save_results

PARTITIONS = 4
MASTERS = ["simulated[4]", "local", "threads[4]", "processes[4]"]


def test_ablation_backends(benchmark):
    g = make_dataset("r10k")
    tree = KDTree(g.points)

    rows, payload = [], []
    reference_labels = None
    for master in MASTERS:
        model = SparkDBSCAN(EPS, MINPTS, num_partitions=PARTITIONS, master=master)
        t0 = time.perf_counter()
        # processes backend rebuilds the tree broadcast per fit; pass the
        # prebuilt tree so only execution differs.
        res = model.fit(g.points, tree=tree)
        wall = time.perf_counter() - t0
        if reference_labels is None:
            reference_labels = res.labels
            ari = 1.0
        else:
            ari = adjusted_rand_index(reference_labels, res.labels)
        rows.append([
            master, round(wall, 3), round(res.timings.executor_total, 3),
            round(res.timings.executor_max, 3), round(ari, 4),
        ])
        payload.append({
            "master": master, "wall": wall,
            "executor_total": res.timings.executor_total,
            "executor_max": res.timings.executor_max, "ari": ari,
        })
        assert ari == 1.0, f"{master}: clustering differs"

    print_table(
        "Ablation I: execution backends (r10k, 4 partitions)",
        ["master", "wall (s)", "exec total (s)", "exec max (s)", "ARI vs simulated"],
        rows,
    )
    save_results("ablation_backends", payload)

    by_master = {p["master"]: p for p in payload}
    # The simulated methodology's premise: per-task totals measured
    # serially match the serial local backend closely.
    sim, loc = by_master["simulated[4]"], by_master["local"]
    assert 0.5 < sim["executor_total"] / loc["executor_total"] < 2.0

    benchmark.pedantic(
        lambda: SparkDBSCAN(EPS, MINPTS, num_partitions=2).fit(
            g.points[:3000], tree=None
        ),
        rounds=2, iterations=1,
    )

"""Figure 6 (a–d) — time split between driver and executors, and the
number of partial clusters, as core counts grow.

Paper phenomena to reproduce:
- partial clusters grow (steeply) with the number of cores/partitions;
- executor time shrinks with cores while driver time grows with the
  number of partial clusters (the ``n + K·m`` merge term of Sec IV-C);
- for the small r10k the driver time barely moves ("the data set is too
  small").

The executor/driver columns come from the span trace each sweep point
records (`run_spark_once` fits under a `Tracer` and reads the splits
back through `TraceReport`), not from ad-hoc timers.
"""

from __future__ import annotations

import pytest

from _harness import (
    PAPER_PARTIAL_CLUSTERS,
    print_table,
    run_spark_sweep,
    scaled_cores,
    save_results,
)

#: Paper's per-dataset core sweeps (Figures 6a–6d).  The r1m core axis
#: scales with the dataset (points-per-partition regime, see
#: `scaled_cores`); it is literal at REPRO_SCALE=1.0.
#: r1m uses the paper's Section V-E pruning + small-cluster filtering.
R1M_KWARGS = {"max_neighbors": 64, "min_cluster_size": 5, "seed_policy": "one_per_partition"}

SWEEPS = {
    "r10k": ([1, 2, 4, 8], False, {}),
    "r1m": ([64, 128, 256, 512], True, R1M_KWARGS),
    "c100k": ([4, 8, 16, 32], False, {}),
    "r100k": ([4, 8, 16, 32], False, {}),
}


@pytest.mark.parametrize("dataset", list(SWEEPS))
def test_fig6_driver_executor_split(dataset, benchmark):
    paper_cores, scale_axis, kwargs = SWEEPS[dataset]
    pairs = scaled_cores(dataset, paper_cores) if scale_axis else [
        (c, c) for c in paper_cores
    ]
    baseline, rows = run_spark_sweep(dataset, [run for _p, run in pairs], **kwargs)
    paper = PAPER_PARTIAL_CLUSTERS[dataset]
    print_table(
        f"Figure 6 ({dataset}): driver vs executor time and partial clusters",
        ["paper-cores", "run-cores", "executor (s)", "driver (s)",
         "partial-clusters", "paper-partials", "seeds"],
        [[pc, r.cores, round(r.executor_wall, 3), round(r.driver_time, 3),
          r.partial_clusters, paper.get(pc, "-"), r.seeds]
         for (pc, _rc), r in zip(pairs, rows)],
    )
    save_results(f"fig6_{dataset}", rows)

    # Partial clusters must grow with cores (paper: 10→392 for r10k,
    # 720→9279 for c100k, ...).
    partials = [r.partial_clusters for r in rows]
    assert partials == sorted(partials), f"partials not increasing: {partials}"
    assert partials[-1] > partials[0]

    # Executor wall must shrink as cores grow.
    exec_walls = [r.executor_wall for r in rows]
    assert exec_walls[-1] < exec_walls[0]

    # Driver time must not shrink while partial clusters explode: compare
    # the last and first sweep point.
    assert rows[-1].driver_time >= rows[0].driver_time * 0.5

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig6_r10k_driver_time_flat(benchmark):
    """Paper (Fig 6a): 'the time spent in driver does not change very much
    ... because the data set is too small'."""
    _, rows = run_spark_sweep("r10k", [1, 8])
    small, large = rows[0].driver_time, rows[-1].driver_time
    assert large < small * 10 + 0.5  # same order of magnitude
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Ablation A — SEED policy: Algorithm 3's one-seed-per-partition cap vs
recording every foreign neighbour.

DESIGN.md §4: the literal cap can orphan cross-partition *border*
points; the exact policy ("all") matches sequential DBSCAN bit-for-bit
on cluster structure.  This bench quantifies the trade: seed volume
(accumulator payload) against points misclassified as noise.
"""

from __future__ import annotations

import numpy as np

from repro.data import EPS, MINPTS, make_dataset
from repro.dbscan import NOISE, SparkDBSCAN, dbscan_sequential
from repro.kdtree import KDTree

from _harness import print_table, save_results

CORES = [2, 4, 8, 16]


def test_ablation_seed_policy(benchmark):
    g = make_dataset("c10k")
    tree = KDTree(g.points)
    seq = dbscan_sequential(g.points, EPS, MINPTS, tree=tree)

    rows, payload = [], []
    for cores in CORES:
        per_policy = {}
        for policy in ("all", "one_per_partition"):
            res = SparkDBSCAN(EPS, MINPTS, num_partitions=cores,
                              seed_policy=policy).fit(g.points, tree=tree)
            lost = int(np.count_nonzero(
                (res.labels == NOISE) & (seq.labels != NOISE)
            ))
            per_policy[policy] = (res, lost)
        all_res, all_lost = per_policy["all"]
        cap_res, cap_lost = per_policy["one_per_partition"]
        rows.append([
            cores, all_res.num_seeds, cap_res.num_seeds,
            all_lost, cap_lost, cap_res.num_clusters == seq.num_clusters,
        ])
        payload.append({
            "cores": cores,
            "seeds_all": all_res.num_seeds,
            "seeds_capped": cap_res.num_seeds,
            "lost_points_all": all_lost,
            "lost_points_capped": cap_lost,
        })
        # The exact policy loses nothing; the cap may lose border points
        # but must never change the cluster count on core-dense data.
        assert all_lost == 0
        assert cap_res.num_clusters == seq.num_clusters
        assert cap_res.num_seeds <= all_res.num_seeds

    print_table(
        "Ablation A: seed policy (exact 'all' vs Algorithm 3 literal cap)",
        ["cores", "seeds(all)", "seeds(capped)", "lost-points(all)",
         "lost-points(capped)", "capped-clusters-ok"],
        rows,
    )
    save_results("ablation_seed_policy", payload)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Ablation F — the Section IV-C analytical model against measurement.

Calibrates the two free constants of the cost model from the 1-core run
of r100k, then compares predicted vs measured speedups across the
paper's core sweep.  The model should track the measured curve's shape
(monotone growth, sub-linear efficiency) within a small factor.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import CalibratedCostModel, CostModel, WorkloadParams
from repro.data import make_dataset

from _harness import (
    executor_speedup,
    print_table,
    run_spark_sweep,
    save_results,
    total_speedup,
)

CORES = [4, 8, 16, 32]


def test_ablation_cost_model_vs_measured(benchmark):
    g = make_dataset("r100k")
    baseline, rows = run_spark_sweep("r100k", CORES)

    table, payload = [], []
    for row in rows:
        params = WorkloadParams(
            n=g.n, d=g.d, m=row.partial_clusters,
            K=max(1, g.n // max(row.partial_clusters, 1)),
            delta=baseline.driver_time,
        )
        model = CalibratedCostModel.fit(
            params,
            measured_executor_total=baseline.executor_wall,
            measured_merge=row.driver_time,
        )
        predicted = model.speedup(row.cores)
        measured = total_speedup(baseline, row)
        table.append([row.cores, round(measured, 2), round(predicted, 2),
                      round(executor_speedup(baseline, row), 2),
                      row.partial_clusters])
        payload.append({
            "cores": row.cores, "measured_total_speedup": measured,
            "predicted_speedup": predicted,
            "measured_executor_speedup": executor_speedup(baseline, row),
            "partial_clusters": row.partial_clusters,
        })
    print_table(
        "Ablation F: Section IV-C model vs measurement (r100k)",
        ["cores", "measured total", "model predicted", "measured exec",
         "partials"],
        table,
    )
    save_results("ablation_cost_model", payload)

    measured = [p["measured_total_speedup"] for p in payload]
    predicted = [p["predicted_speedup"] for p in payload]
    # Within a factor of 3 at every point (an *analytical* model with two
    # fitted constants, not a simulator).
    for m, p in zip(measured, predicted):
        assert 0.33 < p / m < 3.0, f"model off by >3x: measured {m}, predicted {p}"
    # Same shape: both curves rise and then sag where the merge term
    # bites — their peaks land within one sweep step of each other.
    import numpy as np

    assert abs(int(np.argmax(predicted)) - int(np.argmax(measured))) <= 1

    # Abstract-unit model exercises too (for the record).
    abstract = CostModel(WorkloadParams(n=g.n, d=g.d, m=rows[-1].partial_clusters, K=50))
    assert abstract.speedup(32) > abstract.speedup(4) * 0.9

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Ablation G — spatial partitioning (the paper's future work, built).

Index-range partitioning on shuffled data slices every cluster across
every partition; kd-tree-order partitioning keeps clusters within few
partitions.  Measured: seeds (accumulator payload), partial clusters,
driver merge time, and end-to-end wall.

The second table compares the broadcast model against cell
partitioning (`partitioning="cells"`, DESIGN.md §10): what the range
plan pays to broadcast the whole-dataset kd-tree to every executor vs
what the cell plan pays to replicate eps-halos — both read off
`repro.obs` metrics (`repro_broadcast_bytes_total` vs
`repro_cell_halo_bytes`).
"""

from __future__ import annotations

import numpy as np

from repro.data import EPS, MINPTS, make_dataset
from repro.dbscan import SparkDBSCAN, SpatialSparkDBSCAN, adjusted_rand_index
from repro.kdtree import KDTree
from repro.obs import MetricsRegistry

from _harness import print_table, save_results

CORES = [4, 8, 16]


def test_ablation_spatial_partitioning(benchmark):
    g = make_dataset("r10k")
    tree = KDTree(g.points)

    rows, payload = [], []
    for cores in CORES:
        plain = SparkDBSCAN(EPS, MINPTS, num_partitions=cores).fit(
            g.points, tree=tree
        )
        spatial = SpatialSparkDBSCAN(EPS, MINPTS, num_partitions=cores).fit(g.points)
        ari = adjusted_rand_index(plain.labels, spatial.labels)
        rows.append([
            cores,
            plain.num_seeds, spatial.num_seeds,
            plain.num_partial_clusters, spatial.num_partial_clusters,
            round(plain.timings.driver_merge, 3),
            round(spatial.timings.driver_merge, 3),
            round(ari, 4),
        ])
        payload.append({
            "cores": cores,
            "seeds_index": plain.num_seeds, "seeds_spatial": spatial.num_seeds,
            "partials_index": plain.num_partial_clusters,
            "partials_spatial": spatial.num_partial_clusters,
            "merge_index_s": plain.timings.driver_merge,
            "merge_spatial_s": spatial.timings.driver_merge,
            "ari": ari,
        })
        assert ari > 0.999  # same clustering
        assert spatial.num_seeds < plain.num_seeds
        assert spatial.num_partial_clusters <= plain.num_partial_clusters

    print_table(
        "Ablation G: index-range vs spatial partitioning (r10k)",
        ["cores", "seeds(index)", "seeds(spatial)", "partials(index)",
         "partials(spatial)", "merge(index) s", "merge(spatial) s", "ARI"],
        rows,
    )
    save_results("ablation_spatial", payload)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_cell_vs_broadcast(benchmark):
    """Replication cost: whole-tree broadcast vs eps-halo, per cores.

    The broadcast counter only meters serialized bytes when broadcasts
    actually spill (the `processes` backend); one metered run fixes the
    per-executor tree cost, which the range plan then pays `cores`
    times.  Halo bytes come from the cell plan's gauges on every run.
    """
    g = make_dataset("r10k")

    reg = MetricsRegistry()
    SparkDBSCAN(EPS, MINPTS, num_partitions=2, master="processes[2]",
                metrics_registry=reg).fit(g.points)
    tree_bytes = int(reg.get("repro_broadcast_bytes_total").value())
    assert tree_bytes > g.points.nbytes  # the tree embeds the points

    # Label baseline from the deterministic simulated backend (the
    # processes backend collects partials in task-completion order, so
    # its raw gid numbering is not the canonical one).
    base = SparkDBSCAN(EPS, MINPTS, num_partitions=4).fit(g.points)

    rows, payload = [], []
    for cores in CORES:
        reg_cell = MetricsRegistry()
        cell = SparkDBSCAN(EPS, MINPTS, num_partitions=cores,
                           partitioning="cells",
                           metrics_registry=reg_cell).fit(g.points)
        assert reg_cell.get("repro_broadcast_bytes_total") is None
        halo_bytes = int(reg_cell.get("repro_cell_halo_bytes").value())
        payload_bytes = int(reg_cell.get("repro_cell_payload_bytes").value())
        broadcast_total = tree_bytes * cores
        rows.append([
            cores,
            broadcast_total, halo_bytes,
            round(halo_bytes / broadcast_total, 4),
            int(reg_cell.get("repro_cell_halo_points").value()),
            round(payload_bytes / g.points.nbytes, 3),
        ])
        payload.append({
            "cores": cores,
            "broadcast_bytes_total": broadcast_total,
            "tree_bytes_per_executor": tree_bytes,
            "halo_bytes": halo_bytes,
            "payload_bytes": payload_bytes,
            "halo_points": int(reg_cell.get("repro_cell_halo_points").value()),
        })
        # The halo replicates a fraction of what the broadcast ships,
        # and the labels stay byte-identical.
        assert halo_bytes < broadcast_total
        assert np.array_equal(base.labels, cell.labels)

    print_table(
        "Ablation G2: whole-tree broadcast vs eps-halo replication (r10k)",
        ["cores", "broadcast B", "halo B", "halo/broadcast",
         "halo pts", "payload/data"],
        rows,
    )
    save_results("ablation_cell_vs_broadcast", payload)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Ablation G — spatial partitioning (the paper's future work, built).

Index-range partitioning on shuffled data slices every cluster across
every partition; kd-tree-order partitioning keeps clusters within few
partitions.  Measured: seeds (accumulator payload), partial clusters,
driver merge time, and end-to-end wall.
"""

from __future__ import annotations

from repro.data import EPS, MINPTS, make_dataset
from repro.dbscan import SparkDBSCAN, SpatialSparkDBSCAN, adjusted_rand_index
from repro.kdtree import KDTree

from _harness import print_table, save_results

CORES = [4, 8, 16]


def test_ablation_spatial_partitioning(benchmark):
    g = make_dataset("r10k")
    tree = KDTree(g.points)

    rows, payload = [], []
    for cores in CORES:
        plain = SparkDBSCAN(EPS, MINPTS, num_partitions=cores).fit(
            g.points, tree=tree
        )
        spatial = SpatialSparkDBSCAN(EPS, MINPTS, num_partitions=cores).fit(g.points)
        ari = adjusted_rand_index(plain.labels, spatial.labels)
        rows.append([
            cores,
            plain.num_seeds, spatial.num_seeds,
            plain.num_partial_clusters, spatial.num_partial_clusters,
            round(plain.timings.driver_merge, 3),
            round(spatial.timings.driver_merge, 3),
            round(ari, 4),
        ])
        payload.append({
            "cores": cores,
            "seeds_index": plain.num_seeds, "seeds_spatial": spatial.num_seeds,
            "partials_index": plain.num_partial_clusters,
            "partials_spatial": spatial.num_partial_clusters,
            "merge_index_s": plain.timings.driver_merge,
            "merge_spatial_s": spatial.timings.driver_merge,
            "ari": ari,
        })
        assert ari > 0.999  # same clustering
        assert spatial.num_seeds < plain.num_seeds
        assert spatial.num_partial_clusters <= plain.num_partial_clusters

    print_table(
        "Ablation G: index-range vs spatial partitioning (r10k)",
        ["cores", "seeds(index)", "seeds(spatial)", "partials(index)",
         "partials(spatial)", "merge(index) s", "merge(spatial) s", "ARI"],
        rows,
    )
    save_results("ablation_spatial", payload)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

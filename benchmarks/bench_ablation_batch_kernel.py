"""Ablation J — batched neighbourhood kernels in the executor hot loop.

The per-point executor loop issues one kd-tree range query per owned
point from Python; at Table-I scale the interpreter overhead of those
traversals dominates executor time.  ``neighbor_mode="batched"`` answers
all owned queries in one vectorised traversal (leaf-block × query-block
distance tiles) and replays BFS expansion over the stored CSR rows.

Claim checked here: on a 100k-point Table-I-style dataset (d=10,
eps=25, minpts=5) the batched executor phase is at least 2x faster than
the per-point loop while producing byte-identical labels.
"""

from __future__ import annotations

import numpy as np

from repro.data import EPS, MINPTS, generate_clustered
from repro.dbscan import SparkDBSCAN
from repro.kdtree import KDTree

from _harness import print_table, save_results

N = 100_000
PARTITIONS = 8
MODES = ("per_point", "batched")


def _executor_time(points: np.ndarray, tree: KDTree, mode: str, repeats: int = 1):
    """Best-of-``repeats`` executor phase time (measured-task sum).

    One round per mode by default: a single per-point pass over 100k
    points already runs minutes, and the margin checked below is 2x, far
    above scheduling noise.
    """
    model = SparkDBSCAN(EPS, MINPTS, num_partitions=PARTITIONS,
                        neighbor_mode=mode)
    best = None
    for _ in range(repeats):
        res = model.fit(points, tree=tree)
        if best is None or res.timings.executor_total < best.timings.executor_total:
            best = res
    return best


def test_ablation_batch_kernel(benchmark):
    # Generated directly: the named Table-I datasets are REPRO_SCALE-capped,
    # and this claim is specifically about 100k-point executor phases.
    g = generate_clustered(n=N, d=10, num_clusters=10, seed=7)
    tree = KDTree(g.points)

    rows, payload = [], {}
    results = {}
    for mode in MODES:
        res = _executor_time(g.points, tree, mode)
        results[mode] = res
        rows.append([
            mode, round(res.timings.executor_total, 3),
            round(res.timings.executor_max, 3),
            round(res.timings.driver_merge, 3),
            res.num_clusters, res.num_partial_clusters,
        ])
        payload[mode] = {
            "executor_total": res.timings.executor_total,
            "executor_max": res.timings.executor_max,
            "driver_merge": res.timings.driver_merge,
            "num_clusters": res.num_clusters,
            "num_partials": res.num_partial_clusters,
        }

    speedup = (payload["per_point"]["executor_total"]
               / payload["batched"]["executor_total"])
    payload["executor_speedup"] = speedup
    print_table(
        f"Ablation J: neighbour kernel ({N} points, d=10, {PARTITIONS} partitions)",
        ["mode", "exec total (s)", "exec max (s)", "merge (s)",
         "clusters", "partials"],
        rows,
    )
    print(f"batched executor speedup: {speedup:.2f}x")
    save_results("ablation_batch_kernel", payload)

    # The two modes are the same algorithm over the same neighbourhoods:
    # labels must match to the byte, not merely up to relabelling.
    assert (results["per_point"].labels.tobytes()
            == results["batched"].labels.tobytes())
    assert speedup >= 2.0, f"batched kernel only {speedup:.2f}x faster"

    benchmark.pedantic(
        lambda: SparkDBSCAN(EPS, MINPTS, num_partitions=4,
                            neighbor_mode="batched").fit(
            g.points[:10_000], tree=None
        ),
        rounds=2, iterations=1,
    )

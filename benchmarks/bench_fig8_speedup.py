"""Figure 8 (a–f) — speedup of the SEED DBSCAN with Spark.

Left column (a, c, e): executor computation only.
Right column (b, d, f): executors + driver.

Paper numbers: 10k → 1.9/3.6/6.2 at 2/4/8 cores; 100k → 3.3/6.0/8.8/10.2
at 4/8/16/32; 1m → 58/83/110/137 at 64/128/256/512.  Right-column claims:
curves flatten, and for 100k at 32 cores the total speedup *drops*
(9279 partial clusters swamp the driver merge).

Speedup here is measured exactly as in the paper: executor wall is the
slowest partition task (one partition per core), the baseline is the
same algorithm on one partition.
"""

from __future__ import annotations

import pytest

from _harness import (
    PAPER_SPEEDUP_EXECUTOR,
    executor_speedup,
    print_table,
    run_spark_sweep,
    scaled_cores,
    save_results,
    total_speedup,
)

#: Paper sweeps.  The r1m core axis is scaled together with the dataset
#: (see `scaled_cores`): the SEED algorithm's regime is governed by
#: points-per-partition, so a 1/8-size r1m at 1/8 the cores reproduces
#: the paper's 64–512-core regime exactly; at REPRO_SCALE=1.0 the
#: literal core counts are used.
#: The r1m runs use the paper's Section V-E tricks: pruned kd-tree
#: queries and filtering of tiny partial clusters ("for large data sets
#: (>= 1 million data points), we use kd-tree with pruning branches ...
#: we filter out those partial clusters whose size is too small").
R1M_KWARGS = {"max_neighbors": 64, "min_cluster_size": 5, "seed_policy": "one_per_partition"}

SWEEPS = {
    "10k": ("r10k", [2, 4, 8], False, {}),
    "100k": ("r100k", [4, 8, 16, 32], False, {}),
    "1m": ("r1m", [64, 128, 256, 512], True, R1M_KWARGS),
}


@pytest.mark.parametrize("label", list(SWEEPS))
def test_fig8_speedup(label, benchmark):
    dataset, paper_cores, scale_axis, kwargs = SWEEPS[label]
    if scale_axis:
        pairs = scaled_cores(dataset, paper_cores)
    else:
        pairs = [(c, c) for c in paper_cores]
    baseline, rows = run_spark_sweep(dataset, [run for _p, run in pairs], **kwargs)
    paper = PAPER_SPEEDUP_EXECUTOR[label]

    table = []
    payload = []
    for (paper_c, _run_c), r in zip(pairs, rows):
        s_exec = executor_speedup(baseline, r)
        s_total = total_speedup(baseline, r)
        table.append([
            paper_c, r.cores, round(s_exec, 1), paper[paper_c],
            round(s_total, 1), r.partial_clusters,
        ])
        payload.append({
            "paper_cores": paper_c, "run_cores": r.cores,
            "speedup_executor": s_exec,
            "paper_speedup_executor": paper[paper_c],
            "speedup_total": s_total, "partial_clusters": r.partial_clusters,
            "executor_wall": r.executor_wall, "driver_time": r.driver_time,
        })
    print_table(
        f"Figure 8 ({label} = {dataset}): speedup (executor-only and total)",
        ["paper-cores", "run-cores", "exec speedup", "paper exec",
         "total speedup", "partials"],
        table,
    )
    save_results(f"fig8_{label}", payload)

    s_exec = [p["speedup_executor"] for p in payload]
    s_total = [p["speedup_total"] for p in payload]
    assert s_exec[0] > 1.0
    if label == "1m":
        # At the REPRO_SCALE-reduced r1m size the clusters (~200 points)
        # fragment across partitions far earlier than at paper scale, so
        # the executor curve rises to a peak and then saturates instead
        # of climbing to 137x.  Assert that shape; full scale restores
        # strict growth (EXPERIMENTS.md).
        peak = max(s_exec)
        peak_at = s_exec.index(peak)
        assert s_exec[:peak_at + 1] == sorted(s_exec[:peak_at + 1])
        assert peak >= 1.5 * s_exec[0] or peak_at == 0
        assert s_exec[-1] >= 0.6 * peak, f"collapse after peak: {s_exec}"
    else:
        # Executor-only speedup grows with cores (small jitter tolerated
        # at the top end, where tasks are shortest).
        for a, b in zip(s_exec, s_exec[1:]):
            assert b >= a * 0.9, f"executor speedup collapsed: {s_exec}"
        assert s_exec[-1] >= s_exec[0]
    # Executor-only scales at least as well as total at the top end —
    # the paper's "local computation scales better than the whole".
    assert s_exec[-1] >= s_total[-1] * 0.8
    # Total speedup flattens: its top-end gain over the midpoint is
    # smaller than the executor curve's.
    if len(s_exec) >= 3:
        assert (s_total[-1] - s_total[0]) <= (s_exec[-1] - s_exec[0]) + 1e-9

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig8d_100k_driver_drag(benchmark):
    """Paper: at 32 cores on 100k, 9279 partial clusters are collected and
    the total speedup drops well below the executor speedup."""
    baseline, rows = run_spark_sweep("r100k", [32])
    row = rows[0]
    s_exec = executor_speedup(baseline, row)
    s_total = total_speedup(baseline, row)
    print(f"\n100k@32: exec speedup {s_exec:.1f}, total {s_total:.1f}, "
          f"partials {row.partial_clusters} (paper: 10.2 -> 5.6, 9279 partials)")
    assert s_total < s_exec  # driver merge drags the total down
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Ablation H — attacking ``t_straggling`` with speculative execution.

The paper's Section IV-C cost model charges every parallel run an
additive ``t_straggling`` ("the average wait time for framework to
allow all stragglers to finish").  Spark's answer is speculation:
re-launch abnormally slow tasks elsewhere.  This bench injects a
deterministic straggler into one partition and measures the stage
makespan with and without speculation.
"""

from __future__ import annotations

from repro.data import EPS, MINPTS, make_dataset
from repro.engine import FaultPlan, SparkContext
from repro.engine.partitioner import IndexRangePartitioner
from repro.kdtree import KDTree

from _harness import print_table, save_results

CORES = 8
STRAGGLER_DELAY = 0.5


def _run(speculation: bool) -> tuple[float, int]:
    g = make_dataset("r10k")
    tree = KDTree(g.points)
    part = IndexRangePartitioner(g.n, CORES)
    with SparkContext(f"simulated[{CORES}]", speculation=speculation) as sc:
        sc.fault_plan = FaultPlan(delays={(-1, 3): STRAGGLER_DELAY})
        tree_b = sc.broadcast(tree)
        eps, minpts = EPS, MINPTS

        def work(pid, it):
            from repro.dbscan import local_dbscan

            t = tree_b.value
            local_dbscan(pid, it, t.points, t, eps, minpts, part)

        sc.parallelize(range(g.n), CORES).foreach_partition_with_index(work)
        stage = sc.last_job_metrics.stages[0]
        # Stage makespan with one partition per core = slowest winning task.
        makespan = max(stage.task_durations())
        launches = sc.task_scheduler.speculative_launches
    return makespan, launches


def test_ablation_speculation(benchmark):
    plain_makespan, plain_launches = _run(speculation=False)
    spec_makespan, spec_launches = _run(speculation=True)

    print_table(
        f"Ablation H: straggler mitigation (r10k, {CORES} cores, "
        f"{STRAGGLER_DELAY}s injected straggler)",
        ["mode", "stage makespan (s)", "speculative launches"],
        [["no speculation", round(plain_makespan, 3), plain_launches],
         ["speculation", round(spec_makespan, 3), spec_launches]],
    )
    save_results("ablation_speculation", {
        "no_speculation": {"makespan": plain_makespan},
        "speculation": {"makespan": spec_makespan, "launches": spec_launches},
    })

    # Without speculation the straggler's delay dominates the makespan;
    # with it, the clean duplicate wins and the delay disappears.
    assert plain_makespan >= STRAGGLER_DELAY
    assert spec_launches >= 1
    assert spec_makespan < plain_makespan

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

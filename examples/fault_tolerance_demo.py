#!/usr/bin/env python
"""Fault tolerance — the paper's core argument for Spark over MPI.

Section I: with MPI "one failed process causes the whole job to be
failed".  Here we inject crashes into executor tasks mid-DBSCAN and
watch the engine retry them through lineage recomputation, with
exactly-once accumulator semantics keeping the partial clusters
uncorrupted.  We then do the same at the storage layer: kill an HDFS
datanode and read through the surviving replicas.

    python examples/fault_tolerance_demo.py
"""

import numpy as np

from repro.data import generate_clustered, save_points
from repro.dbscan import SparkDBSCAN, clusterings_equivalent, dbscan_sequential
from repro.engine import FaultPlan, SparkContext
from repro.hdfs import MiniHDFS


def executor_crash_demo(points: np.ndarray) -> None:
    print("=" * 60)
    print("1. Executor crashes mid-job (lineage recovery)")
    print("=" * 60)
    reference = dbscan_sequential(points, 25.0, 5)

    with SparkContext("simulated[4]") as sc:
        # Partitions 1 and 2 crash on their first two / one attempts.
        sc.fault_plan = FaultPlan(fail_attempts={(-1, 1): 2, (-1, 2): 1})
        result = SparkDBSCAN(25.0, 5, num_partitions=4).fit(points, sc=sc)
        attempts = sum(
            len(stage.task_metrics)
            for jm in sc.dag_scheduler.job_metrics
            for stage in jm.stages
        )
        failures = sum(
            1
            for jm in sc.dag_scheduler.job_metrics
            for stage in jm.stages
            for t in stage.task_metrics
            if not t.succeeded
        )

    print(f"task attempts: {attempts} ({failures} injected crashes, all retried)")
    ok, why = clusterings_equivalent(reference.labels, result.labels,
                                     points, 25.0, 5)
    print(f"clustering identical to crash-free run: {ok} ({why})")
    print(f"partial clusters delivered exactly once: "
          f"{result.num_partial_clusters}\n")
    assert ok and failures == 3


def datanode_crash_demo(points: np.ndarray, tmp: str) -> None:
    print("=" * 60)
    print("2. HDFS datanode dies (replication recovery)")
    print("=" * 60)
    import os

    local = os.path.join(tmp, "points.txt")
    save_points(local, points)
    fs = MiniHDFS(os.path.join(tmp, "hdfs"), block_size=32 * 1024,
                  replication=2, num_datanodes=3)
    fs.put_local_file(local, "/points.txt")
    blocks = len(fs.namenode.get_file("/points.txt").blocks)
    print(f"stored {blocks} blocks x2 replicas across 3 datanodes")

    fs.kill_datanode(0)
    print("datanode 0 killed; reading through surviving replicas...")
    with SparkContext("simulated[4]") as sc:
        count = sc.from_source(fs.open("/points.txt")).count()
    print(f"records read after failure: {count} / {len(points)}")
    assert count == len(points)

    restored = fs.re_replicate()
    print(f"re-replication created {restored} new replicas; "
          f"under-replicated blocks now: "
          f"{len(fs.namenode.under_replicated_blocks())}")


def main() -> None:
    import tempfile

    data = generate_clustered(n=3000, num_clusters=5, cluster_std=8.0, seed=13)
    executor_crash_demo(data.points)
    with tempfile.TemporaryDirectory() as tmp:
        datanode_crash_demo(data.points, tmp)


if __name__ == "__main__":
    main()

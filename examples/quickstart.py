#!/usr/bin/env python
"""Quickstart: cluster a Table I dataset with the paper's SEED DBSCAN.

Runs the full pipeline — generate the data, build the kd-tree in the
driver, cluster locally on 8 executors without any communication, merge
partial clusters via SEEDs — and compares against sequential DBSCAN.

    python examples/quickstart.py
"""

from repro.data import EPS, MINPTS, make_dataset
from repro.dbscan import SparkDBSCAN, clusterings_equivalent, dbscan_sequential


def main() -> None:
    print("Generating the c10k dataset (Table I: 10,000 points, d=10)...")
    data = make_dataset("c10k")

    print(f"Running SparkDBSCAN(eps={EPS}, minpts={MINPTS}) on 8 partitions...")
    model = SparkDBSCAN(eps=EPS, minpts=MINPTS, num_partitions=8)
    result = model.fit(data.points)

    print(f"\n  {result.summary()}")
    t = result.timings
    print(f"  kd-tree build : {t.kdtree_build * 1000:.1f} ms")
    print(f"  executors     : {t.executor_total:.2f} s total work, "
          f"{t.executor_max:.2f} s slowest partition")
    print(f"  driver merge  : {t.driver_merge * 1000:.1f} ms "
          f"({result.num_partial_clusters} partial clusters, "
          f"{result.num_seeds} SEEDs, {result.num_merges} merges)")

    print("\nChecking equivalence with sequential DBSCAN (Algorithm 1)...")
    seq = dbscan_sequential(data.points, EPS, MINPTS)
    ok, why = clusterings_equivalent(
        seq.labels, result.labels, data.points, EPS, MINPTS
    )
    print(f"  equivalent: {ok} ({why})")

    sizes = sorted(result.cluster_sizes().values(), reverse=True)
    print(f"\n  largest clusters: {sizes[:5]}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Geospatial hotspot detection — the classic DBSCAN use-case.

Synthesises a city's worth of GPS event coordinates (pickup locations,
incident reports, ...): several dense hotspots of different shapes and
sizes over a sparse background.  DBSCAN finds the hotspots without
knowing their count and without forcing the background into clusters —
exactly why the paper's intro motivates density-based clustering over
K-means.

    python examples/geospatial_hotspots.py
"""

import numpy as np

from repro.dbscan import NOISE, SparkDBSCAN


def make_city_events(seed: int = 7) -> np.ndarray:
    """~6000 lon/lat-like points: blobs, a curved 'riverfront strip',
    and uniform background."""
    rng = np.random.default_rng(seed)
    blocks = []
    # Compact hotspots (plazas, stations).
    for center, std, size in [
        ((2.0, 8.0), 0.15, 900),
        ((7.5, 7.0), 0.25, 1200),
        ((5.0, 2.5), 0.10, 600),
    ]:
        blocks.append(rng.normal(center, std, (size, 2)))
    # A curved strip along a riverfront: arc of a circle.
    t = rng.uniform(0.2, 1.8, 1800)
    arc = np.c_[4 + 3.5 * np.cos(t), 3.5 * np.sin(t) + 4]
    blocks.append(arc + rng.normal(0, 0.08, arc.shape))
    # Sparse background events across the whole city.
    blocks.append(rng.uniform(0, 10, (1500, 2)))
    pts = np.vstack(blocks)
    return pts[rng.permutation(len(pts))]


def main() -> None:
    points = make_city_events()
    print(f"{len(points)} GPS events")

    model = SparkDBSCAN(eps=0.12, minpts=8, num_partitions=6)
    result = model.fit(points)

    print(f"\n{result.summary()}")
    print(f"driver merge handled {result.num_partial_clusters} partial "
          f"clusters from 6 executors via {result.num_seeds} SEEDs\n")

    sizes = result.cluster_sizes()
    print("hotspot  events  extent (width x height)")
    for cid, size in sorted(sizes.items(), key=lambda kv: -kv[1])[:6]:
        cluster = points[result.labels == cid]
        w, h = cluster.max(axis=0) - cluster.min(axis=0)
        print(f"{cid:7d}  {size:6d}  {w:.2f} x {h:.2f}")
    background = int((result.labels == NOISE).sum())
    print(f"\nbackground (unclustered) events: {background} "
          f"({background / len(points):.0%})")

    # The curved strip must come out as ONE hotspot — the arbitrary-shape
    # capability K-means lacks.
    biggest = max(sizes, key=sizes.get)
    strip = points[result.labels == biggest]
    assert len(strip) > 1500, "the riverfront strip should be the largest hotspot"
    print("\nriverfront strip detected as a single arbitrary-shaped cluster ✓")


if __name__ == "__main__":
    main()

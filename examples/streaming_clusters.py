#!/usr/bin/env python
"""Streaming cluster maintenance with incremental DBSCAN.

The paper's related work cites MR-IDBSCAN (incremental DBSCAN on
MapReduce).  This example shows the library's incremental engine
(`repro.dbscan.IncrementalDBSCAN`) maintaining a clustering as events
arrive one at a time — watching two separate activity clusters grow and
then *merge* when bridging events appear between them, without ever
re-clustering from scratch.

    python examples/streaming_clusters.py
"""

import numpy as np

from repro.dbscan import IncrementalDBSCAN, dbscan_sequential, clusterings_equivalent


def event_stream(rng: np.random.Generator):
    """Phase 1: two separate hotspots.  Phase 2: a corridor of events
    bridging them."""
    for _ in range(150):
        yield rng.normal((0.0, 0.0), 0.6, 2)
        yield rng.normal((12.0, 0.0), 0.6, 2)
    for x in np.linspace(1.5, 10.5, 40):
        yield np.array([x, rng.normal(0, 0.2)])


def main() -> None:
    rng = np.random.default_rng(5)
    model = IncrementalDBSCAN(eps=1.0, minpts=4, d=2)

    checkpoints = {100: None, 300: None, 340: None}
    seen = []
    for i, event in enumerate(event_stream(rng), start=1):
        model.insert(event)
        seen.append(event)
        if i in checkpoints:
            print(f"after {i:4d} events: {model.num_clusters} clusters, "
                  f"{int((model.labels == -1).sum())} noise")

    print("\nthe bridge merged the two hotspots into one cluster ✓"
          if model.num_clusters == 1 else "\nunexpected cluster count!")
    assert model.num_clusters == 1

    # Sanity: the incremental state equals a batch run over everything.
    points = np.vstack(seen)
    batch = dbscan_sequential(points, 1.0, 4)
    ok, why = clusterings_equivalent(batch.labels, model.labels, points, 1.0, 4)
    print(f"incremental == batch DBSCAN: {ok} ({why})")
    assert ok


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Scaling study — reproduce the paper's Figure 8 methodology on any
dataset, right from the public API.

For each core count p: one partition per core, executor wall-clock =
slowest partition task, total = executor + driver (tree build + merge).
Prints both speedup columns the paper plots, plus the partial-cluster
growth that explains why the total curve flattens (Figure 6).

    python examples/scaling_study.py [dataset] [cores ...]
    python examples/scaling_study.py r10k 2 4 8 16
"""

import sys

from repro.data import EPS, MINPTS, make_dataset
from repro.dbscan import SparkDBSCAN
from repro.kdtree import KDTree


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "r10k"
    cores_list = [int(c) for c in sys.argv[2:]] or [2, 4, 8, 16]

    data = make_dataset(dataset)
    print(f"{dataset}: {data.n} points, d={data.d}, eps={EPS}, minpts={MINPTS}")
    tree = KDTree(data.points)

    def run(p: int):
        res = SparkDBSCAN(EPS, MINPTS, num_partitions=p).fit(data.points, tree=tree)
        t = res.timings
        return t.executor_max, t.driver_time, res.num_partial_clusters

    base_exec, base_driver, _ = run(1)
    base_total = base_exec + base_driver
    print(f"\nbaseline (1 core): executor {base_exec:.2f}s, "
          f"driver {base_driver:.2f}s\n")
    print(f"{'cores':>5}  {'exec (s)':>9}  {'driver (s)':>10}  "
          f"{'exec speedup':>12}  {'total speedup':>13}  {'partials':>8}")
    for p in cores_list:
        ex, dr, partials = run(p)
        s_exec = base_exec / ex
        s_total = base_total / (ex + dr)
        print(f"{p:>5}  {ex:>9.3f}  {dr:>10.3f}  {s_exec:>12.1f}  "
              f"{s_total:>13.1f}  {partials:>8}")

    print("\n(executor speedup scales; total flattens as the driver merges "
          "ever more partial clusters — the paper's Figure 8 left vs right)")


if __name__ == "__main__":
    main()

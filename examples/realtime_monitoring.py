#!/usr/bin/env python
"""Real-time analysis — the Spark capability the paper holds over MapReduce.

Section II-B: "we can not use MapReduce to perform real time analysis".
This example runs the mini engine's Spark-Streaming layer: a DStream of
sensor events is windowed and aggregated per micro-batch, while an
IncrementalDBSCAN instance consumes the same feed to maintain a live
cluster/outlier view — the combination a streaming deployment of the
paper's system would use.

    python examples/realtime_monitoring.py
"""

import numpy as np

from repro.dbscan import IncrementalDBSCAN
from repro.engine import SparkContext, StreamingContext


def sensor_batches(rng: np.random.Generator, num_batches: int):
    """Each batch: readings from two machines plus occasional anomalies."""
    regimes = [np.array([10.0, 20.0]), np.array([40.0, 5.0])]
    for b in range(num_batches):
        batch = []
        for m, regime in enumerate(regimes):
            for _ in range(8):
                batch.append(("machine-%d" % m, regime + rng.normal(0, 0.4, 2)))
        if b % 3 == 2:  # an anomaly every third batch
            batch.append(("intruder", rng.uniform(60, 90, 2)))
        yield batch


def main() -> None:
    rng = np.random.default_rng(8)
    model = IncrementalDBSCAN(eps=1.5, minpts=4, d=2)

    with SparkContext("simulated[4]") as sc:
        ssc = StreamingContext(sc, num_partitions=4)
        stream = ssc.queue_stream(sensor_batches(rng, 9))

        # Branch 1: feed the readings into the live clustering.  Source
        # sinks run before downstream branches, so the model is up to
        # date when the reporting sink below fires.
        def absorb(_batch_index, rdd):
            for _src, reading in rdd.collect():
                model.insert(reading)

        stream.foreach_rdd(absorb)

        # Branch 2: windowed per-source event counts + live report.
        windowed = (
            stream.map(lambda ev: (ev[0], 1))
            .window(3)
            .reduce_by_key(lambda a, b: a + b)
        )

        def report(batch_index, rdd):
            noise = int((model.labels == -1).sum())
            print(f"batch {batch_index}: {model.num_clusters} regimes, "
                  f"{noise} outliers, window={dict(sorted(rdd.collect()))}")

        windowed.foreach_rdd(report)
        ssc.run(9)

    print(f"\nfinal: {model.num_clusters} operating regimes "
          f"(expected 2), {int((model.labels == -1).sum())} outliers flagged")
    assert model.num_clusters == 2
    assert int((model.labels == -1).sum()) == 3  # the three intruder events


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Tour of the mini-Spark engine underneath the DBSCAN reproduction.

The paper's algorithm uses a narrow slice of Spark (parallelize,
foreachPartition, broadcast, accumulator).  The engine implements much
more; this example shows the rest working: lazy lineage, shuffles,
caching, joins, and the DAG scheduler's stage construction — the
Section II-B machinery.

    python examples/engine_tour.py
"""

from repro.engine import SparkContext


def main() -> None:
    with SparkContext("threads[4]") as sc:
        print("== word count (the canonical shuffle job) ==")
        text = [
            "spark avoids shuffles when it can",
            "dbscan with spark avoids shuffles entirely",
            "seeds let the driver merge partial clusters",
        ]
        counts = (
            sc.parallelize(text, 3)
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b)
        )
        top = sorted(counts.collect(), key=lambda kv: (-kv[1], kv[0]))[:5]
        print("   top words:", top)
        print("   stages in that job:", len(sc.last_job_metrics.stages),
              "(map-side + reduce-side — a shuffle boundary)")

        print("\n== lazy lineage + caching ==")
        expensive_calls = sc.accumulator()
        base = sc.parallelize(range(10_000), 4).map(
            lambda x: (expensive_calls.add(1), x * x)[1]
        )
        cached = base.cache()
        print("   nothing computed yet:", expensive_calls.value == 0)
        s1 = cached.sum()
        s2 = cached.sum()
        print(f"   two actions, sums equal: {s1 == s2}; "
              f"map ran {expensive_calls.value} times (cache hit on 2nd)")

        print("\n== join (composed from shuffles) ==")
        users = sc.parallelize([(1, "ada"), (2, "grace"), (3, "edsger")], 2)
        logins = sc.parallelize([(1, "mon"), (1, "tue"), (3, "fri")], 2)
        joined = sorted(users.join(logins).collect())
        print("  ", joined)

        print("\n== zip_with_index / distinct / count_by_key ==")
        letters = sc.parallelize("abbcccddddx", 3)
        print("   indexed head:", letters.zip_with_index().take(4))
        print("   distinct:", sorted(letters.distinct().collect()))
        print("   counts:", dict(sorted(
            letters.map(lambda ch: (ch, None)).count_by_key().items()
        )))

        print("\n== shuffle reuse across jobs ==")
        r = sc.parallelize([(i % 5, 1) for i in range(100)], 4).reduce_by_key(
            lambda a, b: a + b
        )
        r.collect()
        first = len(sc.last_job_metrics.stages)
        r.count()
        second = len(sc.last_job_metrics.stages)
        print(f"   first action ran {first} stages; second ran {second} "
              "(map output reused, like Spark's map-output tracker)")


if __name__ == "__main__":
    main()

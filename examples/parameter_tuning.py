#!/usr/bin/env python
"""Choosing eps with the sorted k-dist heuristic (Ester et al. §4.2).

The paper fixes (eps=25, minpts=5) for its Table I data.  A downstream
user facing new data needs to *find* those values; this example renders
the sorted k-dist curve as ASCII, marks the automatically-detected
knee, and shows that clustering at the suggested eps recovers the
planted structure.

    python examples/parameter_tuning.py
"""

import numpy as np

from repro.data import generate_clustered
from repro.dbscan import SparkDBSCAN, k_distances, suggest_eps


def ascii_curve(curve: np.ndarray, width: int = 64, height: int = 14) -> str:
    """Down-sample the k-dist curve into a text plot."""
    idx = np.linspace(0, curve.size - 1, width).astype(int)
    ys = curve[idx]
    top = ys.max()
    rows = []
    for level in range(height, 0, -1):
        cutoff = top * level / height
        prev_cutoff = top * (level + 1) / height
        row = "".join("*" if prev_cutoff > y >= cutoff else " " for y in ys)
        rows.append(f"{cutoff:8.1f} |{row}")
    rows.append(" " * 9 + "+" + "-" * width)
    rows.append(" " * 10 + "points sorted by k-dist (desc)")
    return "\n".join(rows)


def main() -> None:
    minpts = 5
    data = generate_clustered(n=4000, num_clusters=6, cluster_std=8.0,
                              noise_fraction=0.08, seed=11)
    print(f"{data.n} points, {len(data.clusters)} planted clusters\n")

    curve = k_distances(data.points, k=minpts - 1, sample=1500)
    print(ascii_curve(curve))

    eps = suggest_eps(data.points, minpts=minpts, sample=1500)
    print(f"\nsuggested eps at the knee: {eps:.1f}  (paper used 25.0 for its "
          "similarly-generated data)")

    result = SparkDBSCAN(eps, minpts, num_partitions=4).fit(data.points)
    print(f"clustering at suggested eps: {result.summary()}")
    assert result.num_clusters == len(data.clusters), "should recover the planted clusters"
    print("recovered all planted clusters ✓")


if __name__ == "__main__":
    main()

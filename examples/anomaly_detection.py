#!/usr/bin/env python
"""Noise elimination as anomaly detection on high-dimensional telemetry.

A fleet of machines emits 10-dimensional health vectors (CPU, memory,
I/O, latency percentiles, ...).  Healthy machines operate in a handful
of dense regimes; failing machines drift into sparse regions.  DBSCAN's
noise set *is* the anomaly list — no anomaly threshold to hand-tune,
and the dense regimes can have any shape.

Also demonstrates running against an external engine context with the
``processes`` backend (real parallelism).

    python examples/anomaly_detection.py
"""

import numpy as np

from repro.dbscan import NOISE, SparkDBSCAN
from repro.engine import SparkContext


def make_telemetry(seed: int = 3) -> tuple[np.ndarray, np.ndarray]:
    """5,200 health vectors; returns (points, is_anomaly ground truth)."""
    rng = np.random.default_rng(seed)
    regimes = [
        (rng.uniform(100, 900, 10), 6.0, 1500),   # steady state
        (rng.uniform(100, 900, 10), 8.0, 2000),   # busy-hours regime
        (rng.uniform(100, 900, 10), 5.0, 1500),   # batch-window regime
    ]
    blocks, flags = [], []
    for center, std, size in regimes:
        blocks.append(rng.normal(center, std, (size, 10)))
        flags.append(np.zeros(size, dtype=bool))
    # 200 drifting/failing machines: uniform over the whole space.
    blocks.append(rng.uniform(0, 1000, (200, 10)))
    flags.append(np.ones(200, dtype=bool))
    pts = np.vstack(blocks)
    truth = np.concatenate(flags)
    perm = rng.permutation(len(pts))
    return pts[perm], truth[perm]


def main() -> None:
    points, truth = make_telemetry()
    print(f"{len(points)} telemetry vectors, {int(truth.sum())} true anomalies")

    with SparkContext("processes[4]") as sc:
        model = SparkDBSCAN(eps=25.0, minpts=8, num_partitions=4)
        result = model.fit(points, sc=sc)

    anomalies = result.labels == NOISE
    tp = int((anomalies & truth).sum())
    fp = int((anomalies & ~truth).sum())
    fn = int((~anomalies & truth).sum())
    precision = tp / max(tp + fp, 1)
    recall = tp / max(tp + fn, 1)

    print(f"\n{result.summary()}")
    print(f"operating regimes found : {result.num_clusters}")
    print(f"anomalies flagged       : {int(anomalies.sum())}")
    print(f"precision               : {precision:.2%}")
    print(f"recall                  : {recall:.2%}")

    assert result.num_clusters == 3, "should recover the three regimes"
    assert precision > 0.9 and recall > 0.9


if __name__ == "__main__":
    main()

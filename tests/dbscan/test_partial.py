"""SEED placement mechanics (Algorithm 3) at the unit level."""

import numpy as np
import pytest

from repro.dbscan import PartialCluster, local_dbscan
from repro.engine.partitioner import IndexRangePartitioner
from repro.kdtree import KDTree


def _line_points(n, spacing=1.0):
    """n collinear points: one chain cluster crossing all partitions."""
    return np.c_[np.arange(n) * spacing, np.zeros(n)]


class TestLocalClustering:
    def test_partition_only_clusters_own_points(self):
        pts = _line_points(20)
        tree = KDTree(pts, leaf_size=4)
        part = IndexRangePartitioner(20, 2)
        partials = local_dbscan(0, range(0, 10), pts, tree, 1.5, 2, part)
        assert len(partials) == 1
        c = partials[0]
        assert all(0 <= m < 10 for m in c.members)
        assert all(s >= 10 for s in c.seeds)

    def test_seed_points_are_foreign_neighbors(self):
        pts = _line_points(20)
        tree = KDTree(pts, leaf_size=4)
        part = IndexRangePartitioner(20, 2)
        partials = local_dbscan(0, range(0, 10), pts, tree, 1.5, 2, part)
        # Point 9's eps-neighbourhood reaches 10 (and 10's reach stops there
        # because foreign points are never expanded).
        assert partials[0].seeds == [10]

    def test_all_policy_records_every_foreign_neighbor(self):
        pts = _line_points(20)
        tree = KDTree(pts, leaf_size=4)
        part = IndexRangePartitioner(20, 2)
        partials = local_dbscan(0, range(0, 10), pts, tree, 2.5, 2, part,
                                seed_policy="all")
        # eps=2.5 reaches two points past the boundary.
        assert sorted(partials[0].seeds) == [10, 11]

    def test_one_per_partition_caps_seeds(self):
        pts = _line_points(20)
        tree = KDTree(pts, leaf_size=4)
        part = IndexRangePartitioner(20, 2)
        partials = local_dbscan(0, range(0, 10), pts, tree, 2.5, 2, part,
                                seed_policy="one_per_partition")
        assert len(partials[0].seeds) == 1

    def test_noise_point_creates_no_cluster(self):
        pts = np.array([[0.0, 0.0], [100.0, 0.0], [100.5, 0.0], [101.0, 0.0]])
        tree = KDTree(pts)
        part = IndexRangePartitioner(4, 1)
        partials = local_dbscan(0, range(4), pts, tree, 1.0, 3, part)
        assert len(partials) == 1
        assert 0 not in partials[0].members  # isolated point stays out

    def test_two_separate_clusters_two_partials(self):
        pts = np.vstack([_line_points(5), _line_points(5) + [100, 0]])
        tree = KDTree(pts)
        part = IndexRangePartitioner(10, 1)
        partials = local_dbscan(0, range(10), pts, tree, 1.5, 2, part)
        assert len(partials) == 2
        assert partials[0].local_id != partials[1].local_id

    def test_each_own_point_in_at_most_one_partial(self, blobs_small, blobs_small_tree):
        part = IndexRangePartitioner(blobs_small.n, 3)
        for pid in range(3):
            lo, hi = part.range_of(pid)
            partials = local_dbscan(pid, range(lo, hi), blobs_small.points,
                                    blobs_small_tree, 25.0, 5, part)
            seen: set[int] = set()
            for c in partials:
                dup = seen & set(c.members)
                assert not dup, f"points {dup} in two partial clusters"
                seen.update(c.members)

    def test_wrong_partition_index_rejected(self):
        pts = _line_points(10)
        tree = KDTree(pts)
        part = IndexRangePartitioner(10, 2)
        with pytest.raises(ValueError):
            local_dbscan(0, [7], pts, tree, 1.5, 2, part)  # 7 belongs to partition 1

    def test_unknown_policy_rejected(self):
        pts = _line_points(10)
        tree = KDTree(pts)
        part = IndexRangePartitioner(10, 2)
        with pytest.raises(ValueError):
            local_dbscan(0, range(5), pts, tree, 1.5, 2, part, seed_policy="some")


class TestPartialCluster:
    def test_owns_checks_range_membership(self):
        c = PartialCluster(partition=0, local_id=0, lo=0, hi=2500)
        assert c.owns(0) and c.owns(2499)
        assert not c.owns(2500) and not c.owns(3000)

    def test_size_counts_members_and_seeds(self):
        c = PartialCluster(0, 0, 0, 10, members=[1, 2, 3], seeds=[12])
        assert c.size == 4

    def test_cid_unique_per_partition(self):
        a = PartialCluster(0, 0, 0, 10)
        b = PartialCluster(1, 0, 10, 20)
        assert a.cid != b.cid

    def test_paper_figure4_shape(self):
        """The Figure 4 example: C[0] with range [0,2500) holds regular
        elements and the out-of-range SEED 3000."""
        c0 = PartialCluster(0, 0, 0, 2500,
                            members=[0, 5, 6, 11, 223, 2300, 23, 45, 1000],
                            seeds=[3000])
        assert not c0.owns(3000)
        assert all(c0.owns(m) for m in c0.members)

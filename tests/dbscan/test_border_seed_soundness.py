"""Regression: a shared *border* point must never merge two clusters.

Found by hypothesis (tests/dbscan/test_properties.py): two dense
clusters close enough that one non-core point lies within eps of cores
of both.  Sequential DBSCAN keeps the clusters separate (density-
connectivity passes only through core points); a naive reading of the
paper's Algorithm 4 — merge whenever a SEED is a regular element of
another partial cluster — unites them, because the shared border point
is a regular member of one cluster and a SEED of the other.

The fix: partial clusters ship their members' core/border distinction
(`PartialCluster.borders`) and the driver merges only through **core**
seeds.  This is a soundness repair *to the paper's algorithm itself*
(DESIGN.md §4).
"""

import numpy as np
import pytest

from repro.dbscan import (
    PartialCluster,
    SparkDBSCAN,
    clusterings_equivalent,
    dbscan_sequential,
    merge_paper,
    merge_union_find,
)
from repro.kdtree import KDTree


def two_clusters_sharing_a_border_point() -> tuple[np.ndarray, float, int]:
    """Two dense 1-D chains; the point at 3.1 is within eps=1.6 of the edge
    core of each chain but has only 3 neighbours (< minpts=4): a border
    point claimable by either cluster, connecting neither."""
    pts = np.array(
        [[0.0], [0.5], [1.0], [1.5],          # left chain (indices 0-3)
         [3.1],                               # shared border point (index 4)
         [4.7], [5.2], [5.7], [6.2]]          # right chain (indices 5-8)
    )
    return pts, 1.6, 4


class TestSharedBorderPoint:
    def setup_method(self):
        self.pts, self.eps, self.minpts = two_clusters_sharing_a_border_point()
        self.tree = KDTree(self.pts, leaf_size=4)
        self.seq = dbscan_sequential(self.pts, self.eps, self.minpts, tree=self.tree)

    def test_sequential_sees_two_clusters(self):
        assert self.seq.num_clusters == 2

    @pytest.mark.parametrize("p", [2, 3, 4, 5])
    def test_parallel_must_not_merge_through_border(self, p):
        par = SparkDBSCAN(self.eps, self.minpts, num_partitions=p).fit(
            self.pts, tree=self.tree
        )
        assert par.num_clusters == 2, (
            f"p={p}: shared border point merged two clusters"
        )
        ok, why = clusterings_equivalent(
            self.seq.labels, par.labels, self.pts, self.eps, self.minpts,
            tree=self.tree,
        )
        assert ok, why

    @pytest.mark.parametrize("strategy", ["union_find", "paper"])
    def test_merge_strategies_respect_border_flag(self, strategy):
        # Hand-built partials: left cluster owns border 4 as a *border*
        # member; right cluster reached it and placed it as a SEED.
        left = PartialCluster(0, 0, 0, 5, members=[0, 1, 2, 3, 4],
                              seeds=[], borders={4})
        right = PartialCluster(1, 0, 5, 9, members=[5, 6, 7, 8], seeds=[4])
        merge = merge_union_find if strategy == "union_find" else merge_paper
        out = merge([left, right], 9)
        assert out.num_global_clusters == 2
        assert out.num_merges == 0

    def test_core_seed_still_merges(self):
        # Same shape, but the linking point IS core: merging is mandatory.
        left = PartialCluster(0, 0, 0, 5, members=[0, 1, 2, 3, 4], seeds=[])
        right = PartialCluster(1, 0, 5, 9, members=[5, 6, 7, 8], seeds=[4])
        out = merge_union_find([left, right], 9)
        assert out.num_global_clusters == 1
        assert out.num_merges == 1


class TestOriginalHypothesisCounterexample:
    def test_gaussian_clumps_reproduction(self):
        """A scaled-down version of the hypothesis-found workload: clumps
        whose skirts overlap within eps around a non-core point."""
        rng = np.random.default_rng(99)
        a = rng.normal((0.0, 0.0), 1.2, (25, 2))
        b = rng.normal((6.0, 0.0), 1.2, (25, 2))
        bridge = np.array([[3.0, 0.0]])  # likely border to both
        pts = np.vstack([a, bridge, b])
        pts = pts[rng.permutation(len(pts))]
        eps, minpts = 1.4, 5
        tree = KDTree(pts, leaf_size=8)
        seq = dbscan_sequential(pts, eps, minpts, tree=tree)
        for p in (2, 3, 4):
            par = SparkDBSCAN(eps, minpts, num_partitions=p).fit(pts, tree=tree)
            ok, why = clusterings_equivalent(
                seq.labels, par.labels, pts, eps, minpts, tree=tree
            )
            assert ok, f"p={p}: {why}"

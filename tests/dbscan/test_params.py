"""k-dist eps suggestion heuristic."""

import numpy as np
import pytest

from repro.dbscan import dbscan_sequential, k_distances, suggest_eps


class TestKDistances:
    def test_sorted_descending(self, blobs_small, blobs_small_tree):
        curve = k_distances(blobs_small.points, k=4, tree=blobs_small_tree)
        assert (np.diff(curve) <= 1e-12).all()

    def test_sample_limits_size(self, blobs_small, blobs_small_tree):
        curve = k_distances(blobs_small.points, k=4, sample=100,
                            tree=blobs_small_tree)
        assert curve.size == 100

    def test_full_curve_when_sample_none(self, blobs_small, blobs_small_tree):
        curve = k_distances(blobs_small.points, k=4, sample=None,
                            tree=blobs_small_tree)
        assert curve.size == blobs_small.n

    def test_kdist_value_is_actual_kth_distance(self):
        # 4 collinear points spaced 1 apart: every point's 1-NN distance is 1.
        pts = np.array([[0.0], [1.0], [2.0], [3.0]])
        curve = k_distances(pts, k=1, sample=None)
        np.testing.assert_allclose(curve, [1.0, 1.0, 1.0, 1.0])

    def test_validation(self, blobs_small):
        with pytest.raises(ValueError):
            k_distances(blobs_small.points, k=0)
        with pytest.raises(ValueError):
            k_distances(np.zeros((3, 2)), k=5)
        with pytest.raises(ValueError):
            k_distances(np.zeros(7), k=1)


class TestSuggestEps:
    def test_suggestion_separates_cluster_from_noise_scale(self, blobs_small,
                                                           blobs_small_tree):
        """On the Table I-style data, the knee should land between the
        intra-cluster neighbour scale and the noise neighbour scale —
        i.e. a value at which DBSCAN actually recovers the 3 clusters."""
        eps = suggest_eps(blobs_small.points, minpts=5, tree=blobs_small_tree)
        assert 5.0 < eps < 120.0
        res = dbscan_sequential(blobs_small.points, eps, 5, tree=blobs_small_tree)
        assert res.num_clusters == 3

    def test_deterministic(self, blobs_small, blobs_small_tree):
        a = suggest_eps(blobs_small.points, minpts=5, tree=blobs_small_tree)
        b = suggest_eps(blobs_small.points, minpts=5, tree=blobs_small_tree)
        assert a == b

    def test_uniform_data_returns_positive_eps(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 100, (300, 3))
        assert suggest_eps(pts, minpts=4) > 0

    def test_minpts_validation(self, blobs_small):
        with pytest.raises(ValueError):
            suggest_eps(blobs_small.points, minpts=1)

"""Operation counters: the Section III-B bookkeeping claims, measured."""

import numpy as np
import pytest

from repro.dbscan import local_dbscan
from repro.dbscan.partial import OpCounters
from repro.engine.partitioner import IndexRangePartitioner
from repro.kdtree import KDTree


@pytest.fixture(scope="module")
def workload():
    from repro.data import generate_clustered

    g = generate_clustered(n=1200, num_clusters=4, cluster_std=8.0, seed=17)
    return g, KDTree(g.points)


def _run_counted(g, tree, p, pid, **kwargs):
    part = IndexRangePartitioner(g.n, p)
    lo, hi = part.range_of(pid)
    counters = OpCounters()
    partials = local_dbscan(pid, range(lo, hi), g.points, tree, 25.0, 5,
                            part, counters=counters, **kwargs)
    return partials, counters


class TestPaperInvariants:
    def test_queue_adds_equal_removes(self, workload):
        """The paper, Section III-B: 'The number of add operations should
        be the same as the number of remove operations ... (while loop
        will not terminate until it is empty).'"""
        g, tree = workload
        for p in (1, 2, 4):
            for pid in range(p):
                _, c = _run_counted(g, tree, p, pid)
                assert c.queue_adds == c.queue_removes

    def test_one_query_per_visited_point(self, workload):
        """Each point's eps-neighbourhood is computed at most once per
        partition (the hashtable's whole purpose)."""
        g, tree = workload
        part = IndexRangePartitioner(g.n, 2)
        lo, hi = part.range_of(0)
        _, c = _run_counted(g, tree, 2, 0)
        assert c.range_queries <= hi - lo

    def test_hashtable_puts_bounded_by_two_per_point(self, workload):
        # visited + assignment: at most two puts per own point.
        g, tree = workload
        part = IndexRangePartitioner(g.n, 2)
        lo, hi = part.range_of(1)
        _, c = _run_counted(g, tree, 2, 1)
        assert c.hashtable_puts <= 2 * (hi - lo)

    def test_seed_counter_matches_partials(self, workload):
        g, tree = workload
        partials, c = _run_counted(g, tree, 4, 1)
        assert c.seeds_placed == sum(len(pc.seeds) for pc in partials)

    def test_capped_policy_reports_skips(self, workload):
        g, tree = workload
        _, c_all = _run_counted(g, tree, 4, 0, seed_policy="all")
        _, c_cap = _run_counted(g, tree, 4, 0, seed_policy="one_per_partition")
        assert c_all.seeds_skipped == 0
        assert c_cap.seeds_skipped > 0
        assert c_cap.seeds_placed < c_all.seeds_placed


class TestInstrumentedPathEquivalence:
    def test_same_partials_with_and_without_counters(self, workload):
        g, tree = workload
        part = IndexRangePartitioner(g.n, 3)
        for pid in range(3):
            lo, hi = part.range_of(pid)
            plain = local_dbscan(pid, range(lo, hi), g.points, tree, 25.0, 5, part)
            counted = local_dbscan(pid, range(lo, hi), g.points, tree, 25.0, 5,
                                   part, counters=OpCounters())
            assert len(plain) == len(counted)
            for a, b in zip(plain, counted):
                assert a.members == b.members
                assert a.seeds == b.seeds


class TestMerge:
    def test_counters_merge_sums_fields(self):
        a = OpCounters(range_queries=3, queue_adds=10, queue_removes=10)
        b = OpCounters(range_queries=2, queue_adds=5, queue_removes=5,
                       seeds_placed=1)
        a.merge(b)
        assert a.range_queries == 5
        assert a.queue_adds == 15
        assert a.seeds_placed == 1

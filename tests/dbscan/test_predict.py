"""Out-of-sample prediction."""

import numpy as np
import pytest

from repro.dbscan import NOISE, DBSCANPredictor, dbscan_sequential


@pytest.fixture(scope="module")
def fitted():
    from repro.data import generate_clustered
    from repro.kdtree import KDTree

    g = generate_clustered(n=1000, num_clusters=3, cluster_std=8.0, seed=23)
    tree = KDTree(g.points)
    res = dbscan_sequential(g.points, 25.0, 5, tree=tree)
    pred = DBSCANPredictor(g.points, res.labels, 25.0, 5, tree=tree)
    return g, res, pred


class TestPredict:
    def test_training_points_get_their_own_cluster(self, fitted):
        g, res, pred = fitted
        idx = np.flatnonzero(res.labels >= 0)[:50]
        got = pred.predict(g.points[idx])
        np.testing.assert_array_equal(got, res.labels[idx])

    def test_point_near_cluster_center_joins_it(self, fitted):
        g, res, pred = fitted
        center = g.clusters[0].center
        label = pred.predict_one(center)
        assert label != NOISE
        # It must be the cluster whose members surround that center.
        from repro.kdtree import KDTree

        near = pred.tree.query_knn(center, 5)
        assert label in set(res.labels[near].tolist())

    def test_far_away_point_is_noise(self, fitted):
        _g, _res, pred = fitted
        assert pred.predict_one(np.full(10, -1e6)) == NOISE

    def test_batch_predict_matches_single(self, fitted):
        g, _res, pred = fitted
        xs = g.points[:10] + 1.0
        batch = pred.predict(xs)
        singles = [pred.predict_one(x) for x in xs]
        np.testing.assert_array_equal(batch, singles)

    def test_would_be_core(self, fitted):
        g, _res, pred = fitted
        assert pred.would_be_core(g.clusters[0].center)
        assert not pred.would_be_core(np.full(10, -1e6))

    def test_prediction_agrees_with_refit(self, fitted):
        """Predicting x should match the cluster structure of refitting
        with x included (border semantics, up to tie-breaks)."""
        g, res, pred = fitted
        # Take a point at a cluster's edge.
        x = g.clusters[1].center + 12.0
        label = pred.predict_one(x)
        refit = dbscan_sequential(np.vstack([g.points, x[None]]), 25.0, 5)
        refit_label = refit.labels[-1]
        assert (label == NOISE) == (refit_label == NOISE)

    def test_validation(self, fitted):
        g, res, _pred = fitted
        with pytest.raises(ValueError):
            DBSCANPredictor(g.points, res.labels[:-1], 25.0, 5)
        with pytest.raises(ValueError):
            DBSCANPredictor(np.zeros(5), np.zeros(5), 25.0, 5)

"""Baselines: naive shuffle-based Spark DBSCAN and MapReduce DBSCAN."""

import pytest

from repro.dbscan import (
    MapReduceDBSCAN,
    NaiveSparkDBSCAN,
    SparkDBSCAN,
    clusterings_equivalent,
    dbscan_sequential,
)


@pytest.fixture(scope="module")
def data():
    from repro.data import generate_clustered
    from repro.kdtree import KDTree

    g = generate_clustered(n=1500, num_clusters=4, cluster_std=8.0, seed=11)
    tree = KDTree(g.points)
    seq = dbscan_sequential(g.points, 25.0, 5, tree=tree)
    return g, tree, seq


class TestNaiveSparkDBSCAN:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_equivalent_to_sequential(self, data, p):
        g, tree, seq = data
        res = NaiveSparkDBSCAN(25.0, 5, num_partitions=p).fit(g.points)
        ok, why = clusterings_equivalent(seq.labels, res.labels, g.points,
                                         25.0, 5, tree=tree)
        assert ok, why

    def test_shuffles_happen(self, data):
        """The whole point: the traditional design shuffles, repeatedly."""
        g, _tree, _seq = data
        res = NaiveSparkDBSCAN(25.0, 5, num_partitions=4).fit(g.points)
        assert res.shuffle_rounds >= 2
        assert res.shuffle_bytes > 0

    def test_seed_version_never_shuffles(self, data):
        """Counterpart: the paper's SEED design must have zero shuffles."""
        from repro.engine import SparkContext

        g, tree, _seq = data
        with SparkContext("simulated[4]") as sc:
            SparkDBSCAN(25.0, 5, num_partitions=4).fit(g.points, sc=sc, tree=tree)
            nbytes = sum(
                tm.shuffle_bytes_written
                for jm in sc.dag_scheduler.job_metrics
                for st in jm.stages
                for tm in st.task_metrics
            )
            assert nbytes == 0
            # Every job in the SEED pipeline is single-stage (no wide deps).
            assert all(len(jm.stages) == 1 for jm in sc.dag_scheduler.job_metrics)

    def test_convergence_within_round_budget(self, data):
        g, _tree, _seq = data
        res = NaiveSparkDBSCAN(25.0, 5, num_partitions=2, max_rounds=100).fit(g.points)
        assert res.shuffle_rounds < 100  # converged, not exhausted

    def test_validation(self):
        with pytest.raises(ValueError):
            NaiveSparkDBSCAN(0.0, 5)
        with pytest.raises(ValueError):
            NaiveSparkDBSCAN(1.0, 0)


class TestMapReduceDBSCAN:
    @pytest.mark.parametrize("m", [1, 2, 4])
    def test_equivalent_to_sequential(self, data, m, tmp_path):
        g, tree, seq = data
        res = MapReduceDBSCAN(25.0, 5, num_maps=m, startup_overhead=0.0,
                              tmp_dir=str(tmp_path)).fit(g.points)
        ok, why = clusterings_equivalent(seq.labels, res.labels, g.points,
                                         25.0, 5, tree=tree)
        assert ok, why

    def test_two_jobs_run(self, data, tmp_path):
        g, _tree, _seq = data
        res = MapReduceDBSCAN(25.0, 5, num_maps=2, startup_overhead=0.0,
                              tmp_dir=str(tmp_path)).fit(g.points)
        assert len(res.job_stats) == 2
        for stats in res.job_stats:
            assert stats.spill_bytes > 0  # intermediates hit disk

    def test_startup_overhead_charged_per_job(self, data, tmp_path):
        g, _tree, _seq = data
        res = MapReduceDBSCAN(25.0, 5, num_maps=2, startup_overhead=0.5,
                              tmp_dir=str(tmp_path)).fit(g.points)
        assert res.wall_on(4) >= 1.0  # two jobs x 0.5s

    def test_slower_than_spark_at_same_cores(self, data, tmp_path):
        """Figure 7's qualitative claim: Spark beats MapReduce.  A modest
        per-job startup overhead models Hadoop job submission; the
        zero-overhead structural claim is asserted (in aggregate, on a
        bigger workload) by benchmarks/bench_fig7_mapreduce_vs_spark.py."""
        g, tree, _seq = data
        mr = MapReduceDBSCAN(25.0, 5, num_maps=4, startup_overhead=0.25,
                             tmp_dir=str(tmp_path)).fit(g.points)
        spark = SparkDBSCAN(25.0, 5, num_partitions=4).fit(g.points, tree=tree)
        spark_wall = spark.timings.parallel_wall()
        assert mr.wall_on(4) > spark_wall

    def test_wall_monotone_in_cores(self, data, tmp_path):
        g, _tree, _seq = data
        res = MapReduceDBSCAN(25.0, 5, num_maps=4, startup_overhead=0.0,
                              tmp_dir=str(tmp_path)).fit(g.points)
        assert res.wall_on(1) >= res.wall_on(2) >= res.wall_on(8)

    def test_validation(self):
        with pytest.raises(ValueError):
            MapReduceDBSCAN(0.0, 5)
        with pytest.raises(ValueError):
            MapReduceDBSCAN(1.0, 5, num_maps=0)

"""Edge-based merging (DESIGN.md §11): `merge_edges` over digests must
replay `merge_union_find` over the founder-sorted partials exactly —
same gids, same claims, same labels — while never touching a member
list on the driver."""

import numpy as np
import pytest

from repro.dbscan import (
    NOISE,
    PartialCluster,
    apply_gid_map,
    digest_from_partials,
    merge_edges,
    merge_partials,
    merge_union_find,
)


def pc(partition, local_id, lo, hi, members, seeds=(), borders=()):
    c = PartialCluster(partition, local_id, lo, hi,
                       members=list(members), seeds=list(seeds))
    c.borders.update(borders)
    return c


def edge_labels(partials, n, min_cluster_size=0):
    plan = merge_edges(digest_from_partials(partials),
                       min_cluster_size=min_cluster_size)
    return apply_gid_map(partials, plan, n), plan


class TestDigestFromPartials:
    def test_exports_are_seed_targeted_members(self):
        a = pc(0, 0, 0, 10, [0, 1, 2], seeds=[10])
        b = pc(1, 0, 10, 20, [10, 11], seeds=[2])
        digests = digest_from_partials([a, b])
        assert [d.partition for d in digests] == [0, 1]
        # 2 is a member of a and a seed of b -> exported by partition 0;
        # 10 symmetrically by partition 1.  Interior members never ship.
        assert [(p, l) for (p, l, _) in digests[0].exports] == [(2, 0)]
        assert [(p, l) for (p, l, _) in digests[1].exports] == [(10, 0)]

    def test_border_member_exports_non_core(self):
        a = pc(0, 0, 0, 10, [0, 1], seeds=[10])
        b = pc(1, 0, 10, 20, [10, 11], borders=[10])
        digests = digest_from_partials([a, b])
        (point, _, is_core), = digests[1].exports
        assert point == 10 and not is_core

    def test_summaries_carry_sizes_not_lists(self):
        a = pc(0, 0, 0, 10, [0, 1, 2], seeds=[10, 11], borders=[2])
        (d,) = digest_from_partials([a])
        (s,) = d.summaries
        assert (s.founder, s.n_members, s.n_seeds, s.n_borders) == (0, 3, 2, 1)
        assert s.size == a.size


class TestPaperFigure4:
    def _partials(self):
        c0 = pc(0, 0, 0, 2500, [0, 5, 6, 11, 23, 45, 223, 1000, 2300],
                seeds=[3000])
        c5 = pc(1, 0, 2500, 5000, [2501, 2600, 2800, 3000, 3401, 3678, 4200])
        return [c0, c5]

    def test_edge_merge_matches_union_find(self):
        partials = self._partials()
        ref = merge_union_find(partials, 5000)
        labels, plan = edge_labels(partials, 5000)
        np.testing.assert_array_equal(labels, ref.labels)
        assert plan.num_merges == ref.num_merges == 1
        assert plan.num_global_clusters == ref.num_global_clusters == 1
        assert plan.groups == ref.groups

    def test_plan_counts_the_single_edge(self):
        _, plan = edge_labels(self._partials(), 5000)
        assert plan.num_edges == 1
        assert plan.num_partials == 2
        assert plan.num_seeds == 1


class TestChainsAndBorders:
    def test_chain_closes(self):
        a = pc(0, 0, 0, 10, [0, 1, 2], seeds=[10])
        b = pc(1, 0, 10, 20, [10, 11], seeds=[20])
        c = pc(2, 0, 20, 30, [20, 21, 22])
        ref = merge_union_find([a, b, c], 30)
        labels, plan = edge_labels([a, b, c], 30)
        np.testing.assert_array_equal(labels, ref.labels)
        assert plan.num_global_clusters == 1

    def test_border_export_is_not_an_edge(self):
        # 10 is only a *border* member of b: legal DBSCAN sharing, no merge.
        a = pc(0, 0, 0, 10, [0, 1, 2], seeds=[10])
        b = pc(1, 0, 10, 20, [10, 11], borders=[10])
        ref = merge_union_find([a, b], 20)
        labels, plan = edge_labels([a, b], 20)
        np.testing.assert_array_equal(labels, ref.labels)
        assert plan.num_edges == 0
        assert plan.num_global_clusters == 2

    def test_unowned_seed_becomes_claim(self):
        a = pc(0, 0, 0, 10, [0, 1], seeds=[15])
        b = pc(1, 0, 10, 20, [11, 12])
        ref = merge_union_find([a, b], 20)
        labels, plan = edge_labels([a, b], 20)
        np.testing.assert_array_equal(labels, ref.labels)
        assert plan.claims == {15: plan.gid_of[(0, 0)]}

    def test_min_cluster_size_filters_like_merge_partials(self):
        tiny = pc(0, 0, 0, 10, [3])
        a = pc(1, 0, 10, 20, [10, 11], seeds=[20])
        b = pc(2, 0, 20, 30, [20, 21])
        ref = merge_partials([tiny, a, b], 30, min_cluster_size=2)
        labels, plan = edge_labels([tiny, a, b], 30, min_cluster_size=2)
        np.testing.assert_array_equal(labels, ref.labels)
        assert labels[3] == NOISE
        assert plan.groups == ref.groups

    def test_empty_digests(self):
        plan = merge_edges([])
        assert plan.num_global_clusters == 0
        assert plan.gid_of == {} and plan.claims == {}
        labels = apply_gid_map([], plan, 10)
        assert (labels == NOISE).all()


class TestContestedBorderSeedDeterminism:
    """Regression: a border seed wanted by two global clusters used to go
    to whichever partial arrived first from the accumulator — an order
    that varies across engine backends.  The tie-break is now pinned to
    ascending founder order in both merge paths."""

    def _contested(self, flip):
        a = pc(0, 0, 0, 10, [0, 1], seeds=[25])
        b = pc(1, 0, 10, 20, [10, 11], seeds=[25])
        return [b, a] if flip else [a, b]

    @pytest.mark.parametrize("flip", [False, True])
    def test_union_find_claim_goes_to_lowest_founder(self, flip):
        out = merge_union_find(self._contested(flip), 30)
        assert out.labels[25] == out.labels[0]

    @pytest.mark.parametrize("flip", [False, True])
    def test_edge_claim_goes_to_lowest_founder(self, flip):
        partials = self._contested(flip)
        labels, _ = edge_labels(partials, 30)
        assert labels[25] == labels[0]

    def test_arrival_order_never_changes_labels(self):
        """Shuffled arrival order: identical point->cluster partition
        (canonical relabel), including the contested claim."""
        from repro.dbscan import relabel_canonical

        a = pc(0, 0, 0, 10, [0, 1], seeds=[25])
        b = pc(1, 0, 10, 20, [10, 11], seeds=[25, 26])
        c = pc(2, 0, 20, 30, [20, 21], seeds=[26])
        base = relabel_canonical(merge_union_find([a, b, c], 30).labels)
        rng = np.random.default_rng(7)
        for _ in range(5):
            order = [[a, b, c][i] for i in rng.permutation(3)]
            got = relabel_canonical(merge_union_find(order, 30).labels)
            np.testing.assert_array_equal(got, base)


class TestDigestOrderInvariance:
    def test_shuffled_digests_same_plan(self):
        a = pc(0, 0, 0, 10, [0, 1, 2], seeds=[10])
        b = pc(1, 0, 10, 20, [10, 11], seeds=[20, 25])
        c = pc(2, 0, 20, 30, [20, 21, 22])
        digests = digest_from_partials([a, b, c])
        fwd = merge_edges(list(digests))
        rev = merge_edges(list(reversed(digests)))
        assert fwd.gid_of == rev.gid_of
        assert fwd.claims == rev.claims
        assert fwd.groups == rev.groups
        assert (fwd.num_edges, fwd.num_merges) == (rev.num_edges, rev.num_merges)

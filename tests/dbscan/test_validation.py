"""The validation utilities themselves."""

import numpy as np
import pytest

from repro.dbscan import (
    NOISE,
    adjusted_rand_index,
    clusterings_equivalent,
    rand_index,
    relabel_canonical,
)


class TestRelabelCanonical:
    def test_first_appearance_order(self):
        labels = np.array([5, 5, 2, NOISE, 2, 9])
        np.testing.assert_array_equal(
            relabel_canonical(labels), np.array([0, 0, 1, NOISE, 1, 2])
        )

    def test_idempotent(self):
        labels = np.array([0, 1, NOISE, 1])
        np.testing.assert_array_equal(relabel_canonical(labels), labels)


class TestRandIndices:
    def test_identical_labelings(self):
        a = np.array([0, 0, 1, 1, NOISE])
        assert rand_index(a, a) == 1.0
        assert adjusted_rand_index(a, a) == 1.0

    def test_permuted_ids_still_perfect(self):
        a = np.array([0, 0, 1, 1, 2])
        b = np.array([7, 7, 3, 3, 1])
        assert rand_index(a, b) == 1.0
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_disagreement_lowers_index(self):
        a = np.array([0, 0, 0, 1, 1, 1])
        b = np.array([0, 0, 1, 1, 1, 1])
        assert rand_index(a, b) < 1.0
        assert adjusted_rand_index(a, b) < 1.0

    def test_ari_near_zero_for_random(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, 500)
        b = rng.integers(0, 5, 500)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_noise_points_are_singletons(self):
        # Two all-noise labelings agree perfectly.
        a = np.full(4, NOISE)
        assert rand_index(a, a) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            rand_index(np.array([0]), np.array([0, 1]))


class TestEquivalenceChecker:
    def _simple(self):
        """Points on a line: [0 1 2]   [10 11 12], eps=1.5, minpts=2."""
        pts = np.array([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0], [50.0]])
        labels = np.array([0, 0, 0, 1, 1, 1, NOISE])
        return pts, labels

    def test_accepts_identical(self):
        pts, labels = self._simple()
        ok, why = clusterings_equivalent(labels, labels, pts, 1.5, 2)
        assert ok, why

    def test_accepts_renamed_clusters(self):
        pts, labels = self._simple()
        renamed = np.where(labels == 0, 9, np.where(labels == 1, 4, labels))
        ok, _ = clusterings_equivalent(labels, renamed, pts, 1.5, 2)
        assert ok

    def test_rejects_merged_clusters(self):
        pts, labels = self._simple()
        merged = np.where(labels == 1, 0, labels)
        ok, why = clusterings_equivalent(labels, merged, pts, 1.5, 2)
        assert not ok
        assert "merged" in why or "split" in why

    def test_rejects_core_marked_noise(self):
        pts, labels = self._simple()
        bad = labels.copy()
        bad[0] = NOISE
        ok, why = clusterings_equivalent(labels, bad, pts, 1.5, 2)
        assert not ok
        assert "noise" in why

    def test_border_point_may_swing_between_clusters(self):
        # Two dense chains with a single non-core point (at 3.1) exactly
        # eps-reachable from the edge cores of both — the classic
        # order-dependent border assignment both labelings may make.
        pts = np.array(
            [[0.0], [0.5], [1.0], [1.5], [3.1], [4.7], [5.2], [5.7], [6.2]]
        )
        a = np.array([0, 0, 0, 0, 0, 1, 1, 1, 1])  # border joins the left
        b = np.array([0, 0, 0, 0, 1, 1, 1, 1, 1])  # border joins the right
        ok, why = clusterings_equivalent(a, b, pts, 1.6, 4)
        assert ok, why

    def test_rejects_invalid_border_assignment(self):
        pts, labels = self._simple()
        bad = labels.copy()
        bad[6] = 0  # the far-away point cannot belong to cluster 0
        ok, why = clusterings_equivalent(labels, bad, pts, 1.5, 2)
        assert not ok

    def test_rejects_wrong_shapes(self):
        pts, labels = self._simple()
        ok, why = clusterings_equivalent(labels[:-1], labels, pts, 1.5, 2)
        assert not ok
        assert "shape" in why

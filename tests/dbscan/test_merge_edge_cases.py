"""Merge edge cases beyond the chain/border scenarios."""

import numpy as np

from repro.dbscan import NOISE, PartialCluster, merge_paper, merge_partials, merge_union_find


def pc(partition, local_id, lo, hi, members, seeds=(), borders=()):
    return PartialCluster(partition, local_id, lo, hi,
                          members=list(members), seeds=list(seeds),
                          borders=set(borders))


class TestSeedTopologies:
    def test_mutual_seeds_single_merge(self):
        """Two clusters each seeding the other must merge exactly once."""
        a = pc(0, 0, 0, 10, [0, 1], seeds=[10])
        b = pc(1, 0, 10, 20, [10, 11], seeds=[1])
        out = merge_union_find([a, b], 20)
        assert out.num_global_clusters == 1
        assert out.num_merges == 1

    def test_star_topology(self):
        """One hub cluster seeded by many leaves collapses to one."""
        hub = pc(0, 0, 0, 10, list(range(10)))
        leaves = [
            pc(k, 0, k * 10, (k + 1) * 10, [k * 10], seeds=[k - 1])
            for k in range(1, 6)
        ]
        out = merge_union_find([hub] + leaves, 60)
        assert out.num_global_clusters == 1

    def test_two_components_stay_apart(self):
        a = pc(0, 0, 0, 10, [0, 1], seeds=[10])
        b = pc(1, 0, 10, 20, [10], seeds=[])
        c = pc(2, 0, 20, 30, [20, 21], seeds=[40])  # seed into empty space
        d = pc(3, 0, 30, 40, [30])
        out = merge_union_find([a, b, c, d], 50)
        assert out.num_global_clusters == 3  # {a,b}, {c}, {d}

    def test_seed_pointing_at_noise_is_border_claim(self):
        a = pc(0, 0, 0, 10, [0], seeds=[15])
        out = merge_union_find([a], 20)
        assert out.labels[15] == out.labels[0]
        assert out.num_merges == 0

    def test_dangling_seed_out_of_any_cluster(self):
        a = pc(0, 0, 0, 10, [0], seeds=[19])
        out = merge_union_find([a], 20)
        # 19 belongs to no cluster's members: claimed as border of a.
        assert out.labels[19] == out.labels[0]
        # Other untouched points remain noise.
        assert out.labels[5] == NOISE

    def test_self_seed_impossible_but_harmless(self):
        """A (mal-formed) seed inside the cluster's own range is ignored by
        ownership rules rather than corrupting the merge."""
        a = pc(0, 0, 0, 10, [0, 5], seeds=[5])
        out = merge_union_find([a], 10)
        assert out.num_global_clusters == 1
        assert out.num_merges == 0


class TestStrategiesConsistency:
    def test_paper_never_produces_more_merges_than_union_find(self):
        rng = np.random.default_rng(0)
        for trial in range(20):
            p = int(rng.integers(2, 6))
            per = 8
            partials = []
            for k in range(p):
                lo, hi = k * per, (k + 1) * per
                members = list(range(lo, hi))
                n_seeds = int(rng.integers(0, 3))
                seeds = [int(rng.integers(0, p * per)) for _ in range(n_seeds)]
                seeds = [s for s in seeds if not lo <= s < hi]
                partials.append(pc(k, 0, lo, hi, members, seeds))
            uf = merge_union_find([_copy(c) for c in partials], p * per)
            pp = merge_paper([_copy(c) for c in partials], p * per)
            assert pp.num_global_clusters >= uf.num_global_clusters, (
                f"trial {trial}: single pass merged more than the closure"
            )

    def test_merge_partials_dispatch(self):
        a = pc(0, 0, 0, 10, [0], seeds=[10])
        b = pc(1, 0, 10, 20, [10])
        for strategy in ("union_find", "paper"):
            out = merge_partials([_copy(a), _copy(b)], 20, strategy=strategy)
            assert out.num_global_clusters == 1


def _copy(c: PartialCluster) -> PartialCluster:
    return PartialCluster(c.partition, c.local_id, c.lo, c.hi,
                          members=list(c.members), seeds=list(c.seeds),
                          borders=set(c.borders))

"""Incremental DBSCAN: insertions must agree with batch DBSCAN."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbscan import NOISE, clusterings_equivalent, dbscan_sequential
from repro.dbscan.incremental import GridIndex, IncrementalDBSCAN
from repro.kdtree import KDTree


class TestGridIndex:
    def test_neighbors_match_brute_force(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 20, (200, 3))
        grid = GridIndex(3, eps=2.0)
        for p in pts:
            grid.add(p)
        for qi in range(0, 200, 17):
            q = pts[qi]
            got = sorted(grid.neighbors(q))
            d = np.linalg.norm(pts - q, axis=1)
            want = sorted(np.flatnonzero(d <= 2.0).tolist())
            assert got == want

    def test_empty_index(self):
        grid = GridIndex(2, eps=1.0)
        assert grid.neighbors(np.zeros(2)) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            GridIndex(2, eps=0.0)

    def test_len_ignores_tombstones(self):
        """Regression: ``len`` used to count removed (tombstoned) points
        because it read ``len(self._points)``."""
        grid = GridIndex(2, eps=1.0)
        a = grid.add(np.array([0.1, 0.1]))
        grid.add(np.array([0.2, 0.2]))
        grid.add(np.array([5.0, 5.0]))
        assert len(grid) == 3
        grid.remove(a)
        assert len(grid) == 2
        assert grid.active == 2
        # Indices stay stable: the surviving points keep their ids.
        assert sorted(grid.neighbors(np.array([0.15, 0.15]))) == [1]

    def test_remove_drops_emptied_cells(self):
        grid = GridIndex(2, eps=1.0)
        idx = grid.add(np.array([5.0, 5.0]))
        grid.add(np.array([0.0, 0.0]))
        assert grid.num_cells == 2
        grid.remove(idx)
        assert grid.num_cells == 1
        with pytest.raises(KeyError):
            grid.remove(idx)

    def test_high_d_neighbors_uses_cell_scan(self):
        """Regression: at d=10 `neighbors` used to enumerate all 3^10 =
        59 049 offset tuples per query; it now scans the (far smaller)
        occupied-cell dict.  Either way the answer must match brute
        force."""
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 50, (40, 10))
        grid = GridIndex(10, eps=4.0)
        for p in pts:
            grid.add(p)
        assert 3 ** grid.d > grid.num_cells  # the scan path is active
        for qi in (0, 13, 39):
            d = np.linalg.norm(pts - pts[qi], axis=1)
            want = sorted(np.flatnonzero(d <= 4.0).tolist())
            assert grid.neighbors(pts[qi]) == want

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        d=st.integers(1, 3),
        n=st.integers(1, 40),
        eps=st.sampled_from([0.5, 1.0, 2.0]),
    )
    def test_candidate_strategies_agree(self, seed, d, n, eps):
        """Both candidate enumerations (3^d offsets vs occupied-cell
        scan) must yield the same neighbour sets — including points at
        exactly distance eps, which are inclusive."""
        rng = np.random.default_rng(seed)
        # Half-eps lattice coordinates make exact-eps pairs common and
        # land points exactly on cell boundaries.
        pts = rng.integers(-6, 7, (n, d)) * (eps / 2.0)
        grid = GridIndex(d, eps=eps)
        for p in pts:
            grid.add(p)
        for q in pts[:: max(1, n // 5)]:
            base = grid._cell_of(q)
            eps2 = eps * eps

            def filt(candidates):
                return sorted(
                    i for i in set(candidates)
                    if float((pts[i] - q) @ (pts[i] - q)) <= eps2
                )

            via_offsets = filt(grid._candidates_offsets(base))
            via_scan = filt(grid._candidates_scan(base))
            dist = np.linalg.norm(pts - q, axis=1)
            brute = sorted(np.flatnonzero(dist <= eps).tolist())
            assert via_offsets == via_scan == brute == grid.neighbors(q)


def _batch_equiv(points: np.ndarray, eps: float, minpts: int) -> tuple[bool, str]:
    inc = IncrementalDBSCAN(eps, minpts, d=points.shape[1])
    inc.insert_all(points)
    batch = dbscan_sequential(points, eps, minpts)
    tree = KDTree(points, leaf_size=8)
    return clusterings_equivalent(
        batch.labels, inc.labels, points, eps, minpts, tree=tree
    )


class TestAgainstBatch:
    def test_two_blobs(self):
        rng = np.random.default_rng(1)
        pts = np.vstack([
            rng.normal((0, 0), 0.5, (60, 2)),
            rng.normal((10, 10), 0.5, (60, 2)),
            rng.uniform(-5, 15, (15, 2)),
        ])
        ok, why = _batch_equiv(pts, 1.0, 4)
        assert ok, why

    def test_chain_built_out_of_order(self):
        """Insert a connected chain in random order: clusters must merge
        incrementally into one."""
        rng = np.random.default_rng(2)
        chain = np.c_[np.arange(50) * 0.8, np.zeros(50)]
        order = rng.permutation(50)
        inc = IncrementalDBSCAN(1.0, 2, d=2)
        inc.insert_all(chain[order])
        assert inc.num_clusters == 1

    def test_insertion_merges_two_clusters(self):
        """The signature incremental event: a bridge point merging two
        previously separate clusters."""
        left = np.c_[np.linspace(0, 2, 8), np.zeros(8)]
        right = np.c_[np.linspace(3.5, 5.5, 8), np.zeros(8)]
        inc = IncrementalDBSCAN(0.8, 3, d=2)
        inc.insert_all(np.vstack([left, right]))
        assert inc.num_clusters == 2
        inc.insert(np.array([2.75, 0.0]))  # the bridge
        assert inc.num_clusters == 1

    def test_noise_promoted_to_cluster(self):
        inc = IncrementalDBSCAN(1.0, 3, d=2)
        inc.insert(np.array([0.0, 0.0]))
        inc.insert(np.array([0.5, 0.0]))
        assert inc.num_clusters == 0
        assert (inc.labels == NOISE).all()
        inc.insert(np.array([0.25, 0.3]))  # third point: all three now core
        assert inc.num_clusters == 1
        assert (inc.labels >= 0).all()

    def test_isolated_points_stay_noise(self):
        inc = IncrementalDBSCAN(1.0, 3, d=2)
        for i in range(10):
            inc.insert(np.array([i * 100.0, 0.0]))
        assert inc.num_clusters == 0
        assert (inc.labels == NOISE).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            IncrementalDBSCAN(1.0, 0, d=2)


@st.composite
def insertion_workloads(draw):
    seed = draw(st.integers(0, 10_000))
    n_clumps = draw(st.integers(1, 3))
    per = draw(st.integers(3, 20))
    noise = draw(st.integers(0, 8))
    rng = np.random.default_rng(seed)
    blocks = [
        rng.normal(rng.uniform(-30, 30, 2), draw(st.floats(0.2, 1.5)), (per, 2))
        for _ in range(n_clumps)
    ]
    if noise:
        blocks.append(rng.uniform(-40, 40, (noise, 2)))
    pts = np.vstack(blocks)
    return pts[rng.permutation(len(pts))]


@settings(max_examples=40, deadline=None)
@given(pts=insertion_workloads(), eps=st.floats(0.5, 4.0), minpts=st.integers(2, 5))
def test_incremental_equals_batch_property(pts, eps, minpts):
    """Any insertion order of any workload ends equivalent to batch DBSCAN."""
    ok, why = _batch_equiv(pts, eps, minpts)
    assert ok, why


@settings(max_examples=20, deadline=None)
@given(pts=insertion_workloads(), eps=st.floats(0.5, 4.0), minpts=st.integers(2, 5),
       seed=st.integers(0, 100))
def test_insertion_order_invariance(pts, eps, minpts, seed):
    """Core structure must not depend on insertion order."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(pts))
    a = IncrementalDBSCAN(eps, minpts, d=2)
    a.insert_all(pts)
    b = IncrementalDBSCAN(eps, minpts, d=2)
    b.insert_all(pts[order])
    # Compare via batch equivalence of the full point set.
    labels_b = np.empty(len(pts), dtype=np.int64)
    labels_b[order] = b.labels
    tree = KDTree(pts, leaf_size=8)
    ok, why = clusterings_equivalent(a.labels, labels_b, pts, eps, minpts, tree=tree)
    assert ok, why

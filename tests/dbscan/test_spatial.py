"""Spatial partitioning extension (the paper's future work)."""

import numpy as np
import pytest

from repro.dbscan import (
    SparkDBSCAN,
    SpatialSparkDBSCAN,
    clusterings_equivalent,
    dbscan_sequential,
    spatial_order,
)


@pytest.fixture(scope="module")
def data():
    from repro.data import generate_clustered
    from repro.kdtree import KDTree

    g = generate_clustered(n=2000, num_clusters=5, cluster_std=8.0, seed=3)
    return g, KDTree(g.points)


class TestSpatialOrder:
    def test_is_permutation(self, data):
        g, _ = data
        perm = spatial_order(g.points)
        assert sorted(perm.tolist()) == list(range(g.n))

    def test_neighbors_become_index_local(self, data):
        """After reordering, consecutive indices are spatially closer than
        random pairs on average."""
        g, _ = data
        perm = spatial_order(g.points)
        pts = g.points[perm]
        consecutive = np.linalg.norm(pts[1:] - pts[:-1], axis=1).mean()
        rng = np.random.default_rng(0)
        i, j = rng.integers(0, g.n, 500), rng.integers(0, g.n, 500)
        random_pairs = np.linalg.norm(pts[i] - pts[j], axis=1).mean()
        assert consecutive < random_pairs * 0.5


class TestSpatialSparkDBSCAN:
    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_equivalent_to_sequential(self, data, p):
        g, tree = data
        seq = dbscan_sequential(g.points, 25.0, 5, tree=tree)
        res = SpatialSparkDBSCAN(25.0, 5, num_partitions=p).fit(g.points)
        ok, why = clusterings_equivalent(seq.labels, res.labels, g.points,
                                         25.0, 5, tree=tree)
        assert ok, why

    def test_labels_in_original_order(self, data):
        """The permutation must be undone: same points, same labels as the
        non-spatial version modulo renaming."""
        from repro.dbscan import adjusted_rand_index

        g, tree = data
        plain = SparkDBSCAN(25.0, 5, num_partitions=4).fit(g.points, tree=tree)
        spatial = SpatialSparkDBSCAN(25.0, 5, num_partitions=4).fit(g.points)
        assert adjusted_rand_index(plain.labels, spatial.labels) == pytest.approx(1.0)

    def test_fewer_seeds_than_index_partitioning(self, data):
        """The future-work hypothesis: neighbourhood-aware partitioning
        slashes cross-partition traffic."""
        g, tree = data
        plain = SparkDBSCAN(25.0, 5, num_partitions=8).fit(g.points, tree=tree)
        spatial = SpatialSparkDBSCAN(25.0, 5, num_partitions=8).fit(g.points)
        assert spatial.num_seeds < plain.num_seeds
        assert spatial.num_partial_clusters <= plain.num_partial_clusters

    def test_timings_include_reorder(self, data):
        g, _ = data
        res = SpatialSparkDBSCAN(25.0, 5, num_partitions=4).fit(g.points)
        assert res.timings.setup > 0

"""Spatial partitioning extension (the paper's future work)."""

import numpy as np
import pytest

from repro.dbscan import (
    SparkDBSCAN,
    SpatialSparkDBSCAN,
    clusterings_equivalent,
    dbscan_sequential,
    spatial_order,
)


@pytest.fixture(scope="module")
def data():
    from repro.data import generate_clustered
    from repro.kdtree import KDTree

    g = generate_clustered(n=2000, num_clusters=5, cluster_std=8.0, seed=3)
    return g, KDTree(g.points)


class TestSpatialOrder:
    def test_is_permutation(self, data):
        g, _ = data
        perm = spatial_order(g.points)
        assert sorted(perm.tolist()) == list(range(g.n))

    def test_neighbors_become_index_local(self, data):
        """After reordering, consecutive indices are spatially closer than
        random pairs on average."""
        g, _ = data
        perm = spatial_order(g.points)
        pts = g.points[perm]
        consecutive = np.linalg.norm(pts[1:] - pts[:-1], axis=1).mean()
        rng = np.random.default_rng(0)
        i, j = rng.integers(0, g.n, 500), rng.integers(0, g.n, 500)
        random_pairs = np.linalg.norm(pts[i] - pts[j], axis=1).mean()
        assert consecutive < random_pairs * 0.5


class TestSpatialSparkDBSCAN:
    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_equivalent_to_sequential(self, data, p):
        g, tree = data
        seq = dbscan_sequential(g.points, 25.0, 5, tree=tree)
        res = SpatialSparkDBSCAN(25.0, 5, num_partitions=p).fit(g.points)
        ok, why = clusterings_equivalent(seq.labels, res.labels, g.points,
                                         25.0, 5, tree=tree)
        assert ok, why

    def test_labels_in_original_order(self, data):
        """The permutation must be undone: same points, same labels as the
        non-spatial version modulo renaming."""
        from repro.dbscan import adjusted_rand_index

        g, tree = data
        plain = SparkDBSCAN(25.0, 5, num_partitions=4).fit(g.points, tree=tree)
        spatial = SpatialSparkDBSCAN(25.0, 5, num_partitions=4).fit(g.points)
        assert adjusted_rand_index(plain.labels, spatial.labels) == pytest.approx(1.0)

    def test_fewer_seeds_than_index_partitioning(self, data):
        """The future-work hypothesis: neighbourhood-aware partitioning
        slashes cross-partition traffic."""
        g, tree = data
        plain = SparkDBSCAN(25.0, 5, num_partitions=8).fit(g.points, tree=tree)
        spatial = SpatialSparkDBSCAN(25.0, 5, num_partitions=8).fit(g.points)
        assert spatial.num_seeds < plain.num_seeds
        assert spatial.num_partial_clusters <= plain.num_partial_clusters

    def test_timings_include_reorder(self, data):
        g, _ = data
        res = SpatialSparkDBSCAN(25.0, 5, num_partitions=4).fit(g.points)
        assert res.timings.setup > 0


class TestPartialsRemap:
    """Regression: with ``keep_partials=True`` the partials used to come
    back in the *permuted* index space while ``labels`` are caller-order,
    so indexing labels with a member pointed at an unrelated point."""

    def test_members_carry_their_global_label(self, data):
        g, _ = data
        res = SpatialSparkDBSCAN(25.0, 5, num_partitions=4,
                                 keep_partials=True).fit(g.points)
        assert res.partials
        for c in res.partials:
            # Every member of a surviving partial maps onto exactly the
            # cluster its points were labelled with, in caller order.
            member_labels = {int(res.labels[m]) for m in c.members}
            assert len(member_labels) == 1, (
                f"partial {c.cid} members span labels {member_labels}")
            assert member_labels.pop() >= 0

    def test_perm_attached_and_consistent(self, data):
        g, _ = data
        res = SpatialSparkDBSCAN(25.0, 5, num_partitions=4,
                                 keep_partials=True).fit(g.points)
        assert res.perm is not None
        assert sorted(res.perm.tolist()) == list(range(g.n))
        # lo/hi stay in reordered space: perm[lo:hi] are the actual
        # caller-order indices a partition owned, and every member of a
        # partial must come from its own partition's range.
        for c in res.partials:
            owned = set(res.perm[c.lo:c.hi].tolist())
            assert set(c.members) <= owned

    def test_plain_spark_partials_unaffected(self, data):
        """The non-spatial job has no permutation: members index labels
        directly and ``perm`` stays None."""
        g, tree = data
        res = SparkDBSCAN(25.0, 5, num_partitions=4,
                          keep_partials=True).fit(g.points, tree=tree)
        assert res.perm is None
        for c in res.partials:
            assert all(c.lo <= m < c.hi for m in c.members)

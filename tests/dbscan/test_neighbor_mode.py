"""Batched executor mode (`neighbor_mode="batched"`) must be behaviourally
identical to the paper's per-point loop: same partial clusters (members,
member order, borders, seeds, seed order), same merged labels, and the
same OpCounters — phase A issues exactly one kernel query per owned
point, which is also what the per-point loop does one call at a time.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbscan import SparkDBSCAN, dbscan_sequential, local_dbscan
from repro.dbscan.partial import NEIGHBOR_MODES, OpCounters
from repro.engine.partitioner import IndexRangePartitioner
from repro.kdtree import KDTree


@st.composite
def point_clouds(draw):
    seed = draw(st.integers(0, 10_000))
    n_clumps = draw(st.integers(1, 4))
    per_clump = draw(st.integers(3, 25))
    noise = draw(st.integers(0, 10))
    rng = np.random.default_rng(seed)
    blocks = [
        rng.normal(rng.uniform(-50, 50, 2), draw(st.floats(0.3, 3.0)), (per_clump, 2))
        for _ in range(n_clumps)
    ]
    if noise:
        blocks.append(rng.uniform(-60, 60, (noise, 2)))
    pts = np.vstack(blocks)
    return pts[rng.permutation(len(pts))]


def _identical_partials(a, b):
    assert len(a) == len(b)
    for ca, cb in zip(a, b):
        assert ca.cid == cb.cid
        assert ca.members == cb.members      # order matters: BFS replay
        assert ca.seeds == cb.seeds
        assert ca.borders == cb.borders
        assert (ca.lo, ca.hi) == (cb.lo, cb.hi)


@settings(max_examples=40, deadline=None)
@given(
    pts=point_clouds(),
    p=st.integers(1, 6),
    eps=st.floats(0.5, 8.0),
    minpts=st.integers(2, 6),
    policy=st.sampled_from(("all", "one_per_partition")),
)
def test_batched_partials_identical(pts, p, eps, minpts, policy):
    """Property: partial clusters match per-point exactly, both policies."""
    tree = KDTree(pts, leaf_size=8)
    part = IndexRangePartitioner(len(pts), p)
    for pid in range(p):
        lo, hi = part.range_of(pid)
        per_point = local_dbscan(pid, range(lo, hi), pts, tree, eps, minpts,
                                 part, seed_policy=policy)
        batched = local_dbscan(pid, range(lo, hi), pts, tree, eps, minpts,
                               part, seed_policy=policy, neighbor_mode="batched")
        _identical_partials(per_point, batched)


@settings(max_examples=25, deadline=None)
@given(pts=point_clouds(), p=st.integers(1, 5), eps=st.floats(0.5, 8.0))
def test_batched_op_counters_identical(pts, p, eps):
    """The Section III-B bookkeeping is mode-independent: identical queue,
    hashtable, and seed counts, and range_queries covers each owned point
    exactly once in both modes."""
    tree = KDTree(pts, leaf_size=8)
    part = IndexRangePartitioner(len(pts), p)
    for pid in range(p):
        lo, hi = part.range_of(pid)
        c_pp, c_b = OpCounters(), OpCounters()
        local_dbscan(pid, range(lo, hi), pts, tree, eps, 3, part, counters=c_pp)
        local_dbscan(pid, range(lo, hi), pts, tree, eps, 3, part, counters=c_b,
                     neighbor_mode="batched")
        assert c_pp.__dict__ == c_b.__dict__
        assert c_b.range_queries == hi - lo
        assert c_b.queue_adds == c_b.queue_removes


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def data(self):
        from repro.data import generate_clustered

        g = generate_clustered(n=2500, num_clusters=5, cluster_std=8.0, seed=11)
        return g, KDTree(g.points)

    @pytest.mark.parametrize("p", [1, 3, 8])
    def test_spark_labels_byte_identical(self, data, p):
        g, tree = data
        a = SparkDBSCAN(25.0, 5, num_partitions=p).fit(g.points, tree=tree)
        b = SparkDBSCAN(25.0, 5, num_partitions=p,
                        neighbor_mode="batched").fit(g.points, tree=tree)
        assert a.labels.tobytes() == b.labels.tobytes()

    @pytest.mark.parametrize("impl", ["array", "hashtable"])
    def test_sequential_labels_byte_identical(self, data, impl):
        g, tree = data
        a = dbscan_sequential(g.points, 25.0, 5, tree=tree, impl=impl)
        b = dbscan_sequential(g.points, 25.0, 5, tree=tree, impl=impl,
                              neighbor_mode="batched")
        assert a.labels.tobytes() == b.labels.tobytes()

    def test_pruned_queries_also_identical(self, data):
        """The r1m branch-pruning cap composes with the batched kernel."""
        g, tree = data
        a = SparkDBSCAN(25.0, 5, num_partitions=4, max_neighbors=16).fit(
            g.points, tree=tree)
        b = SparkDBSCAN(25.0, 5, num_partitions=4, max_neighbors=16,
                        neighbor_mode="batched").fit(g.points, tree=tree)
        assert a.labels.tobytes() == b.labels.tobytes()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="neighbor_mode"):
            SparkDBSCAN(1.0, 3, neighbor_mode="warp")
        with pytest.raises(ValueError, match="neighbor_mode"):
            dbscan_sequential(np.zeros((4, 2)), 1.0, 3, neighbor_mode="warp")
        assert NEIGHBOR_MODES == ("per_point", "batched")

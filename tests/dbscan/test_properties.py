"""Property-based DBSCAN tests: the paper's equivalence claim under
arbitrary data, partitioning, and parameters (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbscan import (
    NOISE,
    SparkDBSCAN,
    apply_gid_map,
    clusterings_equivalent,
    dbscan_sequential,
    digest_from_partials,
    local_dbscan,
    merge_edges,
    merge_partials,
    merge_union_find,
)
from repro.engine.partitioner import IndexRangePartitioner
from repro.kdtree import KDTree


@st.composite
def point_clouds(draw):
    """Small 2-D clouds with clumps, to get interesting cluster structure."""
    seed = draw(st.integers(0, 10_000))
    n_clumps = draw(st.integers(1, 4))
    per_clump = draw(st.integers(3, 25))
    noise = draw(st.integers(0, 10))
    rng = np.random.default_rng(seed)
    blocks = [
        rng.normal(rng.uniform(-50, 50, 2), draw(st.floats(0.3, 3.0)), (per_clump, 2))
        for _ in range(n_clumps)
    ]
    if noise:
        blocks.append(rng.uniform(-60, 60, (noise, 2)))
    pts = np.vstack(blocks)
    return pts[rng.permutation(len(pts))]


@settings(max_examples=40, deadline=None)
@given(
    pts=point_clouds(),
    p=st.integers(1, 6),
    eps=st.floats(0.5, 8.0),
    minpts=st.integers(2, 6),
)
def test_parallel_equivalent_to_sequential(pts, p, eps, minpts):
    """The paper's central claim, as a property over random workloads."""
    tree = KDTree(pts, leaf_size=8)
    seq = dbscan_sequential(pts, eps, minpts, tree=tree)
    par = SparkDBSCAN(eps, minpts, num_partitions=p).fit(pts, tree=tree)
    ok, why = clusterings_equivalent(seq.labels, par.labels, pts, eps, minpts, tree=tree)
    assert ok, why


@settings(max_examples=30, deadline=None)
@given(pts=point_clouds(), p=st.integers(2, 6), eps=st.floats(0.5, 8.0))
def test_one_per_partition_policy_is_conservative(pts, p, eps):
    """The literal Algorithm 3 cap never *invents* clustered points: its
    clustered set is a subset of the exact policy's clustered set, and
    core structure is preserved."""
    minpts = 3
    tree = KDTree(pts, leaf_size=8)
    exact = SparkDBSCAN(eps, minpts, num_partitions=p).fit(pts, tree=tree)
    capped = SparkDBSCAN(eps, minpts, num_partitions=p,
                         seed_policy="one_per_partition").fit(pts, tree=tree)
    clustered_exact = exact.labels != NOISE
    clustered_capped = capped.labels != NOISE
    assert (clustered_capped <= clustered_exact).all()


@settings(max_examples=30, deadline=None)
@given(pts=point_clouds(), p=st.integers(1, 6), eps=st.floats(0.5, 8.0),
       minpts=st.integers(2, 6))
def test_partial_clusters_partition_own_members(pts, p, eps, minpts):
    """Invariant: within one partition, partial clusters never share
    members, and every member is in the partition's range."""
    tree = KDTree(pts, leaf_size=8)
    part = IndexRangePartitioner(len(pts), p)
    for pid in range(p):
        lo, hi = part.range_of(pid)
        partials = local_dbscan(pid, range(lo, hi), pts, tree, eps, minpts, part)
        seen: set[int] = set()
        for c in partials:
            assert not (seen & set(c.members))
            seen.update(c.members)
            assert all(lo <= m < hi for m in c.members)
            assert all(not lo <= s < hi for s in c.seeds)


@settings(max_examples=30, deadline=None)
@given(pts=point_clouds(), p=st.integers(1, 6), eps=st.floats(0.5, 8.0),
       minpts=st.integers(2, 6))
def test_merge_is_partition_count_invariant_on_cores(pts, p, eps, minpts):
    """Cluster count must not depend on the number of partitions."""
    tree = KDTree(pts, leaf_size=8)
    one = SparkDBSCAN(eps, minpts, num_partitions=1).fit(pts, tree=tree)
    many = SparkDBSCAN(eps, minpts, num_partitions=p).fit(pts, tree=tree)
    assert one.num_clusters == many.num_clusters
    assert one.num_noise == many.num_noise


def _collected_partials(pts, p, eps, minpts, tree):
    """Partials as the driver sees them: all partitions, founder-sorted
    (the canonical order `CollectPartials` pins after draining)."""
    part = IndexRangePartitioner(len(pts), p)
    partials = []
    for pid in range(p):
        lo, hi = part.range_of(pid)
        partials.extend(local_dbscan(pid, range(lo, hi), pts, tree, eps,
                                     minpts, part))
    partials.sort(key=lambda c: c.members[0])
    return partials


@settings(max_examples=30, deadline=None)
@given(pts=point_clouds(), p=st.integers(1, 6), eps=st.floats(0.5, 8.0),
       minpts=st.integers(2, 6))
def test_edge_merge_equivalent_to_partials_merge(pts, p, eps, minpts):
    """DESIGN.md §11's contract as a property: merging digests and
    re-applying the gid map is byte-identical to merging whole partials."""
    tree = KDTree(pts, leaf_size=8)
    partials = _collected_partials(pts, p, eps, minpts, tree)
    ref = merge_union_find(partials, len(pts))
    plan = merge_edges(digest_from_partials(partials))
    labels = apply_gid_map(partials, plan, len(pts))
    np.testing.assert_array_equal(labels, ref.labels)
    assert plan.num_merges == ref.num_merges
    assert plan.num_global_clusters == ref.num_global_clusters
    assert plan.groups == ref.groups


@settings(max_examples=20, deadline=None)
@given(pts=point_clouds(), p=st.integers(2, 5), eps=st.floats(0.5, 8.0),
       size=st.integers(1, 6))
def test_edge_merge_respects_min_cluster_size(pts, p, eps, size):
    """The r1m small-partial filter must behave identically in both
    merge paths, kept-set and labels alike."""
    minpts = 3
    tree = KDTree(pts, leaf_size=8)
    partials = _collected_partials(pts, p, eps, minpts, tree)
    ref = merge_partials(list(partials), len(pts), min_cluster_size=size)
    plan = merge_edges(digest_from_partials(partials), min_cluster_size=size)
    labels = apply_gid_map(partials, plan, len(pts))
    np.testing.assert_array_equal(labels, ref.labels)
    assert plan.groups == ref.groups


@settings(max_examples=25, deadline=None)
@given(pts=point_clouds(), eps=st.floats(0.5, 8.0), minpts=st.integers(2, 6),
       p=st.integers(2, 5))
def test_union_find_merge_order_invariant(pts, eps, minpts, p):
    """Shuffling the accumulator's partial-cluster arrival order must not
    change the union-find merge outcome."""
    tree = KDTree(pts, leaf_size=8)
    part = IndexRangePartitioner(len(pts), p)
    partials = []
    for pid in range(p):
        lo, hi = part.range_of(pid)
        partials.extend(local_dbscan(pid, range(lo, hi), pts, tree, eps, minpts, part))
    a = merge_partials(list(partials), len(pts))
    rng = np.random.default_rng(0)
    shuffled = [partials[i] for i in rng.permutation(len(partials))]
    b = merge_partials(shuffled, len(pts))
    assert a.num_global_clusters == b.num_global_clusters
    np.testing.assert_array_equal(a.labels == NOISE, b.labels == NOISE)

"""Sequential DBSCAN (Algorithm 1)."""

import numpy as np
import pytest

from repro.dbscan import NOISE, core_point_mask, dbscan_sequential, relabel_canonical
from repro.kdtree import KDTree


class TestBasicBehaviour:
    def test_recovers_generated_clusters(self, blobs_small, blobs_small_tree):
        res = dbscan_sequential(blobs_small.points, 25.0, 5, tree=blobs_small_tree)
        assert res.num_clusters == 3

    def test_noise_identified(self, blobs_small, blobs_small_tree):
        res = dbscan_sequential(blobs_small.points, 25.0, 5, tree=blobs_small_tree)
        true_noise = blobs_small.true_labels == -1
        got_noise = res.labels == NOISE
        # Uniform background noise at this density is isolated: nearly all
        # of it must be flagged.
        agreement = (true_noise == got_noise).mean()
        assert agreement > 0.94

    def test_cluster_membership_matches_ground_truth(self, blobs_small, blobs_small_tree):
        res = dbscan_sequential(blobs_small.points, 25.0, 5, tree=blobs_small_tree)
        # Every discovered cluster maps to exactly one true cluster.
        for cid in range(res.num_clusters):
            members = res.labels == cid
            true_ids = blobs_small.true_labels[members]
            true_ids = true_ids[true_ids >= 0]
            assert np.unique(true_ids).size == 1

    def test_all_points_labelled(self, blobs_small):
        res = dbscan_sequential(blobs_small.points, 25.0, 5)
        assert ((res.labels >= 0) | (res.labels == NOISE)).all()

    def test_everything_noise_with_tiny_eps(self, blobs_small):
        res = dbscan_sequential(blobs_small.points, 1e-9, 5)
        assert res.num_clusters == 0
        assert res.num_noise == blobs_small.n

    def test_single_cluster_with_huge_eps(self, blobs_small):
        res = dbscan_sequential(blobs_small.points, 1e6, 2)
        assert res.num_clusters == 1
        assert res.num_noise == 0

    def test_minpts_one_makes_every_point_core(self, blobs_small):
        res = dbscan_sequential(blobs_small.points, 25.0, 1)
        assert res.num_noise == 0

    def test_timings_populated(self, blobs_small):
        res = dbscan_sequential(blobs_small.points, 25.0, 5)
        assert res.timings.kdtree_build > 0
        assert res.timings.wall >= res.timings.kdtree_build

    def test_prebuilt_tree_skips_build_timing(self, blobs_small, blobs_small_tree):
        res = dbscan_sequential(blobs_small.points, 25.0, 5, tree=blobs_small_tree)
        assert res.timings.kdtree_build == 0.0

    def test_input_validation(self, blobs_small):
        with pytest.raises(ValueError):
            dbscan_sequential(blobs_small.points, 25.0, 0)
        with pytest.raises(ValueError):
            dbscan_sequential(np.zeros(5), 25.0, 5)
        with pytest.raises(ValueError):
            dbscan_sequential(blobs_small.points, 25.0, 5, impl="gpu")


class TestImplementationsAgree:
    """Section III-B ablation: dict+deque vs numpy arrays — same output."""

    def test_array_vs_hashtable_identical(self, blobs_medium, blobs_medium_tree):
        a = dbscan_sequential(blobs_medium.points, 25.0, 5,
                              tree=blobs_medium_tree, impl="array")
        b = dbscan_sequential(blobs_medium.points, 25.0, 5,
                              tree=blobs_medium_tree, impl="hashtable")
        np.testing.assert_array_equal(
            relabel_canonical(a.labels), relabel_canonical(b.labels)
        )

    @pytest.mark.parametrize("minpts", [1, 3, 8])
    def test_agree_across_minpts(self, blobs_small, blobs_small_tree, minpts):
        a = dbscan_sequential(blobs_small.points, 25.0, minpts,
                              tree=blobs_small_tree, impl="array")
        b = dbscan_sequential(blobs_small.points, 25.0, minpts,
                              tree=blobs_small_tree, impl="hashtable")
        np.testing.assert_array_equal(
            relabel_canonical(a.labels), relabel_canonical(b.labels)
        )


class TestClassicShapes:
    """DBSCAN's signature ability: arbitrary-shaped clusters (paper intro)."""

    def test_two_moons_like_curves(self):
        rng = np.random.default_rng(0)
        t = np.linspace(0, np.pi, 300)
        upper = np.c_[np.cos(t), np.sin(t)] * 10 + rng.normal(0, 0.3, (300, 2))
        lower = np.c_[1 - np.cos(t), 0.5 - np.sin(t)] * 10 + rng.normal(0, 0.3, (300, 2))
        pts = np.vstack([upper, lower])
        res = dbscan_sequential(pts, 1.5, 4)
        assert res.num_clusters == 2
        # K-means could never separate these; DBSCAN must.
        assert (res.labels[:300] == res.labels[0]).mean() > 0.98
        assert (res.labels[300:] == res.labels[300]).mean() > 0.98

    def test_ring_around_blob(self):
        rng = np.random.default_rng(1)
        theta = rng.uniform(0, 2 * np.pi, 400)
        ring = np.c_[np.cos(theta), np.sin(theta)] * 20 + rng.normal(0, 0.4, (400, 2))
        blob = rng.normal(0, 1.5, (200, 2))
        res = dbscan_sequential(np.vstack([ring, blob]), 3.0, 4)
        assert res.num_clusters == 2


class TestCorePointMask:
    def test_mask_matches_definition(self, blobs_small, blobs_small_tree):
        mask = core_point_mask(blobs_small.points, 25.0, 5, tree=blobs_small_tree)
        for i in range(0, blobs_small.n, 37):
            expected = blobs_small_tree.query_radius(blobs_small.points[i], 25.0).size >= 5
            assert mask[i] == expected

    def test_core_points_never_noise(self, blobs_small, blobs_small_tree):
        mask = core_point_mask(blobs_small.points, 25.0, 5, tree=blobs_small_tree)
        res = dbscan_sequential(blobs_small.points, 25.0, 5, tree=blobs_small_tree)
        assert (res.labels[mask] >= 0).all()

"""Timings/result dataclass semantics used by every figure."""

import numpy as np

from repro.dbscan import NOISE, ClusteringResult, Timings


class TestTimings:
    def test_driver_time_components(self):
        t = Timings(kdtree_build=1.0, setup=0.5, driver_merge=2.0)
        assert t.driver_time == 3.5

    def test_parallel_wall(self):
        t = Timings(kdtree_build=1.0, driver_merge=1.0, executor_max=4.0)
        assert t.parallel_wall() == 6.0

    def test_defaults_zero(self):
        t = Timings()
        assert t.driver_time == 0.0
        assert t.executor_task_durations == []


class TestClusteringResult:
    def _result(self):
        labels = np.array([0, 0, 1, NOISE, 1, 1, NOISE])
        return ClusteringResult(labels=labels)

    def test_counts(self):
        r = self._result()
        assert r.n == 7
        assert r.num_clusters == 2
        assert r.num_noise == 2

    def test_cluster_sizes(self):
        assert self._result().cluster_sizes() == {0: 2, 1: 3}

    def test_summary_mentions_counts(self):
        s = self._result().summary()
        assert "2 clusters" in s
        assert "2 noise" in s

    def test_all_noise(self):
        r = ClusteringResult(labels=np.full(5, NOISE))
        assert r.num_clusters == 0
        assert r.num_noise == 5
        assert r.cluster_sizes() == {}

    def test_empty(self):
        r = ClusteringResult(labels=np.empty(0, dtype=np.int64))
        assert r.n == 0
        assert r.num_clusters == 0

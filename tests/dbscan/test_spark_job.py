"""SparkDBSCAN end-to-end: equivalence, timing split, partial-cluster stats."""

import numpy as np
import pytest

from repro.dbscan import SparkDBSCAN, clusterings_equivalent, dbscan_sequential
from repro.engine import SparkContext


@pytest.fixture(scope="module")
def seq_result(blobs_medium_module, blobs_medium_tree_module):
    return dbscan_sequential(
        blobs_medium_module.points, 25.0, 5, tree=blobs_medium_tree_module
    )


# Module-scoped clones of the session fixtures (pytest cannot mix scopes
# with the plain names, so re-derive here).
@pytest.fixture(scope="module")
def blobs_medium_module():
    from repro.data import generate_clustered

    return generate_clustered(n=2500, num_clusters=6, cluster_std=8.0, seed=7)


@pytest.fixture(scope="module")
def blobs_medium_tree_module(blobs_medium_module):
    from repro.kdtree import KDTree

    return KDTree(blobs_medium_module.points)


class TestEquivalenceWithSequential:
    """Paper claim (Section V): parallel result == serial result."""

    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_all_policy_exact(self, p, blobs_medium_module, blobs_medium_tree_module, seq_result):
        res = SparkDBSCAN(25.0, 5, num_partitions=p).fit(
            blobs_medium_module.points, tree=blobs_medium_tree_module
        )
        ok, why = clusterings_equivalent(
            seq_result.labels, res.labels, blobs_medium_module.points,
            25.0, 5, tree=blobs_medium_tree_module,
        )
        assert ok, why

    def test_cluster_and_noise_counts_match(self, blobs_medium_module,
                                            blobs_medium_tree_module, seq_result):
        res = SparkDBSCAN(25.0, 5, num_partitions=4).fit(
            blobs_medium_module.points, tree=blobs_medium_tree_module
        )
        assert res.num_clusters == seq_result.num_clusters
        assert res.num_noise == seq_result.num_noise

    def test_one_per_partition_policy_same_clusters_more_noise(
        self, blobs_medium_module, blobs_medium_tree_module, seq_result
    ):
        """The paper-literal seed cap keeps the cluster structure but may
        orphan cross-partition border points (DESIGN.md §4)."""
        res = SparkDBSCAN(25.0, 5, num_partitions=4,
                          seed_policy="one_per_partition").fit(
            blobs_medium_module.points, tree=blobs_medium_tree_module
        )
        assert res.num_clusters == seq_result.num_clusters
        assert res.num_noise >= seq_result.num_noise

    def test_paper_merge_strategy_equivalent_on_dense_clusters(
        self, blobs_medium_module, blobs_medium_tree_module, seq_result
    ):
        res = SparkDBSCAN(25.0, 5, num_partitions=4,
                          merge_strategy="paper").fit(
            blobs_medium_module.points, tree=blobs_medium_tree_module
        )
        ok, why = clusterings_equivalent(
            seq_result.labels, res.labels, blobs_medium_module.points,
            25.0, 5, tree=blobs_medium_tree_module,
        )
        assert ok, why


class TestPartialClusterStats:
    def test_partials_grow_with_partitions(self, blobs_medium_module,
                                           blobs_medium_tree_module):
        """Figure 6's x-axis phenomenon: more cores → more partial clusters."""
        counts = []
        for p in (1, 2, 4, 8):
            res = SparkDBSCAN(25.0, 5, num_partitions=p).fit(
                blobs_medium_module.points, tree=blobs_medium_tree_module
            )
            counts.append(res.num_partial_clusters)
        assert counts[0] <= counts[1] <= counts[2] <= counts[3]
        assert counts[3] > counts[0]

    def test_single_partition_no_seeds(self, blobs_medium_module,
                                       blobs_medium_tree_module):
        res = SparkDBSCAN(25.0, 5, num_partitions=1).fit(
            blobs_medium_module.points, tree=blobs_medium_tree_module
        )
        assert res.num_seeds == 0
        assert res.num_merges == 0

    def test_keep_partials_exposes_them(self, blobs_medium_module,
                                        blobs_medium_tree_module):
        res = SparkDBSCAN(25.0, 5, num_partitions=3, keep_partials=True).fit(
            blobs_medium_module.points, tree=blobs_medium_tree_module
        )
        assert res.partials is not None
        assert len(res.partials) == res.num_partial_clusters
        # Every member index must be inside its cluster's partition range.
        for c in res.partials:
            assert all(c.lo <= m < c.hi for m in c.members)
            assert all(not (c.lo <= s < c.hi) for s in c.seeds)

    def test_partials_not_kept_by_default(self, blobs_medium_module,
                                          blobs_medium_tree_module):
        res = SparkDBSCAN(25.0, 5, num_partitions=2).fit(
            blobs_medium_module.points, tree=blobs_medium_tree_module
        )
        assert res.partials is None


class TestTimingSplit:
    def test_driver_and_executor_times_populated(self, blobs_medium_module):
        res = SparkDBSCAN(25.0, 5, num_partitions=4).fit(blobs_medium_module.points)
        t = res.timings
        assert t.kdtree_build > 0
        assert t.executor_total > 0
        assert t.driver_merge > 0
        assert len(t.executor_task_durations) == 4
        assert t.executor_max <= t.executor_total
        assert t.wall >= t.executor_total * 0.5  # sane magnitude

    def test_parallel_wall_below_serial_total(self, blobs_medium_module):
        res = SparkDBSCAN(25.0, 5, num_partitions=8).fit(blobs_medium_module.points)
        assert res.timings.parallel_wall() < res.timings.wall + 1.0


class TestExecutionModes:
    def test_processes_backend_matches_simulated(self, blobs_medium_module,
                                                 blobs_medium_tree_module):
        sim = SparkDBSCAN(25.0, 5, num_partitions=2).fit(
            blobs_medium_module.points, tree=blobs_medium_tree_module
        )
        proc = SparkDBSCAN(25.0, 5, num_partitions=2, master="processes[2]").fit(
            blobs_medium_module.points
        )
        ok, why = clusterings_equivalent(
            sim.labels, proc.labels, blobs_medium_module.points,
            25.0, 5, tree=blobs_medium_tree_module,
        )
        assert ok, why

    def test_external_context_reused(self, blobs_medium_module, blobs_medium_tree_module):
        with SparkContext("simulated[4]") as sc:
            model = SparkDBSCAN(25.0, 5, num_partitions=4)
            a = model.fit(blobs_medium_module.points, sc=sc,
                          tree=blobs_medium_tree_module)
            b = model.fit(blobs_medium_module.points, sc=sc,
                          tree=blobs_medium_tree_module)
            np.testing.assert_array_equal(a.labels, b.labels)

    def test_deterministic_across_runs(self, blobs_medium_module, blobs_medium_tree_module):
        model = SparkDBSCAN(25.0, 5, num_partitions=4)
        a = model.fit(blobs_medium_module.points, tree=blobs_medium_tree_module)
        b = model.fit(blobs_medium_module.points, tree=blobs_medium_tree_module)
        np.testing.assert_array_equal(a.labels, b.labels)


class TestPruningAndFiltering:
    def test_min_cluster_size_reduces_clusters(self, blobs_medium_module,
                                               blobs_medium_tree_module):
        loose = SparkDBSCAN(25.0, 5, num_partitions=8).fit(
            blobs_medium_module.points, tree=blobs_medium_tree_module
        )
        strict = SparkDBSCAN(25.0, 5, num_partitions=8, min_cluster_size=10).fit(
            blobs_medium_module.points, tree=blobs_medium_tree_module
        )
        assert strict.num_clusters <= loose.num_clusters
        assert strict.num_noise >= loose.num_noise

    def test_max_neighbors_pruning_keeps_major_structure(self, blobs_medium_module,
                                                         blobs_medium_tree_module):
        """The r1m pruning trick: bounded neighbourhoods, roughly the same
        clusters (the paper accepts a small accuracy loss)."""
        from repro.dbscan import adjusted_rand_index

        exact = SparkDBSCAN(25.0, 5, num_partitions=4).fit(
            blobs_medium_module.points, tree=blobs_medium_tree_module
        )
        pruned = SparkDBSCAN(25.0, 5, num_partitions=4, max_neighbors=40).fit(
            blobs_medium_module.points, tree=blobs_medium_tree_module
        )
        assert adjusted_rand_index(exact.labels, pruned.labels) > 0.9


class TestValidationErrors:
    def test_constructor_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SparkDBSCAN(0.0, 5)
        with pytest.raises(ValueError):
            SparkDBSCAN(1.0, 0)
        with pytest.raises(ValueError):
            SparkDBSCAN(1.0, 5, num_partitions=0)
        with pytest.raises(ValueError):
            SparkDBSCAN(1.0, 5, seed_policy="sometimes")
        with pytest.raises(ValueError):
            SparkDBSCAN(1.0, 5, merge_strategy="hope")

    def test_fit_rejects_1d_points(self):
        with pytest.raises(ValueError):
            SparkDBSCAN(1.0, 5).fit(np.zeros(10))

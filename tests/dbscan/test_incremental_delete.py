"""Incremental DBSCAN deletions: demotions, splits, batch equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbscan import NOISE, clusterings_equivalent, dbscan_sequential
from repro.dbscan.incremental import IncrementalDBSCAN
from repro.kdtree import KDTree


def _check_against_batch(model: IncrementalDBSCAN, points: np.ndarray,
                         eps: float, minpts: int) -> tuple[bool, str]:
    """Compare the incremental state with batch DBSCAN on the active set."""
    mask = model.active_mask
    active_points = points[mask]
    if active_points.shape[0] == 0:
        return True, "empty"
    batch = dbscan_sequential(active_points, eps, minpts)
    inc_labels = model.labels[mask]
    tree = KDTree(active_points, leaf_size=8)
    return clusterings_equivalent(
        batch.labels, inc_labels, active_points, eps, minpts, tree=tree
    )


class TestDeletion:
    def test_deleting_bridge_splits_cluster(self):
        """The signature deletion event: removing a bridge point splits
        one cluster back into two."""
        left = np.c_[np.linspace(0, 2, 8), np.zeros(8)]
        right = np.c_[np.linspace(3.5, 5.5, 8), np.zeros(8)]
        bridge = np.array([[2.75, 0.0]])
        pts = np.vstack([left, bridge, right])
        model = IncrementalDBSCAN(0.8, 3, d=2)
        model.insert_all(pts)
        assert model.num_clusters == 1
        model.delete(8)  # the bridge
        assert model.num_clusters == 2
        ok, why = _check_against_batch(model, pts, 0.8, 3)
        assert ok, why

    def test_deleting_core_demotes_borders_to_noise(self):
        # A tight star: center + 3 satellites; only the center is core.
        pts = np.array([[0.0, 0.0], [0.9, 0.0], [-0.9, 0.0], [0.0, 0.9]])
        model = IncrementalDBSCAN(1.0, 4, d=2)
        model.insert_all(pts)
        assert model.num_clusters == 1
        model.delete(0)  # the only core point
        assert model.num_clusters == 0
        assert (model.labels[model.active_mask] == NOISE).all()

    def test_deleting_noise_changes_nothing(self):
        rng = np.random.default_rng(0)
        blob = rng.normal(0, 0.4, (30, 2))
        outlier = np.array([[50.0, 50.0]])
        pts = np.vstack([blob, outlier])
        model = IncrementalDBSCAN(1.0, 4, d=2)
        model.insert_all(pts)
        before = model.labels[:30].copy()
        model.delete(30)
        np.testing.assert_array_equal(model.labels[:30], before)

    def test_delete_then_reinsert_restores_cluster(self):
        left = np.c_[np.linspace(0, 2, 8), np.zeros(8)]
        right = np.c_[np.linspace(3.5, 5.5, 8), np.zeros(8)]
        bridge = np.array([2.75, 0.0])
        model = IncrementalDBSCAN(0.8, 3, d=2)
        model.insert_all(np.vstack([left, right]))
        bi = model.insert(bridge)
        assert model.num_clusters == 1
        model.delete(bi)
        assert model.num_clusters == 2
        model.insert(bridge)
        assert model.num_clusters == 1

    def test_double_delete_rejected(self):
        model = IncrementalDBSCAN(1.0, 2, d=2)
        model.insert(np.zeros(2))
        model.delete(0)
        with pytest.raises(KeyError):
            model.delete(0)

    def test_delete_everything(self):
        rng = np.random.default_rng(1)
        pts = rng.normal(0, 0.5, (20, 2))
        model = IncrementalDBSCAN(1.0, 3, d=2)
        model.insert_all(pts)
        for i in range(20):
            model.delete(i)
        assert model.num_clusters == 0
        assert not model.active_mask.any()


@st.composite
def churn_workloads(draw):
    """Insert a workload, then delete a random subset."""
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    n_clumps = draw(st.integers(1, 3))
    per = draw(st.integers(4, 15))
    blocks = [
        rng.normal(rng.uniform(-25, 25, 2), draw(st.floats(0.3, 1.2)), (per, 2))
        for _ in range(n_clumps)
    ]
    blocks.append(rng.uniform(-30, 30, (draw(st.integers(0, 6)), 2)))
    pts = np.vstack(blocks)
    pts = pts[rng.permutation(len(pts))]
    n_del = draw(st.integers(0, min(10, len(pts) - 1)))
    deletions = rng.choice(len(pts), size=n_del, replace=False).tolist()
    return pts, deletions


@settings(max_examples=30, deadline=None)
@given(workload=churn_workloads(), eps=st.floats(0.6, 3.0), minpts=st.integers(2, 5))
def test_insert_delete_churn_equals_batch(workload, eps, minpts):
    """After arbitrary insert-then-delete churn, the incremental state is
    equivalent to batch DBSCAN over the surviving points."""
    pts, deletions = workload
    model = IncrementalDBSCAN(eps, minpts, d=2)
    model.insert_all(pts)
    for idx in deletions:
        model.delete(int(idx))
    ok, why = _check_against_batch(model, pts, eps, minpts)
    assert ok, why

"""Driver-side merging (Algorithm 4): union-find vs the literal single pass."""

import numpy as np
import pytest

from repro.dbscan import (
    NOISE,
    PartialCluster,
    UnionFind,
    merge_paper,
    merge_partials,
    merge_union_find,
)


def pc(partition, local_id, lo, hi, members, seeds=()):
    return PartialCluster(partition, local_id, lo, hi,
                          members=list(members), seeds=list(seeds))


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(5)
        assert uf.components == 5
        assert len({uf.find(i) for i in range(5)}) == 5

    def test_union_reduces_components(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert not uf.union(0, 1)  # already joined
        assert uf.components == 3

    def test_transitive(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.find(0) == uf.find(2)
        assert uf.find(3) != uf.find(0)


class TestPaperFigure4:
    """The worked example from the paper (5000 points, 2 partitions)."""

    def _partials(self):
        c0 = pc(0, 0, 0, 2500, [0, 5, 6, 11, 223, 2300, 23, 45, 1000], seeds=[3000])
        c5 = pc(1, 0, 2500, 5000, [3000, 2501, 4200, 2800, 2600, 3401, 3678])
        return [c0, c5]

    def test_union_find_merges_them(self):
        out = merge_union_find(self._partials(), 5000)
        assert out.num_global_clusters == 1
        assert out.num_merges == 1
        # All elements of both partial clusters share a label (Figure 4b).
        members = [0, 5, 6, 11, 223, 2300, 23, 45, 1000,
                   3000, 2501, 4200, 2800, 2600, 3401, 3678]
        assert np.unique(out.labels[members]).size == 1

    def test_paper_strategy_agrees_on_simple_case(self):
        a = merge_union_find(self._partials(), 5000)
        b = merge_paper(self._partials(), 5000)
        assert b.num_global_clusters == 1
        np.testing.assert_array_equal(a.labels >= 0, b.labels >= 0)

    def test_unmentioned_points_are_noise(self):
        out = merge_union_find(self._partials(), 5000)
        assert out.labels[1] == NOISE
        assert out.labels[4999] == NOISE


class TestMergeChains:
    """A→B→C chains: union-find closes them; Algorithm 4's single pass
    does not re-follow absorbed masters' seeds (Ablation B)."""

    def _chain(self):
        # Partition layout: [0,10), [10,20), [20,30).
        a = pc(0, 0, 0, 10, [0, 1, 2], seeds=[10])       # touches B
        b = pc(1, 0, 10, 20, [10, 11], seeds=[20])       # touches C
        c = pc(2, 0, 20, 30, [20, 21, 22])
        return [a, b, c]

    def test_union_find_closes_chain(self):
        out = merge_union_find(self._chain(), 30)
        assert out.num_global_clusters == 1
        assert np.unique(out.labels[[0, 10, 20]]).size == 1

    def test_paper_single_pass_closes_this_chain_by_order(self):
        # Processing order a, b, c: a absorbs b; c was already absorbed?
        # No: a's seed digs b only.  b's seeds are not re-dug, so c stays
        # separate — the documented limitation.
        out = merge_paper(self._chain(), 30)
        assert out.num_global_clusters == 2
        assert out.labels[0] == out.labels[10]
        assert out.labels[20] != out.labels[0]

    def test_reverse_chain_order_changes_paper_result(self):
        """Order sensitivity: with C processed first the chain closes
        differently — union-find is order-invariant."""
        chain = list(reversed(self._chain()))
        paper = merge_paper(chain, 30)
        uf = merge_union_find(chain, 30)
        assert uf.num_global_clusters == 1
        assert paper.num_global_clusters >= uf.num_global_clusters

    def test_bidirectional_seeds_close_in_single_pass(self):
        """When every piece seeds back (the common case for core-dense
        clusters), even the single pass converges."""
        a = pc(0, 0, 0, 10, [0, 1], seeds=[10])
        b = pc(1, 0, 10, 20, [10, 11], seeds=[0, 20])
        c = pc(2, 0, 20, 30, [20, 21], seeds=[10])
        for order in ([a, b, c], [c, b, a], [b, a, c]):
            out = merge_paper([pc(x.partition, x.local_id, x.lo, x.hi,
                                  x.members, x.seeds) for x in order], 30)
            assert out.num_global_clusters == 1, f"order {[x.cid for x in order]}"


class TestOverlappingPointsDiagnostic:
    """`MergeOutcome.overlapping_points` counts the merge evidence the
    single pass left unfollowed — a core member of one global cluster
    that is simultaneously a seed of a different one."""

    def _chain(self):
        a = pc(0, 0, 0, 10, [0, 1, 2], seeds=[10])
        b = pc(1, 0, 10, 20, [10, 11], seeds=[20])
        c = pc(2, 0, 20, 30, [20, 21, 22])
        return [a, b, c]

    def test_split_chain_is_counted(self):
        """b's seed 20 is a core member of c, but {a,b} and {c} end up as
        different global clusters — exactly one overlapping point."""
        out = merge_paper(self._chain(), 30)
        assert out.num_global_clusters == 2
        assert out.overlapping_points == 1

    def test_union_find_reports_zero(self):
        """Union-find merges every such edge, so the diagnostic is 0."""
        out = merge_union_find(self._chain(), 30)
        assert out.overlapping_points == 0

    def test_fully_merged_paper_pass_reports_zero(self):
        a = pc(0, 0, 0, 10, [0, 1], seeds=[10])
        b = pc(1, 0, 10, 20, [10, 11], seeds=[0])
        out = merge_paper([a, b], 20)
        assert out.num_global_clusters == 1
        assert out.overlapping_points == 0

    def test_border_seed_does_not_count(self):
        """A seed that is only a *border* member elsewhere is legal DBSCAN
        sharing, not a missed merge."""
        a = pc(0, 0, 0, 10, [0, 1, 2], seeds=[10])
        b = pc(1, 0, 10, 20, [10, 11])
        b.borders.add(10)  # 10 is a non-core member of b
        out = merge_paper([a, b], 20)
        assert out.num_global_clusters == 2
        assert out.overlapping_points == 0

    def test_distinct_points_counted_once(self):
        """A repeated seed entry for the same point counts once; two
        distinct unfollowed core seeds count twice."""
        a = pc(0, 0, 0, 10, [0, 1, 2], seeds=[10])
        b = pc(1, 0, 10, 20, [10, 11], seeds=[20, 20])
        c = pc(2, 0, 20, 30, [20, 21, 22])
        assert merge_paper([a, b, c], 30).overlapping_points == 1
        b2 = pc(1, 0, 10, 20, [10, 11], seeds=[20, 21])
        assert merge_paper([a, b2, c], 30).overlapping_points == 2


class TestBorderSeeds:
    def test_unowned_seed_becomes_border_member(self):
        # Seed 15 is nobody's regular member (non-core in its home
        # partition) — it must still join the cluster as a border point.
        a = pc(0, 0, 0, 10, [0, 1], seeds=[15])
        b = pc(1, 0, 10, 20, [11, 12])  # 15 not a member
        out = merge_union_find([a, b], 20)
        assert out.labels[15] == out.labels[0]
        assert out.num_global_clusters == 2

    def test_contested_border_first_wins(self):
        a = pc(0, 0, 0, 10, [0, 1], seeds=[25])
        b = pc(1, 0, 10, 20, [10, 11], seeds=[25])
        out = merge_union_find([a, b], 30)
        assert out.labels[25] in (out.labels[0], out.labels[10])
        assert out.num_global_clusters == 2


class TestMergePartialsAPI:
    def test_min_cluster_size_filters(self):
        tiny = pc(0, 0, 0, 10, [3])
        big = pc(1, 0, 10, 20, [10, 11, 12, 13])
        out = merge_partials([tiny, big], 20, min_cluster_size=3)
        assert out.labels[3] == NOISE  # filtered away (paper's r1m trick)
        assert out.labels[10] >= 0

    def test_min_cluster_size_groups_index_original_list(self):
        """Regression: with ``min_cluster_size`` filtering, ``groups``
        used to index the *filtered* partials list, so every group id
        after a dropped partial pointed at the wrong cluster."""
        tiny = pc(0, 0, 0, 10, [3])  # filtered out (size 1 < 2)
        a = pc(1, 0, 10, 20, [10, 11], seeds=[20])
        b = pc(2, 0, 20, 30, [20, 21])
        out = merge_partials([tiny, a, b], 30, min_cluster_size=2)
        # a and b merge; their group must name indices 1 and 2 of the
        # caller's list, not 0 and 1 of the filtered one.
        assert out.groups == [[1, 2]]
        assert out.labels[10] == out.labels[20]
        assert out.labels[3] == NOISE

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            merge_partials([], 0, strategy="magic")

    def test_empty_input(self):
        out = merge_partials([], 10)
        assert out.num_global_clusters == 0
        assert (out.labels == NOISE).all()

    def test_many_partials_single_partition_stay_separate(self):
        partials = [pc(0, i, 0, 100, [i * 10, i * 10 + 1]) for i in range(5)]
        out = merge_partials(partials, 100)
        assert out.num_global_clusters == 5

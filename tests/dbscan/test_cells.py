"""Cell partitioning primitives: grid binning, adjacency, LPT balance,
eps-halo completeness, and the per-partition SEED expansion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import generate_clustered, generate_skewed
from repro.dbscan.cells import (
    CellGrid,
    balance_cells,
    build_cell_assignment,
    cell_local_dbscan,
)
from repro.kdtree import KDTree


def brute_adjacent_pairs(cells: np.ndarray) -> set[tuple[int, int]]:
    cheb = np.abs(cells[:, None, :] - cells[None, :, :]).max(axis=2)
    return {
        (int(i), int(j))
        for i, j in zip(*np.nonzero(cheb <= 1))
        if i != j
    }


class TestCellGrid:
    def test_binning_partitions_the_points(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 100, (300, 3))
        grid = CellGrid(pts, eps=10.0)
        assert int(grid.counts.sum()) == 300
        seen = np.concatenate(grid.cell_points)
        assert sorted(seen.tolist()) == list(range(300))
        for ci, idx in enumerate(grid.cell_points):
            # Ascending global index within each cell (the determinism
            # contract), and every point binned to its own coordinates.
            assert (np.diff(idx) > 0).all() or len(idx) <= 1
            want = np.floor(pts[idx] / 10.0).astype(np.int64)
            assert (want == grid.cells[ci]).all()

    def test_empty(self):
        grid = CellGrid(np.empty((0, 2)), eps=1.0)
        assert grid.num_cells == 0
        assert list(grid.adjacent_pairs()) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            CellGrid(np.zeros((3, 2)), eps=0.0)
        with pytest.raises(ValueError):
            CellGrid(np.zeros(3), eps=1.0)

    def test_adjacency_offset_strategy_matches_brute_force(self):
        # d=2, many occupied cells: 3^2 = 9 <= m picks the offset-dict
        # enumeration.
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 60, (400, 2))
        grid = CellGrid(pts, eps=5.0)
        assert 3 ** grid.d <= grid.num_cells
        assert set(grid.adjacent_pairs()) == brute_adjacent_pairs(grid.cells)

    def test_adjacency_scan_strategy_matches_brute_force(self):
        # d=10: 3^10 = 59 049 offsets dwarf the occupied-cell count, so
        # the blocked vectorised scan runs instead.
        g = generate_skewed(400, d=10, seed=2)
        grid = CellGrid(g.points, eps=25.0)
        assert 3 ** grid.d > grid.num_cells
        assert set(grid.adjacent_pairs()) == brute_adjacent_pairs(grid.cells)


class TestBalanceCells:
    def test_deterministic_and_complete(self):
        rng = np.random.default_rng(3)
        counts = rng.integers(1, 50, 40)
        a = balance_cells(counts, 4)
        b = balance_cells(counts, 4)
        np.testing.assert_array_equal(a, b)
        assert set(np.unique(a)) <= set(range(4))

    def test_lpt_bound(self):
        """Greedy LPT: no partition exceeds the average load by more
        than one cell's worth of points."""
        rng = np.random.default_rng(4)
        counts = rng.integers(1, 100, 60)
        pid = balance_cells(counts, 5)
        loads = np.bincount(pid, weights=counts, minlength=5)
        assert loads.max() <= counts.sum() / 5 + counts.max()

    def test_single_partition(self):
        assert (balance_cells(np.array([3, 1, 2]), 1) == 0).all()


class TestHalo:
    @pytest.mark.parametrize("data", [
        generate_clustered(300, seed=5),
        generate_skewed(300, d=10, seed=6, shuffle=False),
    ])
    def test_halo_completes_every_owned_neighborhood(self, data):
        """The load-bearing invariant: every owned point's eps-ball is a
        subset of (owned + halo), so executor-local core status and
        memberships equal the global computation."""
        eps = 25.0
        a = build_cell_assignment(data.points, eps, 4)
        tree = KDTree(data.points)
        for p in range(a.num_partitions):
            visible = set(a.owned[p].tolist()) | set(a.halo[p].tolist())
            for i in a.owned[p]:
                ball = tree.query_radius(data.points[i], eps)
                assert set(ball.tolist()) <= visible
        # Ownership is a partition of 0..n-1; halos never overlap it.
        all_owned = np.concatenate(a.owned)
        assert sorted(all_owned.tolist()) == list(range(a.n))
        for p in range(a.num_partitions):
            assert not set(a.halo[p].tolist()) & set(a.owned[p].tolist())

    def test_halo_home_names_the_owner(self):
        data = generate_clustered(200, seed=7)
        a = build_cell_assignment(data.points, 25.0, 3)
        part = a.to_partitioner()
        for p in range(a.num_partitions):
            for g, home in zip(a.halo[p], a.halo_home[p]):
                assert part.partition(int(g)) == int(home)
                assert int(home) != p

    def test_exact_eps_point_lands_in_halo(self):
        """A point at exactly distance eps across a cell boundary must
        be replicated (the HALO_SLACK guarantee)."""
        eps = 1.0
        pts = np.array([[0.5, 0.0], [1.5, 0.0], [10.0, 10.0], [10.5, 10.0]])
        a = build_cell_assignment(pts, eps, 2)
        part = a.to_partitioner()
        if part.partition(0) != part.partition(1):
            p0 = part.partition(0)
            assert 1 in a.halo[p0].tolist()

    def test_single_partition_has_no_halo(self):
        data = generate_clustered(100, seed=8)
        a = build_cell_assignment(data.points, 25.0, 1)
        assert a.halo_points_total == 0
        assert len(a.owned[0]) == a.n


class TestCellLocalDBSCAN:
    def payloads(self, n=250, partitions=3, eps=25.0, seed=9):
        data = generate_clustered(n, seed=seed)
        a = build_cell_assignment(data.points, eps, partitions)
        return data.points, a, a.payloads(data.points)

    def test_partials_are_locally_consistent(self):
        pts, a, payloads = self.payloads()
        tree = KDTree(pts)
        for payload in payloads:
            owned = set(payload.owned_ids.tolist())
            halo = set(payload.halo_ids.tolist())
            for c in cell_local_dbscan(payload, 25.0, 5):
                # Members are owned; seeds live in the halo; the founder
                # is the smallest *core* member (borders claimed by the
                # cluster may carry smaller ids) and is globally core.
                assert set(c.members) <= owned
                assert set(c.seeds) <= halo
                cores = [m for m in c.members if m not in c.borders]
                assert c.members[0] == min(cores)
                assert tree.query_radius(pts[c.members[0]], 25.0).size >= 5

    def test_batched_equals_per_point(self):
        pts, a, payloads = self.payloads()
        for payload in payloads:
            batched = cell_local_dbscan(payload, 25.0, 5,
                                        neighbor_mode="batched")
            per_point = cell_local_dbscan(payload, 25.0, 5,
                                          neighbor_mode="per_point")
            assert [c.members for c in batched] == \
                [c.members for c in per_point]
            assert [c.seeds for c in batched] == \
                [c.seeds for c in per_point]
            assert [c.borders for c in batched] == \
                [c.borders for c in per_point]

    def test_empty_partition(self):
        pts, a, payloads = self.payloads(partitions=3)
        empty = payloads[0]
        empty.owned_ids = empty.owned_ids[:0]
        empty.owned_points = empty.owned_points[:0]
        assert cell_local_dbscan(empty, 25.0, 5) == []

    def test_validation(self):
        _, _, payloads = self.payloads(n=50)
        with pytest.raises(ValueError):
            cell_local_dbscan(payloads[0], 25.0, 5, seed_policy="bogus")
        with pytest.raises(ValueError):
            cell_local_dbscan(payloads[0], 25.0, 5, neighbor_mode="bogus")


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(0, 120),
    d=st.integers(1, 3),
    partitions=st.integers(1, 5),
    eps=st.floats(0.5, 3.0),
)
def test_halo_completeness_property(seed, n, d, partitions, eps):
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, 10, (n, d))
    a = build_cell_assignment(pts, eps, partitions)
    assert a.n == n
    if n == 0:
        return
    tree = KDTree(pts)
    for p in range(a.num_partitions):
        visible = set(a.owned[p].tolist()) | set(a.halo[p].tolist())
        for i in a.owned[p]:
            ball = tree.query_radius(pts[i], eps)
            assert set(ball.tolist()) <= visible

"""Full-pipeline integration: HDFS file → RDD → parse → SEED DBSCAN → merge.

This is Algorithm 2 end-to-end as the paper describes the deployment:
data lives in HDFS, the Spark driver reads and transforms it into Point
RDDs, executors cluster, the driver merges.
"""

import numpy as np
import pytest

from repro.data import generate_clustered, parse_point_line, save_points
from repro.dbscan import (
    SparkDBSCAN,
    clusterings_equivalent,
    dbscan_sequential,
    local_dbscan,
    merge_partials,
)
from repro.engine import LIST_CONCAT, FaultPlan, SparkContext
from repro.engine.partitioner import IndexRangePartitioner
from repro.hdfs import MiniHDFS
from repro.kdtree import KDTree


@pytest.fixture(scope="module")
def workload():
    g = generate_clustered(n=1200, num_clusters=4, cluster_std=8.0, seed=21)
    tree = KDTree(g.points)
    seq = dbscan_sequential(g.points, 25.0, 5, tree=tree)
    return g, tree, seq


class TestHdfsToClusters:
    def test_full_pipeline(self, workload, tmp_path):
        g, tree, seq = workload
        # 1. Stage the dataset in HDFS (small blocks to force multiple splits).
        local = tmp_path / "points.txt"
        save_points(str(local), g.points)
        fs = MiniHDFS(str(tmp_path / "hdfs"), block_size=32 * 1024,
                      replication=2, num_datanodes=3)
        fs.put_local_file(str(local), "/data/points.txt")

        with SparkContext("simulated[4]") as sc:
            # 2. Read from HDFS and transform into points (Algorithm 2, 1-2).
            lines = sc.from_source(fs.open("/data/points.txt"))
            pts_rdd = lines.map(parse_point_line)
            points = np.vstack(pts_rdd.collect())
            np.testing.assert_allclose(points, g.points, rtol=1e-11)

            # 3-6. Cluster with the SEED algorithm.
            res = SparkDBSCAN(25.0, 5, num_partitions=4).fit(points, sc=sc)

        ok, why = clusterings_equivalent(seq.labels, res.labels, g.points,
                                         25.0, 5, tree=tree)
        assert ok, why

    def test_pipeline_survives_datanode_failure(self, workload, tmp_path):
        g, _tree, _seq = workload
        local = tmp_path / "p.txt"
        save_points(str(local), g.points)
        fs = MiniHDFS(str(tmp_path / "hdfs"), block_size=16 * 1024,
                      replication=2, num_datanodes=3)
        fs.put_local_file(str(local), "/p.txt")
        fs.kill_datanode(1)
        with SparkContext("simulated[2]") as sc:
            lines = sc.from_source(fs.open("/p.txt"))
            assert lines.count() == g.n


class TestExecutorFaultRecovery:
    def test_dbscan_job_survives_task_crashes(self, workload):
        """An executor task that dies twice must recompute via lineage and
        still deliver exactly-once partial clusters."""
        g, tree, seq = workload
        with SparkContext("simulated[4]") as sc:
            sc.fault_plan = FaultPlan(fail_attempts={(-1, 1): 2, (-1, 3): 1})
            res = SparkDBSCAN(25.0, 5, num_partitions=4).fit(
                g.points, sc=sc, tree=tree
            )
        ok, why = clusterings_equivalent(seq.labels, res.labels, g.points,
                                         25.0, 5, tree=tree)
        assert ok, why
        assert res.num_partial_clusters == SparkDBSCAN(
            25.0, 5, num_partitions=4
        ).fit(g.points, tree=tree).num_partial_clusters

    def test_straggler_does_not_change_results(self, workload):
        g, tree, seq = workload
        with SparkContext("simulated[4]") as sc:
            sc.fault_plan = FaultPlan(delays={(-1, 0): 0.05})
            res = SparkDBSCAN(25.0, 5, num_partitions=4).fit(
                g.points, sc=sc, tree=tree
            )
            # The straggler is visible in the timing split...
            assert max(res.timings.executor_task_durations) >= 0.05
        # ...but not in the clustering.
        ok, why = clusterings_equivalent(seq.labels, res.labels, g.points,
                                         25.0, 5, tree=tree)
        assert ok, why


class TestManualAlgorithm2Assembly:
    """Drive Algorithm 2 by hand against the engine primitives, proving
    the SparkDBSCAN class has no hidden magic."""

    def test_hand_rolled_job_matches_class(self, workload):
        g, tree, seq = workload
        n = g.n
        p = 4
        partitioner = IndexRangePartitioner(n, p)
        with SparkContext("simulated[4]") as sc:
            tree_b = sc.broadcast(tree)
            acc = sc.accumulator(LIST_CONCAT)

            def executor_side(pid, it):
                t = tree_b.value
                acc.add(local_dbscan(pid, it, t.points, t, 25.0, 5, partitioner))

            sc.parallelize(range(n), p).foreach_partition_with_index(executor_side)
            outcome = merge_partials(list(acc.value), n)

        ok, why = clusterings_equivalent(seq.labels, outcome.labels, g.points,
                                         25.0, 5, tree=tree)
        assert ok, why

"""Cross-substrate integration: every layer of the stack in one flow.

Exercises the complete deployment story the paper describes plus the
repo's extensions: data generated → persisted to HDFS → read as an RDD
with processes-backend executors → clustered by the SEED algorithm →
labels validated → new points assigned by the predictor → the stream
layer keeps counting while incremental DBSCAN ingests late arrivals.
"""

import numpy as np
import pytest

from repro.data import generate_clustered, parse_point_line, save_points
from repro.dbscan import (
    DBSCANPredictor,
    IncrementalDBSCAN,
    SparkDBSCAN,
    clusterings_equivalent,
    dbscan_sequential,
)
from repro.engine import SparkContext, StreamingContext
from repro.hdfs import MiniHDFS
from repro.kdtree import KDTree

EPS, MINPTS = 25.0, 5


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("world")
    g = generate_clustered(n=900, num_clusters=3, cluster_std=8.0, seed=31)
    local = tmp / "points.txt"
    save_points(str(local), g.points)
    fs = MiniHDFS(str(tmp / "hdfs"), block_size=16 * 1024, replication=2,
                  num_datanodes=3)
    fs.put_local_file(str(local), "/data/points.txt")
    return g, fs


def test_full_stack_with_process_executors(world):
    g, fs = world
    with SparkContext("processes[2]") as sc:
        lines = sc.from_source(fs.open("/data/points.txt"))
        points = np.vstack(lines.map(parse_point_line).collect())
        result = SparkDBSCAN(EPS, MINPTS, num_partitions=2).fit(points, sc=sc)
    tree = KDTree(g.points)
    seq = dbscan_sequential(g.points, EPS, MINPTS, tree=tree)
    ok, why = clusterings_equivalent(seq.labels, result.labels, g.points,
                                     EPS, MINPTS, tree=tree)
    assert ok, why

    # Predictor over the fitted model classifies fresh samples sensibly.
    pred = DBSCANPredictor(g.points, result.labels, EPS, MINPTS, tree=tree)
    center_label = pred.predict_one(g.clusters[0].center)
    assert center_label >= 0
    assert pred.predict_one(np.full(10, 1e7)) == -1


def test_streaming_feed_into_incremental(world):
    g, _fs = world
    inc = IncrementalDBSCAN(EPS, MINPTS, d=10)
    with SparkContext("simulated[2]") as sc:
        ssc = StreamingContext(sc, num_partitions=2)
        batches = [g.points[i : i + 300].tolist() for i in range(0, g.n, 300)]
        stream = ssc.queue_stream(batches)
        counts: list[list[tuple[str, int]]] = []
        stream.map(lambda _p: ("points", 1)).window(10).reduce_by_key(
            lambda a, b: a + b
        ).collect_batches(counts)
        stream.foreach_rdd(
            lambda _i, rdd: [inc.insert(np.asarray(p)) for p in rdd.collect()]
        )
        ssc.run(len(batches))
    assert counts[-1] == [("points", g.n)]
    # The incremental view matches batch DBSCAN over everything seen.
    seq = dbscan_sequential(g.points, EPS, MINPTS)
    ok, why = clusterings_equivalent(seq.labels, inc.labels, g.points, EPS, MINPTS)
    assert ok, why

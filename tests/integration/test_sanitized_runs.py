"""Sanitized runs must change *nothing* but the checking.

The acceptance bar for ``--sanitize``: a full SparkDBSCAN run under the
sanitizers produces labels byte-identical to the unsanitized run — and
stays byte-identical under fault injection, speculation, and retries
(retry determinism: recomputation via lineage is a pure function of the
partition).
"""

import numpy as np
import pytest

from repro.data import generate_clustered
from repro.dbscan import NaiveSparkDBSCAN, SparkDBSCAN, SpatialSparkDBSCAN
from repro.engine import FaultPlan, SparkContext
from repro.kdtree import KDTree


@pytest.fixture(scope="module")
def workload():
    g = generate_clustered(n=400, num_clusters=3, cluster_std=8.0, seed=7)
    tree = KDTree(g.points)
    return g, tree


class TestSanitizedEqualsPlain:
    def test_spark_dbscan_labels_byte_identical(self, workload):
        g, tree = workload
        plain = SparkDBSCAN(25.0, 5, num_partitions=4).fit(g.points, tree=tree)
        sanitized = SparkDBSCAN(25.0, 5, num_partitions=4, sanitize=True).fit(
            g.points, tree=tree
        )
        assert sanitized.labels.tobytes() == plain.labels.tobytes()
        assert sanitized.num_partial_clusters == plain.num_partial_clusters

    def test_spatial_labels_byte_identical(self, workload):
        g, _ = workload
        plain = SpatialSparkDBSCAN(25.0, 5, num_partitions=4).fit(g.points)
        sanitized = SpatialSparkDBSCAN(
            25.0, 5, num_partitions=4, sanitize=True
        ).fit(g.points)
        assert sanitized.labels.tobytes() == plain.labels.tobytes()

    def test_naive_labels_byte_identical(self, workload):
        g, _ = workload
        plain = NaiveSparkDBSCAN(25.0, 5, num_partitions=2).fit(g.points)
        sanitized = NaiveSparkDBSCAN(25.0, 5, num_partitions=2, sanitize=True).fit(
            g.points
        )
        assert sanitized.labels.tobytes() == plain.labels.tobytes()

    @pytest.mark.parametrize("master", ["threads[4]", "processes[2]"])
    def test_real_backends_equivalent(self, workload, master):
        # Parallel backends renumber clusters run-to-run (outcome
        # arrival order into the accumulator), with or without the
        # sanitizer — so the cross-backend bar is clustering
        # equivalence; byte identity is asserted on the deterministic
        # substrate above.
        from repro.dbscan import clusterings_equivalent

        g, tree = workload
        ref = SparkDBSCAN(25.0, 5, num_partitions=4).fit(g.points, tree=tree)
        with SparkContext(master, sanitize=True) as sc:
            res = SparkDBSCAN(25.0, 5, num_partitions=4).fit(
                g.points, sc=sc, tree=tree
            )
        ok, why = clusterings_equivalent(
            ref.labels, res.labels, g.points, 25.0, 5, tree=tree
        )
        assert ok, why

    def test_no_findings_on_clean_run(self, workload):
        g, tree = workload
        with SparkContext("threads[4]", sanitize=True) as sc:
            SparkDBSCAN(25.0, 5, num_partitions=4).fit(g.points, sc=sc, tree=tree)
            assert sc.sanitizer.finalize() == []


class TestRetryDeterminism:
    def test_faults_and_speculation_under_sanitize(self, workload):
        """Property: for every (fault plan x speculation) configuration
        the sanitized labels are byte-identical to the unsanitized run
        of the *same* configuration, and equivalent to the sequential
        clustering.  (Retries can renumber cluster IDs — arrival order
        into the accumulator shifts — so the cross-configuration check
        is equivalence, not byte equality; the sanitize bit must never
        move a single byte.)"""
        from repro.dbscan import clusterings_equivalent, dbscan_sequential

        g, tree = workload
        seq = dbscan_sequential(g.points, 25.0, 5)
        plans = [
            lambda: FaultPlan(),
            lambda: FaultPlan(fail_attempts={(-1, 1): 2, (-1, 3): 1}),
            lambda: FaultPlan(fail_attempts={(-1, 0): 1}, delays={(-1, 2): 0.05}),
        ]
        for make_plan in plans:
            for speculation in (False, True):
                labels = {}
                for sanitize in (False, True):
                    with SparkContext(
                        "simulated[4]", sanitize=sanitize, speculation=speculation
                    ) as sc:
                        sc.fault_plan = make_plan()
                        res = SparkDBSCAN(25.0, 5, num_partitions=4).fit(
                            g.points, sc=sc, tree=tree
                        )
                        labels[sanitize] = res.labels
                        if sanitize:
                            assert sc.sanitizer.finalize() == []
                assert labels[True].tobytes() == labels[False].tobytes(), (
                    f"sanitize changed labels under plan={make_plan()} "
                    f"speculation={speculation}"
                )
                ok, why = clusterings_equivalent(
                    seq.labels, labels[True], g.points, 25.0, 5, tree=tree
                )
                assert ok, why

    def test_retried_mutation_still_fatal_with_faults(self, workload):
        """A broadcast mutation is fatal on its very first attempt even
        when the fault plan would otherwise grant retries."""
        from repro.engine import BroadcastMutationError

        with SparkContext("local", sanitize=True, max_task_failures=4) as sc:
            b = sc.broadcast(np.zeros(4))
            attempts: list[int] = []

            def mutate(x):
                attempts.append(x)
                b.value[0] += 1
                return x

            with pytest.raises(BroadcastMutationError):
                sc.parallelize(range(2), 1).map(mutate).collect()
            assert len(attempts) == 2  # one partition pass, no retries

"""The paper's Figure 4 worked example, reconstructed geometrically.

Figure 4: 5000 points, 2 partitions with index ranges [0, 2500) and
[2500, 5000); partial cluster C[0] (from partition 0) contains the SEED
3000, which is a regular element of C[5] (from partition 1); merging
produces one finished cluster covering both ranges.

We build an actual point set in which exactly that happens: one
spatially-connected cluster whose members' indices straddle the 2500
boundary, so partition 0's expansion reaches an index ≥ 2500 (a SEED)
and the merge reunites the halves — then we verify every element of
the story the figure tells.
"""

import numpy as np

from repro.dbscan import SparkDBSCAN, dbscan_sequential
from repro.engine.partitioner import IndexRangePartitioner

N = 5000
EPS = 1.5
MINPTS = 3


def _figure4_points(seed: int = 0) -> np.ndarray:
    """One dense chain cluster + background far away, shuffled so the
    chain's indices straddle both partitions."""
    rng = np.random.default_rng(seed)
    chain_len = 400
    # A connected chain: consecutive points ~1 apart (eps=1.5 connects them).
    chain = np.c_[np.arange(chain_len) * 1.0, np.zeros(chain_len)]
    chain += rng.normal(0, 0.05, chain.shape)
    # Isolated background points, all mutually > eps apart and > eps from
    # the chain (placed on a sparse far-away grid).
    n_bg = N - chain_len
    side = int(np.ceil(np.sqrt(n_bg)))
    gx, gy = np.meshgrid(np.arange(side), np.arange(side))
    bg = np.c_[gx.ravel()[:n_bg] * 10.0, gy.ravel()[:n_bg] * 10.0 + 1000.0]
    pts = np.vstack([chain, bg])
    return pts[rng.permutation(N)]


class TestFigure4Story:
    def setup_method(self):
        self.points = _figure4_points()
        self.partitioner = IndexRangePartitioner(N, 2)
        model = SparkDBSCAN(EPS, MINPTS, num_partitions=2, keep_partials=True)
        self.result = model.fit(self.points)

    def test_partition_ranges_match_figure(self):
        assert self.partitioner.range_of(0) == (0, 2500)
        assert self.partitioner.range_of(1) == (2500, 5000)

    def test_partial_clusters_carry_cross_partition_seeds(self):
        partials = self.result.partials
        assert partials is not None
        with_seeds = [c for c in partials if c.seeds]
        assert with_seeds, "the chain must produce cross-partition SEEDs"
        for c in with_seeds:
            for s in c.seeds:
                # "the point whose index is greater than 2499 is [a SEED]"
                assert not (c.lo <= s < c.hi)
                assert self.partitioner.partition(s) != c.partition

    def test_seed_is_regular_element_of_master(self):
        partials = self.result.partials
        owner = {}
        for i, c in enumerate(partials):
            for m in c.members:
                owner[m] = i
        cross = 0
        for c in partials:
            for s in c.seeds:
                if s in owner:
                    master = partials[owner[s]]
                    assert master.owns(s)  # a *regular* element there
                    cross += 1
        assert cross >= 1, "at least one SEED must have a master cluster"

    def test_merge_reunites_the_chain(self):
        # After merging, the chain is ONE cluster even though its points
        # live in both partitions.
        seq = dbscan_sequential(self.points, EPS, MINPTS)
        assert self.result.num_clusters == seq.num_clusters == 1
        chain_members = np.flatnonzero(self.result.labels >= 0)
        partitions_touched = {self.partitioner.partition(int(i)) for i in chain_members}
        assert partitions_touched == {0, 1}

    def test_merge_count_matches_partials(self):
        # k partial pieces of one cluster need exactly k-1 merges.
        non_trivial = self.result.num_partial_clusters
        assert self.result.num_merges == non_trivial - 1

"""CLI smoke and behaviour tests."""

import numpy as np
import pytest

from repro.cli import main


class TestDatasets:
    def test_lists_table1(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("c10k", "c100k", "r10k", "r100k", "r1m"):
            assert name in out


class TestGenerate:
    def test_writes_points_file(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        path = tmp_path / "pts.txt"
        assert main(["generate", "r10k", "-o", str(path)]) == 0
        pts = np.loadtxt(path)
        assert pts.shape[1] == 10
        assert "wrote" in capsys.readouterr().out


class TestCluster:
    @pytest.fixture
    def points_file(self, tmp_path):
        from repro.data import generate_clustered, save_points

        g = generate_clustered(n=400, num_clusters=3, cluster_std=8.0, seed=5)
        path = tmp_path / "p.txt"
        save_points(str(path), g.points)
        return str(path)

    @pytest.mark.parametrize("algo", ["spark", "sequential", "spatial"])
    def test_cluster_algorithms(self, points_file, capsys, algo):
        assert main(["cluster", points_file, "--algorithm", algo,
                     "--partitions", "2"]) == 0
        out = capsys.readouterr().out
        assert "3 clusters" in out

    def test_cluster_mapreduce(self, points_file, capsys):
        assert main(["cluster", points_file, "--algorithm", "mapreduce",
                     "--partitions", "2"]) == 0
        assert "clusters" in capsys.readouterr().out

    def test_cluster_naive(self, points_file, capsys):
        assert main(["cluster", points_file, "--algorithm", "naive",
                     "--partitions", "2"]) == 0
        assert "clusters" in capsys.readouterr().out

    def test_labels_out(self, points_file, tmp_path, capsys):
        labels_path = tmp_path / "labels.txt"
        assert main(["cluster", points_file, "--labels-out", str(labels_path)]) == 0
        labels = np.loadtxt(labels_path, dtype=int)
        assert labels.shape == (400,)
        assert (labels >= -1).all()

    def test_dataset_name_as_source(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        assert main(["cluster", "c10k", "--partitions", "2"]) == 0
        assert "clusters" in capsys.readouterr().out

    def test_bad_algorithm_rejected(self, points_file):
        with pytest.raises(SystemExit):
            main(["cluster", points_file, "--algorithm", "quantum"])


class TestTelemetryFlags:
    @pytest.fixture
    def points_file(self, tmp_path):
        from repro.data import generate_clustered, save_points

        g = generate_clustered(n=400, num_clusters=3, cluster_std=8.0, seed=5)
        path = tmp_path / "p.txt"
        save_points(str(path), g.points)
        return str(path)

    def test_trace_out_writes_loadable_trace(self, points_file, tmp_path, capsys):
        from repro.obs import TraceReport, load_trace

        trace_path = tmp_path / "t.jsonl"
        assert main(["cluster", points_file, "--partitions", "2",
                     "--trace-out", str(trace_path)]) == 0
        assert "trace written" in capsys.readouterr().out
        events = load_trace(str(trace_path))
        names = {e["name"] for e in events}
        assert {"dbscan.fit", "driver.kdtree_build", "driver.merge",
                "executor.partition_expand"} <= names
        report = TraceReport.from_events(events)
        assert report.num_executor_spans == 2
        assert report.kdtree_build_s > 0

    def test_metrics_out_writes_wellformed_exposition(
        self, points_file, tmp_path, capsys
    ):
        from repro.obs import parse_exposition

        prom_path = tmp_path / "m.prom"
        assert main(["cluster", points_file, "--partitions", "2",
                     "--metrics-out", str(prom_path)]) == 0
        assert "metrics written" in capsys.readouterr().out
        samples = parse_exposition(prom_path.read_text())
        assert "repro_run_wall_seconds" in samples
        assert "repro_clusters" in samples
        assert "repro_dbscan_ops_total" in samples
        assert "repro_task_attempts_total" in samples

    def test_trace_subcommand_reports(self, points_file, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        main(["cluster", points_file, "--partitions", "2",
              "--trace-out", str(trace_path)])
        capsys.readouterr()
        assert main(["trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "trace report" in out
        assert "Fig 5" in out
        assert "timeline" in out
        assert main(["trace", str(trace_path), "--no-timeline"]) == 0
        assert "timeline" not in capsys.readouterr().out

    def test_trace_subcommand_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_trace_subcommand_malformed_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        assert main(["trace", str(bad)]) == 1
        assert "malformed" in capsys.readouterr().err

    def test_trace_subcommand_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", str(empty)]) == 1
        assert "no events" in capsys.readouterr().err


class TestRun:
    @pytest.fixture
    def points_file(self, tmp_path):
        from repro.data import generate_clustered, save_points

        g = generate_clustered(n=400, num_clusters=3, cluster_std=8.0, seed=5)
        path = tmp_path / "p.txt"
        save_points(str(path), g.points)
        return str(path)

    def test_run_prints_plan_and_summary(self, points_file, capsys):
        assert main(["run", points_file, "--partitions", "2"]) == 0
        out = capsys.readouterr().out
        assert "plan=spark" in out
        assert "LoadPoints -> " in out
        assert "3 clusters" in out

    def test_crash_then_resume(self, points_file, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        assert main(["run", points_file, "--partitions", "2",
                     "--checkpoint-dir", ckpt,
                     "--fail-after", "CollectPartials"]) == 3
        captured = capsys.readouterr()
        assert "pipeline crashed" in captured.err
        assert "--resume" in captured.err

        assert main(["run", points_file, "--partitions", "2",
                     "--checkpoint-dir", ckpt, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "restored" in out
        assert "skipped" in out
        assert "3 clusters" in out

    def test_run_labels_match_cluster(self, points_file, tmp_path, capsys):
        run_out = tmp_path / "run.txt"
        cluster_out = tmp_path / "cluster.txt"
        assert main(["run", points_file, "--partitions", "2",
                     "--labels-out", str(run_out)]) == 0
        assert main(["cluster", points_file, "--partitions", "2",
                     "--labels-out", str(cluster_out)]) == 0
        capsys.readouterr()
        a = np.loadtxt(run_out, dtype=int)
        b = np.loadtxt(cluster_out, dtype=int)
        assert np.array_equal(a, b)

    def test_invalid_config_one_line_error(self, points_file, capsys):
        assert main(["run", points_file, "--eps", "-1"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_sanitize_rejected_for_sequential(self, points_file, capsys):
        assert main(["run", points_file, "--algorithm", "sequential",
                     "--sanitize"]) == 1
        assert "sanitize" in capsys.readouterr().err


class TestReportAndPerf:
    @pytest.fixture
    def points_file(self, tmp_path):
        from repro.data import generate_clustered, save_points

        g = generate_clustered(n=400, num_clusters=3, cluster_std=8.0, seed=5)
        path = tmp_path / "p.txt"
        save_points(str(path), g.points)
        return str(path)

    @pytest.fixture
    def trace_file(self, points_file, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        assert main(["cluster", points_file, "--partitions", "2",
                     "--trace-out", str(trace_path)]) == 0
        capsys.readouterr()
        return str(trace_path)

    def test_report_prints_skew_table(self, trace_file, capsys):
        assert main(["report", trace_file]) == 0
        out = capsys.readouterr().out
        assert "skew report" in out
        assert "imbalance ratio" in out
        assert "partitions, makespan" in out

    def test_report_no_summary(self, trace_file, capsys):
        assert main(["report", trace_file, "--no-summary"]) == 0
        out = capsys.readouterr().out
        assert "skew report" in out
        assert "trace report" not in out

    def test_report_missing_file(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_report_events_only_trace(self, tmp_path, capsys):
        # Metadata-only traces render the explicit empty report.
        p = tmp_path / "meta.jsonl"
        p.write_text('{"name": "process_name", "ph": "M", "pid": 0}\n')
        assert main(["report", str(p)]) == 0
        out = capsys.readouterr().out
        assert "(no spans)" in out
        assert "(no per-partition task spans in trace)" in out

    def test_perf_run_then_identical_diff_passes(
        self, points_file, tmp_path, capsys
    ):
        bench = tmp_path / "BENCH_t.json"
        trace = tmp_path / "t.jsonl"
        assert main(["perf", "run", points_file, "-o", str(bench),
                     "--partitions", "2", "--repeat", "2",
                     "--trace-out", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "bench written" in out
        assert bench.exists() and trace.exists()
        assert main(["perf", "diff", str(bench), str(bench)]) == 0
        assert "result: PASS" in capsys.readouterr().out

    def test_perf_diff_fails_on_synthetic_slowdown(
        self, points_file, tmp_path, capsys
    ):
        import json

        bench = tmp_path / "BENCH_t.json"
        assert main(["perf", "run", points_file, "-o", str(bench),
                     "--partitions", "2", "--repeat", "1"]) == 0
        slow = json.loads(bench.read_text())
        for k in slow["measures"]:
            slow["measures"][k] = slow["measures"][k] * 3 + 1.0
        slow_path = tmp_path / "BENCH_slow.json"
        slow_path.write_text(json.dumps(slow))
        capsys.readouterr()
        assert main(["perf", "diff", str(bench), str(slow_path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "result: FAIL" in out

    def test_perf_diff_context_mismatch_is_2(
        self, points_file, tmp_path, capsys
    ):
        import json

        bench = tmp_path / "BENCH_t.json"
        assert main(["perf", "run", points_file, "-o", str(bench),
                     "--partitions", "2", "--repeat", "1"]) == 0
        other = json.loads(bench.read_text())
        other["context"]["partitions"] = 8
        other_path = tmp_path / "BENCH_other.json"
        other_path.write_text(json.dumps(other))
        capsys.readouterr()
        assert main(["perf", "diff", str(bench), str(other_path)]) == 2
        assert "not comparable" in capsys.readouterr().out

    def test_perf_diff_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "x.json"
        bad.write_text('{"name": "t"}')
        assert main(["perf", "diff", str(bad), str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestProfileFlags:
    @pytest.fixture
    def points_file(self, tmp_path):
        from repro.data import generate_clustered, save_points

        g = generate_clustered(n=400, num_clusters=3, cluster_std=8.0, seed=5)
        path = tmp_path / "p.txt"
        save_points(str(path), g.points)
        return str(path)

    def test_cluster_profile_writes_task_metrics(
        self, points_file, tmp_path, capsys
    ):
        from repro.obs import parse_exposition

        prom = tmp_path / "m.prom"
        assert main(["cluster", points_file, "--partitions", "2",
                     "--profile", "--metrics-out", str(prom)]) == 0
        samples = parse_exposition(prom.read_text())
        assert "repro_task_cpu_seconds_count" in samples
        assert "repro_task_peak_rss_bytes" in samples

    def test_profile_rejected_for_sequential(self, points_file, capsys):
        assert main(["cluster", points_file, "--algorithm", "sequential",
                     "--profile"]) == 1
        assert "profile" in capsys.readouterr().err

    def test_cluster_master_processes(self, points_file, tmp_path, capsys):
        import os

        from repro.obs import load_trace

        trace = tmp_path / "t.jsonl"
        assert main(["cluster", points_file, "--partitions", "2",
                     "--master", "processes[2]",
                     "--trace-out", str(trace)]) == 0
        events = load_trace(str(trace))
        worker_pids = {e["pid"] for e in events
                       if e.get("cat") == "worker" and e.get("pid")}
        assert worker_pids and os.getpid() not in worker_pids

    def test_run_profile_flag(self, points_file, tmp_path, capsys):
        from repro.obs import parse_exposition

        prom = tmp_path / "m.prom"
        assert main(["run", points_file, "--partitions", "2",
                     "--profile-alloc", "--metrics-out", str(prom)]) == 0
        samples = parse_exposition(prom.read_text())
        assert "repro_task_alloc_peak_bytes" in samples


class TestHistoryErrors:
    def test_missing_file_one_line_error(self, tmp_path, capsys):
        assert main(["history", str(tmp_path / "nope.jsonl")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_malformed_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("definitely not json\n")
        assert main(["history", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestScaling:
    def test_prints_sweep(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        assert main(["scaling", "r10k", "--cores", "2", "4"]) == 0
        out = capsys.readouterr().out
        assert "exec-speedup" in out
        assert "baseline" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_module_entry_importable(self):
        import repro.cli

        parser = repro.cli.build_parser()
        args = parser.parse_args(["datasets"])
        assert args.command == "datasets"

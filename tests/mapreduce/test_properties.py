"""Property-based MapReduce tests (hypothesis)."""

from collections import Counter, defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce import MapReduceJob

words = st.lists(st.sampled_from("abcdefgh"), min_size=0, max_size=80)


@settings(max_examples=25, deadline=None)
@given(ws=words, num_maps=st.integers(1, 5), num_reducers=st.integers(1, 4))
def test_wordcount_matches_counter(tmp_path_factory, ws, num_maps, num_reducers):
    tmp = tmp_path_factory.mktemp("mr")
    job = MapReduceJob(
        mapper=lambda _k, w: [(w, 1)],
        reducer=lambda w, counts: [(w, sum(counts))],
        num_reducers=num_reducers,
        tmp_dir=str(tmp),
    )
    records = list(enumerate(ws))
    got = dict(job.run_on_records(records, num_maps=num_maps))
    assert got == dict(Counter(ws))


@settings(max_examples=25, deadline=None)
@given(
    pairs=st.lists(st.tuples(st.integers(0, 6), st.integers(-50, 50)), max_size=60),
    num_maps=st.integers(1, 4),
)
def test_groupby_sum_matches_python(tmp_path_factory, pairs, num_maps):
    tmp = tmp_path_factory.mktemp("mr")
    expected: dict[int, int] = defaultdict(int)
    for k, v in pairs:
        expected[k] += v
    job = MapReduceJob(
        mapper=lambda k, v: [(k, v)],
        reducer=lambda k, vs: [(k, sum(vs))],
        num_reducers=2,
        tmp_dir=str(tmp),
    )
    got = dict(job.run_on_records(pairs, num_maps=num_maps))
    assert got == dict(expected)


@settings(max_examples=20, deadline=None)
@given(ws=words, num_maps=st.integers(1, 4))
def test_combiner_never_changes_result(tmp_path_factory, ws, num_maps):
    """A combiner is an optimisation; with an associative-commutative
    reducer the output must be identical with and without it."""
    def mapper(_k, w):
        return [(w, 1)]

    def reducer(w, counts):
        return [(w, sum(counts))]

    tmp = tmp_path_factory.mktemp("mr")
    plain = MapReduceJob(mapper, reducer, num_reducers=2,
                         tmp_dir=str(tmp / "a"))
    combined = MapReduceJob(mapper, reducer, combiner=reducer, num_reducers=2,
                            tmp_dir=str(tmp / "b"))
    records = list(enumerate(ws))
    a = dict(plain.run_on_records(records, num_maps=num_maps))
    b = dict(combined.run_on_records(records, num_maps=num_maps))
    assert a == b


@settings(max_examples=20, deadline=None)
@given(
    keys=st.lists(st.integers(0, 100), min_size=1, max_size=50),
    num_reducers=st.integers(1, 5),
)
def test_each_key_handled_by_exactly_one_reducer(tmp_path_factory, keys, num_reducers):
    tmp = tmp_path_factory.mktemp("mr")
    job = MapReduceJob(
        mapper=lambda _k, v: [(v, 1)],
        reducer=lambda k, vs: [(k, len(vs))],
        num_reducers=num_reducers,
        tmp_dir=str(tmp),
    )
    outputs = job.run(
        [[(i, k) for i, k in enumerate(keys)]]
    )
    seen: dict[int, int] = {}
    for r, out in enumerate(outputs):
        for k, _count in out:
            assert k not in seen, f"key {k} emitted by reducers {seen[k]} and {r}"
            seen[k] = r
    assert set(seen) == set(keys)

"""JobTracker/TaskTracker heartbeat failure-detection model."""

import pytest

from repro.mapreduce import JobTracker, TaskState


class TestScheduling:
    def test_round_robin_assignment(self):
        jt = JobTracker(num_trackers=2)
        jt.submit(4)
        assignments = jt.assign_pending()
        assert len(assignments) == 4
        trackers = [t for _, t in assignments]
        assert trackers == [0, 1, 0, 1]

    def test_complete_all(self):
        jt = JobTracker(num_trackers=2)
        jt.submit(3)
        for task_id, _ in jt.assign_pending():
            jt.complete(task_id)
        assert jt.all_done

    def test_complete_unassigned_rejected(self):
        jt = JobTracker(num_trackers=1)
        jt.submit(1)
        with pytest.raises(RuntimeError):
            jt.complete(0)


class TestFailureDetection:
    def test_heartbeat_timeout_reschedules(self):
        jt = JobTracker(num_trackers=2, heartbeat_timeout=1.0)
        jt.submit(2)
        jt.assign_pending()
        jt.heartbeat(0)
        jt.heartbeat(1)
        # Tracker 1 goes silent; time passes beyond the timeout.
        jt.heartbeat(0, now=2.5)
        jt.advance_clock(2.5)
        dead = [t for t in jt.trackers if not t.alive]
        assert len(dead) >= 1
        assert jt.reschedules >= 1
        # The orphaned task is pending again and reassignable.
        reassigned = jt.assign_pending()
        assert all(tr == 0 for _, tr in reassigned if jt.trackers[0].alive)

    def test_kill_tracker_requeues_running_tasks(self):
        jt = JobTracker(num_trackers=2)
        jt.submit(4)
        jt.assign_pending()
        jt.kill_tracker(1)
        pending = [t for t in jt.tasks.values() if t.state is TaskState.PENDING]
        assert len(pending) == 2
        assert jt.reschedules == 2
        # Survivor picks everything up; job completes.
        for task_id, tracker in jt.assign_pending():
            assert tracker == 0
        for task in jt.tasks.values():
            if task.state is TaskState.RUNNING:
                jt.complete(task.task_id)
        assert jt.all_done

    def test_dead_tracker_cannot_heartbeat(self):
        jt = JobTracker(num_trackers=1)
        jt.kill_tracker(0)
        with pytest.raises(RuntimeError):
            jt.heartbeat(0)

    def test_no_live_trackers_raises(self):
        jt = JobTracker(num_trackers=1)
        jt.submit(1)
        jt.kill_tracker(0)
        with pytest.raises(RuntimeError):
            jt.assign_pending()

    def test_attempt_counter_increments_on_reschedule(self):
        jt = JobTracker(num_trackers=2)
        jt.submit(2)
        jt.assign_pending()
        jt.kill_tracker(0)
        jt.assign_pending()
        attempts = sorted(t.attempts for t in jt.tasks.values())
        assert attempts == [1, 2]

"""MapReduce job correctness: wordcount and friends."""

from collections import Counter

import pytest

from repro.engine.fault import FaultPlan
from repro.mapreduce import MapReduceJob

DOC = (
    "the quick brown fox jumps over the lazy dog "
    "the dog barks and the fox runs away over the hill"
).split()


def word_mapper(_key, word):
    yield (word, 1)


def count_reducer(word, counts):
    yield (word, sum(counts))


class TestWordCount:
    def _records(self):
        return [(i, w) for i, w in enumerate(DOC)]

    def test_matches_counter(self, tmp_path):
        job = MapReduceJob(word_mapper, count_reducer, num_reducers=3,
                           tmp_dir=str(tmp_path))
        got = dict(job.run_on_records(self._records(), num_maps=4))
        assert got == dict(Counter(DOC))

    def test_single_reducer(self, tmp_path):
        job = MapReduceJob(word_mapper, count_reducer, num_reducers=1,
                           tmp_dir=str(tmp_path))
        got = dict(job.run_on_records(self._records(), num_maps=2))
        assert got == dict(Counter(DOC))

    def test_combiner_same_answer_fewer_bytes(self, tmp_path):
        no_comb = MapReduceJob(word_mapper, count_reducer, num_reducers=2,
                               tmp_dir=str(tmp_path / "a"))
        with_comb = MapReduceJob(word_mapper, count_reducer, combiner=count_reducer,
                                 num_reducers=2, tmp_dir=str(tmp_path / "b"))
        a = dict(no_comb.run_on_records(self._records(), num_maps=3))
        b = dict(with_comb.run_on_records(self._records(), num_maps=3))
        assert a == b == dict(Counter(DOC))
        assert with_comb.stats.spill_bytes < no_comb.stats.spill_bytes

    def test_reduce_output_grouped_and_sorted_keys_within_reducer(self, tmp_path):
        job = MapReduceJob(word_mapper, count_reducer, num_reducers=1,
                           tmp_dir=str(tmp_path))
        out = job.run_on_records(self._records(), num_maps=3)
        keys = [k for k, _ in out]
        assert keys == sorted(keys)  # merge-sorted reduce input

    def test_stats_recorded(self, tmp_path):
        job = MapReduceJob(word_mapper, count_reducer, num_reducers=2,
                           tmp_dir=str(tmp_path), startup_overhead=0.25)
        job.run_on_records(self._records(), num_maps=3)
        s = job.stats
        assert len(s.map_task_durations) == 3
        assert len(s.reduce_task_durations) == 2
        assert s.spill_bytes > 0
        assert s.shuffle_bytes > 0
        assert s.wall(4) >= 0.25  # includes startup overhead

    def test_wall_monotone_in_slots(self, tmp_path):
        job = MapReduceJob(word_mapper, count_reducer, num_reducers=2,
                           tmp_dir=str(tmp_path))
        job.run_on_records(self._records(), num_maps=4)
        assert job.stats.wall(1) >= job.stats.wall(2) >= job.stats.wall(8)


class TestValidationAndFaults:
    def test_rejects_bad_reducer_count(self):
        with pytest.raises(ValueError):
            MapReduceJob(word_mapper, count_reducer, num_reducers=0)

    def test_rejects_bad_num_maps(self, tmp_path):
        job = MapReduceJob(word_mapper, count_reducer, tmp_dir=str(tmp_path))
        with pytest.raises(ValueError):
            job.run_on_records([(0, "a")], num_maps=0)

    def test_map_task_retry_recovers(self, tmp_path):
        plan = FaultPlan(fail_attempts={(0, 1): 2})  # map task 1 fails twice
        job = MapReduceJob(word_mapper, count_reducer, num_reducers=1,
                           tmp_dir=str(tmp_path), fault_plan=plan)
        got = dict(job.run_on_records([(i, w) for i, w in enumerate(DOC)], num_maps=3))
        assert got == dict(Counter(DOC))
        assert job.stats.map_attempts == 5  # 3 tasks + 2 retries

    def test_reduce_task_retry_recovers(self, tmp_path):
        plan = FaultPlan(fail_attempts={(1, 0): 1})
        job = MapReduceJob(word_mapper, count_reducer, num_reducers=2,
                           tmp_dir=str(tmp_path), fault_plan=plan)
        got = dict(job.run_on_records([(i, w) for i, w in enumerate(DOC)], num_maps=2))
        assert got == dict(Counter(DOC))
        assert job.stats.reduce_attempts == 3

    def test_permanent_failure_raises(self, tmp_path):
        from repro.engine.errors import InjectedFault

        plan = FaultPlan(fail_attempts={(0, 0): 100})
        job = MapReduceJob(word_mapper, count_reducer, tmp_dir=str(tmp_path),
                           fault_plan=plan)
        with pytest.raises(InjectedFault):
            job.run_on_records([(0, "a")], num_maps=1)


class TestOtherJobs:
    def test_inverted_index(self, tmp_path):
        docs = [(0, "apple banana"), (1, "banana cherry"), (2, "apple")]

        def mapper(doc_id, text):
            for w in text.split():
                yield (w, doc_id)

        def reducer(word, ids):
            yield (word, sorted(set(ids)))

        job = MapReduceJob(mapper, reducer, num_reducers=2, tmp_dir=str(tmp_path))
        got = dict(kv for out in job.run([docs]) for kv in out)
        assert got == {"apple": [0, 2], "banana": [0, 1], "cherry": [1]}

    def test_empty_input(self, tmp_path):
        job = MapReduceJob(word_mapper, count_reducer, tmp_dir=str(tmp_path))
        assert job.run([[]]) == [[]]

"""Mini Spark Streaming: DStream semantics."""

import pytest

from repro.engine import SparkContext
from repro.engine.streaming import StreamingContext


@pytest.fixture
def ssc(sc):
    return StreamingContext(sc, num_partitions=2)


class TestQueueStream:
    def test_batches_flow_in_order(self, ssc):
        out: list[list[int]] = []
        ssc.queue_stream([[1, 2], [3], [4, 5, 6]]).collect_batches(out)
        ssc.run(3)
        assert out == [[1, 2], [3], [4, 5, 6]]

    def test_exhausted_queue_yields_empty_batches(self, ssc):
        out: list[list[int]] = []
        ssc.queue_stream([[1]]).collect_batches(out)
        ssc.run(3)
        assert out == [[1], [], []]

    def test_push_feeds_future_batches(self, ssc):
        out: list[list[int]] = []
        stream = ssc.queue_stream()
        stream.collect_batches(out)
        stream.push([7])
        ssc.advance()
        stream.push([8, 9])
        ssc.advance()
        assert out == [[7], [8, 9]]


class TestTransformations:
    def test_map_filter_flat_map(self, ssc):
        out: list[list[int]] = []
        (
            ssc.queue_stream([["a bb", "ccc"], ["dddd"]])
            .flat_map(str.split)
            .map(len)
            .filter(lambda n: n >= 2)
            .collect_batches(out)
        )
        ssc.run(2)
        assert out == [[2, 3], [4]]

    def test_count_by_value(self, ssc):
        out: list[list[tuple[str, int]]] = []
        ssc.queue_stream([["x", "y", "x"], ["y"]]).count_by_value().collect_batches(out)
        ssc.run(2)
        assert sorted(out[0]) == [("x", 2), ("y", 1)]
        assert out[1] == [("y", 1)]

    def test_reduce_by_key_per_batch(self, ssc):
        out: list[list[tuple[str, int]]] = []
        (
            ssc.queue_stream([[("a", 1), ("a", 2)], [("a", 5)]])
            .reduce_by_key(lambda x, y: x + y)
            .collect_batches(out)
        )
        ssc.run(2)
        assert out == [[("a", 3)], [("a", 5)]]  # per-batch, not global

    def test_foreach_rdd_sees_batch_index(self, ssc):
        seen: list[int] = []
        ssc.queue_stream([[1], [2]]).foreach_rdd(lambda i, _rdd: seen.append(i))
        ssc.run(2)
        assert seen == [0, 1]


class TestWindow:
    def test_window_unions_recent_batches(self, ssc):
        out: list[list[int]] = []
        ssc.queue_stream([[1], [2], [3], [4]]).window(2).collect_batches(out)
        ssc.run(4)
        assert [sorted(b) for b in out] == [[1], [1, 2], [2, 3], [3, 4]]

    def test_window_of_one_is_identity(self, ssc):
        out: list[list[int]] = []
        ssc.queue_stream([[1], [2]]).window(1).collect_batches(out)
        ssc.run(2)
        assert out == [[1], [2]]

    def test_window_then_aggregate(self, ssc):
        out: list[list[tuple[str, int]]] = []
        (
            ssc.queue_stream([[("k", 1)], [("k", 2)], [("k", 4)]])
            .window(3)
            .reduce_by_key(lambda a, b: a + b)
            .collect_batches(out)
        )
        ssc.run(3)
        assert out == [[("k", 1)], [("k", 3)], [("k", 7)]]

    def test_bad_window_length(self, ssc):
        with pytest.raises(ValueError):
            ssc.queue_stream([]).window(0)


class TestStatefulStream:
    def test_running_counts(self, ssc):
        out: list[list[tuple[str, int]]] = []

        def update(new, old):
            return (old or 0) + sum(new)

        (
            ssc.queue_stream([[("a", 1), ("b", 1)], [("a", 2)], [("b", 5)]])
            .update_state_by_key(update)
            .collect_batches(out)
        )
        ssc.run(3)
        assert sorted(out[0]) == [("a", 1), ("b", 1)]
        assert sorted(out[1]) == [("a", 3), ("b", 1)]
        assert sorted(out[2]) == [("a", 3), ("b", 6)]

    def test_returning_none_drops_key(self, ssc):
        out: list[list[tuple[str, int]]] = []

        def update(new, old):
            total = (old or 0) + sum(new)
            return None if total > 2 else total

        (
            ssc.queue_stream([[("k", 1)], [("k", 2)], []])
            .update_state_by_key(update)
            .collect_batches(out)
        )
        ssc.run(3)
        assert out[0] == [("k", 1)]
        assert out[1] == []      # 1+2 > 2: dropped
        assert out[2] == []

    def test_idle_keys_still_updated(self, ssc):
        """Keys with no new data age via update([], old) — Spark semantics."""
        calls: list[tuple[list, object]] = []

        def update(new, old):
            calls.append((new, old))
            return (old or 0) + len(new)

        ssc.queue_stream([[("a", 1)], []]).update_state_by_key(update)
        ssc.run(2)
        assert ([], 1) in calls  # second batch updated 'a' with no values


class TestComposition:
    def test_two_sinks_one_stream(self, ssc):
        a: list[list[int]] = []
        b: list[list[int]] = []
        stream = ssc.queue_stream([[1, 2]])
        stream.collect_batches(a)
        stream.map(lambda x: x * 10).collect_batches(b)
        ssc.run(1)
        assert a == [[1, 2]]
        assert b == [[10, 20]]

    def test_streaming_over_processes_backend(self):
        with SparkContext("processes[2]") as sc:
            ssc = StreamingContext(sc, num_partitions=2)
            out: list[list[int]] = []
            ssc.queue_stream([[1, 2, 3]]).map(lambda x: x * x).collect_batches(out)
            ssc.run(1)
        assert out == [[1, 4, 9]]

"""Property-based tests for the engine (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import SparkContext, makespan
from repro.engine.partitioner import IndexRangePartitioner

small_ints = st.lists(st.integers(-1000, 1000), max_size=60)
npart = st.integers(1, 8)


@settings(max_examples=30, deadline=None)
@given(data=small_ints, p=npart)
def test_collect_is_identity(data, p):
    with SparkContext("simulated[2]") as sc:
        assert sc.parallelize(data, p).collect() == data


@settings(max_examples=30, deadline=None)
@given(data=small_ints, p=npart)
def test_map_matches_builtin(data, p):
    with SparkContext("simulated[2]") as sc:
        got = sc.parallelize(data, p).map(lambda x: x * 2 + 1).collect()
    assert got == [x * 2 + 1 for x in data]

@settings(max_examples=30, deadline=None)
@given(data=small_ints, p=npart)
def test_filter_then_count(data, p):
    with SparkContext("simulated[2]") as sc:
        got = sc.parallelize(data, p).filter(lambda x: x > 0).count()
    assert got == sum(1 for x in data if x > 0)


@settings(max_examples=25, deadline=None)
@given(data=st.lists(st.tuples(st.integers(0, 5), st.integers(-100, 100)), max_size=50), p=npart)
def test_reduce_by_key_matches_dict_fold(data, p):
    expected: dict[int, int] = {}
    for k, v in data:
        expected[k] = expected.get(k, 0) + v
    with SparkContext("simulated[2]") as sc:
        got = dict(sc.parallelize(data, p).reduce_by_key(lambda a, b: a + b).collect())
    assert got == expected


@settings(max_examples=25, deadline=None)
@given(data=small_ints, p=npart)
def test_distinct_matches_set(data, p):
    with SparkContext("simulated[2]") as sc:
        got = sorted(sc.parallelize(data, p).distinct().collect())
    assert got == sorted(set(data))


@settings(max_examples=25, deadline=None)
@given(
    durations=st.lists(st.floats(0.001, 100.0, allow_nan=False), min_size=1, max_size=40),
    slots=st.integers(1, 64),
)
def test_makespan_bounds(durations, slots):
    """LPT makespan is sandwiched between the trivial lower bounds and the
    serial sum; monotone in slots."""
    w = makespan(durations, slots)
    assert w >= max(durations) - 1e-12
    assert w >= sum(durations) / slots - 1e-9
    assert w <= sum(durations) + 1e-9
    assert makespan(durations, slots + 1) <= w + 1e-12


@settings(max_examples=50, deadline=None)
@given(n=st.integers(0, 500), p=st.integers(1, 32))
def test_index_range_partitioner_partition_of_every_index(n, p):
    part = IndexRangePartitioner(n, p)
    total = 0
    for i in range(p):
        lo, hi = part.range_of(i)
        assert 0 <= lo <= hi <= n
        total += hi - lo
        for idx in (lo, hi - 1):
            if lo <= idx < hi:
                assert part.partition(idx) == i
    assert total == n


@settings(max_examples=20, deadline=None)
@given(
    data=st.lists(st.integers(0, 100), min_size=1, max_size=40),
    p1=st.integers(1, 6),
    p2=st.integers(1, 6),
)
def test_partition_count_does_not_change_results(data, p1, p2):
    with SparkContext("simulated[2]") as sc:
        a = sorted(sc.parallelize(data, p1).map(lambda x: x % 7).collect())
        b = sorted(sc.parallelize(data, p2).map(lambda x: x % 7).collect())
    assert a == b

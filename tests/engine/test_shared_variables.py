"""Broadcast and accumulator semantics (paper Section IV-B)."""

import pickle

import pytest

from repro.engine import FLOAT_SUM, INT_SUM, LIST_CONCAT, AccumulatorParam, SparkContext
from repro.engine.accumulator import AccumulatorRegistry
from repro.engine.broadcast import _load_counts, _reset_process_cache


class TestBroadcast:
    def test_value_visible_on_driver(self, sc):
        b = sc.broadcast({"eps": 25.0})
        assert b.value == {"eps": 25.0}

    def test_value_visible_in_tasks(self, sc):
        b = sc.broadcast([10, 20, 30])
        got = sc.parallelize(range(3), 3).map(lambda i: b.value[i]).collect()
        assert got == [10, 20, 30]

    def test_pickled_handle_excludes_value(self, sc):
        b = sc.broadcast(list(range(10000)))
        blob = pickle.dumps(b)
        # The handle must be tiny: the value travels via the backing
        # store, not inside every task closure.
        assert len(blob) < 500

    def test_value_loaded_once_per_process(self, tmp_path):
        """A rehydrated handle loads from file on first access only."""
        with SparkContext("simulated[2]", spill_dir=str(tmp_path)) as sc:
            sc.broadcast_manager._spill_dir = str(tmp_path)  # force file backing
            b = sc.broadcast_manager.new_broadcast([1, 2, 3])
            clone = pickle.loads(pickle.dumps(b))
            _reset_process_cache()
            assert clone.value == [1, 2, 3]
            assert clone.value == [1, 2, 3]
            assert _load_counts[b.bid] == 1  # second access was cached

    def test_unpersist_drops_cache(self, sc):
        b = sc.broadcast(42)
        b.unpersist()
        with pytest.raises(RuntimeError):
            _ = b.value  # no cache, no backing file

    def test_broadcast_works_across_processes(self):
        with SparkContext("processes[2]") as sc:
            b = sc.broadcast(1000)
            got = sc.parallelize(range(4), 4).map(lambda x: x + b.value).collect()
            assert got == [1000, 1001, 1002, 1003]


class TestAccumulator:
    def test_int_sum(self, sc):
        acc = sc.accumulator(INT_SUM)
        sc.parallelize(range(100), 4).foreach(lambda x: acc.add(x))
        assert acc.value == 4950

    def test_float_sum(self, sc):
        acc = sc.accumulator(FLOAT_SUM)
        sc.parallelize([0.5] * 10, 2).foreach(lambda x: acc.add(x))
        assert acc.value == pytest.approx(5.0)

    def test_list_concat_collects_partials(self, sc):
        """The paper's usage: bring partial results back via accumulator."""
        acc = sc.list_accumulator()
        sc.parallelize(range(20), 4).foreach_partition(
            lambda it: acc.add([list(it)])
        )
        chunks = sorted(acc.value)
        assert chunks == [
            list(range(0, 5)),
            list(range(5, 10)),
            list(range(10, 15)),
            list(range(15, 20)),
        ]

    def test_iadd_operator(self, sc):
        acc = sc.accumulator(INT_SUM)
        acc += 5
        acc += 7
        assert acc.value == 12

    def test_driver_side_add(self, sc):
        acc = sc.accumulator(INT_SUM)
        acc.add(3)
        assert acc.value == 3

    def test_custom_param(self, sc):
        max_param = AccumulatorParam[int](zero=lambda: 0, add=max)
        acc = sc.accumulator(max_param)
        sc.parallelize([3, 9, 1, 7], 2).foreach(lambda x: acc.add(x))
        assert acc.value == 9

    def test_works_across_processes(self):
        with SparkContext("processes[2]") as sc:
            acc = sc.accumulator(INT_SUM)
            sc.parallelize(range(10), 4).foreach(lambda x: acc.add(x))
            assert acc.value == 45


class TestAccumulatorExactlyOnce:
    def test_retried_task_counts_once(self):
        """A task that fails then succeeds must not double-accumulate —
        otherwise retried executors would duplicate partial clusters."""
        from repro.engine import FaultPlan

        with SparkContext("simulated[4]") as sc:
            sc.fault_plan = FaultPlan(fail_attempts={(-1, 1): 2})
            acc = sc.accumulator(INT_SUM)
            sc.parallelize(range(8), 4).foreach(lambda x: acc.add(1))
            assert acc.value == 8

    def test_registry_rejects_duplicate_partition_report(self):
        reg = AccumulatorRegistry()
        acc = reg.new_accumulator(INT_SUM)
        assert reg.apply_task_updates(0, 0, 0, {acc.aid: 5})
        assert not reg.apply_task_updates(0, 0, 0, {acc.aid: 5})  # duplicate
        assert acc.value == 5

    def test_distinct_partitions_both_count(self):
        reg = AccumulatorRegistry()
        acc = reg.new_accumulator(INT_SUM)
        reg.apply_task_updates(0, 0, 0, {acc.aid: 5})
        reg.apply_task_updates(0, 0, 1, {acc.aid: 7})
        assert acc.value == 12

    def test_unknown_accumulator_ignored(self):
        reg = AccumulatorRegistry()
        assert reg.apply_task_updates(0, 0, 0, {999: 5})  # merged nothing, no crash

    def test_value_unreadable_on_executor_copy(self, sc):
        import cloudpickle

        acc = sc.accumulator(INT_SUM)
        clone = pickle.loads(cloudpickle.dumps(acc))
        with pytest.raises(RuntimeError):
            _ = clone.value

"""History report from the event log."""

from repro.engine import FaultPlan, SparkContext
from repro.engine.history import format_history, load_history, summarize_events


class TestSummarize:
    def _run_app(self, path):
        with SparkContext("simulated[2]", event_log_path=path) as sc:
            sc.parallelize(range(8), 2).sum()
            sc.parallelize([(i % 2, i) for i in range(8)], 2).reduce_by_key(
                lambda a, b: a + b
            ).collect()

    def test_jobs_and_stages_counted(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        self._run_app(path)
        app = load_history(path)
        assert len(app.jobs) == 2
        assert app.jobs[0].num_stages == 1
        assert app.jobs[1].num_stages == 2
        assert app.total_tasks == 2 + 4

    def test_failures_counted(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with SparkContext("simulated[2]", event_log_path=path) as sc:
            sc.fault_plan = FaultPlan(fail_attempts={(-1, 0): 2})
            sc.parallelize(range(4), 2).collect()
        app = load_history(path)
        assert app.jobs[0].failed_attempts == 2
        assert app.jobs[0].stages[0].num_tasks == 2  # distinct partitions

    def test_shuffle_bytes_surface(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        self._run_app(path)
        app = load_history(path)
        shuffle_stages = [
            s for j in app.jobs.values() for s in j.stages.values()
            if s.shuffle_bytes_written
        ]
        assert shuffle_stages

    def test_format_renders(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        self._run_app(path)
        text = format_history(load_history(path))
        assert "application:" in text
        assert "stage 0:" in text

    def test_empty_events(self):
        app = summarize_events([])
        assert app.total_tasks == 0
        assert app.jobs == {}


class TestCliHistory:
    def test_history_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "log.jsonl")
        with SparkContext("simulated[2]", event_log_path=path) as sc:
            sc.parallelize(range(4), 2).count()
        assert main(["history", path]) == 0
        out = capsys.readouterr().out
        assert "jobs: 1" in out

"""History report from the event log."""

import pytest

from repro.engine import FaultPlan, SparkContext
from repro.engine.history import (
    HistoryError,
    format_history,
    load_history,
    summarize_events,
)


class TestSummarize:
    def _run_app(self, path):
        with SparkContext("simulated[2]", event_log_path=path) as sc:
            sc.parallelize(range(8), 2).sum()
            sc.parallelize([(i % 2, i) for i in range(8)], 2).reduce_by_key(
                lambda a, b: a + b
            ).collect()

    def test_jobs_and_stages_counted(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        self._run_app(path)
        app = load_history(path)
        assert len(app.jobs) == 2
        assert app.jobs[0].num_stages == 1
        assert app.jobs[1].num_stages == 2
        assert app.total_tasks == 2 + 4

    def test_failures_counted(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with SparkContext("simulated[2]", event_log_path=path) as sc:
            sc.fault_plan = FaultPlan(fail_attempts={(-1, 0): 2})
            sc.parallelize(range(4), 2).collect()
        app = load_history(path)
        assert app.jobs[0].failed_attempts == 2
        assert app.jobs[0].stages[0].num_tasks == 2  # distinct partitions

    def test_shuffle_bytes_surface(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        self._run_app(path)
        app = load_history(path)
        shuffle_stages = [
            s for j in app.jobs.values() for s in j.stages.values()
            if s.shuffle_bytes_written
        ]
        assert shuffle_stages
        # the reduce side of the shuffle charges its read volume too,
        # and reads exactly what the map side wrote
        read_stages = [
            s for j in app.jobs.values() for s in j.stages.values()
            if s.shuffle_bytes_read
        ]
        assert read_stages
        total_written = sum(s.shuffle_bytes_written for s in shuffle_stages)
        total_read = sum(s.shuffle_bytes_read for s in read_stages)
        assert total_read == total_written

    def test_format_renders(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        self._run_app(path)
        text = format_history(load_history(path))
        assert "application:" in text
        assert "stage 0:" in text
        assert "shuffle bytes written" in text
        assert "shuffle bytes read" in text

    def test_empty_events(self):
        app = summarize_events([])
        assert app.total_tasks == 0
        assert app.jobs == {}


class TestEventLogLifecycle:
    def test_close_is_idempotent(self, tmp_path):
        from repro.engine.event_log import EventLog

        log = EventLog(str(tmp_path / "log.jsonl"))
        assert not log.closed
        log.emit("app_start", app_name="x", master="m")
        log.close()
        assert log.closed
        log.close()  # second close is a no-op

    def test_context_manager_closes(self, tmp_path):
        from repro.engine.event_log import EventLog, load_event_log

        path = str(tmp_path / "log.jsonl")
        with EventLog(path) as log:
            log.emit("app_start", app_name="x", master="m")
        assert log.closed
        assert load_event_log(path)[0]["event"] == "app_start"

    def test_memory_only_log_open_until_closed(self):
        from repro.engine.event_log import EventLog

        log = EventLog()  # no backing file, but still an open log
        assert not log.closed
        log.emit("app_start", app_name="x", master="m")
        log.close()
        assert log.closed

    def test_emit_after_close_raises(self, tmp_path):
        from repro.engine.errors import EventLogClosedError
        from repro.engine.event_log import EventLog

        log = EventLog(str(tmp_path / "log.jsonl"))
        log.emit("app_start", app_name="x", master="m")
        log.close()
        with pytest.raises(EventLogClosedError):
            log.emit("app_end")
        # reads survive close: the history server renders finished runs
        assert log.of_kind("app_start")

    def test_record_job_after_close_raises(self):
        from repro.engine.errors import EventLogClosedError
        from repro.engine.event_log import EventLog
        from repro.engine.metrics import JobMetrics

        log = EventLog()
        log.close()
        with pytest.raises(EventLogClosedError):
            log.record_job(JobMetrics(job_id=0))

    def test_spark_context_stop_closes_log(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        sc = SparkContext("simulated[2]", event_log_path=path)
        sc.parallelize(range(4), 2).count()
        assert not sc.event_log.closed
        sc.stop()
        assert sc.event_log.closed


class TestHistoryErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(HistoryError, match="cannot read"):
            load_history(str(tmp_path / "nope.jsonl"))

    def test_empty_log(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(HistoryError, match="empty"):
            load_history(str(path))

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{broken\n")
        with pytest.raises(HistoryError, match="not JSON-lines"):
            load_history(str(path))

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / "wrong.jsonl"
        path.write_text('{"something": "else"}\n')
        with pytest.raises(HistoryError, match="not a.*engine event"):
            load_history(str(path))

    def test_non_dict_event(self):
        with pytest.raises(HistoryError):
            summarize_events([42])  # type: ignore[list-item]


class TestCliHistory:
    def test_history_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "log.jsonl")
        with SparkContext("simulated[2]", event_log_path=path) as sc:
            sc.parallelize(range(4), 2).count()
        assert main(["history", path]) == 0
        out = capsys.readouterr().out
        assert "jobs: 1" in out

"""Speculative execution: attacking the paper's t_straggling term."""

import pytest

from repro.engine import FaultPlan, SparkContext


class TestSpeculation:
    def test_straggler_gets_duplicate_attempt(self):
        with SparkContext("local[4]", speculation=True) as sc:
            # Partition 2 is a deterministic straggler.
            sc.fault_plan = FaultPlan(delays={(-1, 2): 0.2})
            got = sc.parallelize(range(8), 4).map(lambda x: x + 1).collect()
            assert got == [x + 1 for x in range(8)]
            assert sc.task_scheduler.speculative_launches >= 1

    def test_fast_duplicate_wins_in_scheduler(self):
        """The scheduler's completed set keeps the faster attempt."""
        from repro.engine.executor import Task

        with SparkContext("local[4]", speculation=True) as sc:
            plan = FaultPlan(delays={(-1, 1): 0.2})
            rdd = sc.parallelize(range(8), 4).map(lambda x: x)
            tasks = [
                Task(job_id=0, stage_id=0, partition=p, attempt=0, rdd=rdd,
                     kind="result", func=lambda _i, it: list(it),
                     fault_plan=plan)
                for p in range(4)
            ]
            completed = sc.task_scheduler.run_task_set(tasks)
            # Attempt 1 (the clean duplicate) won partition 1.
            assert completed[1].attempt == 1
            assert completed[1].metrics.run_time < 0.1

    def test_accumulator_still_exactly_once(self):
        """The duplicate attempt must not double-count accumulators."""
        with SparkContext("local[4]", speculation=True) as sc:
            sc.fault_plan = FaultPlan(delays={(-1, 0): 0.2})
            acc = sc.accumulator()
            sc.parallelize(range(8), 4).foreach(lambda x: acc.add(1))
            assert acc.value == 8

    def test_no_speculation_without_stragglers(self):
        with SparkContext("local[4]", speculation=True) as sc:
            sc.parallelize(range(100), 4).map(lambda x: x).collect()
            # Uniform tiny tasks: nothing should trip the 2x-median rule
            # (they may occasionally due to scheduling noise; allow a little).
            assert sc.task_scheduler.speculative_launches <= 2

    def test_results_identical_with_and_without(self):
        data = list(range(50))
        with SparkContext("local[4]", speculation=True) as sc:
            sc.fault_plan = FaultPlan(delays={(-1, 3): 0.15})
            a = sc.parallelize(data, 4).map(lambda x: x * 3).collect()
        with SparkContext("local[4]") as sc:
            b = sc.parallelize(data, 4).map(lambda x: x * 3).collect()
        assert a == b

    def test_speculation_with_failures_still_retries(self):
        with SparkContext("local[4]", speculation=True) as sc:
            sc.fault_plan = FaultPlan(
                fail_attempts={(-1, 1): 1}, delays={(-1, 2): 0.15}
            )
            assert sc.parallelize(range(8), 4).collect() == list(range(8))

    def test_bad_multiplier_rejected(self):
        with pytest.raises(ValueError):
            SparkContext("local[2]", speculation=True, speculation_multiplier=1.0)

"""Speculative execution: attacking the paper's t_straggling term."""

import pytest

from repro.engine import FaultPlan, SparkContext


class TestSpeculation:
    def test_straggler_gets_duplicate_attempt(self):
        with SparkContext("simulated[4]", speculation=True) as sc:
            # Partition 2 is a deterministic straggler.
            sc.fault_plan = FaultPlan(delays={(-1, 2): 0.2})
            got = sc.parallelize(range(8), 4).map(lambda x: x + 1).collect()
            assert got == [x + 1 for x in range(8)]
            assert sc.task_scheduler.speculative_launches >= 1

    def test_fast_duplicate_wins_in_scheduler(self):
        """The scheduler's completed set keeps the faster attempt."""
        from repro.engine.executor import Task

        with SparkContext("simulated[4]", speculation=True) as sc:
            plan = FaultPlan(delays={(-1, 1): 0.2})
            rdd = sc.parallelize(range(8), 4).map(lambda x: x)
            tasks = [
                Task(job_id=0, stage_id=0, partition=p, attempt=0, rdd=rdd,
                     kind="result", func=lambda _i, it: list(it),
                     fault_plan=plan)
                for p in range(4)
            ]
            completed = sc.task_scheduler.run_task_set(tasks)
            # Attempt 1 (the clean duplicate) won partition 1.
            assert completed[1].attempt == 1
            assert completed[1].metrics.run_time < 0.1

    def test_accumulator_still_exactly_once(self):
        """The duplicate attempt must not double-count accumulators."""
        with SparkContext("simulated[4]", speculation=True) as sc:
            sc.fault_plan = FaultPlan(delays={(-1, 0): 0.2})
            acc = sc.accumulator()
            sc.parallelize(range(8), 4).foreach(lambda x: acc.add(1))
            assert acc.value == 8

    def test_no_speculation_without_stragglers(self):
        with SparkContext("simulated[4]", speculation=True) as sc:
            sc.parallelize(range(100), 4).map(lambda x: x).collect()
            # Uniform tiny tasks: nothing should trip the 2x-median rule
            # (they may occasionally due to scheduling noise; allow a little).
            assert sc.task_scheduler.speculative_launches <= 2

    def test_results_identical_with_and_without(self):
        data = list(range(50))
        with SparkContext("simulated[4]", speculation=True) as sc:
            sc.fault_plan = FaultPlan(delays={(-1, 3): 0.15})
            a = sc.parallelize(data, 4).map(lambda x: x * 3).collect()
        with SparkContext("simulated[4]") as sc:
            b = sc.parallelize(data, 4).map(lambda x: x * 3).collect()
        assert a == b

    def test_speculation_with_failures_still_retries(self):
        with SparkContext("simulated[4]", speculation=True) as sc:
            sc.fault_plan = FaultPlan(
                fail_attempts={(-1, 1): 1}, delays={(-1, 2): 0.15}
            )
            assert sc.parallelize(range(8), 4).collect() == list(range(8))

    def test_bad_multiplier_rejected(self):
        with pytest.raises(ValueError):
            SparkContext("simulated[2]", speculation=True, speculation_multiplier=1.0)

    def test_retry_budget_enforced_at_speculative_requeue(self):
        """Regression: the speculative pass used to requeue failures without
        checking the budget, granting every failed task one extra attempt.
        With max_task_failures=1 the job must abort after exactly one
        attempt of the doomed task, speculation on or off."""
        from repro.engine import JobAbortedError
        from repro.engine.executor import Task

        attempts_seen = {}
        for speculation in (True, False):
            with SparkContext("simulated[2]", max_task_failures=1,
                              speculation=speculation) as sc:
                plan = FaultPlan(fail_attempts={(-1, 1): 99})
                rdd = sc.parallelize(range(8), 2).map(lambda x: x)
                tasks = [
                    Task(job_id=0, stage_id=0, partition=p, attempt=0, rdd=rdd,
                         kind="result", func=lambda _i, it: list(it),
                         fault_plan=plan)
                    for p in range(2)
                ]
                observed = []
                with pytest.raises(JobAbortedError):
                    sc.task_scheduler.run_task_set(tasks, on_outcome=observed.append)
                attempts_seen[speculation] = sum(
                    1 for o in observed if o.partition == 1
                )
        assert attempts_seen[True] == attempts_seen[False] == 1

    def test_budget_allows_retries_below_limit(self):
        """A task failing once with budget 3 still recovers under
        speculation — the fix must not over-tighten."""
        with SparkContext("simulated[2]", max_task_failures=3,
                          speculation=True) as sc:
            sc.fault_plan = FaultPlan(fail_attempts={(-1, 0): 2})
            assert sc.parallelize(range(6), 2).collect() == list(range(6))

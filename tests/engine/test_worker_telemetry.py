"""Cross-process task telemetry: spans captured in workers, merged at
the driver with pids preserved and timestamps rebased — on every
backend, with labels byte-identical to untraced runs."""

import os

import numpy as np
import pytest

from repro.engine import SparkContext
from repro.obs import MetricsRegistry, Tracer

MASTERS = ["threads[2]", "processes[2]", "simulated[4]"]


def _run_job(sc):
    """A tiny job whose task body brackets a sub-phase with task_span."""

    def work(pid, it):
        from repro.obs.collect import task_span

        with task_span("task.unit_work", partition=pid) as sp:
            vals = [x * x for x in it]
            sp.annotate(n=len(vals))
        return vals

    return sc.parallelize(range(16), 4).map_partitions_with_index(work).collect()


@pytest.mark.parametrize("master", MASTERS)
class TestWorkerSpansPerBackend:
    def test_worker_spans_reach_the_driver_tracer(self, master):
        tracer = Tracer()
        with SparkContext(master, tracer=tracer) as sc:
            got = _run_job(sc)
        assert got == [x * x for x in range(16)]
        worker = [s for s in tracer.spans if s.cat == "worker"]
        names = {s.name for s in worker}
        # Every backend captures the explicit sub-phase and the
        # run_task bracket; one per partition task.
        assert "task.unit_work" in names
        assert "task.run" in names
        assert len([s for s in worker if s.name == "task.unit_work"]) == 4
        run_spans = [s for s in worker if s.name == "task.run"]
        assert {s.labels["partition"] for s in run_spans} == {0, 1, 2, 3}

    def test_rebased_starts_lie_inside_the_trace(self, master):
        tracer = Tracer()
        with SparkContext(master, tracer=tracer) as sc:
            _run_job(sc)
        from repro.obs import TraceReport

        report = TraceReport.from_tracer(tracer)
        for s in tracer.spans:
            if s.cat != "worker":
                continue
            # Rebase sanity: worker spans land within the trace extent,
            # not at raw perf_counter magnitudes (hours).
            assert -0.5 <= s.start <= report.wall_s + 0.5

    def test_untraced_run_produces_identical_results(self, master):
        with SparkContext(master) as sc:
            untraced = _run_job(sc)
        tracer = Tracer()
        with SparkContext(master, tracer=tracer) as sc:
            traced = _run_job(sc)
        assert untraced == traced


class TestProcessBackendSpecifics:
    def test_distinct_worker_pids_preserved(self):
        tracer = Tracer()
        with SparkContext("processes[2]", tracer=tracer) as sc:
            _run_job(sc)
        pids = {s.pid for s in tracer.spans if s.cat == "worker"}
        assert pids, "no worker spans captured"
        assert os.getpid() not in pids
        # 4 tasks over 2 process slots: both workers show up.
        assert len(pids) == 2

    def test_serialization_spans_only_cross_process(self):
        tracer = Tracer()
        with SparkContext("processes[2]", tracer=tracer) as sc:
            _run_job(sc)
        names = {s.name for s in tracer.spans if s.cat == "worker"}
        assert {"task.deserialize", "task.serialize"} <= names

        tracer_threads = Tracer()
        with SparkContext("threads[2]", tracer=tracer_threads) as sc:
            _run_job(sc)
        thread_names = {
            s.name for s in tracer_threads.spans if s.cat == "worker"
        }
        # In-process backends never pickle tasks: no envelope spans.
        assert "task.deserialize" not in thread_names
        assert "task.serialize" not in thread_names

    def test_in_process_backends_report_driver_pid(self):
        tracer = Tracer()
        with SparkContext("threads[2]", tracer=tracer) as sc:
            _run_job(sc)
        pids = {s.pid for s in tracer.spans if s.cat == "worker"}
        assert pids == {os.getpid()}


class TestTelemetryCollectionPolicy:
    def test_no_tracer_no_registry_means_no_collection(self):
        with SparkContext("threads[2]") as sc:
            def probe(pid, it):
                from repro.obs.collect import current_telemetry

                return [current_telemetry() is None for _ in it]

            got = sc.parallelize(range(4), 2).map_partitions_with_index(
                probe
            ).collect()
        assert all(got)

    def test_registry_alone_enables_collection(self):
        # Metric deltas need the buffer even when spans go nowhere.
        reg = MetricsRegistry()
        with SparkContext("threads[2]", metrics_registry=reg) as sc:
            def count(pid, it):
                from repro.obs.collect import current_telemetry

                t = current_telemetry()
                assert t is not None
                n = len(list(it))
                t.inc("repro_probe_total", n, help="Probe.")
                return [n]

            sc.parallelize(range(10), 2).map_partitions_with_index(
                count
            ).collect()
        assert reg.get("repro_probe_total").value() == pytest.approx(10.0)


class TestProfilingThroughTheEngine:
    def test_profiles_land_in_registry(self):
        reg = MetricsRegistry()
        with SparkContext("threads[2]", metrics_registry=reg,
                          profile=True) as sc:
            sc.parallelize(range(8), 2).map(lambda x: x + 1).collect()
        assert reg.get("repro_task_cpu_seconds") is not None
        rss = reg.get("repro_task_peak_rss_bytes")
        assert rss is not None
        assert max(rss._values.values()) > 1024 * 1024

    def test_alloc_profile_across_processes(self):
        reg = MetricsRegistry()
        with SparkContext("processes[2]", metrics_registry=reg,
                          profile=True, profile_alloc=True) as sc:
            got = sc.parallelize(range(4), 2).map(
                lambda x: len(bytes(200_000))
            ).collect()
        assert got == [200_000] * 4
        alloc = reg.get("repro_task_alloc_peak_bytes")
        assert alloc is not None
        assert max(alloc._values.values()) > 100_000


class TestDbscanLabelsUnaffected:
    @pytest.mark.parametrize("master", MASTERS)
    def test_traced_profiled_labels_byte_identical(self, master):
        from repro.data import generate_clustered
        from repro.dbscan import SparkDBSCAN

        pts = generate_clustered(n=400, num_clusters=3, cluster_std=8.0,
                                 seed=5).points
        plain = SparkDBSCAN(25.0, 5, num_partitions=4, master=master,
                            neighbor_mode="batched").fit(pts)
        tracer = Tracer()
        reg = MetricsRegistry()
        full = SparkDBSCAN(25.0, 5, num_partitions=4, master=master,
                           neighbor_mode="batched", tracer=tracer,
                           metrics_registry=reg, profile=True).fit(pts)
        assert np.array_equal(plain.labels, full.labels)
        worker_names = {s.name for s in tracer.spans if s.cat == "worker"}
        assert "task.expand" in worker_names
        assert "task.kdtree_query" in worker_names

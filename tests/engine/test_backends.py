"""All execution backends must produce identical results."""

import operator

import pytest

from repro.engine import SparkContext
from repro.engine.backends import parse_master

MASTERS = ["local", "local[1]", "threads[3]", "processes[2]", "simulated[8]"]


@pytest.mark.parametrize("master", MASTERS)
class TestBackendEquivalence:
    def test_map_collect(self, master):
        with SparkContext(master) as sc:
            got = sc.parallelize(range(20), 4).map(lambda x: x * x).collect()
        assert got == [x * x for x in range(20)]

    def test_shuffle(self, master):
        with SparkContext(master) as sc:
            got = dict(
                sc.parallelize([(i % 3, i) for i in range(30)], 4)
                .reduce_by_key(operator.add)
                .collect()
            )
        assert got == {0: sum(range(0, 30, 3)), 1: sum(range(1, 30, 3)), 2: sum(range(2, 30, 3))}

    def test_accumulator(self, master):
        with SparkContext(master) as sc:
            acc = sc.accumulator()
            sc.parallelize(range(12), 4).foreach(lambda x: acc.add(x))
            assert acc.value == 66

    def test_broadcast(self, master):
        with SparkContext(master) as sc:
            b = sc.broadcast({"offset": 5})
            got = sc.parallelize(range(4), 2).map(lambda x: x + b.value["offset"]).collect()
        assert got == [5, 6, 7, 8]

    def test_cache(self, master):
        with SparkContext(master) as sc:
            r = sc.parallelize(range(10), 2).map(lambda x: x + 1).cache()
            assert r.collect() == r.collect()


class TestParseMaster:
    def test_modes(self):
        assert parse_master("local") == ("local", 1)
        assert parse_master("local[1]") == ("local", 1)
        assert parse_master("threads[2]") == ("threads", 2)
        assert parse_master("processes[8]") == ("processes", 8)
        assert parse_master("simulated[512]") == ("simulated", 512)

    @pytest.mark.parametrize("serial_lie", ["local[2]", "local[8]", "local[*]"])
    def test_rejects_parallel_local(self, serial_lie):
        """local[n>1] would silently run serially; the error must point at
        backends that actually deliver the requested slots."""
        with pytest.raises(ValueError, match="threads\\[n\\]"):
            parse_master(serial_lie)

    def test_star_uses_cpu_count(self):
        import os

        assert parse_master("threads[*]")[1] == (os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", ["spark://host", "local[0]", "local[-1]", "", "yarn"])
    def test_rejects_bad_masters(self, bad):
        with pytest.raises(ValueError):
            parse_master(bad)


class TestProcessBackendBoundaries:
    def test_closures_serialized_with_cloudpickle(self):
        """Lambdas with captured state must cross the process boundary."""
        offset = 17
        with SparkContext("processes[2]") as sc:
            got = sc.parallelize(range(4), 2).map(lambda x: x + offset).collect()
        assert got == [17, 18, 19, 20]

    def test_numpy_arrays_cross_boundary(self):
        import numpy as np

        with SparkContext("processes[2]") as sc:
            arr = np.arange(10.0)
            b = sc.broadcast(arr)
            got = sc.parallelize(range(10), 2).map(lambda i: float(b.value[i])).collect()
        assert got == [float(i) for i in range(10)]

    def test_worker_failure_surfaces_as_job_abort(self):
        from repro.engine import JobAbortedError

        def die(x):
            raise ValueError("kaboom")

        with SparkContext("processes[2]") as sc:
            with pytest.raises(JobAbortedError):
                sc.parallelize([1], 1).map(die).collect()

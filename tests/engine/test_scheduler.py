"""DAG scheduler: stage cutting, shuffle reuse, retries, metrics."""

import operator

import pytest

from repro.engine import FaultPlan, JobAbortedError, SparkContext


class TestStageConstruction:
    def test_narrow_only_job_has_one_stage(self, sc):
        sc.parallelize(range(10), 2).map(lambda x: x).filter(bool).collect()
        assert len(sc.last_job_metrics.stages) == 1

    def test_shuffle_job_has_two_stages(self, sc):
        sc.parallelize([(1, 1)] * 4, 2).reduce_by_key(operator.add).collect()
        assert len(sc.last_job_metrics.stages) == 2

    def test_chained_shuffles_make_three_stages(self, sc):
        (
            sc.parallelize([(i % 2, i) for i in range(10)], 2)
            .reduce_by_key(operator.add)
            .map(lambda kv: (kv[1] % 3, 1))
            .reduce_by_key(operator.add)
            .collect()
        )
        assert len(sc.last_job_metrics.stages) == 3

    def test_shuffle_output_reused_across_jobs(self, sc):
        """Spark reuses map outputs; the second action must not re-run
        the shuffle-map stage."""
        r = sc.parallelize([(i % 3, 1) for i in range(9)], 3).reduce_by_key(
            operator.add
        )
        r.collect()
        first_stages = len(sc.last_job_metrics.stages)
        r.count()
        second_stages = len(sc.last_job_metrics.stages)
        assert first_stages == 2
        assert second_stages == 1  # map side skipped

    def test_diamond_lineage(self, sc):
        """An RDD used by two branches of the same job computes correctly."""
        base = sc.parallelize(range(10), 2)
        left = base.map(lambda x: x * 2)
        right = base.map(lambda x: x * 3)
        got = left.union(right).sum()
        assert got == sum(x * 2 for x in range(10)) + sum(x * 3 for x in range(10))

    def test_result_order_matches_partition_order(self, sc):
        chunks = sc.parallelize(range(12), 4).glom().collect()
        assert chunks == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9, 10, 11]]


class TestRetries:
    def test_flaky_task_recovers(self, sc):
        sc.fault_plan = FaultPlan(fail_attempts={(-1, 0): 3})
        assert sc.parallelize(range(8), 4).collect() == list(range(8))

    def test_permanent_failure_aborts(self):
        with SparkContext("simulated[2]", max_task_failures=3) as sc:
            sc.fault_plan = FaultPlan(fail_attempts={(-1, 0): 100})
            with pytest.raises(JobAbortedError) as exc:
                sc.parallelize(range(4), 2).collect()
            assert "failed 3 times" in str(exc.value)

    def test_user_exception_aborts_with_cause(self, sc):
        def boom(x):
            raise RuntimeError("user bug")

        with pytest.raises(JobAbortedError) as exc:
            sc.parallelize([1], 1).map(boom).collect()
        assert "user bug" in str(exc.value)

    def test_failure_in_shuffle_map_stage_recovers(self, sc):
        sc.fault_plan = FaultPlan(fail_attempts={(0, 1): 1})
        got = dict(
            sc.parallelize([(i % 2, 1) for i in range(8)], 2)
            .reduce_by_key(operator.add)
            .collect()
        )
        assert got == {0: 4, 1: 4}

    def test_retry_attempt_metrics_recorded(self, sc):
        sc.fault_plan = FaultPlan(fail_attempts={(-1, 0): 1})
        sc.parallelize(range(4), 2).collect()
        stage = sc.last_job_metrics.stages[0]
        # 2 partitions + 1 failed attempt = 3 recorded task attempts
        assert len(stage.task_metrics) == 3
        assert sum(1 for t in stage.task_metrics if not t.succeeded) == 1


class TestMetrics:
    def test_wall_time_positive(self, sc):
        sc.parallelize(range(10), 2).collect()
        m = sc.last_job_metrics
        assert m.wall_time > 0
        assert m.total_executor_time >= 0

    def test_task_durations_one_per_partition(self, sc):
        sc.parallelize(range(40), 8).map(lambda x: x * x).collect()
        assert len(sc.last_job_metrics.task_durations()) == 8

    def test_straggler_delay_visible_in_task_duration(self, sc):
        sc.fault_plan = FaultPlan(delays={(-1, 1): 0.05})
        sc.parallelize(range(4), 2).collect()
        durations = sc.last_job_metrics.stages[0].task_durations()
        assert durations[1] >= 0.05
        assert durations[0] < 0.05

    def test_simulated_wall_uses_slots(self, sc):
        sc.fault_plan = FaultPlan(delays={(-1, 0): 0.03, (-1, 1): 0.03})
        sc.parallelize(range(4), 2).collect()
        m = sc.last_job_metrics
        two_slots = m.simulated_wall(2)
        one_slot = m.simulated_wall(1)
        assert one_slot >= two_slots
        assert one_slot >= 0.06

    def test_no_jobs_yet_raises(self):
        with SparkContext("simulated[2]") as sc:
            with pytest.raises(ValueError):
                _ = sc.last_job_metrics

"""Concurrency: the threads backend under real parallel load."""

import threading

from repro.engine import SparkContext, StorageLevel


class TestThreadBackendSafety:
    def test_accumulator_under_contention(self):
        """Many concurrent tasks accumulating must lose nothing."""
        with SparkContext("threads[8]") as sc:
            acc = sc.accumulator()
            sc.parallelize(range(2000), 32).foreach(lambda x: acc.add(1))
            assert acc.value == 2000

    def test_list_accumulator_under_contention(self):
        with SparkContext("threads[8]") as sc:
            acc = sc.list_accumulator()
            sc.parallelize(range(160), 16).foreach_partition(
                lambda it: acc.add([sum(it)])
            )
            assert len(acc.value) == 16
            assert sum(acc.value) == sum(range(160))

    def test_block_manager_concurrent_cache_fill(self):
        """Parallel tasks caching distinct partitions of the same RDD."""
        with SparkContext("threads[8]") as sc:
            r = sc.parallelize(range(400), 16).map(lambda x: x * 2).cache()
            assert sorted(r.collect()) == sorted(x * 2 for x in range(400))
            assert sc.block_manager.num_memory_blocks == 16
            # Second pass served from cache, concurrently.
            assert r.sum() == sum(x * 2 for x in range(400))

    def test_broadcast_read_from_many_threads(self):
        with SparkContext("threads[8]") as sc:
            b = sc.broadcast(list(range(1000)))
            got = sc.parallelize(range(64), 16).map(lambda i: b.value[i]).collect()
            assert got == list(range(64))

    def test_tasks_actually_overlap(self):
        """Sanity that the pool runs tasks concurrently: barrier-style
        rendezvous of two tasks would deadlock a serial executor."""
        barrier = threading.Barrier(2, timeout=10)

        def wait_at_barrier(_it):
            barrier.wait()

        with SparkContext("threads[2]") as sc:
            sc.parallelize(range(2), 2).foreach_partition(wait_at_barrier)
        # Reaching here proves both tasks were in flight simultaneously.

    def test_concurrent_jobs_from_user_threads(self):
        """Two driver threads submitting jobs to one context."""
        with SparkContext("threads[4]") as sc:
            results: dict[str, int] = {}

            def submit(tag, lo, hi):
                results[tag] = sc.parallelize(range(lo, hi), 4).sum()

            t1 = threading.Thread(target=submit, args=("a", 0, 100))
            t2 = threading.Thread(target=submit, args=("b", 100, 200))
            t1.start(); t2.start(); t1.join(); t2.join()
            assert results["a"] == sum(range(0, 100))
            assert results["b"] == sum(range(100, 200))

    def test_disk_cache_concurrent(self, tmp_path):
        with SparkContext("threads[8]", spill_dir=str(tmp_path)) as sc:
            r = sc.parallelize(range(100), 8).persist(StorageLevel.DISK)
            assert r.count() == 100
            assert sc.block_manager.num_disk_blocks == 8
            assert r.count() == 100

"""Partitioner invariants, especially the paper's index-range partitioning."""

import pytest

from repro.engine import HashPartitioner, IndexRangePartitioner, RangePartitioner


class TestHashPartitioner:
    def test_in_range(self):
        p = HashPartitioner(5)
        assert all(0 <= p.partition(k) < 5 for k in range(1000))

    def test_deterministic(self):
        p = HashPartitioner(7)
        assert [p.partition(k) for k in range(50)] == [
            p.partition(k) for k in range(50)
        ]

    def test_string_keys(self):
        p = HashPartitioner(3)
        assert 0 <= p.partition("hello") < 3

    def test_equality(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestRangePartitioner:
    def test_bounds(self):
        p = RangePartitioner([10, 20, 30])
        assert p.num_partitions == 4
        assert p.partition(5) == 0
        assert p.partition(10) == 0
        assert p.partition(11) == 1
        assert p.partition(25) == 2
        assert p.partition(31) == 3

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            RangePartitioner([3, 1])


class TestIndexRangePartitioner:
    def test_ranges_cover_exactly(self):
        p = IndexRangePartitioner(100, 7)
        covered = []
        for i in range(7):
            lo, hi = p.range_of(i)
            covered.extend(range(lo, hi))
        assert covered == list(range(100))

    def test_ranges_balanced(self):
        p = IndexRangePartitioner(10, 3)
        sizes = [hi - lo for lo, hi in (p.range_of(i) for i in range(3))]
        assert sizes == [4, 3, 3]  # first partitions absorb the remainder

    def test_partition_inverse_of_range(self):
        p = IndexRangePartitioner(57, 5)
        for idx in range(57):
            owner = p.partition(idx)
            lo, hi = p.range_of(owner)
            assert lo <= idx < hi

    def test_owns(self):
        p = IndexRangePartitioner(10, 2)
        assert p.owns(0, 4)
        assert not p.owns(0, 5)
        assert p.owns(1, 5)

    def test_paper_example_ranges(self):
        # Figure 4: 5000 points, 2 partitions -> [0,2500) and [2500,5000).
        p = IndexRangePartitioner(5000, 2)
        assert p.range_of(0) == (0, 2500)
        assert p.range_of(1) == (2500, 5000)
        assert p.partition(2499) == 0
        assert p.partition(3000) == 1  # the paper's SEED example point

    def test_matches_parallelize_slicing(self):
        """Index ranges must agree with ParallelCollectionRDD's slicing —
        the DBSCAN job depends on this alignment."""
        from repro.engine import SparkContext

        with SparkContext("local[1]") as sc:
            for n, p in [(10, 3), (100, 7), (13, 5), (5, 5), (8, 3)]:
                part = IndexRangePartitioner(n, p)
                chunks = sc.parallelize(range(n), p).glom().collect()
                for i, chunk in enumerate(chunks):
                    lo, hi = part.range_of(i)
                    assert chunk == list(range(lo, hi))

    def test_out_of_range_key_raises(self):
        p = IndexRangePartitioner(10, 2)
        with pytest.raises(IndexError):
            p.partition(10)
        with pytest.raises(IndexError):
            p.partition(-1)

    def test_more_partitions_than_points(self):
        p = IndexRangePartitioner(3, 5)
        sizes = [hi - lo for lo, hi in (p.range_of(i) for i in range(5))]
        assert sizes == [1, 1, 1, 0, 0]

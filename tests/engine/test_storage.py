"""Block manager: cache levels, eviction, lineage recomputation."""

from repro.engine import SparkContext, StorageLevel
from repro.engine.storage import BlockManager


class TestBlockManager:
    def test_memory_roundtrip(self, tmp_path):
        bm = BlockManager(str(tmp_path))
        bm.put(1, 0, [1, 2, 3], StorageLevel.MEMORY)
        assert bm.get(1, 0) == [1, 2, 3]
        assert bm.num_memory_blocks == 1

    def test_disk_roundtrip(self, tmp_path):
        bm = BlockManager(str(tmp_path))
        bm.put(1, 0, ["a", "b"], StorageLevel.DISK)
        assert bm.get(1, 0) == ["a", "b"]
        assert bm.num_disk_blocks == 1
        assert bm.num_memory_blocks == 0

    def test_miss_returns_none(self, tmp_path):
        bm = BlockManager(str(tmp_path))
        assert bm.get(9, 9) is None
        assert bm.misses == 1

    def test_evict_partition(self, tmp_path):
        bm = BlockManager(str(tmp_path))
        bm.put(1, 0, [1], StorageLevel.MEMORY)
        bm.put(1, 1, [2], StorageLevel.MEMORY)
        assert bm.evict(1, 0) == 1
        assert bm.get(1, 0) is None
        assert bm.get(1, 1) == [2]

    def test_evict_whole_rdd(self, tmp_path):
        bm = BlockManager(str(tmp_path))
        bm.put(1, 0, [1], StorageLevel.MEMORY)
        bm.put(1, 1, [2], StorageLevel.DISK)
        bm.put(2, 0, [3], StorageLevel.MEMORY)
        assert bm.evict(1) == 2
        assert bm.get(2, 0) == [3]

    def test_hit_counters(self, tmp_path):
        bm = BlockManager(str(tmp_path))
        bm.put(1, 0, [1], StorageLevel.MEMORY)
        bm.get(1, 0)
        bm.get(1, 0)
        assert bm.hits == 2

    def test_clear_removes_everything(self, tmp_path):
        bm = BlockManager(str(tmp_path))
        bm.put(1, 0, [1], StorageLevel.MEMORY)
        bm.put(2, 0, [2], StorageLevel.DISK)
        bm.clear()
        assert bm.get(1, 0) is None
        assert bm.get(2, 0) is None


class TestLineageRecovery:
    def test_evicted_cache_block_recomputes(self, sc):
        """Losing a cached block must be transparent: lineage recomputes it
        (the paper's Spark-vs-replication fault story)."""
        acc = sc.accumulator()
        r = sc.parallelize(range(6), 2).map(lambda x: acc.add(1) or x * 2).cache()
        assert r.collect() == [x * 2 for x in range(6)]
        assert acc.value == 6
        # Simulate executor cache loss.
        sc.block_manager.evict(r.rdd_id)
        assert r.collect() == [x * 2 for x in range(6)]
        assert acc.value == 12  # recomputed from the parent

    def test_disk_persisted_rdd(self, sc):
        r = sc.parallelize(range(8), 2).map(lambda x: -x).persist(StorageLevel.DISK)
        assert r.collect() == [-x for x in range(8)]
        assert sc.block_manager.num_disk_blocks == 2
        assert r.collect() == [-x for x in range(8)]

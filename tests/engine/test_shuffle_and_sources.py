"""Shuffle file machinery and input sources."""

import pytest

from repro.engine import HashPartitioner, SparkContext
from repro.engine.errors import ShuffleFetchError
from repro.engine.shuffle import ShuffleManager, read_reduce_input, write_map_output
from repro.engine.sources import InMemorySource, LocalTextFileSource


class TestShuffleFiles:
    def test_write_read_roundtrip(self, tmp_path):
        p = HashPartitioner(3)
        records = [(k, k * 10) for k in range(30)]
        paths, nbytes = write_map_output(str(tmp_path), 0, 0, records, p)
        assert nbytes > 0
        got = []
        for r in range(3):
            if r in paths:
                for k, v in read_reduce_input([paths[r]]):
                    assert p.partition(k) == r
                    got.append((k, v))
        assert sorted(got) == records

    def test_manager_tracks_outputs(self, tmp_path):
        mgr = ShuffleManager(str(tmp_path))
        sid = mgr.new_shuffle_id()
        d = mgr.bucket_dir(sid)
        p = HashPartitioner(2)
        paths0, _ = write_map_output(d, sid, 0, [(0, "a"), (1, "b")], p)
        paths1, _ = write_map_output(d, sid, 1, [(0, "c")], p)
        mgr.register_map_output(sid, 0, paths0)
        mgr.register_map_output(sid, 1, paths1)
        for r in range(2):
            fetched = mgr.map_output_paths(sid, 2, r)
            records = list(read_reduce_input(fetched))
            assert all(p.partition(k) == r for k, _ in records)

    def test_missing_map_output_raises_fetch_error(self, tmp_path):
        mgr = ShuffleManager(str(tmp_path))
        sid = mgr.new_shuffle_id()
        mgr.register_map_output(sid, 0, {})
        with pytest.raises(ShuffleFetchError):
            mgr.map_output_paths(sid, 2, 0)  # map partition 1 never reported

    def test_empty_bucket_for_reducer_is_fine(self, tmp_path):
        mgr = ShuffleManager(str(tmp_path))
        sid = mgr.new_shuffle_id()
        mgr.register_map_output(sid, 0, {})  # map task produced nothing
        assert mgr.map_output_paths(sid, 1, 0) == []


class TestLocalTextFileSource:
    def _write(self, tmp_path, lines):
        path = tmp_path / "data.txt"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_all_lines_exactly_once(self, tmp_path):
        lines = [f"line-{i:04d}-{'x' * (i % 17)}" for i in range(200)]
        path = self._write(tmp_path, lines)
        for nsplits in (1, 2, 3, 7, 50):
            src = LocalTextFileSource(path, nsplits)
            got = [line for i in range(nsplits) for line in src.read_split(i)]
            assert got == lines, f"nsplits={nsplits}"

    def test_via_context_text_file(self, tmp_path, sc):
        lines = [str(i) for i in range(57)]
        path = self._write(tmp_path, lines)
        rdd = sc.text_file(path, 5)
        assert rdd.map(int).collect() == list(range(57))

    def test_missing_file_raises(self):
        with pytest.raises(FileNotFoundError):
            LocalTextFileSource("/nonexistent/file.txt", 2)

    def test_split_index_bounds(self, tmp_path):
        src = LocalTextFileSource(self._write(tmp_path, ["a"]), 2)
        with pytest.raises(IndexError):
            src.read_split(2)

    def test_more_splits_than_bytes(self, tmp_path):
        path = self._write(tmp_path, ["ab"])
        src = LocalTextFileSource(path, 10)
        got = [line for i in range(10) for line in src.read_split(i)]
        assert got == ["ab"]


class TestInMemorySource:
    def test_from_source(self, sc):
        src = InMemorySource([[1, 2], [3], []])
        rdd = sc.from_source(src)
        assert rdd.num_partitions == 3
        assert rdd.collect() == [1, 2, 3]

"""Pair-RDD operations: cogroup and the join family."""

import pytest


@pytest.fixture
def users(sc):
    return sc.parallelize([(1, "ada"), (2, "grace"), (3, "edsger"), (1, "alan")], 2)


@pytest.fixture
def logins(sc):
    return sc.parallelize([(1, "mon"), (3, "fri"), (4, "sat")], 2)


class TestKeysValues:
    def test_keys(self, sc, users):
        assert sorted(users.keys().collect()) == [1, 1, 2, 3]

    def test_values(self, sc, users):
        assert sorted(users.values().collect()) == ["ada", "alan", "edsger", "grace"]

    def test_flat_map_values(self, sc):
        r = sc.parallelize([(1, "ab"), (2, "c")], 2)
        got = sorted(r.flat_map_values(list).collect())
        assert got == [(1, "a"), (1, "b"), (2, "c")]


class TestCogroup:
    def test_groups_both_sides(self, users, logins):
        got = {k: (sorted(l), sorted(r)) for k, (l, r) in users.cogroup(logins).collect()}
        assert got == {
            1: (["ada", "alan"], ["mon"]),
            2: (["grace"], []),
            3: (["edsger"], ["fri"]),
            4: ([], ["sat"]),
        }

    def test_empty_other(self, sc, users):
        empty = sc.parallelize([], 2)
        got = dict(users.cogroup(empty).collect())
        assert all(rights == [] for _l, rights in got.values())


class TestJoins:
    def test_inner_join(self, users, logins):
        got = sorted(users.join(logins).collect())
        assert got == [
            (1, ("ada", "mon")), (1, ("alan", "mon")), (3, ("edsger", "fri")),
        ]

    def test_left_outer_join(self, users, logins):
        got = sorted(users.left_outer_join(logins).collect())
        assert (2, ("grace", None)) in got
        assert (1, ("ada", "mon")) in got
        assert len(got) == 4  # 2 for key 1, 1 for key 2 (None), 1 for key 3

    def test_subtract_by_key(self, users, logins):
        got = sorted(users.subtract_by_key(logins).collect())
        assert got == [(2, "grace")]

    def test_join_with_duplicates_both_sides(self, sc):
        a = sc.parallelize([("k", 1), ("k", 2)], 2)
        b = sc.parallelize([("k", "x"), ("k", "y")], 2)
        got = sorted(a.join(b).collect())
        assert len(got) == 4  # cross product within the key

    def test_join_matches_python_reference(self, sc, rng):
        left = [(int(k), int(v)) for k, v in rng.integers(0, 8, (30, 2))]
        right = [(int(k), int(v)) for k, v in rng.integers(0, 8, (20, 2))]
        expected = sorted(
            (k, (lv, rv)) for k, lv in left for k2, rv in right if k == k2
        )
        got = sorted(sc.parallelize(left, 3).join(sc.parallelize(right, 2)).collect())
        assert got == expected

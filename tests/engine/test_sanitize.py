"""Runtime sanitizers: each seeded violation must be caught.

Covers the broadcast write-barrier (threads *and* processes — the
rehydrated handle must carry the expected hash so the worker's cached
value is re-verified per task), the accumulator read guard, the race /
lock-order detector, and the structural deep hash they rest on.
"""

import pickle

import numpy as np
import pytest

from repro.engine import (
    AccumulatorReadError,
    BroadcastMutationError,
    SparkContext,
    TrackedLock,
    deep_hash,
)
from repro.engine.broadcast import _reset_process_cache
from repro.engine.executor import Task, run_task
from repro.engine.sanitize import (
    FATAL_ERROR_TYPES,
    RaceDetector,
    Sanitizer,
    SanitizerError,
)
from repro.engine.storage import BlockManager


# ---------------------------------------------------------------------------
# deep_hash
# ---------------------------------------------------------------------------

class TestDeepHash:
    def test_equal_values_equal_hashes(self):
        v = {"a": [1, 2.5, "x"], "b": (True, None)}
        assert deep_hash(v) == deep_hash({"b": (True, None), "a": [1, 2.5, "x"]})

    def test_set_order_insensitive(self):
        assert deep_hash({"x", "y", "z"}) == deep_hash({"z", "x", "y"})

    def test_numpy_by_content(self):
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert deep_hash(a) == deep_hash(a.copy())
        b = a.copy()
        b[1, 2] += 1e-9
        assert deep_hash(a) != deep_hash(b)

    def test_dtype_and_shape_matter(self):
        a = np.zeros(4, dtype=np.int64)
        assert deep_hash(a) != deep_hash(a.astype(np.float64))
        assert deep_hash(a) != deep_hash(a.reshape(2, 2))

    def test_mutation_changes_hash(self):
        v = {"neighbors": [1, 2, 3]}
        before = deep_hash(v)
        v["neighbors"].append(4)
        assert deep_hash(v) != before

    def test_distinguishes_list_from_tuple(self):
        assert deep_hash([1, 2]) != deep_hash((1, 2))

    def test_object_by_state(self):
        class Tree:
            def __init__(self, pts):
                self.pts = pts

        assert deep_hash(Tree([1, 2])) == deep_hash(Tree([1, 2]))
        assert deep_hash(Tree([1, 2])) != deep_hash(Tree([1, 3]))

    def test_cycle_safe(self):
        v = [1, 2]
        v.append(v)
        assert isinstance(deep_hash(v), str)

    def test_kdtree_hashable(self, blobs_small):
        from repro.kdtree import KDTree

        tree = KDTree(blobs_small.points)
        assert deep_hash(tree) == deep_hash(KDTree(blobs_small.points))


# ---------------------------------------------------------------------------
# Broadcast write-barrier
# ---------------------------------------------------------------------------

class TestBroadcastBarrier:
    @pytest.mark.parametrize("master", ["local", "threads[2]", "processes[2]"])
    def test_mutation_caught(self, master):
        with SparkContext(master, sanitize=True) as sc:
            b = sc.broadcast({"shared": [1, 2, 3]})

            def mutate(x):
                b.value["shared"].append(x)
                return x

            with pytest.raises(BroadcastMutationError) as exc_info:
                sc.parallelize(range(4), 2).map(mutate).collect()
        msg = str(exc_info.value)
        assert "broadcast 0" in msg
        assert "stage=" in msg and "partition=" in msg

    def test_read_only_access_passes(self):
        with SparkContext("threads[2]", sanitize=True) as sc:
            b = sc.broadcast([10, 20, 30])
            got = sc.parallelize(range(3), 3).map(lambda i: b.value[i]).collect()
        assert got == [10, 20, 30]

    def test_no_sanitize_no_barrier(self):
        # Without --sanitize behaviour is unchanged: the mutation slips
        # through silently (that is exactly the bug class the barrier
        # exists to surface).
        with SparkContext("threads[2]") as sc:
            b = sc.broadcast([0])

            def mutate(x):
                b.value.append(x)
                return x

            sc.parallelize(range(2), 2).map(mutate).collect()

    def test_numpy_mutation_caught(self):
        with SparkContext("local", sanitize=True) as sc:
            b = sc.broadcast(np.zeros(8))

            def poke(x):
                b.value[x] = 1.0
                return x

            with pytest.raises(BroadcastMutationError):
                sc.parallelize(range(4), 2).map(poke).collect()

    def test_violation_recorded_by_sanitizer(self):
        sc = SparkContext("local", sanitize=True)
        try:
            b = sc.broadcast([1])

            def mutate(x):
                b.value.append(x)
                return x

            with pytest.raises(BroadcastMutationError):
                sc.parallelize(range(2), 2).map(mutate).collect()
            assert sc.sanitizer is not None
            kinds = [f.kind for f in sc.sanitizer.findings]
            assert "violation" in kinds
        finally:
            sc.stop()

    def test_setstate_preserves_hash(self, tmp_path):
        """The satellite bugfix: a pickled handle keeps the expected
        hash, so a worker process that rehydrates it still verifies."""
        from repro.engine.broadcast import Broadcast

        b = Broadcast(7, [1, 2, 3], str(tmp_path), expected_hash=deep_hash([1, 2, 3]))
        b2 = pickle.loads(pickle.dumps(b))
        assert b2._expected_hash == b._expected_hash
        assert b2.nbytes == b.nbytes

    def test_process_cache_reuse_reverified(self, tmp_path):
        """A cached (already-materialized) value is re-verified per
        task — the second task must still catch a mutation done after
        the first load."""
        from repro.engine.broadcast import Broadcast

        value = {"k": [1]}
        b = Broadcast(3, value, str(tmp_path), expected_hash=deep_hash(value))
        handle = pickle.loads(pickle.dumps(b))
        _reset_process_cache()
        bm = BlockManager()
        base = dict(
            job_id=0, stage_id=0, partition=0, attempt=0, kind="result",
            sanitize=True,
        )
        # Task 1 materializes from disk and mutates the cached value.
        def mutate(_pid, it):
            list(it)
            handle.value["k"].append(99)
            return None

        # Task 2 only *reads* the (already mutated) cached value.
        def read_only(_pid, it):
            list(it)
            return handle.value["k"][0]

        with SparkContext("local") as sc:
            rdd = sc.parallelize([0], 1)
            t1 = Task(rdd=rdd, func=mutate, **base)
            o1 = run_task(t1, bm)
            assert not o1.succeeded and o1.fatal
            assert o1.error_type == "BroadcastMutationError"
            # Without per-task re-verification the cached (mutated)
            # value would now pass silently; the barrier must re-check.
            t2 = Task(rdd=rdd, func=read_only, **base)
            o2 = run_task(t2, bm)
            assert not o2.succeeded and o2.fatal
            assert o2.error_type == "BroadcastMutationError"
        _reset_process_cache()


# ---------------------------------------------------------------------------
# Accumulator read guard
# ---------------------------------------------------------------------------

class TestAccumulatorGuard:
    def test_read_in_task_raises(self):
        with SparkContext("threads[2]", sanitize=True) as sc:
            acc = sc.accumulator()

            def peek(x):
                acc.add(1)
                return acc.value

            with pytest.raises(AccumulatorReadError) as exc_info:
                sc.parallelize(range(4), 2).map(peek).collect()
        assert "write-only" in str(exc_info.value)

    def test_write_in_task_allowed(self):
        with SparkContext("threads[2]", sanitize=True) as sc:
            acc = sc.accumulator()
            sc.parallelize(range(10), 2).foreach(lambda x: acc.add(x))
            assert acc.value == sum(range(10))

    def test_driver_read_allowed(self):
        with SparkContext("local", sanitize=True) as sc:
            acc = sc.accumulator()
            acc.add(5)
            assert acc.value == 5


# ---------------------------------------------------------------------------
# Fatal outcomes: no retry burn
# ---------------------------------------------------------------------------

class TestFatalAbort:
    def test_sanitizer_violation_not_retried(self):
        attempts = []
        with SparkContext("local", sanitize=True, max_task_failures=4) as sc:
            b = sc.broadcast([1])

            def mutate(x):
                attempts.append(x)
                b.value.append(x)
                return x

            with pytest.raises(BroadcastMutationError):
                sc.parallelize([0], 1).map(mutate).collect()
        # One attempt only — a mutated broadcast cannot succeed on retry.
        assert len(attempts) == 1

    def test_error_type_mapping_complete(self):
        assert FATAL_ERROR_TYPES["BroadcastMutationError"] is BroadcastMutationError
        assert FATAL_ERROR_TYPES["AccumulatorReadError"] is AccumulatorReadError
        for cls in FATAL_ERROR_TYPES.values():
            assert issubclass(cls, SanitizerError)


# ---------------------------------------------------------------------------
# Race / lock-order detector
# ---------------------------------------------------------------------------

class TestRaceDetector:
    def test_unlocked_cross_task_write_flagged(self):
        det = RaceDetector()
        det.record_access("engine.counter", "task-a", write=True, locks=())
        det.record_access("engine.counter", "task-b", write=False, locks=())
        races = [f for f in det.findings() if f.kind == "race"]
        assert len(races) == 1
        assert "engine.counter" in races[0].detail

    def test_common_lock_suppresses(self):
        det = RaceDetector()
        det.record_access("state", "task-a", write=True, locks=("mu",))
        det.record_access("state", "task-b", write=True, locks=("mu",))
        assert not det.findings()

    def test_lockset_intersection(self):
        # Locksets {a, mu} and {b, mu} intersect to {mu}: protected.
        det = RaceDetector()
        det.record_access("state", "t1", write=True, locks=("a", "mu"))
        det.record_access("state", "t2", write=True, locks=("b", "mu"))
        assert not det.findings()
        # A third access without mu empties the candidate set.
        det.record_access("state", "t3", write=False, locks=("b",))
        assert [f.kind for f in det.findings()] == ["race"]

    def test_single_task_never_flagged(self):
        det = RaceDetector()
        det.record_access("state", "t1", write=True, locks=())
        det.record_access("state", "t1", write=True, locks=())
        assert not det.findings()

    def test_read_only_sharing_never_flagged(self):
        det = RaceDetector()
        det.record_access("state", "t1", write=False, locks=())
        det.record_access("state", "t2", write=False, locks=())
        assert not det.findings()

    def test_lock_order_cycle_flagged(self):
        det = RaceDetector()
        det.acquire("A")
        det.acquire("B")   # A -> B
        det.release("B")
        det.release("A")
        det.acquire("B")
        det.acquire("A")   # B -> A: cycle
        det.release("A")
        det.release("B")
        cycles = [f for f in det.findings() if f.kind == "lock_cycle"]
        assert len(cycles) == 1
        assert "A" in cycles[0].detail and "B" in cycles[0].detail

    def test_consistent_order_no_cycle(self):
        det = RaceDetector()
        for _ in range(2):
            det.acquire("A")
            det.acquire("B")
            det.release("B")
            det.release("A")
        assert not det.findings()

    def test_tracked_lock_feeds_detector(self):
        det = RaceDetector()
        lock_a = TrackedLock("A", detector=det)
        lock_b = TrackedLock("B", detector=det)
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass
        assert any(f.kind == "lock_cycle" for f in det.findings())

    def test_threads_backend_seeded_race(self):
        """An unsynchronized shared dict mutated across tasks is flagged
        at context stop, without failing the job (races are reported,
        not raised — the schedule may or may not have corrupted data)."""
        shared: dict[int, int] = {}
        sc = SparkContext("threads[4]", sanitize=True)
        try:
            san = sc.sanitizer
            assert san is not None

            def racy(x):
                san.record_access("user.shared_dict", write=True, locks=())
                shared[x] = x
                return x

            sc.parallelize(range(8), 4).map(racy).collect()
            findings = san.finalize()
            assert any(
                f.kind == "race" and "user.shared_dict" in f.detail
                for f in findings
            )
        finally:
            sc.stop()

    def test_clean_sanitized_engine_run_reports_nothing(self):
        """Engine-internal instrumentation (block manager, broadcast
        cache) must not self-report: every internal touch carries its
        guarding lock."""
        sc = SparkContext("threads[4]", sanitize=True)
        try:
            b = sc.broadcast(list(range(32)))
            rdd = sc.parallelize(range(64), 8).map(lambda x: b.value[x % 32]).cache()
            rdd.collect()
            rdd.collect()  # cache hits touch the block manager again
            findings = sc.sanitizer.finalize()
            assert findings == []
        finally:
            sc.stop()


# ---------------------------------------------------------------------------
# Sanitizer plumbing
# ---------------------------------------------------------------------------

class TestSanitizerPlumbing:
    def test_findings_emitted_as_metrics(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        san = Sanitizer(metrics_registry=registry)
        san.report("race", "seeded", key="k")
        text = registry.exposition()
        assert "repro_sanitizer_findings_total" in text

    def test_event_log_gets_report(self, tmp_path):
        log = tmp_path / "events.jsonl"
        with SparkContext("local", sanitize=True, event_log_path=str(log)) as sc:
            sc.parallelize(range(4), 2).sum()
        content = log.read_text()
        assert "sanitizer_report" in content

    def test_context_without_sanitize_has_no_sanitizer(self):
        with SparkContext("local") as sc:
            assert sc.sanitizer is None

"""Newer RDD operations: sample, sortBy, cartesian, aggregate, stats, ..."""

import pytest

from repro.engine import SparkContext
from repro.engine.rdd import StatCounter


class TestSample:
    def test_fraction_zero_and_one(self, sc):
        r = sc.parallelize(range(100), 4)
        assert r.sample(0.0).count() == 0
        assert r.sample(1.0).collect() == list(range(100))

    def test_deterministic_in_seed(self, sc):
        r = sc.parallelize(range(1000), 4)
        assert r.sample(0.3, seed=7).collect() == r.sample(0.3, seed=7).collect()

    def test_roughly_proportional(self, sc):
        n = sc.parallelize(range(10_000), 4).sample(0.25, seed=1).count()
        assert 2000 < n < 3000

    def test_bad_fraction(self, sc):
        with pytest.raises(ValueError):
            sc.parallelize(range(5)).sample(1.5)


class TestSortBy:
    def test_ascending(self, sc):
        data = [5, 3, 9, 1, 7, 2, 8, 0, 6, 4]
        got = sc.parallelize(data, 3).sort_by(lambda x: x).collect()
        assert got == sorted(data)

    def test_descending(self, sc):
        data = [5, 3, 9, 1, 7, 2, 8, 0, 6, 4]
        got = sc.parallelize(data, 3).sort_by(lambda x: x, ascending=False).collect()
        assert got == sorted(data, reverse=True)

    def test_by_key_function(self, sc):
        data = ["ccc", "a", "bb", "dddd"]
        got = sc.parallelize(data, 2).sort_by(len).collect()
        assert got == ["a", "bb", "ccc", "dddd"]

    def test_larger_input(self, sc, rng):
        data = rng.integers(0, 10_000, 500).tolist()
        got = sc.parallelize(data, 5).sort_by(lambda x: x).collect()
        assert got == sorted(data)

    def test_single_partition(self, sc):
        got = sc.parallelize([3, 1, 2], 1).sort_by(lambda x: x).collect()
        assert got == [1, 2, 3]


class TestCartesian:
    def test_all_pairs(self, sc):
        a = sc.parallelize([1, 2], 2)
        b = sc.parallelize("xy", 2)
        got = sorted(a.cartesian(b).collect())
        assert got == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]

    def test_count_is_product(self, sc):
        a = sc.parallelize(range(7), 3)
        b = sc.parallelize(range(5), 2)
        assert a.cartesian(b).count() == 35


class TestAggregations:
    def test_fold_empty(self, sc):
        assert sc.parallelize([], 3).fold(0, lambda a, b: a + b) == 0

    def test_fold_sum(self, sc):
        assert sc.parallelize(range(10), 3).fold(0, lambda a, b: a + b) == 45

    def test_aggregate_count_and_sum(self, sc):
        count, total = sc.parallelize(range(1, 101), 4).aggregate(
            (0, 0),
            lambda acc, x: (acc[0] + 1, acc[1] + x),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        assert (count, total) == (100, 5050)

    def test_max_min(self, sc):
        r = sc.parallelize([3, -7, 12, 0], 2)
        assert r.max() == 12
        assert r.min() == -7

    def test_take_ordered(self, sc):
        data = [9, 1, 8, 2, 7, 3]
        r = sc.parallelize(data, 3)
        assert r.take_ordered(3) == [1, 2, 3]
        assert r.take_ordered(2, key=lambda x: -x) == [9, 8]
        assert r.take_ordered(0) == []
        assert r.take_ordered(100) == sorted(data)

    def test_stats(self, sc):
        import statistics

        data = [1.0, 2.0, 3.0, 4.0, 5.0, 100.0]
        s = sc.parallelize(data, 3).stats()
        assert s.count == 6
        assert s.mean == pytest.approx(statistics.mean(data))
        assert s.variance == pytest.approx(statistics.pvariance(data))
        assert s.min == 1.0 and s.max == 100.0


class TestStatCounter:
    def test_merge_matches_bulk(self):
        import statistics

        a, b = StatCounter(), StatCounter()
        xs, ys = [1.0, 4.0, 2.0], [10.0, -3.0, 7.0, 8.0]
        for x in xs:
            a.add(x)
        for y in ys:
            b.add(y)
        a.merge(b)
        assert a.count == 7
        assert a.mean == pytest.approx(statistics.mean(xs + ys))
        assert a.variance == pytest.approx(statistics.pvariance(xs + ys))

    def test_merge_with_empty(self):
        a = StatCounter().add(5.0)
        a.merge(StatCounter())
        assert a.count == 1 and a.mean == 5.0
        b = StatCounter()
        b.merge(a)
        assert b.count == 1 and b.mean == 5.0


class TestEventLog:
    def test_jobs_recorded(self, sc):
        sc.parallelize(range(10), 2).map(lambda x: (x % 2, x)).reduce_by_key(
            lambda a, b: a + b
        ).collect()
        jobs = sc.event_log.of_kind("job_end")
        stages = sc.event_log.of_kind("stage_end")
        tasks = sc.event_log.of_kind("task_end")
        assert len(jobs) == 1
        assert len(stages) == 2  # shuffle map + result
        assert len(tasks) == 4  # 2 partitions per stage
        assert all(t["succeeded"] for t in tasks)

    def test_failed_attempts_logged(self, sc):
        from repro.engine import FaultPlan

        sc.fault_plan = FaultPlan(fail_attempts={(-1, 0): 1})
        sc.parallelize(range(4), 2).collect()
        tasks = sc.event_log.of_kind("task_end")
        assert any(not t["succeeded"] for t in tasks)

    def test_file_backed_log_roundtrip(self, tmp_path):
        from repro.engine.event_log import load_event_log

        path = str(tmp_path / "events.jsonl")
        with SparkContext("simulated[2]", event_log_path=path) as sc:
            sc.parallelize(range(4), 2).count()
        events = load_event_log(path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "app_start"
        assert kinds[-1] == "app_end"
        assert "job_end" in kinds and "task_end" in kinds

"""Metrics aggregation and the measured-makespan model."""

import pytest

from repro.engine import Stopwatch, makespan
from repro.engine.metrics import JobMetrics, StageMetrics, TaskMetrics


class TestMakespan:
    def test_empty(self):
        assert makespan([], 4) == 0.0

    def test_single_task(self):
        assert makespan([2.5], 8) == 2.5

    def test_tasks_equal_slots_is_max(self):
        """One partition per core — the paper's configuration."""
        assert makespan([1.0, 3.0, 2.0], 3) == 3.0

    def test_fewer_tasks_than_slots(self):
        assert makespan([1.0, 2.0], 16) == 2.0

    def test_one_slot_is_sum(self):
        assert makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_lpt_two_slots(self):
        # LPT: sort desc [5,4,3,3,1]; loads -> 5+1? Actually: 5 | 4; 3->4+3=7? no, 3->5? min load picks smaller.
        # 5|_, 5|4, 5|4+3, 5+3|7, 8|7+1 -> wait LPT: [5,4,3,3,1]
        # slot loads: [5],[4] -> 3 to slot1(4): [5],[7] -> 3 to slot0(5): [8],[7] -> 1 to slot1: [8],[8]
        assert makespan([3.0, 5.0, 4.0, 1.0, 3.0], 2) == pytest.approx(8.0)

    def test_monotone_in_slots(self):
        durations = [0.5, 1.5, 2.0, 0.1, 0.9, 1.1]
        walls = [makespan(durations, s) for s in (1, 2, 3, 6)]
        assert walls == sorted(walls, reverse=True)

    def test_never_below_max_duration(self):
        durations = [0.2, 5.0, 0.3]
        for s in (1, 2, 3, 100):
            assert makespan(durations, s) >= 5.0

    def test_rejects_nonpositive_slots(self):
        with pytest.raises(ValueError):
            makespan([1.0], 0)
        with pytest.raises(ValueError):
            makespan([1.0], -3)

    def test_empty_durations_short_circuit_any_slots(self):
        # No tasks means no wall-clock, even before the slots check.
        assert makespan([], 1) == 0.0
        assert makespan([], 0) == 0.0
        assert makespan([], -1) == 0.0

    def test_zero_durations(self):
        assert makespan([0.0, 0.0], 1) == 0.0


class TestStageMetrics:
    def _stage(self):
        sm = StageMetrics(0)
        sm.task_metrics.append(TaskMetrics(0, 0, 0, run_time=1.0, succeeded=True))
        sm.task_metrics.append(TaskMetrics(0, 1, 0, run_time=2.0, succeeded=False))
        sm.task_metrics.append(TaskMetrics(0, 1, 1, run_time=3.0, succeeded=True))
        return sm

    def test_totals_count_successes_only(self):
        sm = self._stage()
        assert sm.total_task_time == pytest.approx(4.0)
        assert sm.max_task_time == pytest.approx(3.0)

    def test_task_durations_first_success_per_partition(self):
        sm = self._stage()
        assert sm.task_durations() == [1.0, 3.0]

    def test_num_tasks_distinct_partitions(self):
        assert self._stage().num_tasks == 2


class TestJobMetrics:
    def test_simulated_wall_sums_stages(self):
        jm = JobMetrics(0)
        for sid, times in enumerate([[1.0, 2.0], [3.0]]):
            sm = StageMetrics(sid)
            for p, t in enumerate(times):
                sm.task_metrics.append(TaskMetrics(sid, p, 0, run_time=t, succeeded=True))
            jm.stages.append(sm)
        assert jm.simulated_wall(2) == pytest.approx(2.0 + 3.0)
        assert jm.simulated_wall(1) == pytest.approx(3.0 + 3.0)
        assert jm.simulated_wall(2, straggler_wait=0.5) == pytest.approx(6.0)

    def test_total_executor_time(self):
        jm = JobMetrics(0)
        sm = StageMetrics(0)
        sm.task_metrics.append(TaskMetrics(0, 0, 0, run_time=1.5, succeeded=True))
        jm.stages.append(sm)
        assert jm.total_executor_time == pytest.approx(1.5)


class TestStopwatch:
    def test_measures_elapsed(self):
        import time

        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.01

    def test_accumulates_across_uses(self):
        sw = Stopwatch()
        with sw:
            pass
        first = sw.elapsed
        with sw:
            pass
        assert sw.elapsed >= first

    def test_unused_stopwatch_is_zero(self):
        assert Stopwatch().elapsed == 0.0

    def test_exception_inside_block_still_accumulates(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            with sw:
                raise RuntimeError("boom")
        assert sw.elapsed > 0.0

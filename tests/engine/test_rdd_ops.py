"""RDD transformations and actions against their plain-Python equivalents."""

import operator

import pytest

from repro.engine import HashPartitioner, SparkContext


class TestBasicTransformations:
    def test_map(self, sc):
        assert sc.parallelize(range(20), 4).map(lambda x: x * 3).collect() == [
            x * 3 for x in range(20)
        ]

    def test_filter(self, sc):
        got = sc.parallelize(range(50), 4).filter(lambda x: x % 7 == 0).collect()
        assert got == [x for x in range(50) if x % 7 == 0]

    def test_flat_map(self, sc):
        got = sc.parallelize(["a b", "c", "d e f"], 2).flat_map(str.split).collect()
        assert got == ["a", "b", "c", "d", "e", "f"]

    def test_map_chains_preserve_order(self, sc):
        got = (
            sc.parallelize(range(30), 5)
            .map(lambda x: x + 1)
            .filter(lambda x: x % 2 == 0)
            .map(lambda x: x // 2)
            .collect()
        )
        assert got == [x // 2 for x in (y + 1 for y in range(30)) if x % 2 == 0]

    def test_map_partitions(self, sc):
        got = sc.parallelize(range(12), 3).map_partitions(lambda it: [sum(it)]).collect()
        assert got == [sum(range(0, 4)), sum(range(4, 8)), sum(range(8, 12))]

    def test_map_partitions_with_index(self, sc):
        got = (
            sc.parallelize(range(8), 4)
            .map_partitions_with_index(lambda i, it: [(i, list(it))])
            .collect()
        )
        assert got == [(0, [0, 1]), (1, [2, 3]), (2, [4, 5]), (3, [6, 7])]

    def test_glom(self, sc):
        assert sc.parallelize(range(6), 2).glom().collect() == [[0, 1, 2], [3, 4, 5]]

    def test_union(self, sc):
        a = sc.parallelize([1, 2], 2)
        b = sc.parallelize([3, 4, 5], 2)
        u = a.union(b)
        assert u.collect() == [1, 2, 3, 4, 5]
        assert u.num_partitions == 4

    def test_zip_with_index(self, sc):
        got = sc.parallelize("abcdefg", 3).zip_with_index().collect()
        assert got == [(c, i) for i, c in enumerate("abcdefg")]

    def test_key_by(self, sc):
        got = sc.parallelize([10, 25, 31], 2).key_by(lambda x: x % 10).collect()
        assert got == [(0, 10), (5, 25), (1, 31)]

    def test_coalesce(self, sc):
        r = sc.parallelize(range(20), 10).coalesce(3)
        assert r.num_partitions == 3
        assert sorted(r.collect()) == list(range(20))

    def test_coalesce_rejects_nonpositive(self, sc):
        with pytest.raises(ValueError):
            sc.parallelize(range(4), 2).coalesce(0)


class TestShuffleTransformations:
    def test_reduce_by_key(self, sc):
        data = [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("b", 5)]
        got = dict(sc.parallelize(data, 3).reduce_by_key(operator.add).collect())
        assert got == {"a": 4, "b": 7, "c": 4}

    def test_reduce_by_key_single_occurrence_unreduced(self, sc):
        got = dict(sc.parallelize([("x", 7)], 2).reduce_by_key(operator.add).collect())
        assert got == {"x": 7}

    def test_group_by_key(self, sc):
        data = [(i % 3, i) for i in range(15)]
        got = dict(sc.parallelize(data, 4).group_by_key().collect())
        assert {k: sorted(v) for k, v in got.items()} == {
            0: [0, 3, 6, 9, 12],
            1: [1, 4, 7, 10, 13],
            2: [2, 5, 8, 11, 14],
        }

    def test_distinct(self, sc):
        got = sorted(sc.parallelize([1, 2, 2, 3, 3, 3, 1], 3).distinct().collect())
        assert got == [1, 2, 3]

    def test_partition_by_respects_partitioner(self, sc):
        data = [(i, str(i)) for i in range(16)]
        p = HashPartitioner(4)
        chunks = sc.parallelize(data, 4).partition_by(p).glom().collect()
        for pid, chunk in enumerate(chunks):
            for k, _v in chunk:
                assert p.partition(k) == pid

    def test_join(self, sc):
        left = sc.parallelize([("a", 1), ("b", 2), ("a", 3)], 2)
        right = sc.parallelize([("a", "x"), ("c", "y")], 2)
        got = sorted(left.join(right).collect())
        assert got == [("a", (1, "x")), ("a", (3, "x"))]

    def test_map_values_after_shuffle(self, sc):
        data = [("k", i) for i in range(10)]
        got = (
            sc.parallelize(data, 3)
            .reduce_by_key(operator.add)
            .map_values(lambda v: v * 2)
            .collect()
        )
        assert got == [("k", 90)]

    def test_count_by_key(self, sc):
        data = [("a", 0)] * 3 + [("b", 0)] * 2
        assert sc.parallelize(data, 2).count_by_key() == {"a": 3, "b": 2}


class TestActions:
    def test_count(self, sc):
        assert sc.parallelize(range(101), 7).count() == 101

    def test_count_empty_partitions(self, sc):
        assert sc.parallelize([1], 4).count() == 1

    def test_reduce(self, sc):
        assert sc.parallelize(range(1, 11), 3).reduce(operator.mul) == 3628800

    def test_reduce_empty_raises(self, sc):
        with pytest.raises(ValueError):
            sc.parallelize([], 2).reduce(operator.add)

    def test_reduce_with_empty_partitions(self, sc):
        assert sc.parallelize([5], 4).reduce(operator.add) == 5

    def test_sum(self, sc):
        assert sc.parallelize(range(100), 8).sum() == 4950

    def test_take_and_first(self, sc):
        r = sc.parallelize(range(50), 5)
        assert r.take(3) == [0, 1, 2]
        assert r.first() == 0

    def test_first_empty_raises(self, sc):
        with pytest.raises(ValueError):
            sc.parallelize([], 2).first()

    def test_foreach_with_accumulator(self, sc):
        acc = sc.accumulator()
        sc.parallelize(range(10), 4).foreach(lambda x: acc.add(x))
        assert acc.value == 45

    def test_foreach_partition_with_index_sees_all(self, sc):
        acc = sc.list_accumulator()
        sc.parallelize(range(9), 3).foreach_partition_with_index(
            lambda i, it: acc.add([(i, sum(it))])
        )
        assert sorted(acc.value) == [(0, 3), (1, 12), (2, 21)]

    def test_collect_as_map(self, sc):
        assert sc.parallelize([(1, "a"), (2, "b")], 2).collect_as_map() == {
            1: "a",
            2: "b",
        }

    def test_save_as_text_file(self, sc, tmp_path):
        out = tmp_path / "out"
        sc.parallelize(range(6), 3).save_as_text_file(str(out))
        parts = sorted(p.name for p in out.iterdir())
        assert parts == ["part-00000", "part-00001", "part-00002"]
        lines = []
        for p in sorted(out.iterdir()):
            lines.extend(p.read_text().split())
        assert lines == [str(i) for i in range(6)]


class TestLaziness:
    def test_transformations_are_lazy(self, sc):
        calls = []
        r = sc.parallelize(range(5), 2).map(lambda x: calls.append(x) or x)
        assert calls == []  # nothing ran yet
        r.collect()
        assert sorted(calls) == list(range(5))

    def test_rdd_recomputes_without_cache(self, sc):
        acc = sc.accumulator()
        r = sc.parallelize(range(5), 2).map(lambda x: acc.add(1) or x)
        r.collect()
        r.collect()
        assert acc.value == 10  # computed twice

    def test_cache_avoids_recompute(self, sc):
        acc = sc.accumulator()
        r = sc.parallelize(range(5), 2).map(lambda x: acc.add(1) or x).cache()
        r.collect()
        r.collect()
        assert acc.value == 5  # second action served from cache

    def test_unpersist_restores_recompute(self, sc):
        acc = sc.accumulator()
        r = sc.parallelize(range(4), 2).map(lambda x: acc.add(1) or x).cache()
        r.collect()
        r.unpersist()
        r.collect()
        assert acc.value == 8


class TestContextLifecycle:
    def test_stopped_context_rejects_work(self):
        sc = SparkContext("simulated[2]")
        sc.stop()
        from repro.engine import ContextStoppedError

        with pytest.raises(ContextStoppedError):
            sc.parallelize([1, 2])

    def test_double_stop_is_idempotent(self):
        sc = SparkContext("simulated[2]")
        sc.stop()
        sc.stop()

    def test_stopped_context_rejects_every_entry_point(self):
        # The runtime twin of lint rule LIF001: every driver API the
        # analyzer treats as a "use" raises once the context is stopped.
        from repro.engine import ContextStoppedError

        sc = SparkContext("simulated[2]")
        rdd = sc.parallelize([1, 2])
        sc.stop()
        for op in (
            lambda: sc.parallelize([1]),
            lambda: sc.broadcast({1: 2}),
            lambda: sc.accumulator(),
            lambda: rdd.collect(),
        ):
            with pytest.raises(ContextStoppedError):
                op()

    def test_event_log_closed_by_stop_but_readable(self):
        # stop() closes the event log (LIF002's runtime twin): writes
        # raise, reads keep serving the history view.
        from repro.engine.errors import EventLogClosedError

        sc = SparkContext("simulated[2]")
        sc.parallelize(range(4), 2).count()
        sc.stop()
        assert sc.event_log.closed
        assert sc.event_log.of_kind("app_end")
        with pytest.raises(EventLogClosedError):
            sc.event_log.emit("late_event")

    def test_context_manager(self):
        with SparkContext("simulated[2]") as sc:
            assert sc.parallelize([1, 2, 3]).count() == 3

    def test_default_parallelism_from_master(self):
        with SparkContext("simulated[7]") as sc:
            assert sc.parallelize(range(14)).num_partitions == 7

    def test_parallelize_rejects_zero_partitions(self, sc):
        with pytest.raises(ValueError):
            sc.parallelize(range(5), 0)

"""Engine error paths and guard rails."""

import numpy as np
import pytest

from repro.engine import HashPartitioner, SparkContext
from repro.engine.rdd import ReorderedPartitionsRDD, ShuffledRDD, TaskRuntime
from repro.engine.storage import BlockManager


class TestShuffledRDDGuards:
    def test_compute_outside_scheduler_rejected(self, sc):
        shuffled = ShuffledRDD(sc.parallelize([(1, 1)], 2), HashPartitioner(2))
        runtime = TaskRuntime(BlockManager())
        with pytest.raises(RuntimeError, match="resolved"):
            list(shuffled.compute(0, runtime))

    def test_shuffled_rdd_needs_driver_context(self, sc):
        import cloudpickle

        rdd = sc.parallelize([(1, 1)], 2).map(lambda kv: kv)
        clone = cloudpickle.loads(cloudpickle.dumps(rdd))  # ctx stripped
        with pytest.raises(RuntimeError):
            ShuffledRDD(clone, HashPartitioner(2))


class TestReorderedPartitions:
    def test_valid_permutation(self, sc):
        base = sc.parallelize(range(6), 3)
        r = ReorderedPartitionsRDD(base, [2, 0, 1])
        assert r.glom().collect() == [[4, 5], [0, 1], [2, 3]]

    def test_invalid_permutation_rejected(self, sc):
        base = sc.parallelize(range(6), 3)
        with pytest.raises(ValueError):
            ReorderedPartitionsRDD(base, [0, 0, 1])


class TestActionGuards:
    def test_action_on_rehydrated_rdd_rejected(self, sc):
        import cloudpickle

        rdd = sc.parallelize(range(4), 2)
        clone = cloudpickle.loads(cloudpickle.dumps(rdd))
        with pytest.raises(RuntimeError, match="driver"):
            clone.collect()

    def test_unpicklable_result_fails_cleanly_on_processes(self):
        """A task whose *result* can't cross the process boundary must
        surface as a job failure, not a hang."""
        from repro.engine import JobAbortedError

        with SparkContext("processes[2]", max_task_failures=1) as sc:
            with pytest.raises(JobAbortedError, match="serializable|pickle"):
                # A generator is not picklable.
                sc.parallelize(range(2), 1).map(lambda x: (y for y in [x])).collect()


class TestNumpyPayloads:
    def test_numpy_arrays_through_shuffle(self, sc):
        data = [(i % 2, np.full(3, float(i))) for i in range(6)]
        got = dict(
            sc.parallelize(data, 3).reduce_by_key(lambda a, b: a + b).collect()
        )
        np.testing.assert_allclose(got[0], np.full(3, 0.0 + 2 + 4))
        np.testing.assert_allclose(got[1], np.full(3, 1.0 + 3 + 5))

    def test_numpy_scalars_as_keys(self, sc):
        data = [(np.int64(i % 3), 1) for i in range(9)]
        got = sc.parallelize(data, 2).reduce_by_key(lambda a, b: a + b).collect()
        assert sorted(v for _k, v in got) == [3, 3, 3]

"""Shared fixtures: small deterministic datasets and engine contexts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_clustered
from repro.engine import SparkContext
from repro.kdtree import KDTree


@pytest.fixture(scope="session")
def blobs_small():
    """~600 points, 3 well-separated clusters + noise (d=10)."""
    return generate_clustered(n=600, num_clusters=3, cluster_std=8.0, seed=42)


@pytest.fixture(scope="session")
def blobs_medium():
    """~2500 points, 6 clusters + noise (d=10)."""
    return generate_clustered(n=2500, num_clusters=6, cluster_std=8.0, seed=7)


@pytest.fixture(scope="session")
def blobs_small_tree(blobs_small):
    return KDTree(blobs_small.points)


@pytest.fixture(scope="session")
def blobs_medium_tree(blobs_medium):
    return KDTree(blobs_medium.points)


@pytest.fixture
def sc():
    """A 4-partition local context, cleaned up after each test."""
    context = SparkContext("simulated[4]")
    yield context
    context.stop()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)

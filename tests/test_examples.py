"""Smoke tests: the example scripts must run end-to-end.

Each example asserts its own domain claims internally; here we execute
the quick ones in-process and check they complete.  The heavyweight
examples (quickstart, anomaly_detection, scaling_study) are exercised
implicitly by the benchmarks; we still compile-check them.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "engine_tour.py",
    "streaming_clusters.py",
    "realtime_monitoring.py",
    "fault_tolerance_demo.py",
]

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [name])
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # it reported something


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_compiles(name):
    source = (EXAMPLES_DIR / name).read_text()
    compile(source, name, "exec")


def test_expected_examples_present():
    assert {
        "quickstart.py",
        "geospatial_hotspots.py",
        "anomaly_detection.py",
        "fault_tolerance_demo.py",
        "scaling_study.py",
        "engine_tour.py",
        "streaming_clusters.py",
        "parameter_tuning.py",
        "realtime_monitoring.py",
    } <= set(ALL_EXAMPLES)

"""MiniHDFS: block storage, replication, splits, failure recovery."""

import pytest

from repro.hdfs import MiniHDFS


@pytest.fixture
def fs(tmp_path):
    return MiniHDFS(str(tmp_path), block_size=64, replication=2, num_datanodes=3)


class TestBasicOps:
    def test_roundtrip_bytes(self, fs):
        data = b"hello world" * 50
        fs.put_bytes("/a", data)
        assert fs.get_bytes("/a") == data

    def test_roundtrip_text(self, fs):
        fs.put_text("/t", "line1\nline2\n")
        assert fs.get_text("/t") == "line1\nline2\n"

    def test_file_split_into_blocks(self, fs):
        fs.put_bytes("/big", b"x" * 300)
        info = fs.namenode.get_file("/big")
        assert len(info.blocks) == 5  # ceil(300/64)
        assert info.size == 300

    def test_each_block_replicated(self, fs):
        fs.put_bytes("/r", b"y" * 200)
        for block in fs.namenode.get_file("/r").blocks:
            assert len(block.replicas) == 2
            for d in block.replicas:
                assert fs.datanodes[d].has_block(block.block_id)

    def test_exists_listdir_delete(self, fs):
        fs.put_text("/dir/a", "1")
        fs.put_text("/dir/b", "2")
        fs.put_text("/other", "3")
        assert fs.exists("/dir/a")
        assert fs.listdir("/dir/") == ["/dir/a", "/dir/b"]
        fs.delete("/dir/a")
        assert not fs.exists("/dir/a")
        with pytest.raises(FileNotFoundError):
            fs.get_bytes("/dir/a")

    def test_duplicate_path_rejected(self, fs):
        fs.put_text("/dup", "a")
        with pytest.raises(FileExistsError):
            fs.put_text("/dup", "b")

    def test_put_local_file(self, fs, tmp_path):
        local = tmp_path / "src.txt"
        local.write_text("content here")
        fs.put_local_file(str(local), "/copied")
        assert fs.get_text("/copied") == "content here"

    def test_empty_file(self, fs):
        fs.put_bytes("/empty", b"")
        assert fs.get_bytes("/empty") == b""


class TestSplits:
    def test_splits_cover_lines_exactly_once(self, fs):
        lines = [f"record {i} {'abc' * (i % 5)}" for i in range(100)]
        fs.put_text("/data", "\n".join(lines) + "\n")
        f = fs.open("/data")
        got = [line for i in range(f.num_splits()) for line in f.read_split(i)]
        assert got == lines

    def test_line_spanning_multiple_blocks(self, tmp_path):
        fs = MiniHDFS(str(tmp_path), block_size=16, replication=1, num_datanodes=2)
        lines = ["short", "x" * 100, "tail"]  # middle line spans many blocks
        fs.put_text("/span", "\n".join(lines) + "\n")
        f = fs.open("/span")
        got = [line for i in range(f.num_splits()) for line in f.read_split(i)]
        assert got == lines

    def test_into_spark_rdd(self, fs, sc):
        lines = [str(i * 1.5) for i in range(50)]
        fs.put_text("/nums", "\n".join(lines) + "\n")
        rdd = sc.from_source(fs.open("/nums"))
        assert rdd.map(float).collect() == [i * 1.5 for i in range(50)]

    def test_split_index_out_of_range(self, fs):
        fs.put_text("/x", "a\n")
        f = fs.open("/x")
        with pytest.raises(IndexError):
            f.read_split(99)


class TestFailures:
    def test_read_survives_one_datanode_loss(self, fs):
        data = b"important" * 40
        fs.put_bytes("/f", data)
        fs.kill_datanode(0)
        assert fs.get_bytes("/f") == data

    def test_read_fails_when_all_replicas_dead(self, tmp_path):
        fs = MiniHDFS(str(tmp_path), block_size=64, replication=1, num_datanodes=2)
        fs.put_bytes("/f", b"z" * 10)
        info = fs.namenode.get_file("/f")
        only_replica = info.blocks[0].replicas[0]
        fs.kill_datanode(only_replica)
        with pytest.raises(IOError):
            fs.get_bytes("/f")

    def test_re_replication_restores_factor(self, fs):
        fs.put_bytes("/f", b"q" * 200)
        fs.kill_datanode(1)
        under = fs.namenode.under_replicated_blocks()
        created = fs.re_replicate()
        assert created == len(under)
        assert fs.namenode.under_replicated_blocks() == []
        # And reads still work after another failure of a different node.
        assert fs.get_bytes("/f") == b"q" * 200

    def test_replication_capped_by_datanodes(self, tmp_path):
        fs = MiniHDFS(str(tmp_path), block_size=64, replication=5, num_datanodes=2)
        fs.put_bytes("/f", b"w" * 10)
        assert len(fs.namenode.get_file("/f").blocks[0].replicas) == 2

"""Property-based HDFS tests (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdfs import MiniHDFS

payloads = st.binary(min_size=0, max_size=4000)
line_lists = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=60,
    ),
    max_size=60,
)


@settings(max_examples=25, deadline=None)
@given(data=payloads, block_size=st.integers(16, 512))
def test_put_get_roundtrip(tmp_path_factory, data, block_size):
    fs = MiniHDFS(str(tmp_path_factory.mktemp("hdfs")), block_size=block_size,
                  replication=2, num_datanodes=3)
    fs.put_bytes("/f", data)
    assert fs.get_bytes("/f") == data


@settings(max_examples=25, deadline=None)
@given(lines=line_lists, block_size=st.integers(16, 256))
def test_splits_cover_lines_exactly_once(tmp_path_factory, lines, block_size):
    fs = MiniHDFS(str(tmp_path_factory.mktemp("hdfs")), block_size=block_size,
                  replication=1, num_datanodes=2)
    text = "".join(line + "\n" for line in lines)
    fs.put_text("/f", text)
    f = fs.open("/f")
    got = [line for i in range(f.num_splits()) for line in f.read_split(i)]
    assert got == lines


@settings(max_examples=20, deadline=None)
@given(data=st.binary(min_size=1, max_size=2000), kill=st.integers(0, 2))
def test_single_datanode_loss_never_loses_data(tmp_path_factory, data, kill):
    fs = MiniHDFS(str(tmp_path_factory.mktemp("hdfs")), block_size=64,
                  replication=2, num_datanodes=3)
    fs.put_bytes("/f", data)
    fs.kill_datanode(kill)
    assert fs.get_bytes("/f") == data


@settings(max_examples=15, deadline=None)
@given(data=st.binary(min_size=1, max_size=1500))
def test_re_replication_then_second_failure_still_readable(tmp_path_factory, data):
    fs = MiniHDFS(str(tmp_path_factory.mktemp("hdfs")), block_size=64,
                  replication=2, num_datanodes=4)
    fs.put_bytes("/f", data)
    fs.kill_datanode(0)
    fs.re_replicate()
    fs.kill_datanode(1)
    assert fs.get_bytes("/f") == data

"""The unified frontend fit contract and the legacy attribute surface."""

import numpy as np
import pytest

from repro.data import generate_clustered
from repro.dbscan import (
    MapReduceDBSCAN,
    NaiveSparkDBSCAN,
    SparkDBSCAN,
    SpatialSparkDBSCAN,
)
from repro.kdtree import KDTree
from repro.pipeline import PipelineCrash

EPS, MINPTS = 25.0, 5


@pytest.fixture(scope="module")
def points():
    return generate_clustered(n=400, num_clusters=3, cluster_std=8.0, seed=5).points


class TestFitContract:
    """Satellite: every fit is (points, optional sc); tree is keyword-only."""

    def test_tree_is_keyword_only(self, points):
        tree = KDTree(points)
        with pytest.raises(TypeError):
            SparkDBSCAN(EPS, MINPTS).fit(points, None, tree)

    def test_spark_accepts_prebuilt_tree_keyword(self, points):
        tree = KDTree(points)
        with_tree = SparkDBSCAN(EPS, MINPTS, num_partitions=3).fit(
            points, tree=tree
        )
        without = SparkDBSCAN(EPS, MINPTS, num_partitions=3).fit(points)
        assert np.array_equal(with_tree.labels, without.labels)
        assert with_tree.timings.kdtree_build == 0.0

    def test_spatial_warns_and_ignores_tree(self, points):
        tree = KDTree(points)
        with pytest.warns(DeprecationWarning):
            warned = SpatialSparkDBSCAN(EPS, MINPTS, num_partitions=3).fit(
                points, tree=tree
            )
        plain = SpatialSparkDBSCAN(EPS, MINPTS, num_partitions=3).fit(points)
        assert np.array_equal(warned.labels, plain.labels)

    def test_mapreduce_accepts_sc_for_uniformity(self, points, tmp_path):
        result = MapReduceDBSCAN(
            EPS, MINPTS, num_maps=2, startup_overhead=0.0,
            tmp_dir=str(tmp_path),
        ).fit(points, sc=None)
        assert result.labels.shape == (points.shape[0],)


class TestLegacyAttributeSurface:
    def test_spark_attrs_forward_to_config(self):
        model = SparkDBSCAN(EPS, MINPTS, num_partitions=8, seed_policy="all")
        assert model.eps == EPS
        assert model.minpts == MINPTS
        assert model.num_partitions == 8
        assert model.master == "simulated[8]"
        assert model.seed_policy == "all"

    def test_explicit_master_preserved(self):
        model = NaiveSparkDBSCAN(EPS, MINPTS, master="processes[2]")
        assert model.master == "processes[2]"

    def test_mapreduce_num_maps(self, tmp_path):
        model = MapReduceDBSCAN(EPS, MINPTS, num_maps=6,
                                tmp_dir=str(tmp_path))
        assert model.num_maps == 6
        assert model.tmp_dir == str(tmp_path)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            SparkDBSCAN(EPS, MINPTS).warp_drive


class TestFrontendCheckpointing:
    """The checkpoint/resume knobs are reachable from the public API."""

    def test_spark_crash_resume_via_frontend(self, points, tmp_path):
        reference = SparkDBSCAN(EPS, MINPTS, num_partitions=3).fit(points)
        with pytest.raises(PipelineCrash):
            SparkDBSCAN(EPS, MINPTS, num_partitions=3,
                        checkpoint_dir=str(tmp_path),
                        fail_after="CollectPartials").fit(points)
        resumed = SparkDBSCAN(EPS, MINPTS, num_partitions=3,
                              checkpoint_dir=str(tmp_path),
                              resume=True).fit(points)
        assert np.array_equal(resumed.labels, reference.labels)
        assert resumed.num_partial_clusters == reference.num_partial_clusters
        assert resumed.num_seeds == reference.num_seeds
        assert resumed.num_merges == reference.num_merges

    def test_sequential_crash_resume(self, points, tmp_path):
        from repro.dbscan import dbscan_sequential

        reference = dbscan_sequential(points, EPS, MINPTS)
        resumed_src = dbscan_sequential(points, EPS, MINPTS,
                                        checkpoint_dir=str(tmp_path))
        resumed = dbscan_sequential(points, EPS, MINPTS,
                                    checkpoint_dir=str(tmp_path), resume=True)
        assert np.array_equal(resumed_src.labels, reference.labels)
        assert np.array_equal(resumed.labels, reference.labels)

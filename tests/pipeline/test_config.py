"""RunConfig: the single validation point and the checkpoint key."""

import numpy as np
import pytest

from repro.pipeline import ALGORITHMS, HASHED_FIELDS, RunConfig


def cfg(**kw):
    base = dict(eps=25.0, minpts=5)
    base.update(kw)
    return RunConfig(**base)


class TestValidation:
    def test_valid_defaults(self):
        c = cfg()
        assert c.algorithm == "spark"
        assert c.resolved_master == "simulated[4]"

    @pytest.mark.parametrize("bad", [
        dict(eps=0.0),
        dict(eps=-1.0),
        dict(minpts=0),
        dict(num_partitions=0),
        dict(algorithm="hadoop"),
        dict(seed_policy="sometimes"),
        dict(merge_strategy="hope"),
        dict(neighbor_mode="psychic"),
        dict(max_neighbors=0),
        dict(min_cluster_size=-1),
        dict(leaf_size=0),
        dict(impl="gpu"),
        dict(max_rounds=0),
        dict(startup_overhead=-0.5),
    ])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            cfg(**bad)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            cfg().eps = 1.0

    def test_every_algorithm_accepted(self):
        for algo in ALGORITHMS:
            assert cfg(algorithm=algo).algorithm == algo

    def test_explicit_master_wins(self):
        assert cfg(master="processes[2]").resolved_master == "processes[2]"

    def test_partitioning_validated(self):
        assert cfg(partitioning="cells").partitioning == "cells"
        with pytest.raises(ValueError):
            cfg(partitioning="hex")
        # Cell partitioning re-bases the spark plan only.
        with pytest.raises(ValueError):
            cfg(algorithm="naive", partitioning="cells")

    def test_merge_mode_validated(self):
        assert cfg(merge_mode="edges").merge_mode == "edges"
        with pytest.raises(ValueError):
            cfg(merge_mode="telepathy")

    @pytest.mark.parametrize("bad", [
        dict(algorithm="naive"),             # SEED pipelines only
        dict(algorithm="mapreduce"),
        dict(merge_strategy="paper"),        # edge merge is union-find
        dict(keep_partials=True),            # executors never ship partials
        dict(max_neighbors=40),              # truncation breaks eps-symmetry
    ])
    def test_edges_mode_incompatibilities(self, bad):
        with pytest.raises(ValueError):
            cfg(merge_mode="edges", **bad)


class TestContentHash:
    def test_deterministic(self):
        pts = np.arange(20, dtype=np.float64).reshape(10, 2)
        assert cfg().content_hash(pts) == cfg().content_hash(pts)

    @pytest.mark.parametrize("change", [
        dict(eps=26.0),
        dict(minpts=6),
        dict(num_partitions=8),
        dict(algorithm="spatial"),
        dict(seed_policy="one_per_partition"),
        dict(merge_strategy="paper"),
        dict(min_cluster_size=2),
        dict(leaf_size=32),
        dict(neighbor_mode="batched"),
        dict(impl="hashtable"),
        dict(max_neighbors=40),
        dict(partitioning="cells"),
        dict(merge_mode="edges"),
    ])
    def test_semantic_field_changes_hash(self, change):
        pts = np.arange(20, dtype=np.float64).reshape(10, 2)
        assert cfg().content_hash(pts) != cfg(**change).content_hash(pts)

    @pytest.mark.parametrize("change", [
        dict(master="processes[2]"),
        dict(sanitize=True),
        dict(keep_partials=True),
        dict(tmp_dir="/tmp/elsewhere"),
    ])
    def test_runtime_knobs_do_not_change_hash(self, change):
        pts = np.arange(20, dtype=np.float64).reshape(10, 2)
        assert cfg().content_hash(pts) == cfg(**change).content_hash(pts)

    def test_data_changes_hash(self):
        a = np.arange(20, dtype=np.float64).reshape(10, 2)
        b = a.copy()
        b[3, 1] += 1e-9
        assert cfg().content_hash(a) != cfg().content_hash(b)

    def test_semantic_dict_covers_hashed_fields(self):
        assert set(cfg().semantic_dict()) == set(HASHED_FIELDS)

    def test_hashed_fields_are_real_fields(self):
        assert set(HASHED_FIELDS) <= set(RunConfig.field_names())

"""PipelineRunner: stage wiring, crash injection, checkpoint/resume.

The acceptance property for the whole refactor: a crashed run resumed
from its checkpoints produces labels byte-identical to an uninterrupted
run, without re-executing (or even starting the engine for) the stages
upstream of the restored one.
"""

import numpy as np
import pytest

from repro.data import generate_clustered
from repro.obs import MetricsRegistry
from repro.pipeline import (
    LoadPoints,
    MergePartials,
    PipelineCrash,
    PipelineError,
    PipelineRunner,
    Plan,
    RunConfig,
    build_plan,
)

EPS, MINPTS = 25.0, 5


@pytest.fixture(scope="module")
def data():
    return generate_clustered(n=400, num_clusters=3, cluster_std=8.0, seed=3).points


def make_config(algorithm, **kw):
    kw.setdefault("num_partitions", 3)
    if algorithm == "mapreduce":
        kw.setdefault("startup_overhead", 0.0)
    return RunConfig(eps=EPS, minpts=MINPTS, algorithm=algorithm, **kw)


def run_plan(config, points, **runner_kw):
    runner = PipelineRunner(build_plan(config), config, **runner_kw)
    return runner.run(points)


class TestPlanValidation:
    def test_must_start_with_load_points(self):
        with pytest.raises(ValueError):
            Plan(name="bad", stages=(MergePartials(),))

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError):
            Plan(name="bad", stages=(LoadPoints(), MergePartials(),
                                     MergePartials()))

    def test_unknown_fail_after_rejected(self, data):
        config = make_config("spark")
        with pytest.raises(ValueError):
            PipelineRunner(build_plan(config), config, fail_after="Teleport")

    def test_missing_requires_raises(self, data):
        # MergePartials without anything providing partials.
        plan = Plan(name="broken", stages=(LoadPoints(), MergePartials()),
                    outputs=("outcome",))
        config = make_config("spark")
        with pytest.raises(PipelineError):
            PipelineRunner(plan, config).run(data)


#: (algorithm, stage to crash after, stages that must be skipped on resume)
CRASH_MATRIX = [
    ("spark", "CollectPartials",
     {"BuildIndex", "PartitionPlan", "BroadcastModel", "LocalExpand"}),
    ("spatial", "CollectPartials",
     {"BuildIndex", "PartitionPlan", "BroadcastModel", "LocalExpand"}),
    ("naive", "ShuffleExpand", {"BuildIndex"}),
    ("mapreduce", "LocalExpand", {"BuildIndex", "PartitionPlan"}),
    ("sequential", "SequentialExpand", {"BuildIndex"}),
]


class TestCrashResume:
    @pytest.mark.parametrize("algorithm,kill_after,skipped", CRASH_MATRIX)
    def test_resume_matches_uninterrupted(
        self, algorithm, kill_after, skipped, data, tmp_path
    ):
        config = make_config(algorithm)
        reference = run_plan(config, data)

        with pytest.raises(PipelineCrash):
            run_plan(config, data, checkpoint_dir=str(tmp_path),
                     fail_after=kill_after)

        resumed = run_plan(config, data, checkpoint_dir=str(tmp_path),
                           resume=True)
        assert resumed.stage_status[kill_after] == "restored"
        for name in skipped:
            assert resumed.stage_status[name] == "skipped"
        assert np.array_equal(resumed.labels, reference.labels)

    def test_resume_never_starts_engine(self, data, tmp_path):
        config = make_config("spark")
        with pytest.raises(PipelineCrash):
            run_plan(config, data, checkpoint_dir=str(tmp_path),
                     fail_after="CollectPartials")
        resumed = run_plan(config, data, checkpoint_dir=str(tmp_path),
                           resume=True)
        assert resumed.sc is None          # merge ran purely from artifacts
        assert resumed.stage_status["MergePartials"] == "run"

    def test_changed_eps_invalidates_checkpoints(self, data, tmp_path):
        config = make_config("spark")
        with pytest.raises(PipelineCrash):
            run_plan(config, data, checkpoint_dir=str(tmp_path),
                     fail_after="CollectPartials")

        other = RunConfig(eps=EPS + 1.0, minpts=MINPTS, algorithm="spark",
                          num_partitions=3)
        cold = run_plan(other, data, checkpoint_dir=str(tmp_path), resume=True)
        # Nothing restored: the new eps keys a different run directory.
        assert all(s == "run" for s in cold.stage_status.values())

    def test_changed_data_invalidates_checkpoints(self, data, tmp_path):
        config = make_config("spark")
        with pytest.raises(PipelineCrash):
            run_plan(config, data, checkpoint_dir=str(tmp_path),
                     fail_after="CollectPartials")
        other = data.copy()
        other[0, 0] += 1.0
        cold = run_plan(config, other, checkpoint_dir=str(tmp_path),
                        resume=True)
        assert all(s == "run" for s in cold.stage_status.values())

    def test_resume_without_checkpoints_runs_everything(self, data, tmp_path):
        config = make_config("spark")
        state = run_plan(config, data, checkpoint_dir=str(tmp_path),
                         resume=True)
        assert all(s == "run" for s in state.stage_status.values())

    def test_spatial_resume_restores_partials_in_caller_order(
        self, data, tmp_path
    ):
        config = make_config("spatial", keep_partials=True)
        reference = run_plan(config, data)
        with pytest.raises(PipelineCrash):
            run_plan(config, data, checkpoint_dir=str(tmp_path),
                     fail_after="CollectPartials")
        resumed = run_plan(config, data, checkpoint_dir=str(tmp_path),
                           resume=True)
        assert np.array_equal(resumed.perm, reference.perm)
        ref = {(c.partition, c.local_id):
               (sorted(c.members), sorted(c.seeds), sorted(c.borders))
               for c in reference.partials}
        res = {(c.partition, c.local_id):
               (sorted(c.members), sorted(c.seeds), sorted(c.borders))
               for c in resumed.partials}
        assert ref == res


#: (kill_after, stages that must be skipped on resume) for the edge-merge
#: tail.  Killing after ApplyGidMap leaves only RelabelFilter, a pure
#: driver transform; killing after MergeEdges must re-run the expansion
#: (ApplyGidMap needs the executor-resident member lists) but restores
#: the merge plan; killing after CollectEdges restores the digest.
EDGE_CRASH_MATRIX = [
    ("CollectEdges", set()),
    ("MergeEdges", {"CollectEdges"}),
    ("ApplyGidMap", {"BuildIndex", "PartitionPlan", "BroadcastModel",
                     "LocalExpand", "CollectEdges", "MergeEdges"}),
]


class TestEdgeMergeCrashResume:
    @pytest.mark.parametrize("kill_after,skipped", EDGE_CRASH_MATRIX)
    def test_resume_matches_uninterrupted(self, kill_after, skipped, data,
                                          tmp_path):
        config = make_config("spark", merge_mode="edges")
        reference = run_plan(config, data)
        partials_ref = run_plan(make_config("spark"), data)
        np.testing.assert_array_equal(reference.labels, partials_ref.labels)

        with pytest.raises(PipelineCrash):
            run_plan(config, data, checkpoint_dir=str(tmp_path),
                     fail_after=kill_after)
        resumed = run_plan(config, data, checkpoint_dir=str(tmp_path),
                           resume=True)
        assert resumed.stage_status[kill_after] == "restored"
        for name in skipped:
            assert resumed.stage_status[name] == "skipped"
        np.testing.assert_array_equal(resumed.labels, reference.labels)

    def test_spatial_edges_resume(self, data, tmp_path):
        config = make_config("spatial", merge_mode="edges")
        reference = run_plan(config, data)
        with pytest.raises(PipelineCrash):
            run_plan(config, data, checkpoint_dir=str(tmp_path),
                     fail_after="ApplyGidMap")
        resumed = run_plan(config, data, checkpoint_dir=str(tmp_path),
                           resume=True)
        assert resumed.stage_status["ApplyGidMap"] == "restored"
        np.testing.assert_array_equal(resumed.labels, reference.labels)
        np.testing.assert_array_equal(resumed.perm, reference.perm)

    def test_cell_edges_resume(self, data, tmp_path):
        config = make_config("spark", partitioning="cells",
                             merge_mode="edges")
        reference = run_plan(config, data)
        with pytest.raises(PipelineCrash):
            run_plan(config, data, checkpoint_dir=str(tmp_path),
                     fail_after="ApplyGidMap")
        resumed = run_plan(config, data, checkpoint_dir=str(tmp_path),
                           resume=True)
        assert resumed.stage_status["ApplyGidMap"] == "restored"
        np.testing.assert_array_equal(resumed.labels, reference.labels)

    def test_full_restore_never_starts_engine(self, data, tmp_path):
        config = make_config("spark", merge_mode="edges")
        with pytest.raises(PipelineCrash):
            run_plan(config, data, checkpoint_dir=str(tmp_path),
                     fail_after="ApplyGidMap")
        resumed = run_plan(config, data, checkpoint_dir=str(tmp_path),
                           resume=True)
        assert resumed.sc is None          # relabel ran purely from artifacts
        assert resumed.stage_status["RelabelFilter"] == "run"


class TestCheckpointMetrics:
    def test_miss_then_hit_counters(self, data, tmp_path):
        config = make_config("spark")
        reg = MetricsRegistry()
        run_plan(config, data, checkpoint_dir=str(tmp_path),
                 metrics_registry=reg)
        misses = reg.get("repro_checkpoint_misses_total")
        assert misses.value(stage="CollectPartials") == 1
        assert reg.get("repro_checkpoint_hits_total") is None

        reg2 = MetricsRegistry()
        run_plan(config, data, checkpoint_dir=str(tmp_path), resume=True,
                 metrics_registry=reg2)
        hits = reg2.get("repro_checkpoint_hits_total")
        assert hits.value(stage="MergePartials") == 1

    def test_no_store_no_counters(self, data):
        reg = MetricsRegistry()
        run_plan(make_config("spark"), data, metrics_registry=reg)
        assert reg.get("repro_checkpoint_misses_total") is None


class TestStageSpans:
    def test_pipeline_stage_spans_emitted(self, data):
        from repro.obs import Tracer

        tracer = Tracer()
        run_plan(make_config("spark"), data, tracer=tracer)
        stage_spans = [s for s in tracer.spans if s.name == "pipeline.stage"]
        ran = {s.labels["stage"] for s in stage_spans}
        assert {"LoadPoints", "BuildIndex", "LocalExpand", "MergePartials"} <= ran
        assert all(s.labels["status"] == "run" for s in stage_spans)
        # Legacy span vocabulary is still present alongside.
        names = {s.name for s in tracer.spans}
        assert {"dbscan.fit", "driver.kdtree_build", "driver.merge"} <= names

"""merge_mode="edges" vs "partials": byte-identical labels, identical
merge statistics, and driver-collect telemetry that scales with the
boundary rather than the point count (DESIGN.md §11)."""

import numpy as np
import pytest

from repro.data import generate_clustered, generate_skewed
from repro.dbscan import SparkDBSCAN, SpatialSparkDBSCAN
from repro.obs import MetricsRegistry

EPS, MINPTS = 25.0, 5


@pytest.fixture(scope="module")
def points():
    return generate_clustered(n=600, num_clusters=4, cluster_std=8.0,
                              seed=17).points


def fit(points, frontend=SparkDBSCAN, **kw):
    kw.setdefault("num_partitions", 4)
    reg = MetricsRegistry()
    result = frontend(EPS, MINPTS, metrics_registry=reg, **kw).fit(points)
    return result, reg


class TestLabelEquivalence:
    @pytest.mark.parametrize("frontend,extra", [
        (SparkDBSCAN, {}),
        (SpatialSparkDBSCAN, {}),
        (SparkDBSCAN, {"partitioning": "cells"}),
    ], ids=["spark", "spatial", "cell"])
    def test_edges_byte_identical_to_partials(self, points, frontend, extra):
        base, _ = fit(points, frontend, **extra)
        edge, _ = fit(points, frontend, merge_mode="edges", **extra)
        np.testing.assert_array_equal(edge.labels, base.labels)
        assert edge.num_merges == base.num_merges
        assert edge.num_clusters == base.num_clusters
        assert edge.num_partial_clusters == base.num_partial_clusters

    @pytest.mark.parametrize("master", ["threads[2]", "processes[2]"])
    def test_edges_backend_invariant(self, points, master):
        base, _ = fit(points)
        edge, _ = fit(points, master=master, merge_mode="edges")
        np.testing.assert_array_equal(edge.labels, base.labels)

    @pytest.mark.parametrize("mode", ["per_point", "batched"])
    def test_neighbor_modes_agree(self, points, mode):
        base, _ = fit(points, neighbor_mode=mode)
        edge, _ = fit(points, neighbor_mode=mode, merge_mode="edges")
        np.testing.assert_array_equal(edge.labels, base.labels)

    def test_skewed_data(self):
        pts = generate_skewed(2000, shuffle=False).points
        base, _ = fit(pts)
        edge, _ = fit(pts, merge_mode="edges")
        np.testing.assert_array_equal(edge.labels, base.labels)

    def test_min_cluster_size(self, points):
        base, _ = fit(points, min_cluster_size=4)
        edge, _ = fit(points, min_cluster_size=4, merge_mode="edges")
        np.testing.assert_array_equal(edge.labels, base.labels)


class TestMergeTelemetry:
    def test_outcome_stats_surface_as_gauges(self, points):
        for mode in ("partials", "edges"):
            _, reg = fit(points, merge_mode=mode)
            merges = reg.get("repro_merge_merges")
            clusters = reg.get("repro_merge_global_clusters")
            assert merges is not None and clusters is not None
            assert clusters.value() > 0

    def test_edge_counter_only_in_edges_mode(self, points):
        _, reg_base = fit(points)
        _, reg_edge = fit(points, merge_mode="edges")
        assert reg_base.get("repro_merge_edges_total") is None
        edges = reg_edge.get("repro_merge_edges_total")
        assert edges is not None and edges.value() >= 0

    def test_collect_bytes_edges_below_partials_on_10k(self):
        """The tentpole's point, asserted via the counters: on a 10k
        spatially-partitioned run the edge digest ships less than the
        whole partial clusters — collect cost follows the boundary."""
        pts = generate_clustered(n=10_000, num_clusters=10, cluster_std=8.0,
                                 seed=29).points
        _, reg_base = fit(pts, SpatialSparkDBSCAN)
        _, reg_edge = fit(pts, SpatialSparkDBSCAN, merge_mode="edges")
        base_bytes = int(reg_base.get("repro_driver_collect_bytes").value())
        edge_bytes = int(reg_edge.get("repro_driver_collect_bytes").value())
        assert 0 < edge_bytes < base_bytes

"""Every frontend must equal its plan composition, byte for byte.

The frontends are shims over the pipeline, so this is the contract that
keeps them honest: running the plan directly through `PipelineRunner`
and running the public ``fit`` API must produce identical labels (and
identical partials / OpCounters where the frontend exposes them).
"""

import numpy as np
import pytest

from repro.data import generate_clustered
from repro.dbscan import (
    MapReduceDBSCAN,
    NaiveSparkDBSCAN,
    SparkDBSCAN,
    SpatialSparkDBSCAN,
    dbscan_sequential,
)
from repro.obs import MetricsRegistry
from repro.pipeline import PipelineRunner, RunConfig, build_plan

EPS, MINPTS = 25.0, 5


@pytest.fixture(scope="module")
def points():
    return generate_clustered(n=500, num_clusters=4, cluster_std=8.0, seed=11).points


def plan_labels(config, points, **runner_kw):
    runner = PipelineRunner(build_plan(config), config, **runner_kw)
    return runner.run(points)


class TestFrontendEqualsPlan:
    def test_spark(self, points):
        config = RunConfig(eps=EPS, minpts=MINPTS, algorithm="spark",
                           num_partitions=4)
        state = plan_labels(config, points)
        result = SparkDBSCAN(EPS, MINPTS, num_partitions=4).fit(points)
        assert np.array_equal(state.labels, result.labels)
        assert len(state.partials) == result.num_partial_clusters
        assert state.outcome.num_merges == result.num_merges

    def test_spark_keeps_partials_identical(self, points):
        config = RunConfig(eps=EPS, minpts=MINPTS, algorithm="spark",
                           num_partitions=4, keep_partials=True)
        state = plan_labels(config, points)
        result = SparkDBSCAN(EPS, MINPTS, num_partitions=4,
                             keep_partials=True).fit(points)
        key = lambda c: (c.partition, c.local_id)  # noqa: E731
        assert [key(c) for c in state.partials] == [key(c) for c in result.partials]
        for a, b in zip(state.partials, result.partials):
            assert a.members == b.members
            assert a.seeds == b.seeds
            assert a.borders == b.borders

    def test_spatial(self, points):
        config = RunConfig(eps=EPS, minpts=MINPTS, algorithm="spatial",
                           num_partitions=4)
        state = plan_labels(config, points)
        result = SpatialSparkDBSCAN(EPS, MINPTS, num_partitions=4).fit(points)
        assert np.array_equal(state.labels, result.labels)
        assert np.array_equal(state.perm, result.perm)

    def test_naive(self, points):
        config = RunConfig(eps=EPS, minpts=MINPTS, algorithm="naive",
                           num_partitions=2)
        state = plan_labels(config, points)
        result = NaiveSparkDBSCAN(EPS, MINPTS, num_partitions=2).fit(points)
        assert np.array_equal(state.labels, result.labels)
        assert state.extras["shuffle_rounds"] == result.shuffle_rounds
        assert state.extras["shuffle_bytes"] == result.shuffle_bytes

    def test_mapreduce(self, points, tmp_path):
        config = RunConfig(eps=EPS, minpts=MINPTS, algorithm="mapreduce",
                           num_partitions=3, startup_overhead=0.0,
                           tmp_dir=str(tmp_path / "plan"))
        state = plan_labels(config, points)
        result = MapReduceDBSCAN(EPS, MINPTS, num_maps=3, startup_overhead=0.0,
                                 tmp_dir=str(tmp_path / "front")).fit(points)
        assert np.array_equal(state.labels, result.labels)
        assert state.extras["mr_merge_info"]["num_partials"] == \
            result.num_partial_clusters

    @pytest.mark.parametrize("impl", ["array", "hashtable"])
    @pytest.mark.parametrize("mode", ["per_point", "batched"])
    def test_sequential(self, points, impl, mode):
        config = RunConfig(eps=EPS, minpts=MINPTS, algorithm="sequential",
                           num_partitions=1, impl=impl, neighbor_mode=mode)
        state = plan_labels(config, points)
        result = dbscan_sequential(points, EPS, MINPTS, impl=impl,
                                   neighbor_mode=mode)
        assert np.array_equal(state.labels, result.labels)

    def test_all_frontends_agree(self, points, tmp_path):
        """Cross-frontend: the five plan compositions find one clustering."""
        from repro.dbscan import clusterings_equivalent

        seq_labels = dbscan_sequential(points, EPS, MINPTS).labels
        others = [
            SparkDBSCAN(EPS, MINPTS, num_partitions=4).fit(points).labels,
            SpatialSparkDBSCAN(EPS, MINPTS, num_partitions=4).fit(points).labels,
            NaiveSparkDBSCAN(EPS, MINPTS, num_partitions=2).fit(points).labels,
            MapReduceDBSCAN(EPS, MINPTS, num_maps=3, startup_overhead=0.0,
                            tmp_dir=str(tmp_path)).fit(points).labels,
        ]
        for labels in others:
            assert clusterings_equivalent(seq_labels, labels, points, EPS,
                                          MINPTS)

    def test_op_counters_identical(self, points):
        config = RunConfig(eps=EPS, minpts=MINPTS, algorithm="spark",
                           num_partitions=4)
        reg_plan, reg_front = MetricsRegistry(), MetricsRegistry()
        plan_labels(config, points, metrics_registry=reg_plan)
        SparkDBSCAN(EPS, MINPTS, num_partitions=4,
                    metrics_registry=reg_front).fit(points)
        ops_plan = reg_plan.get("repro_dbscan_ops_total")
        ops_front = reg_front.get("repro_dbscan_ops_total")
        assert ops_plan._values == ops_front._values

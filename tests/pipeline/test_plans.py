"""STAGE_MANIFEST parity: the static literal the linter reads must
mirror the plan builders it describes, composition for composition."""

from repro.pipeline.config import RunConfig
from repro.pipeline.plans import (
    PLAN_BUILDERS,
    SHUFFLE_FREE_PLANS,
    STAGE_MANIFEST,
    build_plan,
    plan_name,
)


def config_for(name: str) -> RunConfig:
    """A RunConfig that resolves to the named plan.

    The ``cell`` plan is not an algorithm: it is the spark plan re-based
    via ``partitioning="cells"``; the ``*_edges`` plans are the same
    compositions with the edge-based merge tail (``merge_mode="edges"``).
    """
    kwargs: dict = {}
    if name.endswith("_edges"):
        name = name[: -len("_edges")]
        kwargs["merge_mode"] = "edges"
    if name == "cell":
        return RunConfig(eps=25.0, minpts=5, algorithm="spark",
                         partitioning="cells", **kwargs)
    return RunConfig(eps=25.0, minpts=5, algorithm=name, **kwargs)


def test_manifest_covers_every_plan():
    assert set(STAGE_MANIFEST) == set(PLAN_BUILDERS)
    assert set(SHUFFLE_FREE_PLANS) <= set(PLAN_BUILDERS)


def test_manifest_matches_builders():
    for name, builder in PLAN_BUILDERS.items():
        config = config_for(name)
        plan = builder(config)
        built = tuple(type(stage).__name__ for stage in plan.stages)
        assert built == STAGE_MANIFEST[name], (
            f"plan {name!r}: STAGE_MANIFEST out of sync with builder"
        )


def test_shuffle_free_plans_are_the_paper_pipelines():
    assert SHUFFLE_FREE_PLANS == (
        "spark", "spatial", "cell",
        "spark_edges", "spatial_edges", "cell_edges",
    )


def test_plan_name_resolution():
    assert plan_name(config_for("spark")) == "spark"
    assert plan_name(config_for("cell")) == "cell"
    assert build_plan(config_for("cell")).name == "cell"
    assert plan_name(config_for("spark_edges")) == "spark_edges"
    assert plan_name(config_for("spatial_edges")) == "spatial_edges"
    assert plan_name(config_for("cell_edges")) == "cell_edges"
    assert build_plan(config_for("cell_edges")).name == "cell_edges"

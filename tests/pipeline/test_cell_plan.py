"""The cell plan must reproduce `SparkDBSCAN` byte for byte — with no
global index and nothing dataset-sized ever broadcast.

Byte-identity argument (DESIGN.md §10): the range plan's collected
partials are founder-sorted, and each global cluster's minimal founder
is its minimal core point regardless of how the cluster was decomposed
across partitions — so `CellCollect`'s founder sort reproduces the
range plan's global numbering exactly.
"""

import numpy as np
import pytest

from repro.data import generate_clustered, generate_skewed
from repro.dbscan import SparkDBSCAN
from repro.obs import MetricsRegistry, Tracer
from repro.pipeline import PipelineCrash

EPS, MINPTS = 25.0, 5

DATASETS = {
    "quest": lambda: generate_clustered(500, num_clusters=4,
                                        cluster_std=8.0, seed=11),
    "skew": lambda: generate_skewed(600, d=10, seed=3),
    "skew-unshuffled": lambda: generate_skewed(600, d=10, seed=3,
                                               shuffle=False),
}


def fit(points, **kw):
    kw.setdefault("num_partitions", 4)
    return SparkDBSCAN(EPS, MINPTS, **kw).fit(points)


class TestByteIdentity:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_labels_identical_to_range_plan(self, name):
        points = DATASETS[name]().points
        base = fit(points)
        cell = fit(points, partitioning="cells")
        assert np.array_equal(base.labels, cell.labels)

    def test_identical_under_batched_kernels(self):
        points = DATASETS["skew"]().points
        base = fit(points, neighbor_mode="batched")
        cell = fit(points, neighbor_mode="batched", partitioning="cells")
        assert np.array_equal(base.labels, cell.labels)

    def test_single_partition(self):
        points = DATASETS["quest"]().points
        base = fit(points, num_partitions=1)
        cell = fit(points, num_partitions=1, partitioning="cells")
        assert np.array_equal(base.labels, cell.labels)

    def test_merge_counts_consistent(self):
        points = DATASETS["quest"]().points
        cell = fit(points, partitioning="cells", keep_partials=True)
        # Partials arrive founder-sorted off the collect stage.
        founders = [c.members[0] for c in cell.partials]
        assert founders == sorted(founders)
        assert cell.num_partial_clusters == len(cell.partials)


class TestNoBroadcast:
    def test_cell_plan_broadcasts_nothing(self):
        """The point of the plan: the range plan broadcasts the global
        kd-tree (a ``driver.broadcast`` span, with nbytes metered when
        the broadcast is serialized); the cell plan must show no
        broadcast span and no broadcast bytes at all."""
        points = DATASETS["quest"]().points
        reg_range, tr_range = MetricsRegistry(), Tracer()
        fit(points, metrics_registry=reg_range, tracer=tr_range)
        assert any(s.name == "driver.broadcast" for s in tr_range.spans)

        reg_cell, tr_cell = MetricsRegistry(), Tracer()
        fit(points, partitioning="cells", metrics_registry=reg_cell,
            tracer=tr_cell)
        assert reg_cell.get("repro_broadcast_bytes_total") is None
        assert not any(s.name == "driver.broadcast" for s in tr_cell.spans)

    def test_no_broadcast_bytes_under_process_backend(self):
        """Under ``processes[k]`` broadcasts spill to disk and the
        engine meters their serialized size — the range plan pays for
        the whole-dataset kd-tree, the cell plan pays nothing."""
        points = DATASETS["quest"]().points
        reg_range = MetricsRegistry()
        fit(points, master="processes[2]", num_partitions=2,
            metrics_registry=reg_range)
        bc = reg_range.get("repro_broadcast_bytes_total")
        assert bc is not None and bc.value() > points.nbytes

        reg_cell = MetricsRegistry()
        cell = fit(points, master="processes[2]", num_partitions=2,
                   partitioning="cells", metrics_registry=reg_cell)
        assert reg_cell.get("repro_broadcast_bytes_total") is None
        base = fit(points, num_partitions=2)
        assert np.array_equal(base.labels, cell.labels)

    def test_halo_telemetry_exported(self):
        points = DATASETS["skew"]().points
        reg = MetricsRegistry()
        fit(points, partitioning="cells", metrics_registry=reg)
        halo_pts = reg.get("repro_cell_halo_points")
        halo_bytes = reg.get("repro_cell_halo_bytes")
        payload_bytes = reg.get("repro_cell_payload_bytes")
        assert halo_pts is not None and halo_pts.value() > 0
        assert halo_bytes is not None and halo_bytes.value() > 0
        # Halo replication is strictly part of the total payload.
        assert payload_bytes.value() > halo_bytes.value()


class TestCheckpointResume:
    @pytest.mark.parametrize("crash_after", ["CellPartition",
                                             "CollectPartials"])
    def test_crash_then_resume_matches_direct_run(self, tmp_path,
                                                  crash_after):
        points = DATASETS["quest"]().points
        direct = fit(points, partitioning="cells")
        ckpt = str(tmp_path / "ckpt")
        with pytest.raises(PipelineCrash):
            fit(points, partitioning="cells", checkpoint_dir=ckpt,
                fail_after=crash_after)
        resumed = fit(points, partitioning="cells", checkpoint_dir=ckpt,
                      resume=True)
        assert np.array_equal(direct.labels, resumed.labels)

    def test_partitioning_changes_checkpoint_key(self, tmp_path):
        """Cell and range runs must never share checkpoints."""
        points = DATASETS["quest"]().points
        a = SparkDBSCAN(EPS, MINPTS).config.content_hash(points)
        b = SparkDBSCAN(EPS, MINPTS,
                        partitioning="cells").config.content_hash(points)
        assert a != b


class TestBorderTieBreak:
    """Satellite: a border point exactly on a cell boundary, within eps
    of core points in two different clusters (owned by two different
    partitions), must get one deterministic label.

    Tie-break (DESIGN.md §10): a contested non-core point is labelled by
    the partial that *contains it as a member* — its owning partition's
    expansion — and only a point claimed by no partial falls back to
    first-come among the founder-sorted partials listing it as a seed.
    """

    # 1-D, eps=1: cluster A spans [0.5, 1.1], cluster B spans
    # [2.9, 3.5]; point 2.0 sits exactly on the cell-1|2 boundary, with
    # exactly one core neighbour on each side (1.1 and 2.9, both at
    # distance 0.9) — three neighbours including itself, under
    # minpts=4, so it is a border point of both clusters while the
    # clusters themselves stay 1.8 apart and never merge.
    POINTS = np.array(
        [[0.5], [0.6], [0.7], [1.1], [2.0], [2.9], [3.3], [3.4], [3.5]]
    )

    def labels(self, **kw):
        return SparkDBSCAN(1.0, 4, num_partitions=2, **kw).fit(
            self.POINTS).labels

    def test_scenario_shape(self):
        labels = self.labels()
        # Two clusters; the contested point is not noise.
        assert labels[0] == labels[3] != labels[5]
        assert labels[5] == labels[8]
        assert labels[4] >= 0

    def test_deterministic_with_documented_tie_break(self):
        base = self.labels()
        runs = [self.labels(partitioning="cells") for _ in range(3)]
        # Deterministic: every cell-plan run yields the same labels.
        for labels in runs:
            assert np.array_equal(runs[0], labels)
        cell = runs[0]
        # The contested point gets exactly one cluster's label — here
        # the cluster around 2.9, whose partition owns 2.0's cell and
        # claims it as a border member during its own expansion.
        assert cell[4] == cell[5]
        # Everything *un*contested is byte-identical to the range plan.
        # The contested point itself may differ: the range split packs
        # 2.0 with cluster A's points, the cell split with cluster B's,
        # and a border point reachable from two clusters legitimately
        # belongs to whichever claims it first (classic DBSCAN
        # order-dependence, scoped here to exactly this point).
        rest = np.arange(len(base)) != 4
        assert np.array_equal(base[rest], cell[rest])

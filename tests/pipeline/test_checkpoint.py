"""CheckpointStore: atomic per-stage artifacts keyed by run key."""

import json
import os

import numpy as np
import pytest

from repro.pipeline import CheckpointError, CheckpointStore


class TestArtifacts:
    def test_json_roundtrip(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "k" * 64)
        store.save_json("StageA", {"x": [1, 2], "y": "z"})
        store.complete("StageA")
        assert store.load_json("StageA") == {"x": [1, 2], "y": "z"}

    def test_npz_roundtrip(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "k" * 64)
        arr = np.arange(12).reshape(3, 4)
        store.save_npz("StageB", labels=arr)
        store.complete("StageB")
        out = store.load_npz("StageB")["labels"]
        assert np.array_equal(out, arr)

    def test_no_tmp_litter(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "k" * 64)
        store.save_json("S", {})
        store.save_npz("S", a=np.zeros(3))
        assert not [f for f in os.listdir(store.dir) if f.endswith(".tmp")]

    def test_unreadable_artifact_raises(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "k" * 64)
        with pytest.raises(CheckpointError):
            store.load_json("Nope")
        with pytest.raises(CheckpointError):
            store.load_npz("Nope")


class TestManifest:
    def test_has_requires_complete(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "k" * 64)
        store.save_json("S", {"a": 1})
        assert not store.has("S")          # written but not committed
        store.complete("S")
        assert store.has("S")

    def test_completed_survive_reopen(self, tmp_path):
        key = "k" * 64
        store = CheckpointStore(str(tmp_path), key)
        store.save_json("S", {"a": 1})
        store.complete("S")
        again = CheckpointStore(str(tmp_path), key)
        assert again.has("S")
        assert again.completed_stages() == ["S"]

    def test_missing_file_invalidates_stage(self, tmp_path):
        key = "k" * 64
        store = CheckpointStore(str(tmp_path), key)
        store.save_json("S", {"a": 1})
        store.complete("S")
        os.remove(os.path.join(store.dir, "S.json"))
        assert not CheckpointStore(str(tmp_path), key).has("S")

    def test_run_key_mismatch_is_cold(self, tmp_path):
        # Same truncated directory name, different full key: the stale
        # manifest must not be trusted.
        key_a = "a" * 32 + "1" * 32
        key_b = "a" * 32 + "2" * 32
        store = CheckpointStore(str(tmp_path), key_a)
        store.save_json("S", {"a": 1})
        store.complete("S")
        assert not CheckpointStore(str(tmp_path), key_b).has("S")

    def test_different_keys_use_disjoint_dirs(self, tmp_path):
        a = CheckpointStore(str(tmp_path), "a" * 64)
        b = CheckpointStore(str(tmp_path), "b" * 64)
        a.save_json("S", {"v": "a"})
        a.complete("S")
        assert not b.has("S")

    def test_corrupt_manifest_raises(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "k" * 64)
        store.save_json("S", {})
        store.complete("S")
        with open(os.path.join(store.dir, "manifest.json"), "w") as f:
            f.write("{not json")
        with pytest.raises(CheckpointError):
            CheckpointStore(str(tmp_path), "k" * 64)

    def test_manifest_records_config_summary(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "k" * 64, {"eps": 25.0})
        store.save_json("S", {})
        store.complete("S")
        with open(os.path.join(store.dir, "manifest.json")) as f:
            manifest = json.load(f)
        assert manifest["config"] == {"eps": 25.0}

"""Stages must not leak engine resources past their own run.

Regression tests for the RES001 findings the flow-sensitive lint
self-scan surfaced in `pipeline/stages_naive.py` (PR 8): the naive
plan's ``ShuffleExpand`` cached two RDDs (the neighbourhood info pass
and the core-edge graph) and never unpersisted them, pinning their
partitions in the block manager for the remaining life of the context.
Both are asserted gone here with a *lent* context — the runner never
stops a lent context, so leaked cache entries would survive and fail
the count below (which they did before the fix).
"""

import numpy as np

from repro.data import generate_clustered
from repro.engine import SparkContext
from repro.pipeline import PipelineRunner, RunConfig, build_plan


def test_naive_plan_releases_cached_rdds():
    points = generate_clustered(
        n=120, num_clusters=3, cluster_std=6.0, seed=7
    ).points
    config = RunConfig(eps=20.0, minpts=4, algorithm="naive", num_partitions=2)
    with SparkContext("simulated[2]") as sc:
        state = PipelineRunner(build_plan(config), config).run(points, sc=sc)
        assert state.labels is not None
        assert sc.block_manager.num_memory_blocks == 0
        assert sc.block_manager.num_disk_blocks == 0


def test_naive_stage_releases_caches_even_when_a_round_fails():
    # The unpersist sits in ``finally`` blocks, so even a mid-stage
    # crash must leave the block manager clean.
    from repro.obs import Tracer
    from repro.pipeline.stages_naive import ShuffleExpand
    from repro.pipeline.state import PipelineState

    points = generate_clustered(
        n=60, num_clusters=2, cluster_std=5.0, seed=3
    ).points
    config = RunConfig(eps=20.0, minpts=4, algorithm="naive", num_partitions=2)
    with SparkContext("simulated[2]") as sc:
        state = PipelineState(config=config, tracer=Tracer())
        state.points = points
        state.sc = sc
        state.n = len(points)
        from repro.kdtree import KDTree

        state.tree = KDTree(np.asarray(points))
        state.mark("tree", "n")

        # sabotage broadcast after the caches are built: the propagation
        # round raises, the finallys must still unpersist
        real_broadcast = sc.broadcast
        calls = {"n": 0}

        def failing_broadcast(value):
            calls["n"] += 1
            if calls["n"] >= 3:      # tree_b and core_b succeed, lab_b fails
                raise RuntimeError("injected broadcast failure")
            return real_broadcast(value)

        sc.broadcast = failing_broadcast
        try:
            try:
                ShuffleExpand().run(state)
            except RuntimeError:
                pass
            assert sc.block_manager.num_memory_blocks == 0
            assert sc.block_manager.num_disk_blocks == 0
        finally:
            sc.broadcast = real_broadcast

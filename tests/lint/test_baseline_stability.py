"""Baseline fingerprint stability: a committed baseline must survive
the two most common repo refactors — code moving to different lines,
and directories being renamed around an unchanged file."""

import textwrap

from repro.lint import load_baseline, new_findings, run_lint, write_baseline

VIOLATION = textwrap.dedent(
    """
    import time

    def job(rdd):
        return rdd.map(lambda x: (x, time.time())).collect()
    """
)

# One flow-sensitive (LIF001) and one leak (RES002) finding: their
# fingerprints must be just as line- and directory-free as the scope
# rules', even though the *related* site (stop/acquire line) moves.
FLOW_VIOLATION = textwrap.dedent(
    """
    import threading

    def use_after_stop():
        sc = SparkContext()
        sc.stop()
        sc.parallelize([1])

    def leaky_lock(work):
        mu = threading.Lock()
        mu.acquire()
        work()
        mu.release()
    """
)


# A size-class pair (SCL001 + SCL002): the module carries its own plan
# + size manifests, so the scope machinery sees the stage wherever the
# file lives — the fingerprints must survive the same refactors.
SCL_VIOLATION = textwrap.dedent(
    """
    import numpy as np

    class Work:
        name = "Work"
        provides = ("out",)

        def run(self, state):
            snapshot = np.sort(state.points)
            for row in state.points:
                snapshot = snapshot
            return snapshot

    STAGE_MANIFEST = {"cell": ("Work",)}
    SHUFFLE_FREE_PLANS = ("cell",)
    SIZE_MANIFEST = {"Work": {"input": "O(points)", "output": "O(edges)"}}
    """
)


def _lint(path):
    report = run_lint([str(path)])
    assert report.findings, "fixture must produce a finding"
    return report.findings


class TestLineMoves:
    def test_padding_above_keeps_fingerprint(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(VIOLATION)
        before = _lint(mod)
        mod.write_text("# comment\n" * 40 + VIOLATION)
        after = _lint(mod)
        assert before[0].line != after[0].line
        assert [f.fingerprint for f in before] == [f.fingerprint for f in after]

    def test_moved_finding_stays_baselined(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(VIOLATION)
        base = str(tmp_path / "base.json")
        write_baseline(base, _lint(mod))
        mod.write_text("\n" * 25 + VIOLATION)
        report = run_lint([str(mod)], baseline_path=base)
        assert report.clean, report.render_text()


class TestDirectoryRenames:
    def test_rename_keeps_fingerprint(self, tmp_path):
        old = tmp_path / "dbscan" / "mod.py"
        old.parent.mkdir()
        old.write_text(VIOLATION)
        new = tmp_path / "clustering" / "mod.py"
        new.parent.mkdir()
        new.write_text(VIOLATION)
        assert [f.fingerprint for f in _lint(old)] == \
            [f.fingerprint for f in _lint(new)]

    def test_renamed_directory_stays_baselined(self, tmp_path):
        old = tmp_path / "pipelines" / "mod.py"
        old.parent.mkdir()
        old.write_text(VIOLATION)
        base = str(tmp_path / "base.json")
        write_baseline(base, _lint(old))
        # "Rename" the directory: same file name + content, new parent.
        new = tmp_path / "plans" / "mod.py"
        new.parent.mkdir()
        new.write_text(VIOLATION)
        report = run_lint([str(new)], baseline_path=base)
        assert report.clean, report.render_text()

    def test_basename_change_is_new(self, tmp_path):
        # The file's own name *does* participate: renaming the file
        # itself is a new identity, only its directories are free.
        mod = tmp_path / "mod.py"
        mod.write_text(VIOLATION)
        base = str(tmp_path / "base.json")
        findings = _lint(mod)
        write_baseline(base, findings)
        renamed = tmp_path / "other.py"
        renamed.write_text(VIOLATION)
        counts = load_baseline(base)
        assert new_findings(_lint(renamed), counts)


class TestFlowFindingStability:
    """Same stability guarantees for the flow-sensitive rules (PR 8)."""

    def _flow_lint(self, path):
        findings = [
            f for f in run_lint([str(path)]).findings
            if f.rule in ("LIF001", "RES002")
        ]
        assert {f.rule for f in findings} == {"LIF001", "RES002"}
        return sorted(findings, key=lambda f: f.rule)

    def test_padding_above_keeps_flow_fingerprints(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(FLOW_VIOLATION)
        before = self._flow_lint(mod)
        mod.write_text("# comment\n" * 40 + FLOW_VIOLATION)
        after = self._flow_lint(mod)
        assert [f.line for f in before] != [f.line for f in after]
        # related sites moved too — they must not feed the fingerprint
        assert [f.related[0][1] for f in before] != \
            [f.related[0][1] for f in after]
        assert [f.fingerprint for f in before] == \
            [f.fingerprint for f in after]

    def test_moved_flow_finding_stays_baselined(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(FLOW_VIOLATION)
        base = str(tmp_path / "base.json")
        write_baseline(base, run_lint([str(mod)]).findings)
        mod.write_text("\n" * 25 + FLOW_VIOLATION)
        report = run_lint([str(mod)], baseline_path=base)
        assert report.clean, report.render_text()

    def test_directory_rename_keeps_flow_fingerprints(self, tmp_path):
        old = tmp_path / "engine" / "mod.py"
        old.parent.mkdir()
        old.write_text(FLOW_VIOLATION)
        new = tmp_path / "core" / "mod.py"
        new.parent.mkdir()
        new.write_text(FLOW_VIOLATION)
        assert [f.fingerprint for f in self._flow_lint(old)] == \
            [f.fingerprint for f in self._flow_lint(new)]

    def test_renamed_directory_stays_baselined_for_flow_rules(self, tmp_path):
        old = tmp_path / "pipelines" / "mod.py"
        old.parent.mkdir()
        old.write_text(FLOW_VIOLATION)
        base = str(tmp_path / "base.json")
        write_baseline(base, run_lint([str(old)]).findings)
        new = tmp_path / "plans" / "mod.py"
        new.parent.mkdir()
        new.write_text(FLOW_VIOLATION)
        report = run_lint([str(new)], baseline_path=base)
        assert report.clean, report.render_text()


class TestSizeClassFindingStability:
    """Same stability guarantees for the size-class rules."""

    def _scl_lint(self, path):
        findings = [
            f for f in run_lint([str(path)]).findings
            if f.rule.startswith("SCL")
        ]
        assert {f.rule for f in findings} == {"SCL001", "SCL002"}
        return sorted(findings, key=lambda f: f.rule)

    def test_padding_above_keeps_scl_fingerprints(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(SCL_VIOLATION)
        before = self._scl_lint(mod)
        mod.write_text("# comment\n" * 40 + SCL_VIOLATION)
        after = self._scl_lint(mod)
        assert [f.line for f in before] != [f.line for f in after]
        assert [f.fingerprint for f in before] == \
            [f.fingerprint for f in after]

    def test_moved_scl_finding_stays_baselined(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(SCL_VIOLATION)
        base = str(tmp_path / "base.json")
        write_baseline(base, run_lint([str(mod)]).findings)
        mod.write_text("\n" * 25 + SCL_VIOLATION)
        report = run_lint([str(mod)], baseline_path=base)
        assert report.clean, report.render_text()

    def test_directory_rename_keeps_scl_fingerprints(self, tmp_path):
        old = tmp_path / "dbscan" / "mod.py"
        old.parent.mkdir()
        old.write_text(SCL_VIOLATION)
        new = tmp_path / "clustering" / "mod.py"
        new.parent.mkdir()
        new.write_text(SCL_VIOLATION)
        assert [f.fingerprint for f in self._scl_lint(old)] == \
            [f.fingerprint for f in self._scl_lint(new)]

"""Baseline fingerprint stability: a committed baseline must survive
the two most common repo refactors — code moving to different lines,
and directories being renamed around an unchanged file."""

import textwrap

from repro.lint import load_baseline, new_findings, run_lint, write_baseline

VIOLATION = textwrap.dedent(
    """
    import time

    def job(rdd):
        return rdd.map(lambda x: (x, time.time())).collect()
    """
)


def _lint(path):
    report = run_lint([str(path)])
    assert report.findings, "fixture must produce a finding"
    return report.findings


class TestLineMoves:
    def test_padding_above_keeps_fingerprint(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(VIOLATION)
        before = _lint(mod)
        mod.write_text("# comment\n" * 40 + VIOLATION)
        after = _lint(mod)
        assert before[0].line != after[0].line
        assert [f.fingerprint for f in before] == [f.fingerprint for f in after]

    def test_moved_finding_stays_baselined(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(VIOLATION)
        base = str(tmp_path / "base.json")
        write_baseline(base, _lint(mod))
        mod.write_text("\n" * 25 + VIOLATION)
        report = run_lint([str(mod)], baseline_path=base)
        assert report.clean, report.render_text()


class TestDirectoryRenames:
    def test_rename_keeps_fingerprint(self, tmp_path):
        old = tmp_path / "dbscan" / "mod.py"
        old.parent.mkdir()
        old.write_text(VIOLATION)
        new = tmp_path / "clustering" / "mod.py"
        new.parent.mkdir()
        new.write_text(VIOLATION)
        assert [f.fingerprint for f in _lint(old)] == \
            [f.fingerprint for f in _lint(new)]

    def test_renamed_directory_stays_baselined(self, tmp_path):
        old = tmp_path / "pipelines" / "mod.py"
        old.parent.mkdir()
        old.write_text(VIOLATION)
        base = str(tmp_path / "base.json")
        write_baseline(base, _lint(old))
        # "Rename" the directory: same file name + content, new parent.
        new = tmp_path / "plans" / "mod.py"
        new.parent.mkdir()
        new.write_text(VIOLATION)
        report = run_lint([str(new)], baseline_path=base)
        assert report.clean, report.render_text()

    def test_basename_change_is_new(self, tmp_path):
        # The file's own name *does* participate: renaming the file
        # itself is a new identity, only its directories are free.
        mod = tmp_path / "mod.py"
        mod.write_text(VIOLATION)
        base = str(tmp_path / "base.json")
        findings = _lint(mod)
        write_baseline(base, findings)
        renamed = tmp_path / "other.py"
        renamed.write_text(VIOLATION)
        counts = load_baseline(base)
        assert new_findings(_lint(renamed), counts)

"""One catalogue, four mirrors: the registered rules, the ``--rules``
CLI listing, the SARIF rule descriptors, and the rule tables in
README.md / DESIGN.md must all agree on the same eighteen rule ids.
A rule added to any one of them without the others fails here.
"""

import re

from repro.cli import main
from repro.lint import rule_catalogue, run_lint, to_sarif

CATALOGUE = [
    "ACC001",
    "ACT001",
    "BRD001",
    "CAP001",
    "DET001",
    "LIF001",
    "LIF002",
    "LIF003",
    "PCK001",
    "PLN001",
    "PLN002",
    "RES001",
    "RES002",
    "SCL001",
    "SCL002",
    "SCL003",
    "SCL004",
    "SHF001",
]

RULE_ID = re.compile(r"\b[A-Z]{3}\d{3}\b")


class TestCatalogueParity:
    def test_registry_is_the_pinned_eighteen(self):
        assert sorted(rule_catalogue()) == CATALOGUE

    def test_every_rule_has_a_summary(self):
        for rid, summary in rule_catalogue().items():
            assert summary and summary[0].isupper() or summary[0].islower()
            assert len(summary) < 120, f"{rid} summary should be one line"

    def test_cli_rules_listing_matches(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        listed = [line.split()[0] for line in out.splitlines() if line.strip()]
        assert sorted(listed) == CATALOGUE

    def test_sarif_descriptors_match(self, tmp_path):
        mod = tmp_path / "ok.py"
        mod.write_text("def f(x):\n    return x\n")
        log = to_sarif(run_lint([str(mod)]))
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == CATALOGUE

    def test_readme_documents_every_rule(self):
        with open("README.md", encoding="utf-8") as f:
            text = f.read()
        assert "eighteen-rule" in text, "README must count the catalogue"
        assert "fourteen-rule" not in text
        missing = [rid for rid in CATALOGUE if rid not in RULE_ID.findall(text)]
        assert not missing, f"README.md does not mention: {missing}"

    def test_design_rule_table_has_every_rule(self):
        with open("DESIGN.md", encoding="utf-8") as f:
            text = f.read()
        table = text.split("### 8.2 Rule catalogue")[1].split("### 8.3")[0]
        rows = [
            line.split("|")[1].strip()
            for line in table.splitlines()
            if line.startswith("| ") and RULE_ID.fullmatch(
                line.split("|")[1].strip()
            )
        ]
        assert sorted(rows) == CATALOGUE

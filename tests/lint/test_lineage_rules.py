"""The static RDD-lineage rules: SHF001 as a reachability proof, plus
the task-dataflow trio ACC001/BRD001/ACT001 (positive and negative
fixtures for each).

The headline case is the ISSUE's seeded violation: a helper in a *new*
module calling ``groupByKey``, reachable from a ``LocalExpand`` stage —
invisible to a path allowlist, caught by the call graph.
"""

import textwrap

import pytest

from repro.lint import run_lint


@pytest.fixture()
def package(tmp_path):
    def _make(files: dict[str, str]):
        (tmp_path / "pkg").mkdir(exist_ok=True)
        (tmp_path / "pkg" / "__init__.py").write_text("")
        for name, source in files.items():
            (tmp_path / "pkg" / name).write_text(textwrap.dedent(source))
        return run_lint([str(tmp_path / "pkg")]).findings

    return _make


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TestShuffleFreeProof:
    def test_seeded_groupbykey_behind_helper(self, package):
        # The acceptance-criteria fixture: LocalExpand -> helper module
        # -> groupByKey.  No allowlist mentions helpers.py; the lineage
        # proof still finds it.
        findings = package({
            "helpers.py": """
                def regroup(rdd):
                    return rdd.groupByKey()
                """,
            "stages.py": """
                from .helpers import regroup

                class LocalExpand:
                    def run(self, rdd):
                        return regroup(rdd)
                """,
        })
        hits = [f for f in findings if f.rule == "SHF001"]
        assert hits, findings
        assert any(
            f.path.endswith("helpers.py") and "groupByKey" in f.message
            for f in hits
        )

    def test_same_helper_unreachable_is_fine(self, package):
        # Identical helper, but nothing on the paper pipeline calls it.
        findings = package({
            "helpers.py": """
                def regroup(rdd):
                    return rdd.groupByKey()
                """,
            "stages.py": """
                class LocalExpand:
                    def run(self, rdd):
                        return rdd.map_partitions(list)
                """,
        })
        assert "SHF001" not in rules_of(findings)

    def test_wide_api_two_hops_away(self, package):
        findings = package({
            "inner.py": """
                def shuffle_sort(rdd):
                    return rdd.sort_by(lambda kv: kv[0])
                """,
            "outer.py": """
                from .inner import shuffle_sort

                def prepare(rdd):
                    return shuffle_sort(rdd)
                """,
            "front.py": """
                from .outer import prepare

                class SparkDBSCAN:
                    def fit(self, rdd):
                        return prepare(rdd)
                """,
        })
        assert any(
            f.rule == "SHF001" and f.path.endswith("inner.py")
            for f in findings
        )

    def test_shuffle_import_in_hosting_module(self, package):
        findings = package({
            "helpers.py": """
                from repro.engine.shuffle import ShuffleManager

                def passthrough(rdd):
                    return rdd
                """,
            "front.py": """
                from .helpers import passthrough

                class SparkDBSCAN:
                    def fit(self, rdd):
                        return passthrough(rdd)
                """,
        })
        assert any(
            f.rule == "SHF001"
            and f.path.endswith("helpers.py")
            and "shuffle" in f.message
            for f in findings
        )


class TestAccumulatorReads:
    def test_value_read_in_task(self, package):
        findings = package({
            "job.py": """
                def job(sc):
                    acc = sc.accumulator(0)
                    rdd = sc.parallelize(range(10))

                    def work(x):
                        acc.add(1)
                        return acc.value

                    return rdd.map(work).collect()
                """,
        })
        assert any(
            f.rule == "ACC001" and "'acc'" in f.message for f in findings
        )

    def test_driver_side_read_is_fine(self, package):
        findings = package({
            "job.py": """
                def job(sc):
                    acc = sc.accumulator(0)
                    rdd = sc.parallelize(range(10))

                    def work(x):
                        acc.add(1)
                        return x

                    out = rdd.map(work).collect()
                    return out, acc.value
                """,
        })
        assert "ACC001" not in rules_of(findings)


class TestBroadcastMutations:
    def test_subscript_assignment_in_task(self, package):
        findings = package({
            "job.py": """
                def job(sc):
                    b = sc.broadcast({})
                    rdd = sc.parallelize(range(10))

                    def work(x):
                        b.value[x] = x
                        return x

                    return rdd.map(work).collect()
                """,
        })
        assert any(
            f.rule == "BRD001" and "'b'" in f.message for f in findings
        )

    def test_mutator_method_in_task(self, package):
        findings = package({
            "job.py": """
                def job(sc):
                    b = sc.broadcast([])
                    rdd = sc.parallelize(range(10))

                    def work(x):
                        b.value.append(x)
                        return x

                    return rdd.map(work).collect()
                """,
        })
        assert any(
            f.rule == "BRD001" and ".append()" in f.message for f in findings
        )

    def test_reading_broadcast_is_fine(self, package):
        # Reading b.value in a task is the whole point of a broadcast.
        findings = package({
            "job.py": """
                def job(sc):
                    b = sc.broadcast({1: "a"})
                    rdd = sc.parallelize(range(10))
                    return rdd.map(lambda x: b.value.get(x)).collect()
                """,
        })
        assert "BRD001" not in rules_of(findings)


class TestRddActions:
    def test_action_inside_task(self, package):
        findings = package({
            "job.py": """
                def job(sc):
                    rdd = sc.parallelize(range(10))
                    other = sc.parallelize(range(10))

                    def work(x):
                        return x + other.count()

                    return rdd.map(work).collect()
                """,
        })
        assert any(
            f.rule == "ACT001" and ".count()" in f.message for f in findings
        )

    def test_driver_side_action_is_fine(self, package):
        findings = package({
            "job.py": """
                def job(sc):
                    rdd = sc.parallelize(range(10))
                    out = rdd.map(lambda x: x + 1).collect()
                    return len(out), rdd.count()
                """,
        })
        assert "ACT001" not in rules_of(findings)

"""Tests for the forward dataflow fixpoint solver (`repro.lint.dataflow`)."""

import ast

import pytest

from repro.lint.cfg import build_cfg
from repro.lint.dataflow import (
    FixpointDiverged,
    ForwardAnalysis,
    SetUnionAnalysis,
    exit_state,
    raise_exit_state,
    solve,
)


def solve_source(source: str, analysis=None):
    tree = ast.parse(source)
    func = next(
        n for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    cfg = build_cfg(func)
    analysis = analysis or SetUnionAnalysis()
    return cfg, analysis, solve(cfg, analysis)


class TestSetUnion:
    def test_straight_line_accumulates(self):
        cfg, an, st = solve_source("def f():\n    a = 1\n    b = 2\n")
        assert exit_state(st, an) == frozenset({"a", "b"})

    def test_branches_join_by_union(self):
        cfg, an, st = solve_source(
            "def f(c):\n"
            "    if c:\n"
            "        a = 1\n"
            "    else:\n"
            "        b = 2\n"
        )
        assert exit_state(st, an) == frozenset({"a", "b"})

    def test_loop_reaches_fixpoint(self):
        cfg, an, st = solve_source(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        a = 1\n"
            "    b = 2\n"
        )
        assert exit_state(st, an) == frozenset({"a", "b"})

    def test_unreachable_block_has_no_state(self):
        cfg, an, st = solve_source(
            "def f():\n"
            "    return 1\n"
            "    a = 2\n"
        )
        dead = [
            bid for bid, b in cfg.blocks.items()
            if any(isinstance(i, ast.Assign) for i in b.instrs)
        ]
        for bid in dead:
            assert not st.reached(bid)
        assert exit_state(st, an) == frozenset()

    def test_raise_exit_unreached_for_pure_function(self):
        cfg, an, st = solve_source("def f(x):\n    a = x\n")
        assert raise_exit_state(st, an) is None


class MustAssignAnalysis(ForwardAnalysis):
    """Intersection-join must-analysis: names assigned on *every* path.
    ``None`` is the unreached (top) state."""

    def initial_state(self):
        return frozenset()

    def bottom(self):
        return None

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a & b

    def transfer(self, state, instr):
        if state is None:
            return None
        if isinstance(instr, ast.Assign):
            return state | {
                t.id for t in instr.targets if isinstance(t, ast.Name)
            }
        return state


class TestMustAnalysis:
    def test_one_sided_assign_is_not_must(self):
        cfg, an, st = solve_source(
            "def f(c):\n"
            "    a = 1\n"
            "    if c:\n"
            "        b = 2\n",
            MustAssignAnalysis(),
        )
        assert exit_state(st, an) == frozenset({"a"})

    def test_both_sides_is_must(self):
        cfg, an, st = solve_source(
            "def f(c):\n"
            "    if c:\n"
            "        b = 2\n"
            "    else:\n"
            "        b = 3\n",
            MustAssignAnalysis(),
        )
        assert exit_state(st, an) == frozenset({"b"})


class TestExceptionalStates:
    def test_exc_state_is_pre_instruction(self):
        # a = 1 happens before g(); b = 2 after — only 'a' can be live
        # on the exceptional edge out of g().
        cfg, an, st = solve_source(
            "def f(g):\n"
            "    a = 1\n"
            "    g()\n"
            "    b = 2\n"
        )
        assert raise_exit_state(st, an) == frozenset({"a"})

    def test_handler_sees_pre_raise_state(self):
        cfg, an, st = solve_source(
            "def f(g):\n"
            "    a = 1\n"
            "    try:\n"
            "        g()\n"
            "        b = 2\n"
            "    except ValueError:\n"
            "        c = 3\n"
        )
        # 'b' flows to exit only via the no-raise path; 'c' only via the
        # handler; 'a' via both.
        out = exit_state(st, an)
        assert "a" in out
        assert {"b", "c"} & out == {"b", "c"}

    def test_custom_exc_state_hook(self):
        class DropOnRaise(SetUnionAnalysis):
            def exc_state(self, state, instr):
                return frozenset()   # pretend nothing survives a raise

        cfg, an, st = solve_source(
            "def f(g):\n    a = 1\n    g()\n", DropOnRaise()
        )
        assert raise_exit_state(st, an) == frozenset()


class TestDivergenceGuard:
    def test_non_monotone_transfer_raises(self):
        class Flapping(ForwardAnalysis):
            def __init__(self):
                self.n = 0

            def initial_state(self):
                return 0

            def bottom(self):
                return 0

            def join(self, a, b):
                return max(a, b)

            def transfer(self, state, instr):
                self.n += 1
                return self.n     # strictly increasing: never stabilises

        with pytest.raises(FixpointDiverged):
            solve_source(
                "def f(xs):\n"
                "    for x in xs:\n"
                "        a = 1\n",
                Flapping(),
            )

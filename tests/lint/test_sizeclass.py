"""Size-class abstract interpretation (SCL001–SCL004): each rule fires
on its seeded violation and stays silent on the nearest legitimate
pattern; summaries propagate classes interprocedurally; pragmas are
scoped to their line; and the acceptance seeds — a raw-points collect
in ``merge.py``, a per-point driver loop in a pipeline stage — turn a
clean self-scan into a failing one.
"""

import ast
import shutil
import textwrap

import pytest

from repro.lint import run_lint

#: Scaffold: one stage class whose ``run`` body is under test, wired
#: into a manifest so the size-class scope machinery sees it.  The
#: default plan name ("cell") puts the stage under the SCL003
#: broadcast contract; the default size manifest declares an O(edges)
#: digest output, which arms SCL004.
SCAFFOLD = """
import numpy as np


class {cls}:
    name = "{cls}"
    provides = ("out",)

    def run(self, state):
{body}

{extra}

STAGE_MANIFEST = {{"{plan}": ("{cls}",)}}
SHUFFLE_FREE_PLANS = ("{plan}",)
SIZE_MANIFEST = {{"{cls}": {{"input": "O(points)", "output": "{out}"}}}}
"""


@pytest.fixture()
def scl_lint(tmp_path):
    def _lint(body, cls="Work", plan="cell", out="O(edges)", extra=""):
        indented = textwrap.indent(textwrap.dedent(body).strip("\n"),
                                   " " * 8)
        mod = tmp_path / "mod.py"
        mod.write_text(SCAFFOLD.format(
            cls=cls, plan=plan, out=out, body=indented,
            extra=textwrap.dedent(extra),
        ))
        return run_lint([str(mod)]).findings

    return _lint


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TestSCL001:
    def test_fresh_points_materialization_fires(self, scl_lint):
        findings = scl_lint("""
            snapshot = np.sort(state.points)
            return snapshot
        """)
        (f,) = [f for f in findings if f.rule == "SCL001"]
        assert "materializes an O(points)" in f.message
        assert f.symbol == "Work.run"

    def test_retention_into_attribute_fires(self, scl_lint):
        findings = scl_lint("""
            state.cache = state.points
            return None
        """)
        (f,) = [f for f in findings if f.rule == "SCL001"]
        assert "retains an O(points)" in f.message
        assert "'state.cache'" in f.message

    def test_related_location_points_at_taint(self, scl_lint):
        findings = scl_lint("""
            view = state.points
            state.cache = view
            return None
        """)
        (f,) = [f for f in findings if f.rule == "SCL001"]
        assert f.related, "retention must carry the taint site"
        assert "tainted O(points)" in f.related[0][2]

    def test_sub_points_classes_are_near_miss(self, scl_lint):
        findings = scl_lint("""
            tidy = np.sort(state.counts)
            state.keep = state.gid_map
            return tidy
        """)
        assert "SCL001" not in rules_of(findings)

    def test_local_alias_is_near_miss(self, scl_lint):
        # A name-to-name alias neither allocates nor extends a lifetime.
        findings = scl_lint("""
            view = state.points
            return view
        """)
        assert "SCL001" not in rules_of(findings)

    def test_sanctioned_stage_is_exempt(self, scl_lint):
        findings = scl_lint("""
            snapshot = np.sort(state.points)
            return snapshot
        """, cls="MergePartials")
        assert "SCL001" not in rules_of(findings)

    def test_lazy_rdd_handle_is_near_miss(self, scl_lint):
        # The RDD wraps O(points) but the driver holds only the handle.
        findings = scl_lint("""
            state.rdd = state.sc.parallelize(state.points).map(float)
            return None
        """)
        assert "SCL001" not in rules_of(findings)


class TestSCL002:
    def test_loop_over_points_fires(self, scl_lint):
        findings = scl_lint("""
            total = 0.0
            for row in state.points:
                total += 1.0
            return total
        """)
        (f,) = [f for f in findings if f.rule == "SCL002"]
        assert "O(points) trip count" in f.message

    def test_range_over_n_fires(self, scl_lint):
        findings = scl_lint("""
            for i in range(state.n):
                pass
            return None
        """)
        assert "SCL002" in rules_of(findings)

    def test_comprehension_generator_fires(self, scl_lint):
        # Comprehensions are lowered to loop blocks in the CFG; their
        # generators carry trip counts like any other loop.
        findings = scl_lint("""
            sums = [float(p) for p in state.points]
            return sums
        """)
        assert "SCL002" in rules_of(findings)

    def test_loop_over_partials_is_near_miss(self, scl_lint):
        findings = scl_lint("""
            total = 0.0
            for part in state.partials:
                total += 1.0
            acc = [float(d) for d in state.digests]
            return acc
        """)
        assert "SCL002" not in rules_of(findings)


class TestSCL003:
    def test_points_broadcast_in_cell_plan_fires(self, scl_lint):
        findings = scl_lint("""
            sc = state.sc
            state.b = sc.broadcast(state.points)
            return None
        """)
        (f,) = [f for f in findings if f.rule == "SCL003"]
        assert "broadcast of an O(points)" in f.message

    def test_partials_broadcast_is_near_miss(self, scl_lint):
        findings = scl_lint("""
            sc = state.sc
            state.b = sc.broadcast(state.gid_map)
            return None
        """)
        assert "SCL003" not in rules_of(findings)

    def test_plan_outside_contract_is_near_miss(self, scl_lint):
        # Same broadcast, but the plan is neither "cell" nor "*_edges".
        findings = scl_lint("""
            sc = state.sc
            state.b = sc.broadcast(state.points)
            return None
        """, plan="spark")
        assert "SCL003" not in rules_of(findings)

    def test_edges_plan_is_in_scope(self, scl_lint):
        findings = scl_lint("""
            sc = state.sc
            state.b = sc.broadcast(state.points)
            return None
        """, plan="spark_edges")
        assert "SCL003" in rules_of(findings)


class TestSCL004:
    def test_undigested_collect_fires(self, scl_lint):
        findings = scl_lint("""
            rows = state.sc.parallelize(state.points).map(float).collect()
            return rows
        """)
        (f,) = [f for f in findings if f.rule == "SCL004"]
        assert "un-digested O(points) RDD" in f.message

    def test_no_digest_on_manifest_downgrades_to_scl001(self, scl_lint):
        # Without an O(edges)/O(partials) reduction on the manifest
        # there is no digest to point at; the collect is a plain
        # driver materialization instead.
        findings = scl_lint("""
            rows = state.sc.parallelize(state.points).map(float).collect()
            return rows
        """, out="O(points)")
        assert "SCL004" not in rules_of(findings)
        (f,) = [f for f in findings if f.rule == "SCL001"]
        assert "collect() materializes" in f.message

    def test_digest_collect_is_near_miss(self, scl_lint):
        findings = scl_lint("""
            small = state.sc.parallelize(state.summaries).collect()
            return small
        """)
        assert "SCL004" not in rules_of(findings)


class TestInterprocedural:
    def test_summary_propagates_param_class(self, scl_lint):
        findings = scl_lint("""
            twin = copy_rows(state.points)
            return twin
        """, extra="""
            def copy_rows(xs):
                return np.asarray(xs)
        """)
        (f,) = [f for f in findings if f.rule == "SCL001"]
        assert "'twin'" in f.message

    def test_summary_of_small_input_is_near_miss(self, scl_lint):
        findings = scl_lint("""
            twin = copy_rows(state.gid_map)
            return twin
        """, extra="""
            def copy_rows(xs):
                return np.asarray(xs)
        """)
        assert "SCL001" not in rules_of(findings)


class TestPragmaScoping:
    def test_pragma_suppresses_only_its_line(self, scl_lint):
        # A pragma covers its own line and the line below (standalone
        # comment form) — never further down.
        findings = scl_lint("""
            first = np.sort(state.points)  # lint: allow[SCL001] known
            mid = 0
            second = np.sort(state.points)
            return first, mid, second
        """)
        scl1 = [f for f in findings if f.rule == "SCL001"]
        assert len(scl1) == 1, "the pragma must not leak past its line"

    def test_pragma_is_rule_scoped(self, scl_lint):
        # An SCL001 allowance must not swallow the SCL002 on the line.
        findings = scl_lint("""
            big = [float(p) for p in state.points]  # lint: allow[SCL001] known
            return big
        """)
        assert "SCL001" not in rules_of(findings)
        assert "SCL002" in rules_of(findings)


class TestStats:
    def test_stats_carry_per_class_value_counts(self, scl_lint, tmp_path):
        scl_lint("""
            snapshot = np.sort(state.points)
            k = len(state.partials)
            return snapshot, k
        """)
        report = run_lint([str(tmp_path / "mod.py")], collect_stats=True)
        sizes = report.stats["sizes"]
        assert sizes["functions"] >= 1
        assert sizes["values"].get("O(points)", 0) >= 1
        rendered = report.render_stats()
        assert "size classes:" in rendered
        assert "O(points)=" in rendered


def _insert_into(path, qualname, code):
    """Insert ``code`` at the top of function ``qualname`` (after its
    docstring), preserving every other line number above it."""
    src = path.read_text()
    node = ast.parse(src)
    for part in qualname.split("."):
        node = next(
            n for n in node.body
            if isinstance(n, (ast.FunctionDef, ast.ClassDef))
            and n.name == part
        )
    first = node.body[0]
    at = (
        first.end_lineno
        if isinstance(first, ast.Expr)
        and isinstance(first.value, ast.Constant)
        else first.lineno - 1
    )
    pad = " " * first.col_offset
    lines = src.splitlines(keepends=True)
    lines.insert(at, textwrap.indent(textwrap.dedent(code), pad))
    path.write_text("".join(lines))


class TestAcceptanceSeeds:
    """The ISSUE's end-to-end criteria on a copy of the real tree."""

    @pytest.fixture()
    def tree(self, tmp_path):
        shutil.copytree("src/repro", tmp_path / "src" / "repro")
        return tmp_path / "src"

    def test_unseeded_tree_is_clean(self, tree):
        report = run_lint([str(tree)])
        assert not [f for f in report.findings if f.rule.startswith("SCL")]

    def test_points_collect_in_merge_fires_scl004(self, tree):
        _insert_into(
            tree / "repro" / "dbscan" / "merge.py",
            "merge_edges",
            "audit = sc.parallelize(points).collect()\n",
        )
        report = run_lint([str(tree)])
        seeded = [f for f in report.findings if f.rule == "SCL004"]
        assert any(f.symbol == "merge_edges" for f in seeded)
        assert not report.clean

    def test_labels_loop_in_stage_fires_scl002(self, tree):
        _insert_into(
            tree / "repro" / "pipeline" / "stages.py",
            "CollectPartials.run",
            "for lbl in state.labels:\n    pass\n",
        )
        report = run_lint([str(tree)])
        seeded = [f for f in report.findings if f.rule == "SCL002"]
        assert any(f.symbol == "CollectPartials.run" for f in seeded)
        assert not report.clean

    def test_removing_a_pragma_resurfaces_its_finding_only(self, tree):
        # The committed pragmas are line-scoped: dropping the one on the
        # cell_points grouping brings back exactly that site's findings.
        cells = tree / "repro" / "dbscan" / "cells.py"
        src = cells.read_text()
        target = "  # lint: allow[SCL001,SCL002] ROADMAP item 1"
        assert target in src
        line = next(
            s for s in src.splitlines() if target in s
        )
        cells.write_text(src.replace(line, line.split("  # lint")[0]))
        report = run_lint([str(tree)])
        scl = [f for f in report.findings if f.rule.startswith("SCL")]
        assert {f.rule for f in scl} == {"SCL001", "SCL002"}
        assert {f.line for f in scl} == {scl[0].line}, (
            "other pragma'd sites must stay suppressed"
        )

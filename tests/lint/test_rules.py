"""Rule-level tests: each lint rule fires on its seeded violation.

Each test writes a small module embodying exactly one violation class
and asserts the analyzer pins it to the right rule — plus negative
cases asserting intentional patterns stay clean.
"""

import textwrap

import pytest

from repro.lint import lint_file


@pytest.fixture()
def lint_source(tmp_path):
    """Write a module and lint it, returning findings."""

    def _lint(source: str, name: str = "mod.py"):
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return lint_file(str(path))

    return _lint


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TestCapture:
    def test_spark_context_captured(self, lint_source):
        findings = lint_source(
            """
            from repro.engine import SparkContext

            def job():
                sc = SparkContext("local")
                data = sc.parallelize(range(10))

                def work(x):
                    return sc.broadcast(x)

                return data.map(work).collect()
            """
        )
        assert any(f.rule == "CAP001" and "sc" in f.message for f in findings)

    def test_rdd_captured_in_lambda(self, lint_source):
        findings = lint_source(
            """
            def job(sc):
                rdd = sc.parallelize(range(10))
                other = sc.parallelize(range(10))
                return rdd.map(lambda x: other.count()).collect()
            """
        )
        assert "CAP001" in rules_of(findings)

    def test_broadcast_capture_is_fine(self, lint_source):
        findings = lint_source(
            """
            def job(sc):
                b = sc.broadcast([1, 2, 3])
                return sc.parallelize(range(3)).map(lambda i: b.value[i]).collect()
            """
        )
        assert findings == []

    def test_plain_params_are_fine(self, lint_source):
        findings = lint_source(
            """
            def job(sc, eps, minpts):
                return sc.parallelize(range(9)).filter(
                    lambda x: x > eps and x < minpts
                ).collect()
            """
        )
        assert findings == []


class TestPicklability:
    def test_open_file_captured(self, lint_source):
        findings = lint_source(
            """
            def job(rdd):
                f = open("/tmp/out.txt", "w")
                rdd.foreach(lambda x: f.write(str(x)))
            """
        )
        assert "PCK001" in rules_of(findings)

    def test_lock_captured(self, lint_source):
        findings = lint_source(
            """
            import threading

            def job(rdd):
                mu = threading.Lock()

                def work(x):
                    with mu:
                        return x
                return rdd.map(work).collect()
            """
        )
        assert "PCK001" in rules_of(findings)


class TestDeterminism:
    def test_wall_clock_in_task(self, lint_source):
        findings = lint_source(
            """
            import time

            def job(rdd):
                return rdd.map(lambda x: (x, time.time())).collect()
            """
        )
        assert any(f.rule == "DET001" and "time.time" in f.message for f in findings)

    def test_unseeded_module_random(self, lint_source):
        findings = lint_source(
            """
            import random

            def job(rdd):
                return rdd.map(lambda x: x * random.random()).collect()
            """
        )
        assert "DET001" in rules_of(findings)

    def test_seeded_rng_is_fine(self, lint_source):
        findings = lint_source(
            """
            import random

            def job(rdd):
                def work(pid, it):
                    rng = random.Random(pid)
                    return [rng.random() for _ in it]
                return rdd.map_partitions_with_index(work)
            """
        )
        assert findings == []

    def test_zero_arg_rng_ctor_flagged(self, lint_source):
        findings = lint_source(
            """
            import random

            def job(rdd):
                def work(pid, it):
                    rng = random.Random()
                    return [rng.random() for _ in it]
                return rdd.map_partitions_with_index(work)
            """
        )
        assert "DET001" in rules_of(findings)

    def test_numpy_legacy_random_flagged(self, lint_source):
        findings = lint_source(
            """
            import numpy as np

            def job(rdd):
                return rdd.map(lambda x: x + np.random.rand()).collect()
            """
        )
        assert "DET001" in rules_of(findings)

    def test_transitive_reachability(self, lint_source):
        findings = lint_source(
            """
            import time

            def helper(x):
                return x * time.time()

            def job(rdd):
                return rdd.map(lambda x: helper(x)).collect()
            """
        )
        assert "DET001" in rules_of(findings)

    def test_call_returned_rdd_chain(self, lint_source):
        # Regression: the receiver is an RDD *returned by a call* — the
        # chain starts at a user-defined factory, not at sc directly.
        findings = lint_source(
            """
            import time

            def make(sc):
                return sc.parallelize(range(10))

            def job(sc):
                return make(sc).map(lambda x: (x, time.time())).collect()
            """
        )
        assert "DET001" in rules_of(findings)

    def test_driver_side_clock_is_fine(self, lint_source):
        # Wall clocks outside any task closure are driver-side timing.
        findings = lint_source(
            """
            import time

            def job(rdd):
                t0 = time.time()
                out = rdd.map(lambda x: x + 1).collect()
                return out, time.time() - t0
            """
        )
        assert findings == []


class TestShuffleFree:
    # SHF001 is no longer a path allowlist: it fires on anything the
    # call graph proves reachable from a paper-pipeline entry point
    # (frontends + shuffle-free plan stages), wherever it lives.

    def test_wide_api_reachable_from_entry(self, lint_source):
        findings = lint_source(
            """
            class LocalExpand:
                def run(self, rdd):
                    return rdd.reduce_by_key(lambda a, b: a + b)
            """,
            name="anywhere/stagelike.py",
        )
        assert any(f.rule == "SHF001" and "reduce_by_key" in f.message
                   for f in findings)

    def test_shuffle_import_in_entry_module(self, lint_source):
        findings = lint_source(
            """
            from repro.engine.shuffle import ShuffleManager

            class SparkDBSCAN:
                def fit(self, points):
                    return points
            """,
            name="anywhere/frontend.py",
        )
        assert "SHF001" in rules_of(findings)

    def test_wide_api_unreachable_is_fine(self, lint_source):
        # No entry point reaches this function: outside the contract.
        findings = lint_source(
            """
            def wordcount(rdd):
                return rdd.reduce_by_key(lambda a, b: a + b).collect()
            """,
            name="analysis/wordcount.py",
        )
        assert "SHF001" not in rules_of(findings)


class TestPragma:
    def test_same_line_pragma_suppresses(self, lint_source):
        findings = lint_source(
            """
            import time

            def job(rdd):
                return rdd.map(lambda x: (x, time.time())).collect()  # lint: allow[DET001]
            """
        )
        assert findings == []

    def test_line_above_pragma_suppresses(self, lint_source):
        findings = lint_source(
            """
            import time

            def job(rdd):
                # lint: allow[DET001] injected timestamp, test-only
                return rdd.map(lambda x: (x, time.time())).collect()
            """
        )
        assert findings == []

    def test_module_level_statement_span(self, lint_source):
        # A multi-line module-level statement may carry the pragma on
        # any of its lines — here the finding is on the import's first
        # line, the pragma on its closing one.
        findings = lint_source(
            """
            from repro.engine.shuffle import (
                ShuffleManager,
            )  # lint: allow[SHF001] referenced by offline tooling only

            class SparkDBSCAN:
                def fit(self, points):
                    return points
            """,
            name="front.py",
        )
        assert "SHF001" not in rules_of(findings)

    def test_pragma_inside_class_body_does_not_leak(self, lint_source):
        # Compound statements are not pragma spans: an allow buried in
        # a class must not suppress findings elsewhere in the class.
        findings = lint_source(
            """
            class LocalExpand:
                def run(self, rdd):
                    x = 1  # lint: allow[SHF001] unrelated line
                    y = x + 1
                    return rdd.group_by_key()
            """,
            name="stage.py",
        )
        assert "SHF001" in rules_of(findings)

    def test_pragma_is_rule_specific(self, lint_source):
        findings = lint_source(
            """
            import time

            def job(rdd):
                return rdd.map(lambda x: (x, time.time())).collect()  # lint: allow[CAP001]
            """
        )
        assert "DET001" in rules_of(findings)


class TestTelemetryAllowances:
    """The telemetry clock-anchor pragmas are scoped, not blanket.

    `repro.obs` reads wall clocks for clock-rebase anchors under
    ``# lint: allow[DET001]`` pragmas (and the self-scan below keeps the
    shipped code clean).  These tests pin that the allowance is
    line-scoped: the same pattern without the pragma — nondeterminism
    feeding *task output* — still fires.
    """

    def test_anchor_pragma_does_not_shield_neighbouring_clock_reads(
        self, lint_source
    ):
        findings = lint_source(
            """
            import time

            def job(rdd):
                def work(pid, it):
                    anchor = time.time()  # lint: allow[DET001] clock-rebase anchor
                    values = list(it)
                    return [(x, time.time() - anchor) for x in values]
                return rdd.map_partitions_with_index(work)
            """
        )
        # The anchor line is allowed (a pragma covers its own line and
        # the line below); the un-pragma'd read in the comprehension —
        # which lands in task output — still fires.
        assert any(
            f.rule == "DET001" and "time.time" in f.message for f in findings
        )

    def test_telemetry_style_anchor_alone_is_clean(self, lint_source):
        findings = lint_source(
            """
            import time

            def job(rdd):
                def work(pid, it):
                    t0 = time.time()  # lint: allow[DET001] span timing, not task output
                    out = [x * 2 for x in it]
                    return out
                return rdd.map_partitions_with_index(work)
            """
        )
        assert "DET001" not in rules_of(findings)


class TestSelfScan:
    def test_repo_src_is_clean(self):
        """The shipped code must satisfy its own analyzer."""
        from repro.lint import run_lint

        report = run_lint(["src"], baseline_path=None)
        assert report.findings == [], "\n" + report.render_text()
        assert report.files_scanned > 50

    def test_obs_telemetry_modules_scan_clean(self):
        """The distributed-telemetry modules (which legitimately read
        clocks) are covered by scoped pragmas, not exclusions."""
        from repro.lint import run_lint

        report = run_lint(["src/repro/obs"], baseline_path=None)
        assert report.findings == [], "\n" + report.render_text()

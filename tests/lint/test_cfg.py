"""Structural tests for the per-function CFG builder (`repro.lint.cfg`)."""

import ast

import pytest

from repro.lint.cfg import (
    ExceptBind,
    ForBind,
    WithEnter,
    WithExit,
    build_cfg,
    may_raise,
)


def cfg_of(source: str):
    """Build the CFG of the first function in ``source``."""
    tree = ast.parse(source)
    func = next(
        n for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return build_cfg(func)


def reachable(cfg, *, exceptional=True):
    """Block ids reachable from the entry."""
    seen = {cfg.entry}
    stack = [cfg.entry]
    while stack:
        bid = stack.pop()
        block = cfg.blocks[bid]
        succs = set(block.succs)
        if exceptional:
            succs |= set(block.exc_succs)
        for s in succs:
            if s not in seen:
                seen.add(s)
                stack.append(s)
    return seen


def instr_types(cfg):
    return [
        type(i).__name__
        for bid in sorted(cfg.blocks)
        for i in cfg.blocks[bid].instrs
    ]


class TestStraightLine:
    def test_single_block_body(self):
        cfg = cfg_of("def f():\n    a = 1\n    b = 2\n")
        entry = cfg.blocks[cfg.entry]
        assert [type(i).__name__ for i in entry.instrs] == ["Assign", "Assign"]
        assert entry.succs == {cfg.exit}

    def test_exit_blocks_are_empty_and_distinct(self):
        cfg = cfg_of("def f():\n    pass\n")
        assert cfg.exit != cfg.raise_exit
        assert not cfg.blocks[cfg.exit].instrs
        assert not cfg.blocks[cfg.raise_exit].instrs

    def test_call_gets_exceptional_edge_to_raise_exit(self):
        cfg = cfg_of("def f(g):\n    g()\n")
        entry = cfg.blocks[cfg.entry]
        assert cfg.raise_exit in entry.exc_succs

    def test_pure_body_has_no_exceptional_edges(self):
        cfg = cfg_of("def f(x):\n    a = x\n")
        assert cfg.num_exc_edges == 0


class TestBranches:
    def test_if_forks_and_rejoins(self):
        cfg = cfg_of(
            "def f(c):\n"
            "    if c:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    b = a\n"
        )
        entry = cfg.blocks[cfg.entry]
        assert len(entry.succs) == 2
        joins = [
            s for s in entry.succs
            if cfg.blocks[s].succs == cfg.blocks[next(iter(entry.succs))].succs
        ]
        assert joins  # both arms flow into the same join block

    def test_early_return_skips_join(self):
        cfg = cfg_of(
            "def f(c):\n"
            "    if c:\n"
            "        return 1\n"
            "    return 2\n"
        )
        returns = [
            i for bid in cfg.blocks for i in cfg.blocks[bid].instrs
            if isinstance(i, ast.Return)
        ]
        assert len(returns) == 2
        for bid, block in cfg.blocks.items():
            if any(isinstance(i, ast.Return) for i in block.instrs):
                assert block.succs == {cfg.exit}


class TestLoops:
    def test_while_has_back_edge_and_exit_edge(self):
        cfg = cfg_of("def f(c):\n    while c:\n        c = c - 1\n")
        heads = [
            bid for bid, b in cfg.blocks.items()
            if len(b.succs) == 2 and any(bid in cfg.blocks[s].succs for s in b.succs)
        ]
        assert heads  # some block branches and is re-entered: the loop head

    def test_while_true_omits_not_taken_edge(self):
        cfg = cfg_of(
            "def f(g):\n"
            "    while True:\n"
            "        g()\n"
        )
        # The only way to the normal exit would be the loop's not-taken
        # edge; for a literal True it is omitted.
        assert cfg.exit not in reachable(cfg, exceptional=False)

    def test_break_reaches_loop_exit(self):
        cfg = cfg_of(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        break\n"
            "    return 1\n"
        )
        assert cfg.exit in reachable(cfg, exceptional=False)

    def test_for_emits_forbind(self):
        cfg = cfg_of("def f(xs):\n    for x in xs:\n        pass\n")
        assert "ForBind" in instr_types(cfg)

    def test_continue_returns_to_head(self):
        cfg = cfg_of(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        continue\n"
        )
        assert cfg.exit in reachable(cfg, exceptional=False)


class TestWith:
    def test_with_emits_enter_and_exit_markers(self):
        cfg = cfg_of("def f(cm):\n    with cm as h:\n        pass\n")
        kinds = instr_types(cfg)
        assert "WithEnter" in kinds
        assert "WithExit" in kinds

    def test_early_return_duplicates_with_exit(self):
        cfg = cfg_of(
            "def f(cm, c):\n"
            "    with cm:\n"
            "        if c:\n"
            "            return 1\n"
            "        x = 2\n"
            "    return x\n"
        )
        exits = [
            i for bid in cfg.blocks for i in cfg.blocks[bid].instrs
            if isinstance(i, WithExit)
        ]
        # one for the fall-through path, one duplicated on the early
        # return's unwind path (at least)
        assert len(exits) >= 2

    def test_exception_path_runs_with_exit(self):
        cfg = cfg_of(
            "def f(cm, g):\n"
            "    with cm:\n"
            "        g()\n"
        )
        # Walk exceptional successors of the body: a WithExit must sit
        # on the way to the raise exit.
        on_exc_path = set()
        for bid, block in cfg.blocks.items():
            for s in block.exc_succs:
                stack, seen = [s], set()
                while stack:
                    cur = stack.pop()
                    if cur in seen:
                        continue
                    seen.add(cur)
                    on_exc_path.update(
                        type(i).__name__ for i in cfg.blocks[cur].instrs
                    )
                    stack.extend(cfg.blocks[cur].succs)
        assert "WithExit" in on_exc_path


class TestTry:
    def test_handler_entry_binds_exception(self):
        cfg = cfg_of(
            "def f(g):\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError as e:\n"
            "        return e\n"
        )
        binds = [
            i for bid in cfg.blocks for i in cfg.blocks[bid].instrs
            if isinstance(i, ExceptBind)
        ]
        assert binds and binds[0].name == "e"

    def test_raise_in_body_reaches_handler(self):
        cfg = cfg_of(
            "def f(g):\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:\n"
            "        x = 1\n"
        )
        body_block = next(
            bid for bid, b in cfg.blocks.items()
            if any(
                isinstance(i, ast.Expr) and isinstance(i.value, ast.Call)
                for i in b.instrs
            )
        )
        handler_block = next(
            bid for bid, b in cfg.blocks.items()
            if any(isinstance(i, ast.Assign) for i in b.instrs)
        )
        # the handler entry is an exceptional successor; the raise exit
        # stays one too (conservative: the handler type may not match)
        exc = cfg.blocks[body_block].exc_succs
        assert cfg.raise_exit in exc
        reachable_from_exc = set()
        stack = list(exc)
        while stack:
            cur = stack.pop()
            if cur in reachable_from_exc:
                continue
            reachable_from_exc.add(cur)
            stack.extend(cfg.blocks[cur].succs)
        assert handler_block in reachable_from_exc

    def test_finally_duplicated_per_unwind_path(self):
        cfg = cfg_of(
            "def f(g):\n"
            "    try:\n"
            "        g()\n"
            "        return 1\n"
            "    finally:\n"
            "        release()\n"
        )
        finally_copies = [
            i for bid in cfg.blocks for i in cfg.blocks[bid].instrs
            if isinstance(i, ast.Expr)
            and isinstance(i.value, ast.Call)
            and isinstance(i.value.func, ast.Name)
            and i.value.func.id == "release"
        ]
        # one copy on the return path, one on the exceptional path —
        # distinct blocks so must-analyses never merge the two flows
        assert len(finally_copies) >= 2

    def test_finally_on_path_to_raise_exit(self):
        cfg = cfg_of(
            "def f(g):\n"
            "    try:\n"
            "        g()\n"
            "    finally:\n"
            "        release()\n"
        )
        assert cfg.raise_exit in reachable(cfg)


class TestRaise:
    def test_uncaught_raise_goes_to_raise_exit(self):
        cfg = cfg_of("def f():\n    raise ValueError('x')\n")
        raising = next(
            bid for bid, b in cfg.blocks.items()
            if any(isinstance(i, ast.Raise) for i in b.instrs)
        )
        assert cfg.raise_exit in (
            cfg.blocks[raising].succs | cfg.blocks[raising].exc_succs
        )
        assert cfg.exit not in reachable(cfg, exceptional=False)


class TestMayRaise:
    @pytest.mark.parametrize(
        "src,expected",
        [
            ("g()", True),
            ("raise ValueError()", True),
            ("assert x", True),
            ("a = 1", False),
            ("a = b + c", False),
        ],
    )
    def test_statements(self, src, expected):
        stmt = ast.parse(src).body[0]
        assert may_raise(stmt) is expected

    def test_synthetic_markers_do_not_raise(self):
        assert not may_raise(ExceptBind(name="e", lineno=1))


class TestLowering:
    """Expression-level lowering: walrus bindings, ``match`` guards,
    and (nested) comprehensions become explicit instructions/blocks so
    flow analyses see their bindings, calls, and loop structure."""

    def test_walrus_hoists_a_synthetic_assign(self):
        cfg = cfg_of(
            "def f(g):\n"
            "    if (y := g()):\n"
            "        return y\n"
            "    return 0\n"
        )
        assigns = [
            i for bid in cfg.blocks for i in cfg.blocks[bid].instrs
            if isinstance(i, ast.Assign)
        ]
        assert any(
            isinstance(a.targets[0], ast.Name) and a.targets[0].id == "y"
            for a in assigns
        )

    def test_walrus_inside_while_condition(self):
        cfg = cfg_of(
            "def f(g):\n"
            "    while (chunk := g()):\n"
            "        use(chunk)\n"
        )
        assigns = [
            i for bid in cfg.blocks for i in cfg.blocks[bid].instrs
            if isinstance(i, ast.Assign)
            and isinstance(i.targets[0], ast.Name)
            and i.targets[0].id == "chunk"
        ]
        assert assigns

    def test_comprehension_lowers_to_forbind_loop(self):
        cfg = cfg_of("def f(xs):\n    return [x + 1 for x in xs]\n")
        kinds = instr_types(cfg)
        assert "ForBind" in kinds
        # the loop head has a back edge: some block reaches an earlier
        # ForBind-carrying block
        heads = [
            bid for bid, b in cfg.blocks.items()
            if any(isinstance(i, ForBind) for i in b.instrs)
        ]
        assert any(
            h in cfg.blocks[s].succs or any(
                h in cfg.blocks[t].succs for t in cfg.blocks[s].succs
            )
            for h in heads
            for s in cfg.blocks[h].succs
        )

    def test_nested_generators_chain_forbinds(self):
        cfg = cfg_of(
            "def f(xs):\n"
            "    return [x for row in xs for x in row]\n"
        )
        binds = [
            i for bid in cfg.blocks for i in cfg.blocks[bid].instrs
            if isinstance(i, ForBind)
        ]
        assert len(binds) == 2

    def test_comprehension_in_iter_lowers_too(self):
        cfg = cfg_of(
            "def f(xs):\n"
            "    return [y for y in [x for x in xs]]\n"
        )
        binds = [
            i for bid in cfg.blocks for i in cfg.blocks[bid].instrs
            if isinstance(i, ForBind)
        ]
        assert len(binds) == 2

    def test_lambda_bodies_stay_opaque(self):
        # A comprehension inside a lambda runs in the lambda's own CFG,
        # not the enclosing function's.
        cfg = cfg_of(
            "def f(xs):\n"
            "    g = lambda: [x for x in xs]\n"
            "    return g\n"
        )
        assert "ForBind" not in instr_types(cfg)

    def test_match_guard_is_emitted_at_case_entry(self):
        cfg = cfg_of(
            "def f(v, g):\n"
            "    match v:\n"
            "        case int() if g(v):\n"
            "            return 1\n"
            "        case _:\n"
            "            return 0\n"
        )
        guards = [
            i for bid in cfg.blocks for i in cfg.blocks[bid].instrs
            if isinstance(i, ast.Call)
            and isinstance(i.func, ast.Name)
            and i.func.id == "g"
        ]
        assert guards, "the guard call must be visible to flow analyses"
        assert cfg.exit in reachable(cfg, exceptional=False)

    def test_non_exhaustive_match_falls_through(self):
        cfg = cfg_of(
            "def f(v):\n"
            "    match v:\n"
            "        case 1:\n"
            "            return 1\n"
            "    return 0\n"
        )
        assert cfg.exit in reachable(cfg, exceptional=False)


class TestCounts:
    def test_edge_counts_are_consistent(self):
        cfg = cfg_of(
            "def f(xs, g):\n"
            "    for x in xs:\n"
            "        try:\n"
            "            g(x)\n"
            "        except ValueError:\n"
            "            continue\n"
            "    return 1\n"
        )
        assert cfg.num_edges == sum(len(b.succs) for b in cfg.blocks.values())
        assert cfg.num_exc_edges == sum(
            len(b.exc_succs) for b in cfg.blocks.values()
        )
        assert cfg.num_edges > 0
        assert cfg.num_exc_edges > 0

    def test_lambda_builds(self):
        tree = ast.parse("f = lambda x: x + 1")
        lam = next(n for n in ast.walk(tree) if isinstance(n, ast.Lambda))
        cfg = build_cfg(lam)
        assert cfg.exit in reachable(cfg, exceptional=False)

"""SARIF 2.1.0 emission: structural contract always, full JSON-schema
validation when ``jsonschema`` is installed (the committed schema file
is a faithful subset of the OASIS sarif-schema-2.1.0 definitions).
"""

import json
import os
import textwrap

import pytest

from repro.cli import main
from repro.lint import rule_catalogue, run_lint, to_sarif
from repro.lint.sarif import FINGERPRINT_KEY, SARIF_SCHEMA, TOOL_NAME

VIOLATIONS = textwrap.dedent(
    """
    import time

    def job(rdd):
        return rdd.map(lambda x: (x, time.time())).collect()

    class LocalExpand:
        def run(self, rdd):
            return rdd.group_by_key()
    """
)

FLOW_VIOLATION = textwrap.dedent(
    """
    def use_after_stop():
        sc = SparkContext()
        sc.stop()
        sc.parallelize([1])
    """
)

SCHEMA_PATH = os.path.join(os.path.dirname(__file__), "sarif-schema-subset.json")


@pytest.fixture()
def sarif_log(tmp_path):
    mod = tmp_path / "bad.py"
    mod.write_text(VIOLATIONS)
    report = run_lint([str(mod)])
    assert report.findings, "fixture must produce findings"
    return to_sarif(report), report


class TestStructure:
    def test_envelope(self, sarif_log):
        log, _report = sarif_log
        assert log["version"] == "2.1.0"
        assert log["$schema"] == SARIF_SCHEMA
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == TOOL_NAME

    def test_results_mirror_findings(self, sarif_log):
        log, report = sarif_log
        results = log["runs"][0]["results"]
        assert len(results) == len(report.findings)
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        rule_ids = [r["id"] for r in rules]
        # Descriptors carry the *whole* catalogue (the parity contract),
        # fired or not, and every fired rule is among them.
        assert rule_ids == sorted(rule_catalogue())
        assert {f.rule for f in report.findings} <= set(rule_ids)
        for result, finding in zip(results, report.findings):
            assert result["ruleId"] == finding.rule
            assert rule_ids[result["ruleIndex"]] == finding.rule
            assert result["message"]["text"] == finding.message
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] == finding.line >= 1
            assert region["startColumn"] == finding.col + 1 >= 1
            assert result["partialFingerprints"][FINGERPRINT_KEY] == \
                finding.fingerprint

    def test_baseline_state(self, tmp_path):
        mod = tmp_path / "bad.py"
        mod.write_text(VIOLATIONS)
        from repro.lint import write_baseline

        base = str(tmp_path / "base.json")
        first = run_lint([str(mod)])
        write_baseline(base, first.findings[:1])
        report = run_lint([str(mod)], baseline_path=base)
        log = to_sarif(report)
        states = [r["baselineState"] for r in log["runs"][0]["results"]]
        assert "unchanged" in states and "new" in states

    def test_cli_emits_parseable_sarif(self, tmp_path, capsys):
        mod = tmp_path / "bad.py"
        mod.write_text(VIOLATIONS)
        assert main(["lint", str(mod), "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"]

    def test_clean_run_has_empty_results(self, tmp_path):
        mod = tmp_path / "ok.py"
        mod.write_text("def f(x):\n    return x\n")
        log = to_sarif(run_lint([str(mod)]))
        assert log["runs"][0]["results"] == []
        # Descriptors are still the full catalogue on a clean run.
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == sorted(rule_catalogue())


class TestRelatedLocations:
    def _flow_log(self, tmp_path):
        mod = tmp_path / "flow.py"
        mod.write_text(FLOW_VIOLATION)
        report = run_lint([str(mod)])
        finding = next(f for f in report.findings if f.rule == "LIF001")
        assert finding.related, "flow finding must carry related sites"
        return to_sarif(report), finding

    def test_flow_finding_carries_related_locations(self, tmp_path):
        log, finding = self._flow_log(tmp_path)
        result = next(
            r for r in log["runs"][0]["results"] if r["ruleId"] == "LIF001"
        )
        related = result["relatedLocations"]
        assert len(related) == len(finding.related)
        loc = related[0]["physicalLocation"]
        assert loc["region"]["startLine"] == finding.related[0][1]
        assert related[0]["message"]["text"] == finding.related[0][2]

    def test_non_flow_results_omit_related_locations(self, sarif_log):
        log, _report = sarif_log
        for result in log["runs"][0]["results"]:
            assert "relatedLocations" not in result

    def test_flow_sarif_validates_with_related_locations(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        with open(SCHEMA_PATH, encoding="utf-8") as f:
            schema = json.load(f)
        log, _finding = self._flow_log(tmp_path)
        jsonschema.validate(instance=log, schema=schema)


class TestSchemaValidation:
    def test_validates_against_sarif_2_1_0(self, sarif_log):
        jsonschema = pytest.importorskip("jsonschema")
        with open(SCHEMA_PATH, encoding="utf-8") as f:
            schema = json.load(f)
        log, _report = sarif_log
        jsonschema.validate(instance=log, schema=schema)

    def test_self_scan_sarif_validates(self):
        jsonschema = pytest.importorskip("jsonschema")
        with open(SCHEMA_PATH, encoding="utf-8") as f:
            schema = json.load(f)
        log = to_sarif(run_lint(["src"]))
        jsonschema.validate(instance=log, schema=schema)

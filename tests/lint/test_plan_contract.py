"""Static plan-contract checking: PLN001 (incomplete/unknown/duplicate)
and PLN002 (ordering cycle), read straight off STAGE_MANIFEST literals
without importing the plans module.
"""

import textwrap

import pytest

from repro.lint import build_project, run_lint
from repro.lint.plans import (
    check_plan_contracts,
    manifests,
    shuffle_free_stage_classes,
    stage_contracts,
)

STAGES = """
    class Load:
        name = "Load"
        provides = ("points",)

        def run(self, state):
            return state

    class Index:
        name = "Index"
        requires = ("points",)
        provides = ("tree",)

        def run(self, state):
            return state

    class Expand:
        name = "Expand"
        requires = ("tree",)
        provides = ("labels",)

        def run(self, state):
            return state
"""


@pytest.fixture()
def project_of(tmp_path):
    def _make(manifest_source: str, stages_source: str = STAGES):
        pkg = tmp_path / "pkg"
        pkg.mkdir(exist_ok=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "stages.py").write_text(textwrap.dedent(stages_source))
        (pkg / "plans.py").write_text(
            "from .stages import Load, Index, Expand\n"
            + textwrap.dedent(manifest_source)
        )
        return build_project(
            [str(pkg / "__init__.py"), str(pkg / "stages.py"), str(pkg / "plans.py")]
        )

    return _make


class TestManifestParsing:
    def test_manifest_and_contracts_read_off_ast(self, project_of):
        project = project_of(
            """
            STAGE_MANIFEST = {"good": ("Load", "Index", "Expand")}
            SHUFFLE_FREE_PLANS = ("good",)
            """
        )
        (manifest,) = manifests(project)
        assert manifest.plans == {
            "good": [(c, manifest.plans["good"][i][1])
                     for i, c in enumerate(("Load", "Index", "Expand"))]
        }
        assert manifest.shuffle_free == ("good",)
        contracts = stage_contracts(project)
        assert contracts["Index"].requires == ("points",)
        assert contracts["Index"].provides == ("tree",)
        assert shuffle_free_stage_classes(project) == {"Load", "Index", "Expand"}

    def test_complete_chain_is_clean(self, project_of):
        project = project_of(
            """
            STAGE_MANIFEST = {"good": ("Load", "Index", "Expand")}
            """
        )
        assert check_plan_contracts(project) == []


class TestPlanContractRules:
    def test_missing_requirement_is_pln001(self, project_of):
        project = project_of(
            """
            STAGE_MANIFEST = {"broken": ("Load", "Expand")}
            """
        )
        findings = check_plan_contracts(project)
        assert [f.rule for f in findings] == ["PLN001"]
        assert "'tree'" in findings[0].message
        assert findings[0].symbol == "plan:broken"

    def test_unknown_stage_class_is_pln001(self, project_of):
        project = project_of(
            """
            STAGE_MANIFEST = {"broken": ("Load", "Zed")}
            """
        )
        findings = check_plan_contracts(project)
        assert any(f.rule == "PLN001" and "'Zed'" in f.message for f in findings)

    def test_provided_later_is_pln002(self, project_of):
        # Expand before Index: 'tree' exists, but only downstream.
        project = project_of(
            """
            STAGE_MANIFEST = {"cyclic": ("Load", "Expand", "Index")}
            """
        )
        findings = check_plan_contracts(project)
        assert any(
            f.rule == "PLN002" and "later stage" in f.message for f in findings
        )

    def test_duplicate_runtime_name_is_pln001(self, project_of):
        project = project_of(
            """
            STAGE_MANIFEST = {"dup": ("Load", "Load2")}
            """,
            stages_source=STAGES + """
    class Load2:
        name = "Load"
        provides = ("points",)

        def run(self, state):
            return state
""",
        )
        findings = check_plan_contracts(project)
        assert any(
            f.rule == "PLN001" and "collide" in f.message for f in findings
        )

    def test_rules_run_via_lint(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "plans.py").write_text(textwrap.dedent("""
            class Load:
                provides = ("points",)

            class Expand:
                requires = ("tree",)
                provides = ("labels",)

            STAGE_MANIFEST = {"broken": ("Load", "Expand")}
            """))
        report = run_lint([str(pkg)])
        assert any(f.rule == "PLN001" for f in report.findings)


class TestRepoManifest:
    def test_shipped_plans_are_contract_clean(self):
        project = build_project(
            ["src/repro/pipeline/plans.py", "src/repro/pipeline/stages.py",
             "src/repro/pipeline/stages_cells.py",
             "src/repro/pipeline/stages_naive.py",
             "src/repro/pipeline/stages_mapreduce.py"]
        )
        assert check_plan_contracts(project) == []
        assert shuffle_free_stage_classes(project) >= {
            "LoadPoints", "LocalExpand", "CollectPartials", "MergePartials",
            "CellPartition", "LocalIndexExpand", "CellCollect",
        }

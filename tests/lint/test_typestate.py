"""Tests for the flow-sensitive lifecycle rules (`repro.lint.typestate`).

Every rule gets at least one seeded fixture that fires and one
near-miss that must stay silent (branch-local release followed by a
join of states, ``try/finally`` release, ``with`` blocks, escaping
values).  A final gate runs the real self-scan: ``src/repro`` must be
clean under LIF*/RES* with zero pragmas.
"""

import os

import pytest

from repro.lint.analyzer import build_project, run_lint
from repro.lint.typestate import check_typestate, flow_stats

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")


def scan(tmp_path, source, rules=None):
    """Lint one fixture module; returns the LIF*/RES* findings."""
    path = tmp_path / "fixture.py"
    path.write_text(source)
    project = build_project([str(path)])
    findings = check_typestate(project)
    if rules is not None:
        findings = [f for f in findings if f.rule in rules]
    return findings


class TestLIF001UseAfterStop:
    def test_fires_on_straight_line_use_after_stop(self, tmp_path):
        found = scan(tmp_path, (
            "def f():\n"
            "    sc = SparkContext()\n"
            "    sc.stop()\n"
            "    sc.parallelize([1])\n"
        ), rules=("LIF001",))
        assert len(found) == 1
        f = found[0]
        assert f.rule == "LIF001"
        assert f.line == 4
        assert "sc" in f.message
        assert f.related and f.related[0][1] == 3   # the stop() site

    def test_near_miss_stop_in_one_branch_joins_silent(self, tmp_path):
        found = scan(tmp_path, (
            "def f(flag):\n"
            "    sc = SparkContext()\n"
            "    try:\n"
            "        if flag:\n"
            "            sc.stop()\n"
            "        sc.parallelize([1])\n"   # join: stopped on one path only
            "    finally:\n"
            "        sc.stop()\n"
        ), rules=("LIF001",))
        assert found == []

    def test_near_miss_with_block_use_inside(self, tmp_path):
        found = scan(tmp_path, (
            "def f():\n"
            "    with SparkContext() as sc:\n"
            "        sc.parallelize([1])\n"
        ), rules=("LIF001",))
        assert found == []

    def test_fires_on_use_after_with_block(self, tmp_path):
        found = scan(tmp_path, (
            "def f():\n"
            "    with SparkContext() as sc:\n"
            "        pass\n"
            "    sc.parallelize([1])\n"      # sc stopped by __exit__
        ), rules=("LIF001",))
        assert len(found) == 1

    def test_interprocedural_stop_through_helper(self, tmp_path):
        found = scan(tmp_path, (
            "def shutdown(ctx):\n"
            "    ctx.stop()\n"
            "\n"
            "def f():\n"
            "    sc = SparkContext()\n"
            "    shutdown(sc)\n"
            "    sc.parallelize([1])\n"
        ), rules=("LIF001",))
        assert len(found) == 1
        assert found[0].line == 7

    def test_interprocedural_use_through_helper(self, tmp_path):
        found = scan(tmp_path, (
            "def submit(ctx, data):\n"
            "    return ctx.parallelize(data)\n"
            "\n"
            "def f():\n"
            "    sc = SparkContext()\n"
            "    sc.stop()\n"
            "    submit(sc, [1])\n"
        ), rules=("LIF001",))
        assert len(found) == 1
        assert "submit" in found[0].message

    def test_near_miss_helper_stop_in_one_branch(self, tmp_path):
        found = scan(tmp_path, (
            "def maybe_shutdown(ctx, flag):\n"
            "    if flag:\n"
            "        ctx.stop()\n"
            "\n"
            "def f(flag):\n"
            "    sc = SparkContext()\n"
            "    maybe_shutdown(sc, flag)\n"
            "    sc.parallelize([1])\n"      # may-stop, not must-stop
        ), rules=("LIF001",))
        assert found == []


class TestLIF002WriteAfterClose:
    def test_fires_on_emit_after_close(self, tmp_path):
        found = scan(tmp_path, (
            "def f():\n"
            "    log = EventLog('x.jsonl')\n"
            "    log.close()\n"
            "    log.emit({'event': 'late'})\n"
        ), rules=("LIF002",))
        assert len(found) == 1
        assert found[0].line == 4
        assert found[0].related[0][1] == 3

    def test_near_miss_close_in_one_branch(self, tmp_path):
        found = scan(tmp_path, (
            "def f(flag):\n"
            "    log = EventLog('x.jsonl')\n"
            "    if flag:\n"
            "        log.close()\n"
            "        return\n"
            "    log.emit({'event': 'ok'})\n"
        ), rules=("LIF002",))
        assert found == []

    def test_near_miss_with_block(self, tmp_path):
        found = scan(tmp_path, (
            "def f():\n"
            "    with EventLog('x.jsonl') as log:\n"
            "        log.emit({'event': 'ok'})\n"
        ), rules=("LIF002",))
        assert found == []

    def test_fires_on_record_job_after_with(self, tmp_path):
        found = scan(tmp_path, (
            "def f(metrics):\n"
            "    with EventLog('x.jsonl') as log:\n"
            "        pass\n"
            "    log.record_job(metrics)\n"
        ), rules=("LIF002",))
        assert len(found) == 1


class TestLIF003ActionAfterUnpersist:
    def test_fires_on_action_after_unpersist(self, tmp_path):
        found = scan(tmp_path, (
            "def f(sc):\n"
            "    r = sc.parallelize(range(10))\n"
            "    r.persist()\n"
            "    r.count()\n"
            "    r.unpersist()\n"
            "    r.collect()\n"
        ), rules=("LIF003",))
        assert len(found) == 1
        assert found[0].line == 6
        assert found[0].related[0][1] == 5

    def test_near_miss_unpersist_in_one_branch(self, tmp_path):
        found = scan(tmp_path, (
            "def f(sc, flag):\n"
            "    r = sc.parallelize(range(10))\n"
            "    r.persist()\n"
            "    if flag:\n"
            "        r.unpersist()\n"
            "    r.count()\n"                 # join of persisted+unpersisted
            "    r.unpersist()\n"
        ), rules=("LIF003",))
        assert found == []

    def test_near_miss_transformations_allowed_after_unpersist(self, tmp_path):
        found = scan(tmp_path, (
            "def f(sc):\n"
            "    r = sc.parallelize(range(10))\n"
            "    r.unpersist()\n"
            "    r2 = r.map(str)\n"           # lineage is still valid
        ), rules=("LIF003",))
        assert found == []

    def test_fires_on_broadcast_value_after_unpersist(self, tmp_path):
        found = scan(tmp_path, (
            "def f(sc):\n"
            "    b = sc.broadcast({1: 2})\n"
            "    b.unpersist()\n"
            "    return b.value\n"
        ), rules=("LIF003",))
        assert len(found) == 1
        assert ".value" in found[0].message


class TestRES001PersistLeak:
    def test_fires_on_persist_without_unpersist(self, tmp_path):
        found = scan(tmp_path, (
            "def f(sc):\n"
            "    r = sc.parallelize(range(10))\n"
            "    r.persist()\n"
            "    return r.count()\n"
        ), rules=("RES001",))
        assert len(found) == 1
        assert found[0].line == 3             # primary = the persist site

    def test_fires_on_cache_leak_on_one_branch(self, tmp_path):
        found = scan(tmp_path, (
            "def f(sc, flag):\n"
            "    r = sc.parallelize(range(10))\n"
            "    r.cache()\n"
            "    if flag:\n"
            "        r.unpersist()\n"
            "        return 0\n"
            "    return r.count()\n"          # leaks on the else path
        ), rules=("RES001",))
        assert len(found) == 1

    def test_near_miss_try_finally_release(self, tmp_path):
        found = scan(tmp_path, (
            "def f(sc):\n"
            "    r = sc.parallelize(range(10))\n"
            "    r.persist()\n"
            "    try:\n"
            "        return r.count()\n"
            "    finally:\n"
            "        r.unpersist()\n"
        ), rules=("RES001",))
        assert found == []

    def test_near_miss_returned_rdd_escapes(self, tmp_path):
        found = scan(tmp_path, (
            "def f(sc):\n"
            "    r = sc.parallelize(range(10))\n"
            "    r.persist()\n"
            "    return r\n"                  # caller owns it now
        ), rules=("RES001",))
        assert found == []

    def test_near_miss_attribute_stored_rdd_escapes(self, tmp_path):
        found = scan(tmp_path, (
            "def f(self, sc):\n"
            "    r = sc.parallelize(range(10))\n"
            "    r.persist()\n"
            "    self.hot = r\n"              # outlives the function
        ), rules=("RES001",))
        assert found == []

    def test_interprocedural_release_through_helper(self, tmp_path):
        found = scan(tmp_path, (
            "def drop(rdd):\n"
            "    rdd.unpersist()\n"
            "\n"
            "def f(sc):\n"
            "    r = sc.parallelize(range(10))\n"
            "    r.persist()\n"
            "    out = r.count()\n"
            "    drop(r)\n"
            "    return out\n"
        ), rules=("RES001",))
        assert found == []


class TestRES002HeldOnExceptionPath:
    def test_fires_on_lock_held_across_raising_call(self, tmp_path):
        found = scan(tmp_path, (
            "import threading\n"
            "def f(work):\n"
            "    mu = threading.Lock()\n"
            "    mu.acquire()\n"
            "    work()\n"
            "    mu.release()\n"
        ), rules=("RES002",))
        assert len(found) == 1
        assert found[0].line == 4             # primary = the acquire site

    def test_near_miss_try_finally_release(self, tmp_path):
        found = scan(tmp_path, (
            "import threading\n"
            "def f(work):\n"
            "    mu = threading.Lock()\n"
            "    mu.acquire()\n"
            "    try:\n"
            "        work()\n"
            "    finally:\n"
            "        mu.release()\n"
        ), rules=("RES002",))
        assert found == []

    def test_near_miss_with_lock(self, tmp_path):
        found = scan(tmp_path, (
            "import threading\n"
            "def f(work):\n"
            "    mu = threading.Lock()\n"
            "    with mu:\n"
            "        work()\n"
        ), rules=("RES002",))
        assert found == []

    def test_fires_on_context_left_running(self, tmp_path):
        found = scan(tmp_path, (
            "def f(points):\n"
            "    sc = SparkContext()\n"
            "    out = sc.parallelize(points).collect()\n"  # may raise
            "    sc.stop()\n"
            "    return out\n"
        ), rules=("RES002",))
        assert len(found) == 1
        assert "SparkContext" in found[0].message

    def test_near_miss_context_with_block(self, tmp_path):
        found = scan(tmp_path, (
            "def f(points):\n"
            "    with SparkContext() as sc:\n"
            "        return sc.parallelize(points).collect()\n"
        ), rules=("RES002",))
        assert found == []

    def test_near_miss_context_try_finally(self, tmp_path):
        found = scan(tmp_path, (
            "def f(points):\n"
            "    sc = SparkContext()\n"
            "    try:\n"
            "        return sc.parallelize(points).collect()\n"
            "    finally:\n"
            "        sc.stop()\n"
        ), rules=("RES002",))
        assert found == []

    def test_near_miss_attribute_context_not_owned(self, tmp_path):
        found = scan(tmp_path, (
            "def f(self):\n"
            "    self.sc = SparkContext()\n"   # outlives the function
            "    self.sc.parallelize([1]).collect()\n"
        ), rules=("RES002",))
        assert found == []


class TestRuleRegistration:
    def test_all_five_rules_in_catalogue(self):
        from repro.lint.rules import rule_catalogue

        catalogue = rule_catalogue()
        for rid in ("LIF001", "LIF002", "LIF003", "RES001", "RES002"):
            assert rid in catalogue

    def test_pragma_suppresses_flow_finding(self, tmp_path):
        path = tmp_path / "fixture.py"
        path.write_text(
            "def f():\n"
            "    sc = SparkContext()\n"
            "    sc.stop()\n"
            "    sc.parallelize([1])  # lint: allow[LIF001] seeded\n"
        )
        report = run_lint([str(path)])
        assert [f for f in report.findings if f.rule == "LIF001"] == []

    def test_findings_flow_through_run_lint(self, tmp_path):
        path = tmp_path / "fixture.py"
        path.write_text(
            "def f():\n"
            "    sc = SparkContext()\n"
            "    sc.stop()\n"
            "    sc.parallelize([1])\n"
        )
        report = run_lint([str(path)])
        assert any(f.rule == "LIF001" for f in report.findings)


class TestFlowStats:
    def test_stats_count_cfgs(self, tmp_path):
        path = tmp_path / "fixture.py"
        path.write_text("def f():\n    pass\n\ndef g(x):\n    return x\n")
        project = build_project([str(path)])
        stats = flow_stats(project)
        assert stats["functions"] == 2
        assert stats["blocks"] >= 6           # entry/exit/raise-exit each
        assert set(stats) == {"functions", "blocks", "edges", "exc_edges"}


class TestSelfScan:
    def test_src_repro_is_clean_under_flow_rules(self):
        report = run_lint([os.path.join(REPO_ROOT, "src", "repro")])
        flow = [
            f for f in report.findings
            if f.rule.startswith(("LIF", "RES"))
        ]
        assert flow == [], "\n".join(f.render() for f in flow)

    def test_no_flow_pragmas_in_src(self):
        # The self-scan must be clean *without* suppressions: any
        # lint: allow[LIF*/RES*] pragma in src/repro needs a reviewed
        # justification and a mention here.
        hits = []
        src = os.path.join(REPO_ROOT, "src", "repro")
        for root, _dirs, files in os.walk(src):
            for name in files:
                if not name.endswith(".py"):
                    continue
                path = os.path.join(root, name)
                with open(path, encoding="utf-8") as fh:
                    for lineno, line in enumerate(fh, 1):
                        if "lint: allow[LIF" in line or "lint: allow[RES" in line:
                            hits.append(f"{path}:{lineno}")
        assert hits == []

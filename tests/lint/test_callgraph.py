"""The interprocedural layer: module naming, cross-module resolution,
reachability through helper modules, and graph statistics.

These tests build tiny multi-file packages under tmp_path and assert
that the per-module rules now fire *through* imports: a hazard hidden
behind a cross-module helper is exactly what PR-3's same-module
reachability could not see.
"""

import textwrap

import pytest

from repro.lint import build_project, run_lint
from repro.lint.callgraph import (
    is_substrate,
    module_name_for,
    strongly_connected_components,
)


@pytest.fixture()
def package(tmp_path):
    """Write a package of modules and lint it as one project."""

    def _make(files: dict[str, str]):
        (tmp_path / "pkg").mkdir(exist_ok=True)
        (tmp_path / "pkg" / "__init__.py").write_text("")
        for name, source in files.items():
            (tmp_path / "pkg" / name).write_text(textwrap.dedent(source))
        return run_lint([str(tmp_path / "pkg")]).findings

    return _make


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TestModuleNaming:
    def test_package_walk(self, tmp_path):
        pkg = tmp_path / "top" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "top" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("")
        assert module_name_for(str(pkg / "mod.py")) == "top.sub.mod"
        assert module_name_for(str(pkg / "__init__.py")) == "top.sub"

    def test_bare_file_is_its_stem(self, tmp_path):
        f = tmp_path / "script.py"
        f.write_text("")
        assert module_name_for(str(f)) == "script"

    def test_substrate_boundary(self):
        assert is_substrate("repro.engine.rdd")
        assert is_substrate("repro.engine")
        assert not is_substrate("repro.dbscan.partial")
        assert not is_substrate("repro.engineering.tools")


class TestCrossModuleReachability:
    def test_determinism_through_helper_module(self, package):
        # The task lambda calls an imported helper; the wall clock sits
        # one module away from the RDD op.
        findings = package({
            "helpers.py": """
                import time

                def stamp(x):
                    return (x, time.time())
                """,
            "main.py": """
                from .helpers import stamp

                def job(rdd):
                    return rdd.map(lambda x: stamp(x)).collect()
                """,
        })
        assert any(
            f.rule == "DET001" and f.path.endswith("helpers.py")
            for f in findings
        )

    def test_imported_function_passed_to_rdd_op(self, package):
        # The imported helper IS the task function (no local wrapper):
        # the project layer injects it into its defining module.
        findings = package({
            "helpers.py": """
                import time

                def stamp(x):
                    return (x, time.time())
                """,
            "main.py": """
                from .helpers import stamp

                def job(rdd):
                    return rdd.map(stamp).collect()
                """,
        })
        assert any(
            f.rule == "DET001" and f.path.endswith("helpers.py")
            for f in findings
        )

    def test_unpicklable_capture_in_helper_module(self, package):
        findings = package({
            "helpers.py": """
                import threading

                _mu = threading.Lock()

                def guarded(x):
                    with _mu:
                        return x
                """,
            "main.py": """
                from .helpers import guarded

                def job(rdd):
                    return rdd.map(guarded).collect()
                """,
        })
        assert any(
            f.rule == "PCK001" and f.path.endswith("helpers.py")
            for f in findings
        )

    def test_module_alias_call_resolves(self, package):
        findings = package({
            "helpers.py": """
                import time

                def stamp(x):
                    return (x, time.time())
                """,
            "main.py": """
                from . import helpers

                def job(rdd):
                    return rdd.map(lambda x: helpers.stamp(x)).collect()
                """,
        })
        assert "DET001" in rules_of(findings)

    def test_clean_helper_stays_clean(self, package):
        findings = package({
            "helpers.py": """
                def double(x):
                    return 2 * x
                """,
            "main.py": """
                from .helpers import double

                def job(rdd):
                    return rdd.map(double).collect()
                """,
        })
        assert findings == []


class TestGraphStats:
    def test_project_graph_counts(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "a.py").write_text(textwrap.dedent("""
            from .b import g

            def f():
                return g()
            """))
        (pkg / "b.py").write_text(textwrap.dedent("""
            def g():
                return 1

            def orphan():
                return 2
            """))
        project = build_project(
            [str(pkg / "__init__.py"), str(pkg / "a.py"), str(pkg / "b.py")]
        )
        nodes, edges, sccs = project.graph_stats()
        assert nodes == 3
        assert edges == 1         # f -> g, cross-module
        assert sccs == 3          # no cycles

    def test_scc_detects_cycle(self):
        nodes = [("m", "a"), ("m", "b"), ("m", "c")]
        edges = {
            ("m", "a"): {("m", "b")},
            ("m", "b"): {("m", "a")},
            ("m", "c"): set(),
        }
        sccs = strongly_connected_components(nodes, edges)
        assert sorted(len(c) for c in sccs) == [1, 2]

    def test_scc_deep_chain_is_iterative(self):
        # A recursion-breaking depth: the iterative Tarjan must not blow
        # the Python stack on a long call chain.
        n = 5000
        nodes = [("m", f"f{i}") for i in range(n)]
        edges = {("m", f"f{i}"): {("m", f"f{i + 1}")} for i in range(n - 1)}
        edges[("m", f"f{n - 1}")] = set()
        assert len(strongly_connected_components(nodes, edges)) == n

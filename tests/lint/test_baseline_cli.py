"""Baseline mechanics and the `repro lint` CLI contract.

The baseline grandfathers known findings by line-number-free
fingerprint *count*; the CLI exits 0 when nothing is new, 1 on new
findings or unreadable input (one-line ``error:`` on stderr).
"""

import json
import textwrap

import pytest

from repro.cli import main
from repro.lint import (
    BaselineError,
    load_baseline,
    new_findings,
    run_lint,
    write_baseline,
)
from repro.lint.findings import Finding

VIOLATION = textwrap.dedent(
    """
    import time

    def job(rdd):
        return rdd.map(lambda x: (x, time.time())).collect()
    """
)


def _finding(message="m", rule="DET001", path="a.py", line=1):
    return Finding(rule=rule, path=path, line=line, col=0, message=message)


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = [_finding("one"), _finding("two")]
        path = str(tmp_path / "base.json")
        write_baseline(path, findings)
        counts = load_baseline(path)
        assert sum(counts.values()) == 2
        assert new_findings(findings, counts) == []

    def test_count_semantics(self, tmp_path):
        # Two occurrences of the same fingerprint vs a baseline of one:
        # exactly the excess occurrence is new.
        path = str(tmp_path / "base.json")
        write_baseline(path, [_finding("dup", line=3)])
        counts = load_baseline(path)
        now = [_finding("dup", line=3), _finding("dup", line=9)]
        assert len(new_findings(now, counts)) == 1

    def test_line_moves_do_not_invalidate(self, tmp_path):
        path = str(tmp_path / "base.json")
        write_baseline(path, [_finding("stable", line=10)])
        counts = load_baseline(path)
        assert new_findings([_finding("stable", line=200)], counts) == []

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(BaselineError):
            load_baseline(str(bad))

    def test_wrong_version_rejected(self, tmp_path):
        bad = tmp_path / "v99.json"
        bad.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(BaselineError):
            load_baseline(str(bad))

    def test_missing_baseline_means_all_new(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(VIOLATION)
        report = run_lint([str(mod)], baseline_path=str(tmp_path / "absent.json"))
        assert len(report.new) == len(report.findings) == 1
        assert not report.clean


class TestCli:
    def test_clean_scan_exits_zero(self, tmp_path, capsys):
        mod = tmp_path / "ok.py"
        mod.write_text("def f(rdd):\n    return rdd.map(lambda x: x).collect()\n")
        assert main(["lint", str(mod)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_new_finding_exits_one(self, tmp_path, capsys):
        mod = tmp_path / "bad.py"
        mod.write_text(VIOLATION)
        assert main(["lint", str(mod)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "NEW" in out

    def test_baselined_finding_exits_zero(self, tmp_path, capsys):
        mod = tmp_path / "bad.py"
        mod.write_text(VIOLATION)
        base = str(tmp_path / "base.json")
        assert main(["lint", str(mod), "--baseline", base, "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", str(mod), "--baseline", base]) == 0

    def test_json_format(self, tmp_path, capsys):
        mod = tmp_path / "bad.py"
        mod.write_text(VIOLATION)
        assert main(["lint", str(mod), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["findings"][0]["rule"] == "DET001"

    def test_missing_path_one_line_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.py")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_syntax_error_one_line_error(self, tmp_path, capsys):
        mod = tmp_path / "broken.py"
        mod.write_text("def f(:\n")
        assert main(["lint", str(mod)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "syntax" in err

    def test_corrupt_baseline_one_line_error(self, tmp_path, capsys):
        mod = tmp_path / "ok.py"
        mod.write_text("x = 1\n")
        bad = tmp_path / "base.json"
        bad.write_text("{oops")
        assert main(["lint", str(mod), "--baseline", str(bad)]) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_rules_catalogue(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rid in ("CAP001", "PCK001", "DET001", "SHF001",
                    "ACC001", "BRD001", "ACT001", "PLN001", "PLN002",
                    "LIF001", "LIF002", "LIF003", "RES001", "RES002"):
            assert rid in out

    def test_stats_flag(self, tmp_path, capsys):
        mod = tmp_path / "bad.py"
        mod.write_text(VIOLATION)
        assert main(["lint", str(mod), "--stats"]) == 1
        captured = capsys.readouterr()
        assert "DET001" in captured.err
        assert "call graph:" in captured.err
        assert "nodes" in captured.err and "SCCs" in captured.err

    def test_stats_in_json_payload(self, tmp_path, capsys):
        mod = tmp_path / "bad.py"
        mod.write_text(VIOLATION)
        assert main(["lint", str(mod), "--format", "json", "--stats"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["rules"] == {"DET001": 1}
        assert payload["stats"]["graph"]["nodes"] >= 2
        cfg = payload["stats"]["cfg"]
        assert cfg["functions"] >= 1
        assert cfg["blocks"] >= 3      # entry + exit + raise exit
        assert set(cfg) == {"functions", "blocks", "edges", "exc_edges"}

    def test_stats_text_reports_cfg_counts(self, tmp_path, capsys):
        mod = tmp_path / "bad.py"
        mod.write_text(VIOLATION)
        assert main(["lint", str(mod), "--stats"]) == 1
        err = capsys.readouterr().err
        assert "control flow:" in err
        assert "blocks" in err and "exceptional" in err

    def test_new_flow_finding_exits_one(self, tmp_path, capsys):
        # Exit-code contract for the flow rules: a fresh LIF001 with no
        # baseline is a new finding, so the CLI exits 1; grandfathering
        # it in a baseline returns the exit code to 0.
        mod = tmp_path / "flow.py"
        mod.write_text(
            "def f():\n"
            "    sc = SparkContext()\n"
            "    sc.stop()\n"
            "    sc.parallelize([1])\n"
        )
        assert main(["lint", str(mod)]) == 1
        capsys.readouterr()
        base = str(tmp_path / "base.json")
        assert main(["lint", str(mod), "--baseline", base,
                     "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", str(mod), "--baseline", base]) == 0

    def test_repo_gate(self, capsys):
        """The committed CI gate: src/ against the committed baseline."""
        assert main(["lint", "src", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True

"""Workload-balance diagnostics."""

import numpy as np
import pytest

from repro.analysis import analyze_balance, speedup_ceiling


class TestAnalyzeBalance:
    def test_perfectly_balanced(self):
        r = analyze_balance([2.0, 2.0, 2.0, 2.0])
        assert r.imbalance == 1.0
        assert r.efficiency == 1.0
        assert r.straggler_slack == 0.0
        assert r.cv == 0.0

    def test_skewed(self):
        r = analyze_balance([1.0, 1.0, 1.0, 5.0])
        assert r.imbalance == pytest.approx(5.0 / 2.0)
        assert r.efficiency == pytest.approx(2.0 / 5.0)
        assert r.straggler_slack == pytest.approx(3.0)

    def test_total_and_extremes(self):
        r = analyze_balance([3.0, 1.0, 2.0])
        assert r.total == 6.0
        assert r.max == 3.0 and r.min == 1.0
        assert r.num_partitions == 3

    def test_zero_work(self):
        r = analyze_balance([0.0, 0.0])
        assert r.imbalance == 1.0
        assert r.efficiency == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            analyze_balance([])
        with pytest.raises(ValueError):
            analyze_balance([1.0, -1.0])


class TestSpeedupCeiling:
    def test_balanced_reaches_p(self):
        assert speedup_ceiling([1.0] * 8) == pytest.approx(8.0)

    def test_single_straggler_caps(self):
        # 7 fast + 1 task holding half the work: ceiling well below 8.
        work = [1.0] * 7 + [7.0]
        assert speedup_ceiling(work) == pytest.approx(14.0 / 7.0)


class TestOnRealDBSCANRun:
    def test_index_partitioning_is_roughly_balanced_on_shuffled_data(self):
        """Shuffled input gives index partitions statistically equal work —
        the reason the paper gets away without spatial partitioning."""
        from repro.data import generate_clustered
        from repro.dbscan import SparkDBSCAN

        g = generate_clustered(n=2000, num_clusters=5, cluster_std=8.0, seed=9)
        res = SparkDBSCAN(25.0, 5, num_partitions=4).fit(g.points)
        r = analyze_balance(res.timings.executor_task_durations)
        assert r.imbalance < 2.0
        assert r.efficiency > 0.5

    def test_sorted_input_can_skew_work(self):
        """If the input happens to be cluster-sorted, index ranges split
        into whole clusters vs pure noise — measurable skew in neighbour
        volume (the future-work motivation)."""
        from repro.data import generate_clustered
        from repro.engine.partitioner import IndexRangePartitioner
        from repro.kdtree import KDTree

        g = generate_clustered(n=2000, num_clusters=4, cluster_std=8.0,
                               noise_fraction=0.4, seed=9, shuffle=False)
        # Unshuffled: clusters first, then all noise.  Neighbour volume per
        # index partition is then extremely skewed.
        tree = KDTree(g.points)
        part = IndexRangePartitioner(g.n, 4)
        work = []
        for pid in range(4):
            lo, hi = part.range_of(pid)
            work.append(sum(
                tree.query_radius(g.points[i], 25.0).size
                for i in range(lo, hi, 10)
            ))
        skewed = analyze_balance([float(w) for w in work])
        assert skewed.imbalance > 1.5

"""Section IV-C cost model sanity and calibration."""

import pytest

from repro.analysis import (
    CalibratedCostModel,
    CostModel,
    WorkloadParams,
    search_time_lower,
    search_time_upper,
)
from repro.analysis.cost_model import merge_input_class, merge_units


@pytest.fixture
def params():
    return WorkloadParams(n=100_000, d=10, m=500, K=300, delta=10.0,
                          t_straggling=5.0)


class TestSearchTimeBounds:
    def test_lower_is_log(self, params):
        assert search_time_lower(params) == pytest.approx(16.6096, rel=1e-3)

    def test_upper_dominates_lower(self, params):
        assert search_time_upper(params) > search_time_lower(params)

    def test_v_interpolates(self, params):
        lo = CostModel(params, v_weight=0.0).V
        mid = CostModel(params, v_weight=0.5).V
        hi = CostModel(params, v_weight=1.0).V
        assert lo < mid < hi
        assert lo == pytest.approx(search_time_lower(params))
        assert hi == pytest.approx(search_time_upper(params))


class TestCostModel:
    def test_speedup_at_one_core_is_near_one(self, params):
        m = CostModel(params)
        assert m.speedup(1) <= 1.0 + 1e-9

    def test_speedup_monotone_and_efficiency_decays(self, params):
        m = CostModel(params)
        cores = (1, 2, 4, 8, 16, 32, 64)
        s = [m.speedup(p) for p in cores]
        assert s == sorted(s)  # monotone in p
        eff = [si / p for si, p in zip(s, cores)]
        assert all(a >= b - 1e-12 for a, b in zip(eff, eff[1:]))  # sub-linear

    def test_speedup_bounded_by_serial_fraction(self, params):
        """Amdahl-style cap: the non-parallel work bounds the speedup."""
        m = CostModel(params)
        serial = m.build_time() + m.merge_time() + m.params.m * m.V
        cap = m.sequential_time() / serial
        assert m.speedup(10**6) <= cap + 1e-9

    def test_executor_only_speedup_higher(self, params):
        """Figure 8's two columns: executor-only speedup dominates the
        total-time speedup because driver work does not parallelise."""
        m = CostModel(params)
        for p in (4, 8, 16, 32):
            assert m.executor_only_speedup(p) >= m.speedup(p)

    def test_more_partial_clusters_hurt_speedup(self):
        base = WorkloadParams(n=100_000, m=100, K=300)
        heavy = WorkloadParams(n=100_000, m=20_000, K=300)
        assert CostModel(heavy).speedup(32) < CostModel(base).speedup(32)

    def test_straggler_wait_hurts_parallel_only(self):
        quiet = WorkloadParams(n=10_000, m=10)
        noisy = WorkloadParams(n=10_000, m=10, t_straggling=1e6)
        assert CostModel(noisy).speedup(8) < CostModel(quiet).speedup(8)
        assert CostModel(noisy).sequential_time() == CostModel(quiet).sequential_time()

    def test_validation(self, params):
        with pytest.raises(ValueError):
            CostModel(params, v_weight=1.5)
        with pytest.raises(ValueError):
            CostModel(params).parallel_time(0)
        with pytest.raises(ValueError):
            WorkloadParams(n=0)


class TestCalibratedModel:
    def test_fit_reproduces_measured_point(self, params):
        m = CalibratedCostModel.fit(params, measured_executor_total=20.0,
                                    measured_merge=2.0)
        # At p=1 (ignoring the m*query term) the model should be close to
        # delta + executor + merge.
        assert m.sequential_time() == pytest.approx(
            params.delta + 20.0 + 2.0, rel=1e-6
        )

    def test_predicted_speedup_shape(self, params):
        m = CalibratedCostModel.fit(params, 20.0, 2.0)
        s = [m.speedup(p) for p in (1, 2, 4, 8, 16)]
        assert s == sorted(s)
        assert s[0] <= 1.0 + 1e-9

    def test_rejects_negative_measurements(self, params):
        with pytest.raises(ValueError):
            CalibratedCostModel.fit(params, -1.0, 1.0)


class TestSizeClassedMergeTerm:
    """The driver-merge term comes from the statically checked size
    classes: `merge_input_class` reads the plan's SIZE_MANIFEST, and
    `merge_units` maps the class to model units."""

    def test_partials_plans_merge_opoints(self):
        # The paper's plans collect whole partials: n + K·m applies.
        for plan in ("spark", "sequential", "cell", "mapreduce"):
            assert merge_input_class(plan) == "O(points)"

    def test_edges_plans_merge_oedges(self):
        for plan in ("spark_edges", "cell_edges"):
            assert merge_input_class(plan) == "O(edges)"

    def test_unknown_plan_is_rejected(self):
        with pytest.raises(ValueError, match="unknown plan"):
            merge_input_class("nope")

    def test_units_by_class(self):
        p = WorkloadParams(n=1000, m=8, K=50)
        assert merge_units(p, "O(points)") == 1000 + 50 * 8
        assert merge_units(p, "O(edges)") == 50 * 8 + 8
        assert merge_units(p, "O(partials)") == 8.0
        assert merge_units(p, "O(cells)") == 8.0
        assert merge_units(p, "O(1)") == 1.0
        with pytest.raises(ValueError, match="unknown size class"):
            merge_units(p, "O(n^2)")

    def test_unit_ordering_follows_the_lattice(self):
        p = WorkloadParams(n=100_000, m=500, K=300)
        classes = ("O(1)", "O(cells)", "O(partials)", "O(edges)", "O(points)")
        units = [merge_units(p, c) for c in classes]
        assert all(a <= b for a, b in zip(units, units[1:]))

    def test_merge_time_takes_a_size_class(self, params):
        m = CostModel(params)
        assert m.merge_time() == merge_units(params, "O(points)")
        assert m.merge_time(merge_input_class("spark_edges")) == \
            merge_units(params, "O(edges)")
        assert m.merge_time("O(edges)") < m.merge_time("O(points)")

    def test_calibrated_model_uses_declared_class(self, params):
        # Same measured seconds, different declared merge class: the
        # fitted per-unit cost differs, but the fit must reproduce the
        # measured point either way.
        for cls in ("O(points)", "O(edges)"):
            m = CalibratedCostModel.fit(
                params, measured_executor_total=20.0, measured_merge=2.0,
                merge_size_class=cls,
            )
            assert m.merge_size_class == cls
            assert m.sequential_time() == pytest.approx(
                params.delta + 20.0 + 2.0, rel=1e-6
            )

    def test_edge_merge_predicts_better_speedup(self, params):
        # The merge term is serial: shrinking it from O(points) to
        # O(edges) raises the predicted speedup at every p > 1.
        points = CalibratedCostModel.fit(params, 20.0, 2.0,
                                         merge_size_class="O(points)")
        # Fit the per-unit cost at the O(points) operating point, then
        # predict with the edge-sized term (fewer units, same unit cost).
        edges = CalibratedCostModel(
            params=params, query_cost=points.query_cost,
            merge_unit_cost=points.merge_unit_cost,
            merge_size_class="O(edges)",
        )
        for p in (2, 8, 32):
            assert edges.speedup(p) > points.speedup(p)

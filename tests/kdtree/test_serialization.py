"""kd-tree serialization: broadcast and distributed-cache both pickle it."""

import pickle

import numpy as np

from repro.kdtree import KDTree


class TestPickleRoundtrip:
    def test_queries_identical_after_roundtrip(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 100, (500, 10))
        tree = KDTree(pts, leaf_size=16)
        clone: KDTree = pickle.loads(pickle.dumps(tree))
        for i in range(0, 500, 37):
            np.testing.assert_array_equal(
                np.sort(tree.query_radius(pts[i], 20.0)),
                np.sort(clone.query_radius(pts[i], 20.0)),
            )

    def test_metadata_preserved(self):
        pts = np.random.default_rng(1).uniform(0, 10, (100, 3))
        tree = KDTree(pts, leaf_size=8)
        clone: KDTree = pickle.loads(pickle.dumps(tree))
        assert clone.n == tree.n
        assert clone.leaf_size == tree.leaf_size
        assert clone.num_nodes == tree.num_nodes
        np.testing.assert_array_equal(clone.points, tree.points)

    def test_broadcast_through_processes(self):
        """The paper's deployment: the tree as a broadcast variable read by
        remote executors."""
        from repro.engine import SparkContext

        pts = np.random.default_rng(2).uniform(0, 50, (200, 4))
        tree = KDTree(pts)
        with SparkContext("processes[2]") as sc:
            tree_b = sc.broadcast(tree)
            counts = (
                sc.parallelize(range(0, 200, 10), 2)
                .map(lambda i: int(tree_b.value.query_radius(
                    tree_b.value.points[i], 10.0).size))
                .collect()
            )
        expected = [int(tree.query_radius(pts[i], 10.0).size)
                    for i in range(0, 200, 10)]
        assert counts == expected

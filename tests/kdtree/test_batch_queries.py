"""Batched neighbourhood kernels: `query_radius_batch` must be
element-for-element identical to per-point `query_radius` — same
indices, same order — because the batched executor path replays BFS
expansion over the stored rows and any deviation would change partial
clusters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.kdtree import KDTree

point_arrays = arrays(
    np.float64,
    st.tuples(st.integers(1, 120), st.integers(1, 6)),
    elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False, width=32),
)


def _rows(indptr, indices):
    return [indices[indptr[k]:indptr[k + 1]] for k in range(len(indptr) - 1)]


@settings(max_examples=40, deadline=None)
@given(
    pts=point_arrays,
    eps=st.floats(0.0, 80.0),
    leaf=st.integers(1, 32),
    block=st.integers(1, 64),
)
def test_batch_matches_per_point(pts, eps, leaf, block):
    """Random clouds: every row equals the per-point query, order included."""
    tree = KDTree(pts, leaf_size=leaf)
    indptr, indices = tree.query_radius_batch(pts, eps, query_block=block)
    counts = tree.count_radius_batch(pts, eps, query_block=block)
    for k, row in enumerate(_rows(indptr, indices)):
        ref = tree.query_radius(pts[k], eps)
        assert np.array_equal(row, ref)
        assert counts[k] == ref.size


@settings(max_examples=25, deadline=None)
@given(pts=point_arrays, eps=st.floats(0.0, 60.0), cap=st.integers(1, 12))
def test_batch_matches_per_point_with_pruning(pts, eps, cap):
    """The max_neighbors pruned variant must stop at the same prefix."""
    tree = KDTree(pts, leaf_size=4)
    indptr, indices = tree.query_radius_batch(pts, eps, max_neighbors=cap,
                                              query_block=16)
    for k, row in enumerate(_rows(indptr, indices)):
        assert np.array_equal(row, tree.query_radius(pts[k], eps, cap))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), eps=st.floats(0.0, 5.0))
def test_batch_handles_duplicate_points(seed, eps):
    """Duplicate-heavy inputs exercise the zero-span oversized-leaf path."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(-10, 10, (12, 3))
    pts = base[rng.integers(0, 12, 150)]
    tree = KDTree(pts, leaf_size=8)
    indptr, indices = tree.query_radius_batch(pts, eps)
    for k, row in enumerate(_rows(indptr, indices)):
        assert np.array_equal(row, tree.query_radius(pts[k], eps))


class TestBatchEdgeCases:
    def test_empty_query_matrix(self):
        tree = KDTree(np.random.default_rng(0).uniform(0, 1, (50, 3)))
        indptr, indices = tree.query_radius_batch(np.empty((0, 3)), 1.0)
        assert indptr.tolist() == [0]
        assert indices.size == 0
        assert tree.count_radius_batch(np.empty((0, 3)), 1.0).size == 0

    def test_empty_tree(self):
        tree = KDTree(np.empty((0, 2)))
        indptr, indices = tree.query_radius_batch(np.zeros((3, 2)), 1.0)
        assert indptr.tolist() == [0, 0, 0, 0]
        assert indices.size == 0
        assert tree.count_radius_batch(np.zeros((3, 2)), 1.0).tolist() == [0, 0, 0]

    def test_zero_radius_hits_exact_duplicates_only(self):
        pts = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 0.0]])
        tree = KDTree(pts, leaf_size=1)
        indptr, indices = tree.query_radius_batch(pts, 0.0)
        assert sorted(indices[indptr[0]:indptr[1]].tolist()) == [0, 1]
        assert indices[indptr[2]:indptr[3]].tolist() == [2]

    def test_rejects_negative_eps(self):
        tree = KDTree(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            tree.query_radius_batch(np.zeros((2, 2)), -1.0)

    def test_rejects_dimension_mismatch(self):
        tree = KDTree(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            tree.query_radius_batch(np.zeros((2, 3)), 1.0)

    def test_foreign_queries_allowed(self):
        """Query points need not be tree points (predict-style usage)."""
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 10, (200, 4))
        Q = rng.uniform(0, 10, (37, 4))
        tree = KDTree(pts, leaf_size=8)
        indptr, indices = tree.query_radius_batch(Q, 2.0, query_block=10)
        for k in range(37):
            assert np.array_equal(indices[indptr[k]:indptr[k + 1]],
                                  tree.query_radius(Q[k], 2.0))

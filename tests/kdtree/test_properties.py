"""Property-based kd-tree tests (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.kdtree import BruteForceIndex, KDTree

point_arrays = arrays(
    np.float64,
    st.tuples(st.integers(1, 120), st.integers(1, 6)),
    elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False, width=32),
)


@settings(max_examples=40, deadline=None)
@given(pts=point_arrays, eps=st.floats(0.0, 80.0), qi=st.integers(0, 10_000), leaf=st.integers(1, 32))
def test_range_query_matches_brute_force(pts, eps, qi, leaf):
    t = KDTree(pts, leaf_size=leaf)
    bf = BruteForceIndex(pts)
    q = pts[qi % len(pts)]
    assert sorted(t.query_radius(q, eps).tolist()) == sorted(
        bf.query_radius(q, eps).tolist()
    )


@settings(max_examples=30, deadline=None)
@given(pts=point_arrays, k=st.integers(1, 15), qi=st.integers(0, 10_000))
def test_knn_distances_match_brute_force(pts, k, qi):
    t = KDTree(pts, leaf_size=8)
    bf = BruteForceIndex(pts)
    q = pts[qi % len(pts)]
    da = np.sort(np.linalg.norm(pts[t.query_knn(q, k)] - q, axis=1))
    db = np.sort(np.linalg.norm(pts[bf.query_knn(q, k)] - q, axis=1))
    np.testing.assert_allclose(da, db, rtol=1e-9, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(pts=point_arrays, eps=st.floats(0.0, 50.0))
def test_self_always_in_own_neighborhood(pts, eps):
    t = KDTree(pts)
    for i in range(0, len(pts), max(1, len(pts) // 5)):
        assert i in t.query_radius(pts[i], eps).tolist()


@settings(max_examples=30, deadline=None)
@given(pts=point_arrays, eps1=st.floats(0.0, 30.0), eps2=st.floats(0.0, 30.0))
def test_radius_monotonicity(pts, eps1, eps2):
    lo, hi = sorted((eps1, eps2))
    t = KDTree(pts)
    q = pts[0]
    small = set(t.query_radius(q, lo).tolist())
    big = set(t.query_radius(q, hi).tolist())
    assert small <= big


@settings(max_examples=25, deadline=None)
@given(pts=point_arrays)
def test_build_permutation_valid(pts):
    t = KDTree(pts, leaf_size=4)
    assert sorted(t._perm.tolist()) == list(range(len(pts)))
    assert t.num_leaves >= 1

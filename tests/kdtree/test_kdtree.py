"""kd-tree construction and query correctness vs brute force and scipy."""

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.kdtree import BruteForceIndex, KDTree


@pytest.fixture(scope="module")
def uniform_points():
    rng = np.random.default_rng(0)
    return rng.uniform(0, 100, (1500, 10))


@pytest.fixture(scope="module")
def clustered_points():
    rng = np.random.default_rng(1)
    centers = rng.uniform(0, 1000, (8, 10))
    return np.vstack([rng.normal(c, 8.0, (150, 10)) for c in centers])


class TestConstruction:
    def test_leaf_size_respected(self, uniform_points):
        t = KDTree(uniform_points, leaf_size=10)
        for node in range(t.num_nodes):
            if t._split_dim[node] < 0:
                assert t._end[node] - t._start[node] <= 10

    def test_perm_is_permutation(self, uniform_points):
        t = KDTree(uniform_points)
        assert sorted(t._perm.tolist()) == list(range(len(uniform_points)))

    def test_depth_logarithmic(self, uniform_points):
        t = KDTree(uniform_points, leaf_size=16)
        n = len(uniform_points)
        # Median splits give a balanced tree: depth ~ log2(n/leaf)+1.
        assert t.depth() <= int(np.ceil(np.log2(n / 16))) + 2

    def test_empty_tree(self):
        t = KDTree(np.empty((0, 3)))
        assert t.query_radius(np.zeros(3), 1.0).size == 0

    def test_single_point(self):
        t = KDTree(np.array([[1.0, 2.0]]))
        assert t.query_radius(np.array([1.0, 2.0]), 0.1).tolist() == [0]
        assert t.query_radius(np.array([5.0, 5.0]), 0.1).size == 0

    def test_duplicate_points(self):
        pts = np.ones((50, 4))
        t = KDTree(pts, leaf_size=8)
        assert sorted(t.query_radius(np.ones(4), 0.0).tolist()) == list(range(50))

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            KDTree(np.zeros(5))  # 1-D
        with pytest.raises(ValueError):
            KDTree(np.zeros((3, 2)), leaf_size=0)

    def test_integer_input_converted(self):
        t = KDTree(np.array([[0, 0], [3, 4]]))
        assert t.query_radius(np.array([0.0, 0.0]), 5.0).size == 2


class TestRangeQueries:
    @pytest.mark.parametrize("eps", [5.0, 15.0, 30.0])
    def test_matches_brute_force_uniform(self, uniform_points, eps):
        t = KDTree(uniform_points, leaf_size=20)
        bf = BruteForceIndex(uniform_points)
        rng = np.random.default_rng(7)
        for i in rng.integers(0, len(uniform_points), 40):
            a = sorted(t.query_radius(uniform_points[i], eps).tolist())
            b = sorted(bf.query_radius(uniform_points[i], eps).tolist())
            assert a == b

    def test_matches_scipy_clustered(self, clustered_points):
        t = KDTree(clustered_points, leaf_size=32)
        sp = cKDTree(clustered_points)
        rng = np.random.default_rng(8)
        for i in rng.integers(0, len(clustered_points), 40):
            a = sorted(t.query_radius(clustered_points[i], 25.0).tolist())
            b = sorted(sp.query_ball_point(clustered_points[i], 25.0))
            assert a == b

    def test_off_data_query_point(self, uniform_points):
        t = KDTree(uniform_points)
        bf = BruteForceIndex(uniform_points)
        q = np.full(10, 50.0)
        assert sorted(t.query_radius(q, 40.0).tolist()) == sorted(
            bf.query_radius(q, 40.0).tolist()
        )

    def test_boundary_inclusive(self):
        pts = np.array([[0.0], [3.0]])
        t = KDTree(pts)
        assert sorted(t.query_radius(np.array([0.0]), 3.0).tolist()) == [0, 1]

    def test_zero_radius_finds_exact_matches(self, uniform_points):
        t = KDTree(uniform_points)
        hits = t.query_radius(uniform_points[5], 0.0)
        assert 5 in hits.tolist()

    def test_negative_eps_rejected(self, uniform_points):
        t = KDTree(uniform_points)
        with pytest.raises(ValueError):
            t.query_radius(uniform_points[0], -1.0)

    def test_count_matches_size(self, uniform_points):
        t = KDTree(uniform_points)
        q = uniform_points[3]
        assert t.query_radius_count(q, 20.0) == t.query_radius(q, 20.0).size


class TestKNN:
    def test_matches_brute_force(self, clustered_points):
        t = KDTree(clustered_points, leaf_size=16)
        bf = BruteForceIndex(clustered_points)
        rng = np.random.default_rng(9)
        for i in rng.integers(0, len(clustered_points), 20):
            a = t.query_knn(clustered_points[i], 10)
            b = bf.query_knn(clustered_points[i], 10)
            # Distances must agree (ties may permute indices).
            da = np.linalg.norm(clustered_points[a] - clustered_points[i], axis=1)
            db = np.linalg.norm(clustered_points[b] - clustered_points[i], axis=1)
            np.testing.assert_allclose(da, db)

    def test_nearest_is_self(self, uniform_points):
        t = KDTree(uniform_points)
        assert t.query_knn(uniform_points[42], 1).tolist() == [42]

    def test_k_larger_than_n(self):
        pts = np.random.default_rng(0).uniform(0, 1, (5, 3))
        t = KDTree(pts)
        assert sorted(t.query_knn(pts[0], 50).tolist()) == list(range(5))

    def test_k_nonpositive_rejected(self, uniform_points):
        t = KDTree(uniform_points)
        with pytest.raises(ValueError):
            t.query_knn(uniform_points[0], 0)


class TestPruning:
    """The paper's 'kd-tree with pruning branches' (Section V-E)."""

    def test_cap_limits_neighbors(self, clustered_points):
        t = KDTree(clustered_points)
        full = t.query_radius(clustered_points[0], 25.0)
        capped = t.query_radius(clustered_points[0], 25.0, max_neighbors=10)
        assert capped.size <= 10
        assert set(capped.tolist()) <= set(full.tolist())

    def test_capped_results_are_true_neighbors(self, clustered_points):
        t = KDTree(clustered_points)
        q = clustered_points[7]
        capped = t.query_radius(q, 25.0, max_neighbors=5)
        d = np.linalg.norm(clustered_points[capped] - q, axis=1)
        assert (d <= 25.0 + 1e-9).all()

    def test_cap_larger_than_result_is_noop(self, clustered_points):
        t = KDTree(clustered_points)
        q = clustered_points[3]
        full = sorted(t.query_radius(q, 25.0).tolist())
        capped = sorted(t.query_radius(q, 25.0, max_neighbors=10**9).tolist())
        assert full == capped

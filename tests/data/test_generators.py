"""Dataset generators: determinism, structure, density regime."""

import numpy as np
import pytest

from repro.data import (
    EPS,
    MINPTS,
    PAPER_SIZES,
    dataset_spec,
    effective_size,
    generate_clustered,
    generate_scattered,
    load_points,
    make_dataset,
    parse_point_line,
    save_points,
)
from repro.kdtree import KDTree


class TestClusteredGenerator:
    def test_shapes(self):
        g = generate_clustered(n=500, d=6, num_clusters=4, seed=0)
        assert g.points.shape == (500, 6)
        assert g.true_labels.shape == (500,)
        assert len(g.clusters) == 4

    def test_deterministic(self):
        a = generate_clustered(n=300, seed=5)
        b = generate_clustered(n=300, seed=5)
        np.testing.assert_array_equal(a.points, b.points)
        np.testing.assert_array_equal(a.true_labels, b.true_labels)

    def test_different_seeds_differ(self):
        a = generate_clustered(n=300, seed=1)
        b = generate_clustered(n=300, seed=2)
        assert not np.array_equal(a.points, b.points)

    def test_noise_fraction(self):
        g = generate_clustered(n=1000, noise_fraction=0.2, seed=0)
        assert np.count_nonzero(g.true_labels == -1) == 200

    def test_cluster_sizes_balanced(self):
        g = generate_clustered(n=1000, num_clusters=7, noise_fraction=0.0, seed=0)
        _, counts = np.unique(g.true_labels, return_counts=True)
        assert counts.max() - counts.min() <= 1

    def test_centers_separated(self):
        g = generate_clustered(n=200, num_clusters=5, cluster_std=8.0, seed=3)
        centers = np.array([c.center for c in g.clusters])
        for i in range(5):
            for j in range(i + 1, 5):
                assert np.linalg.norm(centers[i] - centers[j]) >= 96.0

    def test_shuffle_mixes_partitions(self):
        """Contiguous index ranges must contain several true clusters —
        the regime the SEED mechanism exists for."""
        g = generate_clustered(n=1000, num_clusters=5, noise_fraction=0.0, seed=0)
        first_quarter = g.true_labels[:250]
        assert np.unique(first_quarter).size >= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_clustered(n=0)
        with pytest.raises(ValueError):
            generate_clustered(n=100, noise_fraction=1.0)
        with pytest.raises(ValueError):
            generate_clustered(n=5, num_clusters=10)


class TestScatteredGenerator:
    def test_cluster_count_scales_with_n(self):
        small = generate_scattered(n=2000, points_per_cluster=200, seed=0)
        large = generate_scattered(n=8000, points_per_cluster=200, seed=0)
        assert len(large.clusters) > len(small.clusters)

    def test_density_regime_at_paper_params(self):
        """Cluster members must be core points at (eps=25, minpts=5),
        noise points must not."""
        g = generate_scattered(n=3000, seed=0)
        tree = KDTree(g.points)
        rng = np.random.default_rng(0)
        idx = rng.integers(0, g.n, 200)
        counts = np.array([tree.query_radius(g.points[i], EPS).size for i in idx])
        labels = g.true_labels[idx]
        member_core_rate = (counts[labels >= 0] >= MINPTS).mean()
        noise_core_rate = (counts[labels < 0] >= MINPTS).mean()
        assert member_core_rate > 0.95
        assert noise_core_rate < 0.05


class TestDatasetRegistry:
    def test_paper_sizes_table1(self):
        assert PAPER_SIZES == {
            "c10k": 10_000,
            "c100k": 102_400,
            "r10k": 10_000,
            "r100k": 102_400,
            "r1m": 1_024_000,
        }

    def test_spec_has_paper_params(self):
        spec = dataset_spec("c10k")
        assert spec.eps == 25.0
        assert spec.minpts == 5
        assert spec.d == 10

    def test_explicit_scale(self):
        assert effective_size("r1m", scale=0.01) == 10_240
        assert effective_size("r10k", scale=1.0) == 10_000

    def test_scale_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        assert effective_size("c100k") == 5_120

    def test_default_caps_small_sets_full_size(self):
        assert effective_size("c10k") == 10_000
        assert effective_size("r10k") == 10_000

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_dataset("z99")

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            effective_size("c10k", scale=0.0)

    def test_make_dataset_deterministic(self):
        a = make_dataset("r10k")
        b = make_dataset("r10k")
        np.testing.assert_array_equal(a.points, b.points)

    def test_datasets_distinct(self):
        a = make_dataset("c10k")
        b = make_dataset("r10k")
        assert not np.array_equal(a.points, b.points)


class TestIO:
    def test_save_load_roundtrip(self, tmp_path):
        pts = np.random.default_rng(0).uniform(-5, 5, (40, 10))
        path = str(tmp_path / "pts.txt")
        save_points(path, pts)
        back = load_points(path)
        np.testing.assert_allclose(back, pts, rtol=1e-11)

    def test_parse_point_line(self):
        np.testing.assert_allclose(
            parse_point_line("1.5 -2 3e2"), np.array([1.5, -2.0, 300.0])
        )

    def test_save_rejects_1d(self, tmp_path):
        with pytest.raises(ValueError):
            save_points(str(tmp_path / "x.txt"), np.zeros(5))

    def test_roundtrip_through_lines(self, tmp_path):
        """save → parse each line == original matrix (the HDFS read path)."""
        pts = np.random.default_rng(1).normal(0, 100, (25, 10))
        path = str(tmp_path / "pts.txt")
        save_points(path, pts)
        with open(path) as f:
            rows = [parse_point_line(line) for line in f if line.strip()]
        np.testing.assert_allclose(np.vstack(rows), pts, rtol=1e-11)

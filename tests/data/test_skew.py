"""Skewed-data generator and its interaction with partitioning."""

import numpy as np
import pytest

from repro.analysis import analyze_balance
from repro.data import generate_skewed
from repro.dbscan import SparkDBSCAN, clusterings_equivalent, dbscan_sequential
from repro.kdtree import KDTree


class TestGenerator:
    def test_power_law_sizes(self):
        g = generate_skewed(n=5000, num_clusters=10, zipf_exponent=1.5, seed=0)
        sizes = [c.size for c in g.clusters]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] > 4 * sizes[-1]  # heavy head, long tail

    def test_total_points(self):
        g = generate_skewed(n=3000, noise_fraction=0.1, seed=1)
        assert g.n == 3000
        assert np.count_nonzero(g.true_labels == -1) == 300

    def test_deterministic(self):
        a = generate_skewed(n=1000, seed=4)
        b = generate_skewed(n=1000, seed=4)
        np.testing.assert_array_equal(a.points, b.points)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_skewed(n=0)
        with pytest.raises(ValueError):
            generate_skewed(n=100, zipf_exponent=0.0)
        with pytest.raises(ValueError):
            generate_skewed(n=100, noise_fraction=1.0)
        # Genuinely infeasible: fewer clustered points than clusters.
        with pytest.raises(ValueError):
            generate_skewed(n=30, num_clusters=50, noise_fraction=0.0)

    def test_tight_budget_rebalances_instead_of_raising(self):
        """Regression: when the per-cluster floor of 1 pushed the rounded
        sizes past the budget, the generator raised even though the
        request was feasible.  It must rebalance across the tail."""
        g = generate_skewed(n=60, num_clusters=50, noise_fraction=0.0,
                            seed=0)
        sizes = np.array([c.size for c in g.clusters])
        assert g.n == 60
        assert sizes.sum() == 60
        assert (sizes >= 1).all()
        # Still a power law: sizes non-increasing after rebalancing.
        assert (np.diff(sizes) <= 0).all()


class TestSkewAndPartitioning:
    def test_unshuffled_skew_imbalances_partitions(self):
        """Cluster-sorted skewed input: contiguous index ranges carry very
        different neighbour volumes — the workload-imbalance scenario the
        paper's conclusion warns about."""
        g = generate_skewed(n=2000, num_clusters=8, zipf_exponent=1.5,
                            cluster_std=8.0, seed=2, shuffle=False)
        tree = KDTree(g.points)
        from repro.engine.partitioner import IndexRangePartitioner

        part = IndexRangePartitioner(g.n, 4)
        work = []
        for pid in range(4):
            lo, hi = part.range_of(pid)
            work.append(float(sum(
                tree.query_radius(g.points[i], 25.0).size
                for i in range(lo, hi, 8)
            )))
        assert analyze_balance(work).imbalance > 1.5

    def test_shuffled_skew_still_clusters_correctly(self):
        g = generate_skewed(n=1500, num_clusters=6, cluster_std=8.0, seed=3)
        tree = KDTree(g.points)
        seq = dbscan_sequential(g.points, 25.0, 5, tree=tree)
        par = SparkDBSCAN(25.0, 5, num_partitions=4).fit(g.points, tree=tree)
        ok, why = clusterings_equivalent(seq.labels, par.labels, g.points,
                                         25.0, 5, tree=tree)
        assert ok, why

    def test_giant_cluster_found(self):
        g = generate_skewed(n=2000, num_clusters=6, zipf_exponent=1.5,
                            cluster_std=8.0, seed=5)
        res = SparkDBSCAN(25.0, 5, num_partitions=4).fit(g.points)
        sizes = sorted(res.cluster_sizes().values(), reverse=True)
        # The head cluster dwarfs the tail, as generated.
        assert sizes[0] > 3 * sizes[-1]

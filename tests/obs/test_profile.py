"""Per-task resource profiling: clocks, RSS, tracemalloc refcounting."""

import tracemalloc

import pytest

from repro.obs import MetricsRegistry, TaskProfiler, record_task_profile
from repro.obs.profile import max_peak_rss, peak_rss_bytes


class TestPeakRss:
    def test_positive_on_posix(self):
        rss = peak_rss_bytes()
        # On Linux/macOS resource.getrusage is available and any Python
        # process has a multi-megabyte high-water mark.
        assert rss > 1024 * 1024


class TestTaskProfiler:
    def test_basic_profile(self):
        p = TaskProfiler()
        p.start()
        sum(i * i for i in range(50_000))
        prof = p.stop()
        assert prof.wall_s > 0.0
        assert prof.cpu_s >= 0.0
        assert prof.max_rss_bytes > 0
        assert not prof.alloc_tracked
        assert prof.alloc_peak_bytes == 0

    def test_alloc_profile_tracks_peak(self):
        assert not tracemalloc.is_tracing()
        p = TaskProfiler(alloc=True)
        p.start()
        blob = [bytes(1024) for _ in range(512)]  # ~0.5 MiB live
        prof = p.stop()
        del blob
        assert prof.alloc_tracked
        assert prof.alloc_peak_bytes > 256 * 1024
        # stop() released our reference: tracing is off again.
        assert not tracemalloc.is_tracing()

    def test_refcounted_overlapping_profilers(self):
        assert not tracemalloc.is_tracing()
        p1, p2 = TaskProfiler(alloc=True), TaskProfiler(alloc=True)
        p1.start()
        p2.start()
        assert tracemalloc.is_tracing()
        p1.stop()
        # p2 still holds a reference: tracing must survive.
        assert tracemalloc.is_tracing()
        p2.stop()
        assert not tracemalloc.is_tracing()

    def test_never_stops_externally_started_tracing(self):
        tracemalloc.start()
        try:
            p = TaskProfiler(alloc=True)
            p.start()
            p.stop()
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()

    def test_stop_without_start_is_safe(self):
        prof = TaskProfiler().stop()
        assert prof.wall_s == 0.0


class TestRecordTaskProfile:
    def _profile(self, rss):
        p = TaskProfiler()
        p.start()
        prof = p.stop()
        prof.max_rss_bytes = rss
        return prof

    def test_gauges_keep_the_max_not_the_sum(self):
        reg = MetricsRegistry()
        record_task_profile(reg, self._profile(100), stage=0, partition=1)
        record_task_profile(reg, self._profile(300), stage=0, partition=1)
        record_task_profile(reg, self._profile(200), stage=0, partition=1)
        g = reg.get("repro_task_peak_rss_bytes")
        # RSS is a process high-water mark: summing attempts would
        # overstate memory; the gauge keeps the max.
        assert g.value(stage="0", partition="1") == pytest.approx(300)

    def test_cpu_histogram_observes_each_task(self):
        reg = MetricsRegistry()
        record_task_profile(reg, self._profile(1), stage=0, partition=0)
        record_task_profile(reg, self._profile(1), stage=0, partition=1)
        h = reg.get("repro_task_cpu_seconds")
        assert h is not None

    def test_max_peak_rss_across_partitions(self):
        reg = MetricsRegistry()
        record_task_profile(reg, self._profile(100), stage=0, partition=0)
        record_task_profile(reg, self._profile(700), stage=0, partition=1)
        record_task_profile(reg, self._profile(400), stage=1, partition=0)
        assert max_peak_rss(reg) == 700

    def test_max_peak_rss_empty_registry(self):
        assert max_peak_rss(MetricsRegistry()) == 0

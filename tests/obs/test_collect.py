"""Worker telemetry: buffers, the clock rebase, and the driver merge."""

import os
import pickle

import pytest

from repro.obs import MetricsRegistry, Tracer, WorkerTelemetry, merge_telemetry
from repro.obs.collect import current_telemetry, task_span
from repro.obs.spans import _NULL_HANDLE


class TestWorkerTelemetry:
    def test_create_anchors_to_this_process(self):
        t = WorkerTelemetry.create(tid="task-s0p1")
        assert t.pid == os.getpid()
        assert t.tid == "task-s0p1"
        assert t.spans == [] and t.metric_deltas == []

    def test_span_context_manager_records_phase(self):
        t = WorkerTelemetry.create()
        with t.span("task.kdtree_build", n=100) as sp:
            sp.annotate(leaves=4)
        assert len(t.spans) == 1
        (s,) = t.spans
        assert s.name == "task.kdtree_build"
        assert s.dur >= 0.0 and s.start >= 0.0
        assert s.cpu_s >= 0.0
        assert s.labels == {"n": 100, "leaves": 4}

    def test_add_span_accepts_negative_start(self):
        # Deserialization happens before the buffer exists; its span is
        # recorded retroactively with a negative anchor offset.
        t = WorkerTelemetry.create()
        s = t.add_span("task.deserialize", start=-0.25, dur=0.25, nbytes=10)
        assert s.start == -0.25
        assert t.phase_totals() == {"task.deserialize": 0.25}

    def test_pickle_roundtrip_preserves_everything(self):
        t = WorkerTelemetry.create(tid="task-s1p2")
        t.add_span("task.run", start=0.0, dur=1.5, cpu_s=1.2, partition=2)
        t.inc("repro_widgets_total", 3, help="Widgets.", kind="a")
        back = pickle.loads(pickle.dumps(t))
        assert back == t

    def test_phase_totals_sums_repeated_names(self):
        t = WorkerTelemetry.create()
        t.add_span("task.expand", start=0.0, dur=1.0)
        t.add_span("task.expand", start=1.0, dur=0.5)
        assert t.phase_totals() == {"task.expand": 1.5}


class TestMergeRebase:
    def test_cross_process_rebases_on_wall_clock(self):
        tracer = Tracer()
        # A buffer "from another process": pid differs, so the merge
        # must use the wall-clock anchor pair, landing the span exactly
        # 5 s after the tracer origin plus its in-task offset.
        t = WorkerTelemetry(
            pid=os.getpid() + 99999,
            wall_anchor=tracer._origin_wall + 5.0,
            perf_anchor=12345.0,
            tid="worker",
        )
        t.add_span("task.run", start=1.0, dur=2.0, partition=3)
        merge_telemetry(tracer, t)
        (span,) = tracer.spans
        assert span.name == "task.run"
        assert span.start == pytest.approx(6.0)
        assert span.duration == pytest.approx(2.0)
        assert span.pid == t.pid
        assert span.cat == "worker"

    def test_same_process_rebases_on_perf_counter(self):
        tracer = Tracer()
        t = WorkerTelemetry(
            pid=os.getpid(),
            wall_anchor=0.0,  # would produce nonsense if (wrongly) used
            perf_anchor=tracer._origin + 3.0,
        )
        t.add_span("task.run", start=1.0, dur=0.5)
        merge_telemetry(tracer, t)
        (span,) = tracer.spans
        assert span.start == pytest.approx(4.0)

    def test_metric_deltas_fold_into_registry(self):
        tracer = Tracer()
        reg = MetricsRegistry()
        t = WorkerTelemetry.create()
        t.inc("repro_things_total", 2, help="Things.", kind="a")
        t.inc("repro_things_total", 3, help="Things.", kind="a")
        merge_telemetry(tracer, t, reg)
        counter = reg.get("repro_things_total")
        assert counter.value(kind="a") == pytest.approx(5.0)

    def test_disabled_tracer_still_folds_metrics(self):
        from repro.obs import NULL_TRACER

        reg = MetricsRegistry()
        t = WorkerTelemetry.create()
        t.add_span("task.run", start=0.0, dur=1.0)
        t.inc("repro_things_total", 1, help="Things.")
        merge_telemetry(NULL_TRACER, t, reg)
        assert NULL_TRACER.spans == []
        assert reg.get("repro_things_total").value() == pytest.approx(1.0)


class TestTaskSpanOutsideTask:
    def test_no_active_task_is_a_null_handle(self):
        assert current_telemetry() is None
        handle = task_span("task.kdtree_build", n=5)
        assert handle is _NULL_HANDLE
        # The null handle is a working no-op context manager.
        with handle as sp:
            sp.annotate(anything=1)

"""Tracer/span semantics: nesting, grafting, export, null behaviour."""

import json
import threading

import pytest

from repro.obs import NULL_TRACER, Tracer, load_trace
from repro.obs.spans import NullTracer, iter_complete_events


class TestTracer:
    def test_span_records_duration_and_labels(self):
        tr = Tracer()
        with tr.span("phase", cat="driver", n=10) as sp:
            sp.annotate(extra="yes")
        (span,) = tr.spans
        assert span.name == "phase"
        assert span.cat == "driver"
        assert span.duration >= 0.0
        assert span.labels == {"n": 10, "extra": "yes"}

    def test_nesting_sets_depth_and_inherits_tid(self):
        tr = Tracer()
        with tr.span("outer", tid="lane-7"):
            with tr.span("inner") as inner:
                assert tr.current() is inner
        by_name = {s.name: s for s in tr.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["inner"].tid == "lane-7"
        assert tr.current() is None

    def test_inner_span_closes_before_outer(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        names = [s.name for s in tr.spans]  # completion order
        assert names == ["inner", "outer"]

    def test_exception_still_closes_span(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("doomed"):
                raise RuntimeError("boom")
        assert [s.name for s in tr.spans] == ["doomed"]
        assert tr.current() is None

    def test_add_span_backdates_to_end_now(self):
        tr = Tracer()
        span = tr.add_span("task", 0.25, cat="executor", tid="executor-3",
                           partition=3)
        assert span.duration == pytest.approx(0.25)
        assert span.tid == "executor-3"
        assert span.labels == {"partition": 3}
        assert span.end >= span.start

    def test_add_span_explicit_start(self):
        tr = Tracer()
        span = tr.add_span("task", 2.0, start=1.0)
        assert span.start == pytest.approx(1.0)
        assert span.end == pytest.approx(3.0)

    def test_instant_is_zero_duration(self):
        tr = Tracer()
        assert tr.instant("marker").duration == 0.0

    def test_find_and_total(self):
        tr = Tracer()
        tr.add_span("x", 1.0)
        tr.add_span("x", 2.0)
        tr.add_span("y", 4.0)
        assert len(tr.find("x")) == 2
        assert tr.total("x") == pytest.approx(3.0)
        assert tr.total("missing") == 0.0

    def test_threads_nest_independently(self):
        tr = Tracer()
        seen = {}

        def worker():
            with tr.span("worker-span", tid="t2") as sp:
                seen["depth"] = sp.depth

        with tr.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # The worker thread has its own stack: its span is top-level.
        assert seen["depth"] == 0
        assert len(tr.spans) == 2


class TestExport:
    def test_to_event_shape(self):
        tr = Tracer()
        with tr.span("phase", cat="driver", n=5):
            pass
        (event,) = tr.to_events()
        assert event["ph"] == "X"
        assert event["cat"] == "driver"
        assert event["tid"] == "driver"
        assert event["args"]["n"] == 5
        assert "depth" in event["args"] and "cpu_ms" in event["args"]
        assert isinstance(event["ts"], float) and isinstance(event["dur"], float)

    def test_to_events_sorted_by_start(self):
        tr = Tracer()
        tr.add_span("late", 0.1, start=5.0)
        tr.add_span("early", 0.1, start=1.0)
        assert [e["name"] for e in tr.to_events()] == ["early", "late"]

    def test_write_jsonl_roundtrip(self, tmp_path):
        tr = Tracer()
        with tr.span("outer", cat="driver"):
            with tr.span("inner"):
                pass
        path = str(tmp_path / "trace.jsonl")
        tr.write_jsonl(path)
        events = load_trace(path)
        spans = [e for e in events if e.get("ph") == "X"]
        assert {e["name"] for e in spans} == {"outer", "inner"}
        # one process_name metadata record per distinct pid (Perfetto lanes)
        meta = [e for e in events if e.get("ph") == "M"]
        assert len(meta) == 1 and meta[0]["name"] == "process_name"
        with open(path) as f:
            for line in f:
                json.loads(line)  # one event per line

    def test_load_trace_accepts_array_form(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps([{"name": "a", "ph": "X", "ts": 0, "dur": 1}]))
        events = load_trace(str(path))
        assert events[0]["name"] == "a"

    def test_load_trace_rejects_garbage_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": true}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            load_trace(str(path))

    def test_load_trace_rejects_non_object_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("42\n")
        with pytest.raises(ValueError, match="not an object"):
            load_trace(str(path))

    def test_iter_complete_events_filters(self):
        events = [
            {"ph": "X", "ts": 0, "dur": 1},
            {"ph": "B", "ts": 0},                 # wrong phase
            {"ph": "X", "ts": "zero", "dur": 1},  # non-numeric ts
            {"ph": "X", "ts": 0},                 # missing dur
        ]
        assert len(list(iter_complete_events(events))) == 1


class TestNullTracer:
    def test_is_disabled_singleton(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        assert Tracer.enabled is True

    def test_all_operations_are_inert(self):
        with NULL_TRACER.span("anything", cat="driver", n=1) as sp:
            sp.annotate(more=2)
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.to_events() == []
        assert NULL_TRACER.current() is None
        assert NULL_TRACER.add_span("x", 1.0).duration == 0.0
        assert NULL_TRACER.instant("x").duration == 0.0

    def test_handles_are_shared_objects(self):
        # No allocation on the disabled path: same handle every call.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_write_jsonl_refuses(self, tmp_path):
        with pytest.raises(RuntimeError):
            NULL_TRACER.write_jsonl(str(tmp_path / "t.jsonl"))

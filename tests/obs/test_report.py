"""TraceReport arithmetic: the Fig 5 / Fig 6 splits from synthetic spans."""

import pytest

from repro.obs import TraceReport, Tracer, format_report, render_timeline
from repro.obs.report import _contains


def _synthetic_tracer() -> Tracer:
    """A hand-built trace with known arithmetic:

    driver lane: kdtree_build 1s, setup 2s (containing broadcast 0.5s),
    merge 1s; executor lanes: expansions of 3s/1s; engine lane: one
    2.5s task attempt with shuffle bytes.
    """
    tr = Tracer()
    tr.add_span("driver.kdtree_build", 1.0, cat="driver", start=0.0)
    tr.add_span("driver.setup", 2.0, cat="driver", start=1.0)
    tr.add_span("driver.broadcast", 0.5, cat="driver", start=1.5, nbytes=2048)
    tr.add_span("executor.partition_expand", 3.0, cat="executor",
                tid="executor-0", start=3.0, partition=0, partials=4)
    tr.add_span("executor.partition_expand", 1.0, cat="executor",
                tid="executor-1", start=3.0, partition=1, partials=6)
    tr.add_span("task[s0,p0]", 2.5, cat="engine", tid="task-p0", start=3.0,
                shuffle_bytes_written=100, shuffle_bytes_read=60)
    tr.add_span("driver.merge", 1.0, cat="driver", start=6.0,
                num_partials=10, num_merges=3)
    return tr


class TestContains:
    def test_strict_containment_same_lane_only(self):
        outer = {"tid": "driver", "ts": 0.0, "dur": 10.0}
        inner = {"tid": "driver", "ts": 2.0, "dur": 3.0}
        other_lane = {"tid": "exec", "ts": 2.0, "dur": 3.0}
        assert _contains(outer, inner)
        assert not _contains(inner, outer)
        assert not _contains(outer, other_lane)
        assert not _contains(outer, outer)  # identity is not containment


class TestTraceReport:
    def test_headline_splits(self):
        r = TraceReport.from_tracer(_synthetic_tracer())
        assert r.kdtree_build_s == pytest.approx(1.0)
        # broadcast nests inside setup: counted once, not twice.
        assert r.driver_s == pytest.approx(1.0 + 2.0 + 1.0)
        assert r.driver_phases["driver.broadcast"] == pytest.approx(0.5)
        assert r.executor_total_s == pytest.approx(4.0)
        assert r.executor_max_s == pytest.approx(3.0)
        assert r.num_executor_spans == 2
        assert r.engine_task_s == pytest.approx(2.5)
        assert r.wall_s == pytest.approx(7.0)

    def test_fig5_fraction(self):
        r = TraceReport.from_tracer(_synthetic_tracer())
        # whole = build (1) + executor total (4) + merge (1)
        assert r.whole_s == pytest.approx(6.0)
        assert r.kdtree_fraction == pytest.approx(1.0 / 6.0)
        assert r.kdtree_permille == pytest.approx(1000.0 / 6.0)

    def test_fig6_partials_and_merge(self):
        r = TraceReport.from_tracer(_synthetic_tracer())
        assert r.partials_by_partition == {0: 4, 1: 6}
        assert r.total_partials == 10
        assert r.merge_stats["num_partials"] == 10
        assert r.merge_stats["num_merges"] == 3
        # bookkeeping labels never leak into merge stats
        assert "cpu_ms" not in r.merge_stats
        assert "depth" not in r.merge_stats

    def test_byte_accounting(self):
        r = TraceReport.from_tracer(_synthetic_tracer())
        assert r.broadcast_bytes == 2048
        assert r.shuffle_bytes_written == 100
        assert r.shuffle_bytes_read == 60

    def test_empty_trace(self):
        r = TraceReport.from_events([])
        assert r.wall_s == 0.0
        assert r.whole_s == 0.0
        assert r.kdtree_fraction == 0.0
        assert r.total_partials == 0

    def test_roundtrip_through_file_is_identical(self, tmp_path):
        from repro.obs import load_trace

        tr = _synthetic_tracer()
        path = str(tmp_path / "t.jsonl")
        tr.write_jsonl(path)
        live = TraceReport.from_tracer(tr)
        loaded = TraceReport.from_events(load_trace(path))
        assert loaded == live


class TestRendering:
    def test_format_report_mentions_figures(self):
        text = format_report(TraceReport.from_tracer(_synthetic_tracer()))
        assert "Fig 5" in text and "Fig 6" in text
        assert "driver.kdtree_build" in text
        assert "partition 0" in text
        assert "num_merges=3" in text

    def test_render_timeline_lanes_and_bars(self):
        events = _synthetic_tracer().to_events()
        text = render_timeline(events, width=40)
        assert "-- lane driver --" in text
        assert "-- lane executor-0 --" in text
        assert "#" in text
        # driver lane renders first
        assert text.index("lane driver") < text.index("lane executor-0")

    def test_render_timeline_empty(self):
        assert render_timeline([]) == "(no spans)"

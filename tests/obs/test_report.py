"""TraceReport arithmetic: the Fig 5 / Fig 6 splits from synthetic spans."""

import pytest

from repro.obs import (
    TraceReport,
    Tracer,
    format_report,
    format_skew_report,
    render_timeline,
)
from repro.obs.report import _contains


def _synthetic_tracer() -> Tracer:
    """A hand-built trace with known arithmetic:

    driver lane: kdtree_build 1s, setup 2s (containing broadcast 0.5s),
    merge 1s; executor lanes: expansions of 3s/1s; engine lane: one
    2.5s task attempt with shuffle bytes.
    """
    tr = Tracer()
    tr.add_span("driver.kdtree_build", 1.0, cat="driver", start=0.0)
    tr.add_span("driver.setup", 2.0, cat="driver", start=1.0)
    tr.add_span("driver.broadcast", 0.5, cat="driver", start=1.5, nbytes=2048)
    tr.add_span("executor.partition_expand", 3.0, cat="executor",
                tid="executor-0", start=3.0, partition=0, partials=4)
    tr.add_span("executor.partition_expand", 1.0, cat="executor",
                tid="executor-1", start=3.0, partition=1, partials=6)
    tr.add_span("task[s0,p0]", 2.5, cat="engine", tid="task-p0", start=3.0,
                shuffle_bytes_written=100, shuffle_bytes_read=60)
    tr.add_span("driver.merge", 1.0, cat="driver", start=6.0,
                num_partials=10, num_merges=3)
    return tr


class TestContains:
    def test_strict_containment_same_lane_only(self):
        outer = {"tid": "driver", "ts": 0.0, "dur": 10.0}
        inner = {"tid": "driver", "ts": 2.0, "dur": 3.0}
        other_lane = {"tid": "exec", "ts": 2.0, "dur": 3.0}
        assert _contains(outer, inner)
        assert not _contains(inner, outer)
        assert not _contains(outer, other_lane)
        assert not _contains(outer, outer)  # identity is not containment


class TestTraceReport:
    def test_headline_splits(self):
        r = TraceReport.from_tracer(_synthetic_tracer())
        assert r.kdtree_build_s == pytest.approx(1.0)
        # broadcast nests inside setup: counted once, not twice.
        assert r.driver_s == pytest.approx(1.0 + 2.0 + 1.0)
        assert r.driver_phases["driver.broadcast"] == pytest.approx(0.5)
        assert r.executor_total_s == pytest.approx(4.0)
        assert r.executor_max_s == pytest.approx(3.0)
        assert r.num_executor_spans == 2
        assert r.engine_task_s == pytest.approx(2.5)
        assert r.wall_s == pytest.approx(7.0)

    def test_fig5_fraction(self):
        r = TraceReport.from_tracer(_synthetic_tracer())
        # whole = build (1) + executor total (4) + merge (1)
        assert r.whole_s == pytest.approx(6.0)
        assert r.kdtree_fraction == pytest.approx(1.0 / 6.0)
        assert r.kdtree_permille == pytest.approx(1000.0 / 6.0)

    def test_fig6_partials_and_merge(self):
        r = TraceReport.from_tracer(_synthetic_tracer())
        assert r.partials_by_partition == {0: 4, 1: 6}
        assert r.total_partials == 10
        assert r.merge_stats["num_partials"] == 10
        assert r.merge_stats["num_merges"] == 3
        # bookkeeping labels never leak into merge stats
        assert "cpu_ms" not in r.merge_stats
        assert "depth" not in r.merge_stats

    def test_byte_accounting(self):
        r = TraceReport.from_tracer(_synthetic_tracer())
        assert r.broadcast_bytes == 2048
        assert r.shuffle_bytes_written == 100
        assert r.shuffle_bytes_read == 60

    def test_empty_trace(self):
        r = TraceReport.from_events([])
        assert r.wall_s == 0.0
        assert r.whole_s == 0.0
        assert r.kdtree_fraction == 0.0
        assert r.total_partials == 0

    def test_roundtrip_through_file_is_identical(self, tmp_path):
        from repro.obs import load_trace

        tr = _synthetic_tracer()
        path = str(tmp_path / "t.jsonl")
        tr.write_jsonl(path)
        live = TraceReport.from_tracer(tr)
        loaded = TraceReport.from_events(load_trace(path))
        assert loaded == live


class TestRendering:
    def test_format_report_mentions_figures(self):
        text = format_report(TraceReport.from_tracer(_synthetic_tracer()))
        assert "Fig 5" in text and "Fig 6" in text
        assert "driver.kdtree_build" in text
        assert "partition 0" in text
        assert "num_merges=3" in text

    def test_render_timeline_lanes_and_bars(self):
        events = _synthetic_tracer().to_events()
        text = render_timeline(events, width=40)
        assert "-- lane driver --" in text
        assert "-- lane executor-0 --" in text
        assert "#" in text
        # driver lane renders first
        assert text.index("lane driver") < text.index("lane executor-0")

    def test_render_timeline_empty(self):
        assert render_timeline([]) == "(no spans)"


def _skew_tracer() -> Tracer:
    """Engine task attempts + worker sub-phases for the skew report.

    Partition 0 has two successful attempts (a speculation race): the
    winner (1.0s) defines its cost.  Partition 1 is the 4.0s straggler.
    """
    tr = Tracer()
    tr.add_span("task[s0,p0]", 1.5, cat="engine", tid="task-p0", start=0.0,
                partition=0, succeeded=True, worker_pid=111)
    tr.add_span("task[s0,p0]", 1.0, cat="engine", tid="task-p0s", start=0.2,
                partition=0, succeeded=True, worker_pid=222)
    tr.add_span("task[s0,p1]", 4.0, cat="engine", tid="task-p1", start=0.0,
                partition=1, succeeded=True, worker_pid=111)
    tr.add_span("task[s0,p2]", 9.0, cat="engine", tid="task-p2", start=0.0,
                partition=2, succeeded=False, worker_pid=111)
    tr.add_span("task.expand", 0.9, cat="worker", tid="worker", start=0.05,
                pid=111)
    tr.add_span("task.kdtree_build", 0.1, cat="worker", tid="worker",
                start=0.0, pid=222)
    tr.add_span("driver.setup", 0.2, cat="driver", start=0.0,
                halo_nbytes=250, payload_nbytes=1000, halo_points=25)
    return tr


class TestWallSpanOffset:
    def test_wall_is_extent_not_distance_from_zero(self):
        # Regression: a trace whose first span starts late (merged
        # worker traces, trimmed traces) must report the extent
        # max(end) - min(start), not max(end) - 0.
        tr = Tracer()
        tr.add_span("driver.kdtree_build", 1.0, cat="driver", start=5.0)
        tr.add_span("driver.merge", 1.0, cat="driver", start=7.0)
        r = TraceReport.from_tracer(tr)
        assert r.wall_s == pytest.approx(3.0)  # 8.0 - 5.0, not 8.0


class TestEmptyAndEventsOnlyTraces:
    def test_empty_report_renders_no_spans_line(self):
        r = TraceReport.from_events([])
        assert r.is_empty
        assert "(no spans)" in format_report(r)
        assert "(no per-partition task spans" in format_skew_report(r)

    def test_events_only_trace_is_the_empty_report(self):
        # Metadata + instant events but no complete ("X") span: the
        # report must come back explicitly empty, not raise.
        events = [
            {"name": "process_name", "ph": "M", "pid": 0,
             "args": {"name": "driver"}},
            {"name": "marker", "ph": "i", "ts": 10.0},
            {"name": "broken", "ph": "X", "ts": "not-a-number", "dur": 5},
        ]
        r = TraceReport.from_events(events)
        assert r.is_empty
        assert "(no spans)" in format_report(r)
        assert render_timeline(events) == "(no spans)"

    def test_render_timeline_tolerates_missing_tid(self):
        events = [{"name": "a", "ph": "X", "ts": 0.0, "dur": 5.0}]
        text = render_timeline(events)
        assert "-- lane driver --" in text


class TestSkewReport:
    def test_partition_costs_take_winning_attempt(self):
        r = TraceReport.from_tracer(_skew_tracer())
        # p0: min(1.5, 1.0); p2's failed attempt is excluded entirely.
        assert r.partition_costs == {0: pytest.approx(1.0),
                                     1: pytest.approx(4.0)}
        assert r.makespan_s == pytest.approx(4.0)
        assert r.straggler_partition == 1
        assert r.imbalance_ratio == pytest.approx(4.0 / 2.5)

    def test_worker_phases_and_pids(self):
        r = TraceReport.from_tracer(_skew_tracer())
        assert r.worker_phase_s == {
            "task.expand": pytest.approx(0.9),
            "task.kdtree_build": pytest.approx(0.1),
        }
        assert r.worker_pids == [111, 222]

    def test_halo_attribution(self):
        r = TraceReport.from_tracer(_skew_tracer())
        assert r.halo_stats["halo_nbytes"] == 250
        assert r.halo_overhead_fraction == pytest.approx(0.25)

    def test_format_skew_report_table(self):
        text = format_skew_report(TraceReport.from_tracer(_skew_tracer()))
        assert "imbalance ratio" in text
        assert "1.60x" in text
        assert "<- straggler" in text
        assert "critical path: partition 1" in text
        assert "halo overhead: 250 of 1000" in text and "25.0%" in text
        # pid column shows where each partition's winner ran
        assert "222" in text

    def test_report_without_task_spans_degrades_gracefully(self):
        tr = Tracer()
        tr.add_span("driver.merge", 1.0, cat="driver", start=0.0)
        text = format_skew_report(TraceReport.from_tracer(tr))
        assert "(no per-partition task spans in trace)" in text

"""MetricsRegistry instruments, exposition, and the metric bridges."""

import math

import pytest

from repro.dbscan.partial import OpCounters
from repro.engine.metrics import TaskMetrics
from repro.obs import MetricsRegistry, parse_exposition
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    record_op_counters,
    record_task_metrics,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("hits_total", labelnames=("kind",))
        c.inc(kind="a")
        c.inc(2, kind="a")
        c.inc(kind="b")
        assert c.value(kind="a") == 3
        assert c.value(kind="b") == 1
        assert c.value(kind="never") == 0

    def test_rejects_negative_increment(self):
        c = Counter("hits_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_rejects_wrong_labels(self):
        c = Counter("hits_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            c.inc(other="x")
        with pytest.raises(ValueError):
            c.inc()

    def test_rejects_bad_names(self):
        with pytest.raises(ValueError):
            Counter("0bad")
        with pytest.raises(ValueError):
            Counter("ok_total", labelnames=("bad-label",))


class TestGauge:
    def test_set_inc_and_negative(self):
        g = Gauge("level")
        g.set(5)
        g.inc(-2)
        assert g.value() == 3


class TestHistogram:
    def test_buckets_are_cumulative(self):
        h = Histogram("lat_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(5.55)
        text = h.expose()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestRegistry:
    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help", ("k",))
        b = reg.counter("x_total", "different help", ("k",))
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_labelnames_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("a",))
        with pytest.raises(ValueError):
            reg.counter("x_total", labelnames=("b",))

    def test_get(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total")
        assert reg.get("x_total") is c
        assert reg.get("missing") is None

    def test_exposition_parses_and_roundtrips(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("req_total", "Requests.", ("path",)).inc(3, path='/a"b\\c')
        reg.gauge("temp", "Temperature.").set(21.5)
        reg.histogram("dur_seconds", "Durations.", buckets=(1.0,)).observe(0.5)
        path = str(tmp_path / "m.prom")
        reg.write(path)
        with open(path) as f:
            text = f.read()
        samples = parse_exposition(text)
        assert samples["req_total"] == [({"path": '/a"b\\c'}, 3.0)]
        assert samples["temp"] == [({}, 21.5)]
        les = [lab["le"] for lab, _v in samples["dur_seconds_bucket"]]
        assert les == ["1", "+Inf"]

    def test_empty_exposition(self):
        assert MetricsRegistry().exposition() == ""


class TestParseExposition:
    def test_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_exposition("# TYPE x counter\nx{unclosed 1\n")

    def test_rejects_bad_type_line(self):
        with pytest.raises(ValueError, match="TYPE"):
            parse_exposition("# TYPE x wibble\n")

    def test_rejects_untyped_sample(self):
        with pytest.raises(ValueError, match="no preceding TYPE"):
            parse_exposition("x_total 1\n")

    def test_inf_value(self):
        out = parse_exposition('# TYPE h histogram\nh_bucket{le="+Inf"} 2\n')
        assert out["h_bucket"][0][1] == 2.0
        assert out["h_bucket"][0][0] == {"le": "+Inf"}
        assert math.isinf(
            parse_exposition("# TYPE g gauge\ng +Inf\n")["g"][0][1]
        )


class TestBridges:
    def test_record_task_metrics(self):
        reg = MetricsRegistry()
        record_task_metrics(reg, TaskMetrics(
            0, 0, 0, run_time=0.2, succeeded=True,
            shuffle_bytes_written=100, shuffle_bytes_read=40,
        ))
        record_task_metrics(reg, TaskMetrics(0, 1, 0, run_time=0.1, succeeded=False))
        attempts = reg.get("repro_task_attempts_total")
        assert attempts.value(stage=0, outcome="succeeded") == 1
        assert attempts.value(stage=0, outcome="failed") == 1
        hist = reg.get("repro_task_run_seconds")
        assert hist.count(stage=0) == 2
        assert reg.get("repro_shuffle_bytes_written_total").value(stage=0) == 100
        assert reg.get("repro_shuffle_bytes_read_total").value(stage=0) == 40

    def test_record_op_counters_skips_zero_cells(self):
        reg = MetricsRegistry()
        oc = OpCounters()
        oc.range_queries = 7
        oc.queue_adds = 3
        record_op_counters(reg, oc, partition=2)
        ops = reg.get("repro_dbscan_ops_total")
        assert ops.value(op="range_queries", partition=2) == 7
        assert ops.value(op="queue_adds", partition=2) == 3
        assert ops.value(op="hashtable_puts", partition=2) == 0
        # zero cells are not exposed at all
        assert 'op="hashtable_puts"' not in reg.exposition()

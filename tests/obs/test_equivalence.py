"""Tracing must be observational only: traced runs produce byte-identical
labels to untraced runs, and the trace agrees with the result object."""

import numpy as np
import pytest

from repro.dbscan import (
    MapReduceDBSCAN,
    NaiveSparkDBSCAN,
    SparkDBSCAN,
    SpatialSparkDBSCAN,
    dbscan_sequential,
)
from repro.obs import MetricsRegistry, TraceReport, Tracer

EPS, MINPTS = 25.0, 5


class TestLabelEquivalence:
    def test_sequential(self, blobs_small):
        plain = dbscan_sequential(blobs_small.points, EPS, MINPTS)
        traced = dbscan_sequential(blobs_small.points, EPS, MINPTS,
                                   tracer=Tracer())
        assert np.array_equal(plain.labels, traced.labels)

    @pytest.mark.parametrize("cls", [SparkDBSCAN, SpatialSparkDBSCAN])
    def test_partitioned(self, cls, blobs_small):
        plain = cls(EPS, MINPTS, num_partitions=3).fit(blobs_small.points)
        tracer = Tracer()
        registry = MetricsRegistry()
        traced = cls(
            EPS, MINPTS, num_partitions=3, tracer=tracer,
            metrics_registry=registry,
        ).fit(blobs_small.points)
        assert np.array_equal(plain.labels, traced.labels)
        assert traced.num_partial_clusters == plain.num_partial_clusters
        # the OpCounters accumulator fed the registry without perturbing labels
        assert registry.get("repro_dbscan_ops_total") is not None

    def test_naive(self, blobs_small):
        plain = NaiveSparkDBSCAN(EPS, MINPTS, num_partitions=2).fit(
            blobs_small.points
        )
        traced = NaiveSparkDBSCAN(EPS, MINPTS, num_partitions=2,
                                  tracer=Tracer()).fit(blobs_small.points)
        assert np.array_equal(plain.labels, traced.labels)

    def test_mapreduce(self, blobs_small, tmp_path):
        plain = MapReduceDBSCAN(
            EPS, MINPTS, num_maps=2, startup_overhead=0.0,
            tmp_dir=str(tmp_path / "a"),
        ).fit(blobs_small.points)
        traced = MapReduceDBSCAN(
            EPS, MINPTS, num_maps=2, startup_overhead=0.0,
            tmp_dir=str(tmp_path / "b"), tracer=Tracer(),
        ).fit(blobs_small.points)
        assert np.array_equal(plain.labels, traced.labels)


class TestTraceAgreesWithResult:
    def test_spark_trace_matches_result(self, blobs_small):
        tracer = Tracer()
        res = SparkDBSCAN(EPS, MINPTS, num_partitions=4, tracer=tracer).fit(
            blobs_small.points
        )
        report = TraceReport.from_tracer(tracer)
        assert report.num_executor_spans == 4
        assert report.total_partials == res.num_partial_clusters
        assert report.merge_stats["num_partials"] == res.num_partial_clusters
        assert report.executor_max_s <= report.executor_total_s
        assert report.kdtree_build_s > 0.0
        assert report.driver_phases.keys() >= {
            "driver.kdtree_build", "driver.setup", "driver.merge",
        }

    def test_external_context_tracer_is_adopted(self, blobs_small):
        from repro.engine import SparkContext

        tracer = Tracer()
        sc = SparkContext("simulated[2]", tracer=tracer)
        try:
            SparkDBSCAN(EPS, MINPTS, num_partitions=2).fit(
                blobs_small.points, sc=sc
            )
        finally:
            sc.stop()
        names = {s.name for s in tracer.spans}
        assert "dbscan.fit" in names
        assert "executor.partition_expand" in names

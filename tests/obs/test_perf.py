"""Bench snapshots and the regression-gate diff semantics."""

import copy

import pytest

from repro.obs import (
    MetricsRegistry,
    TraceReport,
    Tracer,
    build_bench,
    diff_benches,
    load_bench,
    write_bench,
)

CONTEXT = {"dataset": "c10k", "partitions": 4, "scale": "default"}


def _bench():
    tr = Tracer()
    tr.add_span("driver.kdtree_build", 1.0, cat="driver", start=0.0)
    tr.add_span("executor.partition_expand", 3.0, cat="executor",
                tid="executor-0", start=1.0, partition=0, partials=4)
    tr.add_span("executor.partition_expand", 2.0, cat="executor",
                tid="executor-1", start=1.0, partition=1, partials=6)
    tr.add_span("driver.broadcast", 0.5, cat="driver", start=0.5, nbytes=2048)
    tr.add_span("driver.merge", 1.0, cat="driver", start=4.0)
    return build_bench("t", dict(CONTEXT), TraceReport.from_tracer(tr))


class TestBuildBench:
    def test_measures_and_counts_from_report(self):
        b = _bench()
        assert b["measures"]["executor_total_s"] == pytest.approx(5.0)
        assert b["measures"]["executor_max_s"] == pytest.approx(3.0)
        assert b["measures"]["kdtree_build_s"] == pytest.approx(1.0)
        assert b["measures"]["merge_s"] == pytest.approx(1.0)
        assert b["counts"] == {
            "num_executor_spans": 2,
            "total_partials": 10,
            "broadcast_bytes": 2048,
        }

    def test_registry_contributes_rss_and_halo(self):
        from repro.obs import record_task_profile
        from repro.obs.profile import TaskResourceProfile

        reg = MetricsRegistry()
        record_task_profile(
            reg, TaskResourceProfile(max_rss_bytes=12345678),
            stage=0, partition=0,
        )
        reg.gauge("repro_cell_halo_bytes", "halo").set(999)
        b = build_bench("t", dict(CONTEXT), TraceReport.from_events([]), reg)
        assert b["measures"]["peak_rss_bytes"] == pytest.approx(12345678)
        assert b["counts"]["halo_bytes"] == 999

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_t.json")
        write_bench(path, _bench())
        assert load_bench(path) == _bench()

    def test_load_rejects_non_bench_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"name": "t"}')
        with pytest.raises(ValueError, match="not a bench file"):
            load_bench(str(path))


class TestDiffBenches:
    def test_identical_passes(self):
        code, lines = diff_benches(_bench(), _bench())
        assert code == 0
        assert lines[-1] == "result: PASS"

    def test_regression_fails(self):
        cur = copy.deepcopy(_bench())
        cur["measures"]["executor_total_s"] *= 2.0
        code, lines = diff_benches(_bench(), cur, tolerance=0.3)
        assert code == 1
        assert any("REGRESSION" in ln and "executor_total_s" in ln
                   for ln in lines)
        assert lines[-1] == "result: FAIL"

    def test_improvement_passes(self):
        cur = copy.deepcopy(_bench())
        cur["measures"]["executor_total_s"] *= 0.25
        code, lines = diff_benches(_bench(), cur, tolerance=0.3)
        assert code == 0
        assert any("improved" in ln for ln in lines)

    def test_absolute_floor_forgives_tiny_jitter(self):
        # 3 ms -> 4 ms is +33% but well under the 5 ms floor for _s
        # measures: noise, not a regression.
        base, cur = copy.deepcopy(_bench()), copy.deepcopy(_bench())
        base["measures"]["merge_s"] = 0.003
        cur["measures"]["merge_s"] = 0.004
        code, _ = diff_benches(base, cur, tolerance=0.3)
        assert code == 0

    def test_count_drift_fails_regardless_of_tolerance(self):
        cur = copy.deepcopy(_bench())
        cur["counts"]["total_partials"] += 1
        code, lines = diff_benches(_bench(), cur, tolerance=10.0)
        assert code == 1
        assert any("COUNT CHANGED" in ln for ln in lines)

    def test_context_mismatch_is_exit_2(self):
        cur = copy.deepcopy(_bench())
        cur["context"]["partitions"] = 8
        code, lines = diff_benches(_bench(), cur)
        assert code == 2
        assert any("not comparable" in ln for ln in lines)
        assert any("partitions" in ln for ln in lines)

    def test_one_sided_measure_is_skipped_not_failed(self):
        cur = copy.deepcopy(_bench())
        cur["measures"]["peak_rss_bytes"] = 1.0
        code, lines = diff_benches(_bench(), cur)
        assert code == 0
        assert any("only in current" in ln for ln in lines)

"""Skewed data generation — the regime MR-DBSCAN [He et al. 2014] targets.

The paper's related work cites MR-DBSCAN as "a scalable MapReduce-based
DBSCAN algorithm for heavily skewed data".  This generator produces
that regime: cluster sizes follow a Zipf-like power law (one giant
cluster, a long tail of small ones) and, optionally, the points arrive
sorted by cluster so contiguous index ranges carry wildly different
workloads.  Used by the balance diagnostics and the spatial-partitioner
ablation to show where plain index partitioning struggles.
"""

from __future__ import annotations

import numpy as np

from .quest import DOMAIN, ClusterSpec, GeneratedData, _place_centers


def generate_skewed(
    n: int,
    d: int = 10,
    num_clusters: int = 20,
    zipf_exponent: float = 1.2,
    cluster_std: float = 5.0,
    noise_fraction: float = 0.05,
    seed: int = 0,
    shuffle: bool = True,
) -> GeneratedData:
    """Power-law cluster sizes: size_k ∝ 1 / k^zipf_exponent.

    With ``shuffle=False`` points are emitted cluster-by-cluster (giant
    first), which makes contiguous index partitions maximally skewed.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if num_clusters <= 0:
        raise ValueError(f"num_clusters must be positive, got {num_clusters}")
    if not 0 <= noise_fraction < 1:
        raise ValueError(f"noise_fraction must be in [0, 1), got {noise_fraction}")
    if zipf_exponent <= 0:
        raise ValueError(f"zipf_exponent must be positive, got {zipf_exponent}")
    rng = np.random.default_rng(seed)
    n_noise = int(round(n * noise_fraction))
    n_clustered = n - n_noise
    if n_clustered < num_clusters:
        raise ValueError("n too small for the requested cluster count")

    weights = 1.0 / np.arange(1, num_clusters + 1) ** zipf_exponent
    weights /= weights.sum()
    sizes = np.maximum(1, np.round(weights * n_clustered).astype(int))
    drift = n_clustered - sizes.sum()
    if drift > 0:
        # Fix positive rounding drift on the largest cluster.
        sizes[0] += drift
    elif drift < 0:
        # The per-cluster floor of 1 can push the sum past n_clustered
        # (many tail clusters each rounded up to 1).  Rebalance across
        # the tail: shave the excess off the smallest clusters first,
        # never below 1 each — feasible whenever n_clustered >=
        # num_clusters, which was checked above.
        for k in range(num_clusters - 1, -1, -1):
            take = min(int(sizes[k]) - 1, -drift)
            sizes[k] -= take
            drift += take
            if drift == 0:
                break

    min_sep = max(12.0 * cluster_std, 200.0)
    centers = _place_centers(rng, num_clusters, d, min_sep)

    blocks, labels, specs = [], [], []
    for k, (center, size) in enumerate(zip(centers, sizes)):
        blocks.append(rng.normal(center, cluster_std, (int(size), d)))
        labels.append(np.full(int(size), k, dtype=np.int64))
        specs.append(ClusterSpec(center=center, std=cluster_std, size=int(size)))
    if n_noise:
        blocks.append(rng.uniform(DOMAIN[0], DOMAIN[1], (n_noise, d)))
        labels.append(np.full(n_noise, -1, dtype=np.int64))

    points = np.vstack(blocks)
    true = np.concatenate(labels)
    if shuffle:
        perm = rng.permutation(n)
        points, true = points[perm], true[perm]
    return GeneratedData(points=points, true_labels=true, clusters=specs)

"""Table I dataset registry.

The paper's five datasets (Table I):

    Name    Points      d    eps   minpts
    c10k    10,000      10   25    5
    c100k   102,400     10   25    5
    r10k    10,000      10   25    5
    r100k   102,400     10   25    5
    r1m     1,024,000   10   25    5

Full-size r1m is intractable for a pure-Python single-machine run, so
sizes are scaled by the ``REPRO_SCALE`` environment variable (default
keeps the 10k datasets at full size and caps the larger ones; set
``REPRO_SCALE=1.0`` to restore paper sizes).  Every generated dataset
is deterministic in (name, scale).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from .quest import GeneratedData, generate_clustered, generate_scattered

#: Paper parameters, shared by every dataset (Table I).
EPS = 25.0
MINPTS = 5
DIMENSIONS = 10

#: Paper row: name -> full point count.
PAPER_SIZES: dict[str, int] = {
    "c10k": 10_000,
    "c100k": 102_400,
    "r10k": 10_000,
    "r100k": 102_400,
    "r1m": 1_024_000,
}

#: Default caps keeping the whole benchmark suite tractable in pure Python.
DEFAULT_CAPS: dict[str, int] = {
    "c10k": 10_000,
    "c100k": 25_600,
    "r10k": 10_000,
    "r100k": 25_600,
    "r1m": 131_072,
}

_SEEDS: dict[str, int] = {name: 1000 + i for i, name in enumerate(PAPER_SIZES)}


@dataclass(frozen=True)
class DatasetSpec:
    """One Table I row: name, sizes, and DBSCAN parameters."""
    name: str
    n: int               # effective (possibly scaled) point count
    paper_n: int         # the size Table I reports
    d: int = DIMENSIONS
    eps: float = EPS
    minpts: int = MINPTS


def effective_size(name: str, scale: float | None = None) -> int:
    """Point count after applying REPRO_SCALE (or an explicit scale)."""
    if name not in PAPER_SIZES:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(PAPER_SIZES)}")
    paper_n = PAPER_SIZES[name]
    if scale is None:
        env = os.environ.get("REPRO_SCALE")
        if env is None:
            return min(paper_n, DEFAULT_CAPS[name])
        scale = float(env)
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    return max(100, int(paper_n * scale))


def dataset_spec(name: str, scale: float | None = None) -> DatasetSpec:
    """Spec for a named dataset at the current scale."""
    return DatasetSpec(
        name=name, n=effective_size(name, scale), paper_n=PAPER_SIZES[name]
    )


def make_dataset(name: str, scale: float | None = None) -> GeneratedData:
    """Generate a Table I dataset (deterministic in name and scale)."""
    spec = dataset_spec(name, scale)
    seed = _SEEDS[name]
    if name.startswith("c"):
        # Few large clusters.
        return generate_clustered(
            n=spec.n, d=spec.d, num_clusters=10, cluster_std=8.0,
            noise_fraction=0.05, seed=seed,
        )
    # "r" family: many small clusters + more noise.
    return generate_scattered(
        n=spec.n, d=spec.d, points_per_cluster=200, cluster_std=5.0,
        noise_fraction=0.10, seed=seed,
    )


def all_dataset_names() -> list[str]:
    """Names of the Table I datasets."""
    return list(PAPER_SIZES)

"""Synthetic datasets reproducing the paper's Table I testbed."""

from .datasets import (
    DEFAULT_CAPS,
    DIMENSIONS,
    EPS,
    MINPTS,
    PAPER_SIZES,
    DatasetSpec,
    all_dataset_names,
    dataset_spec,
    effective_size,
    make_dataset,
)
from .io import load_points, parse_point_line, save_points
from .quest import (
    DOMAIN,
    ClusterSpec,
    GeneratedData,
    generate_clustered,
    generate_scattered,
)
from .skew import generate_skewed

__all__ = [
    "EPS",
    "MINPTS",
    "DIMENSIONS",
    "PAPER_SIZES",
    "DEFAULT_CAPS",
    "DOMAIN",
    "DatasetSpec",
    "ClusterSpec",
    "GeneratedData",
    "make_dataset",
    "dataset_spec",
    "effective_size",
    "all_dataset_names",
    "generate_clustered",
    "generate_scattered",
    "generate_skewed",
    "save_points",
    "load_points",
    "parse_point_line",
]

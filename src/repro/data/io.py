"""Point-file I/O in the HDFS input format the paper's driver reads.

One point per line, coordinates space-separated — the line-oriented
format `repro.hdfs` record readers and `SparkContext.text_file` split
on.  Round-trips preserve values to 12 significant digits, which is
far below eps-scale differences.
"""

from __future__ import annotations

import numpy as np


def save_points(path: str, points: np.ndarray) -> None:
    """Write an (n, d) array as one space-separated line per point."""
    points = np.asarray(points)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    np.savetxt(path, points, fmt="%.12g", delimiter=" ")


def load_points(path: str) -> np.ndarray:
    """Read points written by `save_points`."""
    pts = np.loadtxt(path, ndmin=2)
    return np.ascontiguousarray(pts, dtype=np.float64)


def parse_point_line(line: str) -> np.ndarray:
    """Parse one text line into a coordinate vector (Algorithm 2, line 2:
    "transform the existing RDDs into appropriate RDDs with Point type")."""
    return np.fromstring(line, dtype=np.float64, sep=" ")

"""Synthetic-cluster data generation (IBM Quest-style).

The paper's testbed (Table I) is generated with the IBM synthetic data
generator [Agrawal & Srikant 1994] via NU-MineBench: d-dimensional
points forming dense Gaussian clusters over a bounded domain, plus
uniform background noise.  That generator is proprietary-era C code we
do not have; this module is the documented substitution (DESIGN.md §2):
a seeded Gaussian-mixture generator parameterised to land in the same
density regime at the paper's eps=25, minpts=5 (clusters dense enough
to be discovered, noise sparse enough to be rejected).

Two families, matching the paper's two dataset groups:

- ``clustered`` ("c" datasets): few large clusters — c10k, c100k.
- ``scattered`` ("r" datasets): many small clusters + more noise —
  r10k, r100k, r1m.  These produce the large partial-cluster counts the
  paper reports (e.g. 9279 partial clusters for r100k at 32 cores).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Domain of each coordinate, loosely matching eps=25 being a "small" radius.
DOMAIN = (0.0, 1000.0)


@dataclass(frozen=True)
class ClusterSpec:
    """Ground truth for one generated cluster."""

    center: np.ndarray
    std: float
    size: int


@dataclass
class GeneratedData:
    """Points plus generation ground truth (for validation, not clustering)."""

    points: np.ndarray          # (n, d) float64
    true_labels: np.ndarray     # (n,) int: cluster id, -1 for background noise
    clusters: list[ClusterSpec]

    @property
    def n(self) -> int:
        """Number of points."""
        return int(self.points.shape[0])

    @property
    def d(self) -> int:
        """Dimensionality."""
        return int(self.points.shape[1])


def _place_centers(
    rng: np.random.Generator,
    num_clusters: int,
    d: int,
    min_separation: float,
    max_tries: int | None = None,
) -> np.ndarray:
    """Rejection-sample cluster centers at pairwise distance >= min_separation.

    Candidates are drawn in batches and checked against accepted centers
    with one vectorised distance computation — thousands of centers (the
    r1m regime) place in well under a second.
    """
    lo, hi = DOMAIN
    if max_tries is None:
        max_tries = max(10_000, 200 * num_clusters)
    centers = np.empty((num_clusters, d))
    count = 0
    tries = 0
    min_sep2 = min_separation * min_separation
    while count < num_clusters:
        batch = rng.uniform(lo, hi, (min(256, num_clusters - count) * 2, d))
        tries += len(batch)
        if tries > max_tries:
            raise RuntimeError(
                f"could not place {num_clusters} centers at separation "
                f"{min_separation} in {max_tries} tries; lower the separation"
            )
        for c in batch:
            if count == num_clusters:
                break
            if count == 0:
                centers[count] = c
                count += 1
                continue
            diff = centers[:count] - c
            if (np.einsum("ij,ij->i", diff, diff) >= min_sep2).all():
                centers[count] = c
                count += 1
    return centers


def generate_clustered(
    n: int,
    d: int = 10,
    num_clusters: int = 10,
    cluster_std: float = 6.0,
    noise_fraction: float = 0.05,
    seed: int = 0,
    shuffle: bool = True,
) -> GeneratedData:
    """Gaussian-mixture dataset: ``num_clusters`` dense blobs + uniform noise.

    Defaults are tuned so that, at the paper's (eps=25, minpts=5, d=10),
    cluster members have tens of neighbours while uniform noise points
    have essentially none.

    With ``shuffle=True`` (default) points are randomly permuted, so a
    contiguous index-range partition mixes points from all clusters —
    the regime the paper's SEED mechanism must handle (clusters span
    partitions).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 0 <= noise_fraction < 1:
        raise ValueError(f"noise_fraction must be in [0, 1), got {noise_fraction}")
    if num_clusters <= 0:
        raise ValueError(f"num_clusters must be positive, got {num_clusters}")
    rng = np.random.default_rng(seed)
    n_noise = int(round(n * noise_fraction))
    n_clustered = n - n_noise
    if n_clustered < num_clusters:
        raise ValueError(
            f"n={n} too small for {num_clusters} clusters at "
            f"noise_fraction={noise_fraction}"
        )
    # Keep clusters well separated relative to their own spread and eps.
    min_sep = max(12.0 * cluster_std, 200.0)
    centers = _place_centers(rng, num_clusters, d, min_sep)

    sizes = np.full(num_clusters, n_clustered // num_clusters)
    sizes[: n_clustered % num_clusters] += 1

    blocks: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    specs: list[ClusterSpec] = []
    for k, (center, size) in enumerate(zip(centers, sizes)):
        blocks.append(rng.normal(center, cluster_std, (size, d)))
        labels.append(np.full(size, k, dtype=np.int64))
        specs.append(ClusterSpec(center=center, std=cluster_std, size=int(size)))
    if n_noise:
        blocks.append(rng.uniform(DOMAIN[0], DOMAIN[1], (n_noise, d)))
        labels.append(np.full(n_noise, -1, dtype=np.int64))

    points = np.vstack(blocks)
    true = np.concatenate(labels)
    if shuffle:
        perm = rng.permutation(n)
        points, true = points[perm], true[perm]
    return GeneratedData(points=points, true_labels=true, clusters=specs)


def generate_scattered(
    n: int,
    d: int = 10,
    points_per_cluster: int = 200,
    cluster_std: float = 5.0,
    noise_fraction: float = 0.10,
    seed: int = 0,
    shuffle: bool = True,
) -> GeneratedData:
    """Many small clusters + noise — the "r" dataset family.

    Cluster count scales with n (``n·(1-noise)/points_per_cluster``), so
    bigger datasets yield many more (partial) clusters, reproducing the
    partial-cluster growth in the paper's Figure 6.
    """
    n_clustered = n - int(round(n * noise_fraction))
    num_clusters = max(1, n_clustered // points_per_cluster)
    return generate_clustered(
        n=n,
        d=d,
        num_clusters=num_clusters,
        cluster_std=cluster_std,
        noise_fraction=noise_fraction,
        seed=seed,
        shuffle=shuffle,
    )

"""Runtime sanitizers: machine-check the engine's shared-variable rules.

Enabled with ``SparkContext(..., sanitize=True)`` (CLI ``--sanitize``).
Three checkers, mirroring the static rules in `repro.lint`:

- **Broadcast write-barrier** — every broadcast value is deep-hashed at
  broadcast time; every task that touches it re-hashes at task end and
  raises `BroadcastMutationError` naming the task on mismatch.  The
  hash is *structural* (numpy arrays by bytes, dicts by sorted key
  hash, sets order-insensitively), so it is stable across processes and
  hash-seed randomization; verification therefore also works on the
  processes backend, where the worker's cached value must be re-checked
  per task, not just when it is first materialized from disk.
- **Accumulator read guard** — reading ``Accumulator.value`` inside a
  task raises `AccumulatorReadError`: accumulators are write-only on
  executors (the driver merges exactly-once), and a mid-flight read on
  the threads backend silently observes half-merged driver state.
- **Race / lock-order detector** (shared-memory backends) — an
  Eraser-style lockset algorithm over recorded shared-engine-state
  touches (broadcast cache, block manager, plus anything tasks declare
  via `Sanitizer.record_access`), flagging cross-task access with an
  empty candidate lockset, and a lock-order graph flagging cycles
  (deadlock potential).  Findings are collected (not raised) and
  emitted as tracer instants / ``repro_sanitizer_findings_total``
  metrics when the context stops.

Sanitizer violations are *fatal*: the task scheduler aborts the job on
the first one instead of burning the retry budget — a mutated broadcast
stays mutated, so retries cannot succeed and would only mask the bug.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable

from .errors import EngineError


class SanitizerError(EngineError):
    """Base class for violations detected by the runtime sanitizers."""


class BroadcastMutationError(SanitizerError):
    """A task mutated a broadcast value (broadcasts are immutable)."""


class AccumulatorReadError(SanitizerError):
    """A task read an accumulator value (accumulators are write-only in tasks)."""


# Outcome.error_type -> exception class, used by the task scheduler to
# re-raise the original sanitizer error type across process boundaries.
FATAL_ERROR_TYPES: dict[str, type[SanitizerError]] = {
    "SanitizerError": SanitizerError,
    "BroadcastMutationError": BroadcastMutationError,
    "AccumulatorReadError": AccumulatorReadError,
}


# ---------------------------------------------------------------------------
# Structural deep hash
# ---------------------------------------------------------------------------

def deep_hash(value: Any) -> str:
    """Content hash of ``value``, stable across processes.

    Plain ``hash(pickle.dumps(v))`` would false-positive across process
    boundaries: set iteration order depends on the interpreter's string
    hash seed.  This walks the structure instead — containers
    recursively, dict items and set elements sorted by element hash,
    numpy arrays by dtype/shape/bytes, objects by class + ``__dict__``
    (pickle bytes as the fallback of last resort).
    """
    h = hashlib.sha256()
    _update(h, value, seen=set())
    return h.hexdigest()


def _update(h: "hashlib._Hash", value: Any, seen: set[int]) -> None:
    if value is None:
        h.update(b"N")
        return
    if isinstance(value, bool):
        h.update(b"B1" if value else b"B0")
        return
    if isinstance(value, int):
        h.update(b"I" + str(value).encode())
        return
    if isinstance(value, float):
        h.update(b"F" + struct.pack("<d", value))
        return
    if isinstance(value, str):
        h.update(b"S" + value.encode("utf-8", "surrogatepass"))
        return
    if isinstance(value, (bytes, bytearray)):
        h.update(b"Y" + bytes(value))
        return
    # containers can be cyclic; hash a back-reference marker instead
    if id(value) in seen:
        h.update(b"CYCLE")
        return
    seen = seen | {id(value)}
    try:
        import numpy as np

        if isinstance(value, np.ndarray):
            h.update(b"A" + str(value.dtype).encode() + str(value.shape).encode())
            h.update(np.ascontiguousarray(value).tobytes())
            return
        if isinstance(value, np.generic):
            h.update(b"G" + str(value.dtype).encode() + value.tobytes())
            return
    except ImportError:  # pragma: no cover - numpy is a hard dep here
        pass
    if isinstance(value, (list, tuple)):
        h.update(b"L" if isinstance(value, list) else b"T")
        h.update(str(len(value)).encode())
        for item in value:
            _update(h, item, seen)
        return
    if isinstance(value, dict):
        h.update(b"D" + str(len(value)).encode())
        items = []
        for k, v in value.items():
            hk = hashlib.sha256()
            _update(hk, k, seen)
            hv = hashlib.sha256()
            _update(hv, v, seen)
            items.append(hk.digest() + hv.digest())
        for digest in sorted(items):
            h.update(digest)
        return
    if isinstance(value, (set, frozenset)):
        h.update(b"E" + str(len(value)).encode())
        digests = []
        for item in value:
            hi = hashlib.sha256()
            _update(hi, item, seen)
            digests.append(hi.digest())
        for digest in sorted(digests):
            h.update(digest)
        return
    state = getattr(value, "__dict__", None)
    if state is not None:
        h.update(b"O" + type(value).__qualname__.encode())
        _update(h, state, seen)
        return
    slots = getattr(type(value), "__slots__", None)
    if slots is not None:
        h.update(b"O" + type(value).__qualname__.encode())
        _update(
            h,
            {s: getattr(value, s) for s in slots if hasattr(value, s)},
            seen,
        )
        return
    import pickle

    h.update(b"P")
    try:
        h.update(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        # Unpicklable and opaque: identity-free constant so that the
        # barrier neither crashes nor false-positives on it.
        h.update(type(value).__qualname__.encode())


# ---------------------------------------------------------------------------
# Race / lock-order detection (Eraser-style lockset + lock-order graph)
# ---------------------------------------------------------------------------

@dataclass
class SanitizerFinding:
    """One recorded sanitizer observation (race, lock cycle, violation)."""

    kind: str               # "race" | "lock_cycle" | "violation"
    detail: str
    labels: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        return f"[{self.kind}] {self.detail}" + (f" ({extra})" if extra else "")


@dataclass
class _AccessState:
    lockset: frozenset[str] | None = None   # candidate lockset (None = unseen)
    tasks: set[str] = field(default_factory=set)
    writes: int = 0
    last_task: str = ""


class RaceDetector:
    """Lockset discipline + lock-order cycles over recorded touches.

    The lockset rule is schedule-independent (Eraser): a state key
    touched by two or more distinct tasks, with at least one write and
    an empty candidate lockset (the intersection of locks held at every
    access), is flagged whether or not the schedule actually raced.
    Engine-internal touches always carry their guarding lock, so a
    sanitized run of correct code reports nothing.
    """

    def __init__(self) -> None:
        self._tls = threading.local()
        self._mu = threading.Lock()
        self._state: dict[str, _AccessState] = {}
        self._edges: dict[str, set[str]] = {}   # lock -> locks acquired under it

    # -- held-lock tracking (per thread) ------------------------------------
    def _held(self) -> list[str]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held

    def acquire(self, name: str) -> None:
        """Record a lock acquisition on the current thread."""
        held = self._held()
        with self._mu:
            for outer in held:
                self._edges.setdefault(outer, set()).add(name)
        held.append(name)

    def release(self, name: str) -> None:
        """Record a lock release on the current thread."""
        held = self._held()
        if name in held:
            held.remove(name)

    # -- shared-state touches -----------------------------------------------
    def record_access(
        self,
        key: str,
        task: str,
        write: bool = False,
        locks: Iterable[str] | None = None,
    ) -> None:
        """Record one touch of shared engine state by ``task``.

        ``locks`` defaults to the locks currently held by this thread
        (as recorded through `acquire`/`release` or `TrackedLock`).
        """
        lockset = frozenset(locks) if locks is not None else frozenset(self._held())
        with self._mu:
            st = self._state.setdefault(key, _AccessState())
            st.lockset = lockset if st.lockset is None else st.lockset & lockset
            st.tasks.add(task)
            st.last_task = task
            if write:
                st.writes += 1

    # -- reporting ------------------------------------------------------------
    def findings(self) -> list[SanitizerFinding]:
        """Races (empty lockset, >=2 tasks, a write) and lock cycles."""
        out: list[SanitizerFinding] = []
        with self._mu:
            for key, st in sorted(self._state.items()):
                if len(st.tasks) >= 2 and st.writes > 0 and not st.lockset:
                    out.append(
                        SanitizerFinding(
                            kind="race",
                            detail=(
                                f"shared state {key!r} touched by "
                                f"{len(st.tasks)} tasks with no common lock "
                                f"({st.writes} write(s))"
                            ),
                            labels={"key": key, "tasks": len(st.tasks)},
                        )
                    )
            for cycle in self._lock_cycles():
                out.append(
                    SanitizerFinding(
                        kind="lock_cycle",
                        detail=(
                            "lock-order cycle (deadlock potential): "
                            + " -> ".join(cycle + [cycle[0]])
                        ),
                        labels={"locks": ",".join(cycle)},
                    )
                )
        return out

    def _lock_cycles(self) -> list[list[str]]:
        """Simple cycles in the lock-order graph (deduplicated by node set)."""
        cycles: list[list[str]] = []
        seen_sets: set[frozenset[str]] = set()
        for start in sorted(self._edges):
            stack = [(start, [start])]
            while stack:
                node, path = stack.pop()
                for nxt in sorted(self._edges.get(node, ())):
                    if nxt == start and len(path) > 1:
                        key = frozenset(path)
                        if key not in seen_sets:
                            seen_sets.add(key)
                            cycles.append(path[:])
                    elif nxt not in path and len(path) < 16:
                        stack.append((nxt, path + [nxt]))
        return cycles


class TrackedLock:
    """A ``threading.Lock`` wrapper that feeds the race detector.

    Task code holding engine-adjacent locks under ``--sanitize`` uses
    this to make lock ordering and locksets visible to the detector.
    """

    def __init__(self, name: str, detector: RaceDetector | None = None):
        self.name = name
        self._detector = detector
        self._lock = threading.Lock()

    def _det(self) -> RaceDetector | None:
        if self._detector is not None:
            return self._detector
        san = current()
        return san.races if san is not None else None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._lock.acquire(blocking, timeout)
        if ok:
            det = self._det()
            if det is not None:
                det.acquire(self.name)
        return ok

    def release(self) -> None:
        det = self._det()
        if det is not None:
            det.release(self.name)
        self._lock.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


# ---------------------------------------------------------------------------
# The per-context sanitizer and the process-wide active handle
# ---------------------------------------------------------------------------

class Sanitizer:
    """Per-`SparkContext` collector of sanitizer findings.

    Lives on the driver; shared-memory backends (local/threads/
    simulated) reach it through the module-level `current()` handle.
    Worker processes never see it — broadcast verification there relies
    only on the hashes shipped inside the `Broadcast` handles.
    """

    def __init__(self, tracer: Any = None, metrics_registry: Any = None):
        from ..obs.spans import NULL_TRACER

        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics_registry = metrics_registry
        self.races = RaceDetector()
        self.findings: list[SanitizerFinding] = []
        self._mu = threading.Lock()
        self._finalized = False

    def report(self, kind: str, detail: str, **labels: Any) -> SanitizerFinding:
        """Record one finding and emit it as a span instant + metric."""
        finding = SanitizerFinding(kind=kind, detail=detail, labels=dict(labels))
        with self._mu:
            self.findings.append(finding)
        self.tracer.instant(f"sanitizer.{kind}", cat="sanitizer", detail=detail, **labels)
        if self.metrics_registry is not None:
            self.metrics_registry.counter(
                "repro_sanitizer_findings_total",
                "Findings reported by the runtime sanitizers.",
                labelnames=("kind",),
            ).inc(1, kind=kind)
        return finding

    def record_access(
        self,
        key: str,
        write: bool = False,
        locks: Iterable[str] | None = None,
    ) -> None:
        """Record a shared-state touch attributed to the current task."""
        from . import task_context

        ctx = task_context.get()
        task = ctx.describe() if ctx is not None else "driver"
        self.races.record_access(key, task, write=write, locks=locks)

    def finalize(self) -> list[SanitizerFinding]:
        """Pull race-detector findings into the report (idempotent)."""
        with self._mu:
            if self._finalized:
                return list(self.findings)
            self._finalized = True
        for f in self.races.findings():
            self.report(f.kind, f.detail, **f.labels)
        return list(self.findings)


_active_lock = threading.Lock()
_active: list[Sanitizer] = []


def activate(sanitizer: Sanitizer) -> None:
    """Register the sanitizer of a starting context (LIFO)."""
    with _active_lock:
        _active.append(sanitizer)


def deactivate(sanitizer: Sanitizer) -> None:
    """Unregister a stopping context's sanitizer."""
    with _active_lock:
        if sanitizer in _active:
            _active.remove(sanitizer)


def current() -> Sanitizer | None:
    """The innermost active sanitizer (None when not sanitizing).

    Worker processes always see None: the sanitizer never ships, and
    workers rely on the flags baked into tasks and broadcast handles.
    """
    with _active_lock:
        return _active[-1] if _active else None

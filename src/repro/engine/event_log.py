"""Spark-style event log: a JSON-lines record of everything a context ran.

Real Spark writes an event log that the History Server renders; ours
serves the same purposes at mini scale — post-hoc debugging of job
structure and machine-readable timing extraction for the benchmark
harness.  Events: job start/end, stage submission, task attempts.
"""

from __future__ import annotations

import json
import time
from typing import Any, TextIO

from .errors import EventLogClosedError
from .metrics import JobMetrics


class EventLog:
    """Collects engine events; optionally streams them to a file.

    Lifecycle: open on construction (with or without a backing file),
    closed by `close` — which is idempotent — after which any write
    (`emit`, `record_job`) raises `EventLogClosedError`.  Reads
    (`events`, `job_events`, `of_kind`) stay valid after close so the
    history server can render a finished run.
    """

    def __init__(self, path: str | None = None):
        self.events: list[dict[str, Any]] = []
        self._fh: TextIO | None = open(path, "w") if path else None
        self._closed = False

    def emit(self, kind: str, **fields: Any) -> None:
        """Append an event (and stream it to the log file, if any).

        Raises `EventLogClosedError` after `close` — the static
        analyzer flags the same pattern as LIF002."""
        if self._closed:
            raise EventLogClosedError(
                f"EventLog is closed; cannot emit {kind!r}"
            )
        event = {"event": kind, "time": time.time(), **fields}
        self.events.append(event)
        if self._fh is not None:
            self._fh.write(json.dumps(event) + "\n")
            self._fh.flush()

    def job_events(self, job_id: int) -> list[dict[str, Any]]:
        """Events belonging to one job."""
        return [e for e in self.events if e.get("job_id") == job_id]

    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        """Events of one kind."""
        return [e for e in self.events if e["event"] == kind]

    def record_job(self, metrics: JobMetrics) -> None:
        """Summarise a completed job from its metrics object."""
        self.emit(
            "job_end",
            job_id=metrics.job_id,
            wall_time=metrics.wall_time,
            num_stages=len(metrics.stages),
            total_task_time=metrics.total_executor_time,
        )
        for stage in metrics.stages:
            self.emit(
                "stage_end",
                job_id=metrics.job_id,
                stage_id=stage.stage_id,
                num_tasks=stage.num_tasks,
                total_task_time=stage.total_task_time,
                max_task_time=stage.max_task_time,
            )
            for t in stage.task_metrics:
                self.emit(
                    "task_end",
                    job_id=metrics.job_id,
                    stage_id=t.stage_id,
                    partition=t.partition,
                    attempt=t.attempt,
                    succeeded=t.succeeded,
                    run_time=t.run_time,
                    shuffle_bytes_written=t.shuffle_bytes_written,
                    shuffle_bytes_read=t.shuffle_bytes_read,
                )

    def close(self) -> None:
        """Flush and close the underlying file.  Idempotent; called by
        `SparkContext.stop`, and by ``with EventLog(...) as log``."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._closed = True

    @property
    def closed(self) -> bool:
        """True once `close` has run (memory-only logs included)."""
        return self._closed

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def load_event_log(path: str) -> list[dict[str, Any]]:
    """Read a JSON-lines event log back."""
    out = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out

"""Broadcast variables: read-only values cached once per executor.

Spark semantics (paper Section IV-B): a broadcast variable is shipped to
each executor *once* and cached there, instead of being serialized into
every task closure.  We reproduce that with a file-backed store — the
driver pickles the value to a spill directory; each worker process
lazily loads it on first access and caches it in a process-local dict.
For in-process backends (local/threads/simulated) the cache is shared
and no deserialization happens at all.

The per-process cache is the observable behaviour the paper relies on:
the kd-tree over the full dataset is broadcast and must not be re-sent
per task.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from typing import Any, Generic, TypeVar

T = TypeVar("T")

_MISSING = object()

# Process-local cache: broadcast id -> deserialized value.  In a worker
# process this is populated on first access; in the driver process it is
# populated at creation time.
_local_cache: dict[int, Any] = {}
_cache_lock = threading.Lock()
# Count of file loads, exposed for tests asserting once-per-executor delivery.
_load_counts: dict[int, int] = {}


def _reset_process_cache() -> None:
    """Test hook: clear the process-local broadcast cache."""
    with _cache_lock:
        _local_cache.clear()
        _load_counts.clear()


class Broadcast(Generic[T]):
    """Handle to a broadcast value.

    Only the (id, path) pair travels inside task closures; `.value`
    resolves through the process-local cache.
    """

    def __init__(
        self,
        bid: int,
        value: T,
        spill_dir: str | None,
        expected_hash: str | None = None,
    ):
        self.bid = bid
        self._path: str | None = None
        self.nbytes = 0   # serialized size; 0 when never materialised to disk
        # Structural hash taken at broadcast time when sanitizing; the
        # write-barrier re-hashes against it at the end of every task.
        self._expected_hash = expected_hash
        with _cache_lock:
            _local_cache[bid] = value
        if spill_dir is not None:
            os.makedirs(spill_dir, exist_ok=True)
            fd, path = tempfile.mkstemp(prefix=f"bcast-{bid}-", dir=spill_dir)
            with os.fdopen(fd, "wb") as f:
                pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
            self._path = path
            self.nbytes = os.path.getsize(path)

    @property
    def value(self) -> T:
        """The current value."""
        with _cache_lock:
            cached = _local_cache.get(self.bid, _MISSING)
        if cached is not _MISSING:
            self._note_access(cached)
            return cached
        if self._path is None:
            raise RuntimeError(
                f"broadcast {self.bid} not in cache and has no backing file"
            )
        with open(self._path, "rb") as f:
            value = pickle.load(f)
        with _cache_lock:
            _local_cache[self.bid] = value
            _load_counts[self.bid] = _load_counts.get(self.bid, 0) + 1
        self._note_access(value)
        return value

    def _note_access(self, value: T) -> None:
        """Register this access with the running task's write-barrier.

        Registration must happen on *every* access — including cache
        hits — so a worker process reusing its cached value still gets
        the value re-verified per task, not only when the file is first
        materialized.
        """
        if getattr(self, "_expected_hash", None) is None:
            return
        from . import sanitize, task_context

        ctx = task_context.get()
        if ctx is not None and ctx.sanitize:
            ctx.note_broadcast(self, value)
            san = sanitize.current()
            if san is not None:
                san.record_access(
                    f"broadcast:{self.bid}",
                    write=False,
                    locks=("broadcast._cache_lock",),
                )

    def verify(self, value: T, task: str) -> None:
        """Re-hash ``value`` against the broadcast-time hash.

        Raises `BroadcastMutationError` naming ``task`` on mismatch.
        """
        if getattr(self, "_expected_hash", None) is None:
            return
        from .sanitize import BroadcastMutationError, deep_hash

        if deep_hash(value) != self._expected_hash:
            raise BroadcastMutationError(
                f"broadcast {self.bid} was mutated by task [{task}]; "
                "broadcast values are read-only — copy before modifying"
            )

    def unpersist(self) -> None:
        """Drop the cached value in this process (and the backing file)."""
        with _cache_lock:
            _local_cache.pop(self.bid, None)
        if self._path is not None and os.path.exists(self._path):
            os.unlink(self._path)

    def __getstate__(self) -> dict[str, Any]:
        # Never ship the value itself through task serialization: that is
        # exactly the anti-pattern broadcast variables exist to avoid.
        # The expected hash *must* travel with the handle: worker
        # processes have no driver sanitizer, so the write-barrier there
        # rests entirely on the hash baked into the handle.
        return {
            "bid": self.bid,
            "_path": self._path,
            "nbytes": self.nbytes,
            "_expected_hash": self._expected_hash,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.bid = state["bid"]
        self._path = state["_path"]
        self.nbytes = state.get("nbytes", 0)
        self._expected_hash = state.get("_expected_hash")


class BroadcastManager:
    """Driver-side factory handing out monotonically-numbered broadcasts."""

    def __init__(self, spill_dir: str | None, compute_hashes: bool = False):
        self._next_id = 0
        self._spill_dir = spill_dir
        self._compute_hashes = compute_hashes
        self._lock = threading.Lock()
        self._issued: list[Broadcast[Any]] = []

    def new_broadcast(self, value: T) -> Broadcast[T]:
        """Create and register a broadcast value."""
        with self._lock:
            bid = self._next_id
            self._next_id += 1
        expected = None
        if self._compute_hashes:
            from .sanitize import deep_hash

            expected = deep_hash(value)
        b = Broadcast(bid, value, self._spill_dir, expected_hash=expected)
        self._issued.append(b)
        return b

    def stop(self) -> None:
        """Shut the component down and release resources."""
        for b in self._issued:
            b.unpersist()
        self._issued.clear()

"""Mini Spark Streaming: discretized streams (DStreams) of micro-batches.

The paper lists "Supporting Streaming data, complex analytics, and real
time analysis" among Spark's advantages over MapReduce (Section II-B).
This module implements the DStream model at mini scale: a streaming
context chops an input feed into micro-batches, each batch becomes an
RDD processed by the normal engine, and transformations compose lazily
exactly like Spark Streaming's.

Time is *virtual* — `advance()` delivers the next micro-batch — so
tests and examples are deterministic and instant.  Supported:
map/filter/flatMap per batch, window operations over the last k
batches, stateful `update_state_by_key`, and foreachRDD sinks.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generic, Iterable, Iterator, TypeVar

from .context import SparkContext
from .rdd import RDD

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K")
V = TypeVar("V")
S = TypeVar("S")


class StreamingContext:
    """Owns the batch clock and the DStream graph."""

    def __init__(self, sc: SparkContext, num_partitions: int | None = None):
        self.sc = sc
        self.num_partitions = num_partitions or sc.default_parallelism
        self._sources: list[QueueStream[Any]] = []
        self.batch_index = -1

    def queue_stream(self, batches: Iterable[list[T]] | None = None) -> "QueueStream[T]":
        """A source fed from an explicit queue of batches (Spark's
        queueStream, the standard testing source)."""
        stream = QueueStream(self, list(batches or []))
        self._sources.append(stream)
        return stream

    def advance(self) -> int:
        """Deliver one micro-batch through the whole graph; returns the
        new batch index."""
        self.batch_index += 1
        for source in self._sources:
            source._tick(self.batch_index)
        return self.batch_index

    def run(self, num_batches: int) -> None:
        """Execute the given tasks, yielding outcomes as they complete."""
        for _ in range(num_batches):
            self.advance()


class DStream(Generic[T]):
    """A discretized stream: per-batch RDD transformations + sinks."""

    def __init__(self, ssc: StreamingContext):
        self.ssc = ssc
        self._children: list[DStream[Any]] = []
        self._sinks: list[Callable[[int, RDD[T]], None]] = []

    # -- graph wiring (internal) -------------------------------------------
    def _emit(self, batch_index: int, rdd: RDD[T]) -> None:
        for sink in self._sinks:
            sink(batch_index, rdd)
        for child in self._children:
            child._receive(batch_index, rdd)

    def _receive(self, batch_index: int, rdd: RDD[Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def _attach(self, child: "DStream[Any]") -> "DStream[Any]":
        self._children.append(child)
        return child

    # -- transformations -----------------------------------------------------
    def transform(self, f: Callable[[RDD[T]], RDD[U]]) -> "DStream[U]":
        """Arbitrary per-batch RDD-to-RDD transformation."""
        return self._attach(_TransformedStream(self.ssc, f))

    def map(self, f: Callable[[T], U]) -> "DStream[U]":
        """Per-element transformation of each batch."""
        return self.transform(lambda rdd: rdd.map(f))

    def filter(self, f: Callable[[T], bool]) -> "DStream[T]":
        """Keep matching elements of each batch."""
        return self.transform(lambda rdd: rdd.filter(f))

    def flat_map(self, f: Callable[[T], Iterable[U]]) -> "DStream[U]":
        """One-to-many transformation of each batch."""
        return self.transform(lambda rdd: rdd.flat_map(f))

    def count_by_value(self: "DStream[T]") -> "DStream[tuple[T, int]]":
        """Per-batch histogram of element occurrences."""
        return self.transform(
            lambda rdd: rdd.map(lambda x: (x, 1)).reduce_by_key(lambda a, b: a + b)
        )

    def reduce_by_key(
        self: "DStream[tuple[K, V]]", f: Callable[[V, V], V]
    ) -> "DStream[tuple[K, V]]":
        """Per-batch reduce of values sharing a key."""
        return self.transform(lambda rdd: rdd.reduce_by_key(f))

    def window(self, length: int) -> "DStream[T]":
        """Union of the last ``length`` batches, emitted every batch."""
        if length < 1:
            raise ValueError(f"window length must be >= 1, got {length}")
        return self._attach(_WindowedStream(self.ssc, length))

    def update_state_by_key(
        self: "DStream[tuple[K, V]]",
        update: Callable[[list[V], S | None], S | None],
    ) -> "DStream[tuple[K, S]]":
        """Stateful per-key fold across batches (Spark's updateStateByKey).

        ``update(new_values, old_state)`` returns the new state, or None
        to drop the key."""
        return self._attach(_StatefulStream(self.ssc, update))

    # -- sinks ------------------------------------------------------------------
    def foreach_rdd(self, f: Callable[[int, RDD[T]], None]) -> "DStream[T]":
        """Run ``f(batch_index, rdd)`` on every batch (the output op)."""
        self._sinks.append(f)
        return self

    def collect_batches(self, into: list[list[T]]) -> "DStream[T]":
        """Convenience sink appending each batch's collected data."""
        self._sinks.append(lambda _i, rdd: into.append(rdd.collect()))
        return self


class QueueStream(DStream[T]):
    """Source stream fed from a queue of batches."""

    def __init__(self, ssc: StreamingContext, batches: list[list[T]]):
        super().__init__(ssc)
        self._queue: deque[list[T]] = deque(batches)

    def push(self, batch: list[T]) -> None:
        """Append a batch to be delivered by a future advance()."""
        self._queue.append(batch)

    def _tick(self, batch_index: int) -> None:
        data = self._queue.popleft() if self._queue else []
        rdd = self.ssc.sc.parallelize(data, self.ssc.num_partitions)
        self._emit(batch_index, rdd)


class _TransformedStream(DStream[U]):
    def __init__(self, ssc: StreamingContext, f: Callable[[RDD[Any]], RDD[U]]):
        super().__init__(ssc)
        self._f = f

    def _receive(self, batch_index: int, rdd: RDD[Any]) -> None:
        self._emit(batch_index, self._f(rdd))


class _WindowedStream(DStream[T]):
    def __init__(self, ssc: StreamingContext, length: int):
        super().__init__(ssc)
        self._length = length
        self._history: deque[RDD[T]] = deque(maxlen=length)

    def _receive(self, batch_index: int, rdd: RDD[T]) -> None:
        self._history.append(rdd)
        window: RDD[T] = self._history[0]
        for r in list(self._history)[1:]:
            window = window.union(r)
        self._emit(batch_index, window)


class _StatefulStream(DStream[Any]):
    def __init__(
        self,
        ssc: StreamingContext,
        update: Callable[[list[Any], Any | None], Any | None],
    ):
        super().__init__(ssc)
        self._update = update
        self._state: dict[Any, Any] = {}

    def _receive(self, batch_index: int, rdd: RDD[tuple[Any, Any]]) -> None:
        grouped: dict[Any, list[Any]] = {}
        for k, v in rdd.collect():
            grouped.setdefault(k, []).append(v)
        # Keys with no new values still get an update call (Spark does
        # this so state can age out).
        for k in list(self._state.keys()):
            grouped.setdefault(k, [])
        for k, values in grouped.items():
            new_state = self._update(values, self._state.get(k))
            if new_state is None:
                self._state.pop(k, None)
            else:
                self._state[k] = new_state
        out = self.ssc.sc.parallelize(
            sorted(self._state.items(), key=lambda kv: repr(kv[0])),
            self.ssc.num_partitions,
        )
        self._emit(batch_index, out)

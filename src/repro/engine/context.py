"""`SparkContext`: the driver-side entry point tying the engine together.

    with SparkContext("processes[4]") as sc:
        rdd = sc.parallelize(range(1000), 4)
        total = rdd.map(lambda x: x * x).sum()

Responsibilities (paper Section II-B): owning the backend (executor
pool), the block manager, shuffle manager, broadcast variables and
accumulators, and submitting jobs through the DAG scheduler.
"""

from __future__ import annotations

import shutil
import tempfile
from typing import Any, Callable, Iterable, Iterator, TypeVar

from .accumulator import (
    INT_SUM,
    LIST_CONCAT,
    Accumulator,
    AccumulatorParam,
    AccumulatorRegistry,
)
from .backends import make_backend, parse_master
from .broadcast import Broadcast, BroadcastManager
from .dag_scheduler import DAGScheduler
from .errors import ContextStoppedError
from ..obs.spans import NULL_TRACER, Tracer
from .event_log import EventLog
from .fault import FaultPlan
from .metrics import JobMetrics
from .rdd import RDD, ParallelCollectionRDD, SourceRDD
from .sanitize import Sanitizer
from .sanitize import activate as sanitizer_activate
from .sanitize import deactivate as sanitizer_deactivate
from .shuffle import ShuffleManager
from .sources import LocalTextFileSource
from .storage import BlockManager
from .task_scheduler import TaskScheduler

T = TypeVar("T")


class SparkContext:
    """Driver-side entry point owning backend, storage, and scheduler."""
    def __init__(
        self,
        master: str = "local",
        app_name: str = "repro",
        spill_dir: str | None = None,
        max_task_failures: int = 4,
        event_log_path: str | None = None,
        speculation: bool = False,
        speculation_multiplier: float = 2.0,
        tracer: Tracer = NULL_TRACER,
        metrics_registry: Any = None,
        sanitize: bool = False,
        profile: bool = False,
        profile_alloc: bool = False,
    ):
        self.master = master
        self.app_name = app_name
        self.tracer = tracer
        self.metrics_registry = metrics_registry
        self.sanitize = sanitize
        self.profile = profile
        self.profile_alloc = profile_alloc
        self.mode, self.default_parallelism = parse_master(master)
        self._own_spill_dir = spill_dir is None
        self.spill_dir = spill_dir or tempfile.mkdtemp(prefix="minispark-")
        self.block_manager = BlockManager(spill_dir=self.spill_dir)
        self.shuffle_manager = ShuffleManager(self.spill_dir)
        self.broadcast_manager = BroadcastManager(
            self.spill_dir if self.mode == "processes" else None,
            compute_hashes=sanitize,
        )
        self.accumulators = AccumulatorRegistry()
        self.backend = make_backend(master, self.block_manager)
        self.task_scheduler = TaskScheduler(
            self.backend,
            max_task_failures,
            speculation=speculation,
            speculation_multiplier=speculation_multiplier,
            tracer=tracer,
            # Worker telemetry rides on any observability sink being live;
            # profiling is its own opt-in (it reads process-global clocks).
            collect_telemetry=tracer.enabled or metrics_registry is not None,
            profile=profile,
            profile_alloc=profile_alloc,
        )
        self.event_log = EventLog(event_log_path)
        self.dag_scheduler = DAGScheduler(
            self.task_scheduler,
            self.shuffle_manager,
            self.accumulators,
            tracer=tracer,
            metrics_registry=metrics_registry,
            sanitize=sanitize,
            event_log=self.event_log,
        )
        self.fault_plan = FaultPlan()  # injected faults/stragglers for tests
        self.event_log.emit(
            "app_start", app_name=app_name, master=master, sanitize=sanitize
        )
        self.sanitizer: Sanitizer | None = None
        if sanitize:
            self.sanitizer = Sanitizer(tracer=tracer, metrics_registry=metrics_registry)
            sanitizer_activate(self.sanitizer)
        self._stopped = False

    # -- RDD creation ---------------------------------------------------------
    def parallelize(self, data: Iterable[T], num_partitions: int | None = None) -> RDD[T]:
        """Slice an in-memory collection into an RDD."""
        self._check_running()
        if num_partitions is None:
            num_partitions = self.default_parallelism
        return ParallelCollectionRDD(self, data, num_partitions)

    def text_file(self, path: str, num_partitions: int | None = None) -> RDD[str]:
        """RDD of lines from a local text file, split HDFS-style."""
        self._check_running()
        source = LocalTextFileSource(path, num_partitions or self.default_parallelism)
        return SourceRDD(self, source)

    def from_source(self, source: Any) -> RDD[Any]:
        """RDD over any object with ``num_splits()``/``read_split(i)``
        (e.g. a `repro.hdfs.HdfsFile`)."""
        self._check_running()
        return SourceRDD(self, source)

    # -- shared variables -------------------------------------------------------
    def broadcast(self, value: T) -> Broadcast[T]:
        """Create a read-only shared variable cached per executor."""
        self._check_running()
        with self.tracer.span("driver.broadcast", cat="driver") as sp:
            b = self.broadcast_manager.new_broadcast(value)
            sp.annotate(bid=b.bid, nbytes=b.nbytes)
        if self.metrics_registry is not None and b.nbytes:
            self.metrics_registry.counter(
                "repro_broadcast_bytes_total",
                "Bytes serialized for broadcast variables.",
            ).inc(b.nbytes)
        return b

    def accumulator(self, param: AccumulatorParam[T] = INT_SUM) -> Accumulator[T]:
        """Create an add-only shared variable merged at the driver."""
        self._check_running()
        return self.accumulators.new_accumulator(param)

    def list_accumulator(self) -> Accumulator[list]:
        """Accumulator collecting lists — the paper's channel for partial
        clusters (Section IV-B: "we use it to implement bringing back the
        partial clusters")."""
        return self.accumulator(LIST_CONCAT)

    # -- job execution ------------------------------------------------------------
    def run_job(self, rdd: RDD[T], func: Callable[[int, Iterator[T]], Any]) -> list[Any]:
        """Execute an action over the RDD; returns per-partition results."""
        self._check_running()
        results = self.dag_scheduler.run_job(rdd, func, fault_plan=self.fault_plan)
        self.event_log.record_job(self.dag_scheduler.job_metrics[-1])
        return results

    @property
    def last_job_metrics(self) -> JobMetrics:
        """Metrics of the most recent job."""
        if not self.dag_scheduler.job_metrics:
            raise ValueError("no job has run yet")
        return self.dag_scheduler.job_metrics[-1]

    # -- lifecycle ------------------------------------------------------------------
    def stop(self) -> None:
        """Shut the component down and release resources."""
        if self._stopped:
            return
        self._stopped = True
        if self.sanitizer is not None:
            findings = self.sanitizer.finalize()
            self.event_log.emit(
                "sanitizer_report",
                findings=[f.render() for f in findings],
            )
            sanitizer_deactivate(self.sanitizer)
        self.event_log.emit("app_end", app_name=self.app_name)
        self.event_log.close()
        self.backend.shutdown()
        self.broadcast_manager.stop()
        self.block_manager.clear()
        self.shuffle_manager.clear()
        if self._own_spill_dir:
            shutil.rmtree(self.spill_dir, ignore_errors=True)

    def _check_running(self) -> None:
        if self._stopped:
            raise ContextStoppedError("SparkContext is stopped")

    def __enter__(self) -> "SparkContext":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

"""Input sources pluggable into `SourceRDD`.

A source exposes ``num_splits()`` and ``read_split(i)``; the engine
turns each split into one RDD partition.  `LocalTextFileSource` is the
plain-filesystem analogue of an HDFS file (the real block-based source
lives in `repro.hdfs`).
"""

from __future__ import annotations

import os


class LocalTextFileSource:
    """Line-oriented splits of a local text file.

    Splits are computed by byte ranges aligned to line boundaries, the
    same contract HDFS record readers honour: a split starts at the
    first full line at-or-after its byte offset and reads through the
    end of the line spanning its last byte.
    """

    def __init__(self, path: str, num_splits: int):
        if num_splits <= 0:
            raise ValueError(f"num_splits must be positive, got {num_splits}")
        if not os.path.exists(path):
            raise FileNotFoundError(path)
        self.path = path
        self._num_splits = num_splits
        self._size = os.path.getsize(path)

    def num_splits(self) -> int:
        """Number of input splits."""
        return self._num_splits

    def read_split(self, i: int) -> list[str]:
        """Read one split's records."""
        if not 0 <= i < self._num_splits:
            raise IndexError(f"split {i} out of range")
        span = max(1, self._size // self._num_splits)
        start = i * span
        end = self._size if i == self._num_splits - 1 else (i + 1) * span
        if start >= self._size:
            return []
        lines: list[str] = []
        with open(self.path, "rb") as f:
            if start > 0:
                f.seek(start - 1)
                prev = f.read(1)
                if prev != b"\n":
                    f.readline()  # skip the partial line owned by split i-1
            while f.tell() < end:
                line = f.readline()
                if not line:
                    break
                lines.append(line.decode("utf-8").rstrip("\n"))
        return lines


class InMemorySource:
    """A pre-partitioned in-memory source, handy for tests."""

    def __init__(self, partitions: list[list]):
        self._partitions = partitions

    def num_splits(self) -> int:
        """Number of input splits."""
        return len(self._partitions)

    def read_split(self, i: int) -> list:
        """Read one split's records."""
        return self._partitions[i]

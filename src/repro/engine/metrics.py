"""Task/stage/job metrics and the measured-makespan model.

The paper's evaluation needs a clean split between time spent in
executors and time spent in the driver (Figures 6 and 8).  Every task
records its own wall-clock duration; job-level aggregation then offers
both the *sum* of executor time (total work) and the *makespan* on a
given number of slots (simulated parallel wall-clock), which is how the
`simulated` backend reproduces 512-core speedup curves on a laptop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class TaskMetrics:
    """Timing and accounting for a single task attempt."""

    stage_id: int
    partition: int
    attempt: int = 0
    run_time: float = 0.0          # seconds spent executing user code
    cpu_time: float = 0.0          # process_time delta over the same window
    worker_pid: int = 0            # OS pid the attempt ran in
    records_read: int = 0
    records_written: int = 0
    shuffle_bytes_written: int = 0
    shuffle_bytes_read: int = 0
    succeeded: bool = False


@dataclass
class StageMetrics:
    """Aggregated metrics for one stage."""

    stage_id: int
    task_metrics: list[TaskMetrics] = field(default_factory=list)

    @property
    def total_task_time(self) -> float:
        """Sum of successful attempts' run times."""
        return sum(t.run_time for t in self.task_metrics if t.succeeded)

    @property
    def max_task_time(self) -> float:
        """Slowest successful attempt."""
        times = [t.run_time for t in self.task_metrics if t.succeeded]
        return max(times) if times else 0.0

    @property
    def num_tasks(self) -> int:
        """Distinct partitions attempted."""
        return len({t.partition for t in self.task_metrics})

    def task_durations(self) -> list[float]:
        """Per-partition duration of the *winning* successful attempt.

        Normally there is one success per partition; under speculative
        execution the faster duplicate defines the partition's
        completion time, hence the min.
        """
        best: dict[int, float] = {}
        for t in self.task_metrics:
            if t.succeeded and t.run_time < best.get(t.partition, float("inf")):
                best[t.partition] = t.run_time
        return [best[p] for p in sorted(best)]

    def imbalance(self) -> float:
        """Skew ratio: slowest winning task over the mean (1.0 = balanced).

        This is the stage-level number the paper's Fig 8 speedup losses
        trace back to — a ratio of r means the stage's parallel wall
        clock is r× what perfectly balanced partitions would give.
        """
        durations = self.task_durations()
        if not durations:
            return 0.0
        mean = sum(durations) / len(durations)
        return max(durations) / mean if mean > 0 else 0.0


@dataclass
class JobMetrics:
    """Metrics for one job (one action)."""

    job_id: int
    stages: list[StageMetrics] = field(default_factory=list)
    wall_time: float = 0.0          # real wall-clock of the action
    scheduling_time: float = 0.0    # driver-side DAG/scheduling overhead

    @property
    def total_executor_time(self) -> float:
        """Sum of task time across all stages."""
        return sum(s.total_task_time for s in self.stages)

    def task_durations(self) -> list[float]:
        """Winning per-partition durations across all stages."""
        out: list[float] = []
        for s in self.stages:
            out.extend(s.task_durations())
        return out

    def simulated_wall(self, slots: int, straggler_wait: float = 0.0) -> float:
        """Virtual parallel wall-clock on ``slots`` cores (see `makespan`)."""
        total = 0.0
        for s in self.stages:
            total += makespan(s.task_durations(), slots) + straggler_wait
        return total


def makespan(durations: list[float], slots: int) -> float:
    """LPT (longest-processing-time-first) makespan of tasks on ``slots`` slots.

    When the number of tasks equals the number of slots — the paper's
    configuration, one partition per core — this degenerates to
    ``max(durations)``, exactly the executor-side wall clock the paper
    reports.  For oversubscribed runs LPT is the classic 4/3-approximate
    greedy schedule, adequate for reproducing speedup *shape*.
    """
    if not durations:
        return 0.0
    if slots <= 0:
        raise ValueError(f"slots must be positive, got {slots}")
    if len(durations) <= slots:
        return max(durations)
    loads = [0.0] * slots
    for d in sorted(durations, reverse=True):
        i = loads.index(min(loads))
        loads[i] += d
    return max(loads)


class Stopwatch:
    """Tiny context-manager stopwatch used throughout the benchmarks."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed += time.perf_counter() - self._start

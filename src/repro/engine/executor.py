"""Task execution: what runs on an executor.

A `Task` bundles everything needed to compute one partition of one
stage: the stage's final RDD (with its narrow lineage), resolved
shuffle-input paths, a fault plan, and either a result function or
shuffle-write instructions.  `run_task` executes it against an
executor-local `BlockManager`, installing a `TaskContext` so that
accumulators and metrics behave with Spark semantics.

Worker processes get a process-global block manager, mirroring Spark's
one-block-manager-per-executor layout.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from . import task_context
from .errors import TaskError
from .fault import FaultPlan
from .metrics import TaskMetrics
from .rdd import RDD, TaskRuntime
from .storage import BlockManager


@dataclass
class Task:
    """Everything an executor needs to compute one partition of one stage."""
    job_id: int
    stage_id: int
    partition: int
    attempt: int
    rdd: RDD[Any]
    kind: str  # "result" | "shuffle_map"
    func: Callable[[int, Any], Any] | None = None      # result tasks
    partitioner: Any = None                             # shuffle-map tasks
    shuffle_id: int = -1
    bucket_dir: str = ""
    shuffle_inputs: dict[tuple[int, int], list[str]] = field(default_factory=dict)
    fault_plan: FaultPlan = field(default_factory=FaultPlan)
    sanitize: bool = False
    # Stamped by the TaskScheduler from run-level settings: ship a
    # WorkerTelemetry buffer back / profile resources / trace allocations.
    collect_telemetry: bool = False
    profile: bool = False
    profile_alloc: bool = False


@dataclass
class TaskOutcome:
    """Result envelope of one task attempt."""
    stage_id: int
    partition: int
    attempt: int
    succeeded: bool
    value: Any = None
    error: str = ""
    metrics: TaskMetrics | None = None
    acc_updates: dict[int, Any] = field(default_factory=dict)
    map_output_paths: dict[int, str] = field(default_factory=dict)
    # Sanitizer violations are not retryable: the scheduler aborts the
    # job immediately, re-raising the error type named here.
    fatal: bool = False
    error_type: str = ""
    # Worker-side observability payloads, shipped back across the
    # process boundary and merged by the DAG scheduler.
    telemetry: Any = None  # repro.obs.collect.WorkerTelemetry | None
    profile: Any = None    # repro.obs.profile.TaskResourceProfile | None


def run_task(
    task: Task,
    block_manager: BlockManager,
    deserialize_s: float | None = None,
    deserialize_nbytes: int = 0,
) -> TaskOutcome:
    """Execute one task attempt; never raises — failures become outcomes.

    ``deserialize_s`` / ``deserialize_nbytes`` let a process-backend
    entry point report how long unpickling the task took; the time is
    grafted in as a ``task.deserialize`` span *before* the telemetry
    anchor (negative start), since the work predates the buffer.
    """
    metrics = TaskMetrics(task.stage_id, task.partition, task.attempt)
    metrics.worker_pid = os.getpid()
    telemetry = None
    if task.collect_telemetry:
        from ..obs.collect import WorkerTelemetry

        telemetry = WorkerTelemetry.create(
            tid=f"task-s{task.stage_id}p{task.partition}"
        )
        if deserialize_s is not None:
            telemetry.add_span(
                "task.deserialize", start=-deserialize_s, dur=deserialize_s,
                nbytes=deserialize_nbytes,
            )
    profiler = None
    if task.profile:
        from ..obs.profile import TaskProfiler

        profiler = TaskProfiler(alloc=task.profile_alloc)
        profiler.start()
    ctx = task_context.TaskContext(
        task.stage_id, task.partition, task.attempt, metrics,
        sanitize=task.sanitize, telemetry=telemetry,
    )
    start = time.perf_counter()
    cpu_start = time.process_time()
    try:
        with task_context.activate(ctx):
            task.fault_plan.check(task.stage_id, task.partition, task.attempt)
            delay = task.fault_plan.delay_for(task.stage_id, task.partition)
            if delay > 0:
                time.sleep(delay)
            runtime = TaskRuntime(block_manager, task.shuffle_inputs)
            if task.kind == "result":
                assert task.func is not None
                value = task.func(task.partition, task.rdd.iterator(task.partition, runtime))
                map_paths: dict[int, str] = {}
            elif task.kind == "shuffle_map":
                from .shuffle import write_map_output

                records = task.rdd.iterator(task.partition, runtime)
                map_paths, nbytes = write_map_output(
                    task.bucket_dir,
                    task.shuffle_id,
                    task.partition,
                    records,
                    task.partitioner,
                )
                metrics.shuffle_bytes_written = nbytes
                value = None
            else:  # pragma: no cover - guarded by construction
                raise ValueError(f"unknown task kind {task.kind!r}")
            # Broadcast write-barrier: re-hash every broadcast this task
            # touched, *inside* the context so a mutation fails the task.
            ctx.verify_broadcasts()
        metrics.run_time = time.perf_counter() - start
        metrics.cpu_time = time.process_time() - cpu_start
        metrics.succeeded = True
        if telemetry is not None:
            telemetry.add_span(
                "task.run", start=start - telemetry.perf_anchor,
                dur=metrics.run_time, cpu_s=metrics.cpu_time,
                stage=task.stage_id, partition=task.partition,
                attempt=task.attempt,
            )
        return TaskOutcome(
            task.stage_id,
            task.partition,
            task.attempt,
            succeeded=True,
            value=value,
            metrics=metrics,
            acc_updates=dict(ctx.acc_updates),
            map_output_paths=map_paths,
            telemetry=telemetry,
            profile=profiler.stop() if profiler is not None else None,
        )
    except BaseException as exc:  # noqa: BLE001 - report, scheduler decides
        metrics.run_time = time.perf_counter() - start
        metrics.cpu_time = time.process_time() - cpu_start
        err = TaskError(task.stage_id, task.partition, task.attempt, exc)
        from .sanitize import SanitizerError

        if telemetry is not None:
            telemetry.add_span(
                "task.run", start=start - telemetry.perf_anchor,
                dur=metrics.run_time, cpu_s=metrics.cpu_time,
                stage=task.stage_id, partition=task.partition,
                attempt=task.attempt, failed=True,
            )
        return TaskOutcome(
            task.stage_id,
            task.partition,
            task.attempt,
            succeeded=False,
            error=str(err),
            metrics=metrics,
            fatal=isinstance(exc, SanitizerError),
            error_type=type(exc).__name__,
            telemetry=telemetry,
            profile=profiler.stop() if profiler is not None else None,
        )


# ---------------------------------------------------------------------------
# Worker-process entry points (process backend).  Each worker process keeps
# one block manager for its lifetime — "one per executor", like Spark.
# ---------------------------------------------------------------------------

_worker_block_manager: BlockManager | None = None


def _get_worker_block_manager() -> BlockManager:
    global _worker_block_manager
    if _worker_block_manager is None:
        _worker_block_manager = BlockManager()
    return _worker_block_manager


def process_entry(blob: bytes) -> bytes:
    """Run a cloudpickled Task in a worker process.

    Returns a pickled *envelope* ``(outcome_payload, trailer)`` where
    ``outcome_payload`` is the pickled `TaskOutcome` and ``trailer``
    carries the timing of pickling that outcome (``None`` when the task
    collected no telemetry).  Serialization necessarily happens *after*
    the outcome — and its telemetry buffer — is sealed, so the driver
    side (`ProcessBackend.run`) grafts the ``task.serialize`` span from
    the trailer once the outcome is unpickled.
    """
    import cloudpickle

    t0 = time.perf_counter()
    task: Task = cloudpickle.loads(blob)
    deserialize_s = time.perf_counter() - t0
    outcome = run_task(
        task, _get_worker_block_manager(),
        deserialize_s=deserialize_s if task.collect_telemetry else None,
        deserialize_nbytes=len(blob),
    )
    try:
        t1 = time.perf_counter()
        payload = cloudpickle.dumps(outcome)
    except Exception as exc:  # unpicklable result value
        fallback = TaskOutcome(
            task.stage_id,
            task.partition,
            task.attempt,
            succeeded=False,
            error=f"task result not serializable: {exc!r}",
            metrics=outcome.metrics,
            telemetry=outcome.telemetry,
            profile=outcome.profile,
        )
        t1 = time.perf_counter()
        payload = cloudpickle.dumps(fallback)
        outcome = fallback
    serialize_s = time.perf_counter() - t1
    trailer = None
    if outcome.telemetry is not None:
        trailer = {
            "start": t1 - outcome.telemetry.perf_anchor,
            "dur": serialize_s,
            "nbytes": len(payload),
        }
    return cloudpickle.dumps((payload, trailer))

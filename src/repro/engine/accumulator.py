"""Accumulators: add-only shared variables merged at the driver.

Spark semantics (paper Section IV-B): tasks only *add* to an
accumulator through an associative operation; the driver observes the
merged value.  The paper uses an accumulator as a "writable" channel to
bring partial clusters back from executors to the driver — so unlike
the classic counter use-case, values here can be lists of cluster
objects.

Exactly-once guarantee: updates from a task attempt are applied only
when that attempt *succeeds*, and only the **first** successful attempt
per (stage, partition) is applied.  Retried or speculative duplicates
are discarded — this is tested explicitly, because double-counted
partial clusters would corrupt the DBSCAN merge phase.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Generic, TypeVar

T = TypeVar("T")


class AccumulatorParam(Generic[T]):
    """Defines the zero value and the associative add for an accumulator."""

    def __init__(self, zero: Callable[[], T], add: Callable[[T, T], T]):
        self.zero = zero
        self.add = add


INT_SUM = AccumulatorParam[int](zero=lambda: 0, add=lambda a, b: a + b)
FLOAT_SUM = AccumulatorParam[float](zero=lambda: 0.0, add=lambda a, b: a + b)
LIST_CONCAT = AccumulatorParam[list](zero=list, add=lambda a, b: a + b)


class Accumulator(Generic[T]):
    """Handle to an accumulator.

    On the driver, ``.value`` reads the merged total.  Inside a task the
    handle accumulates into a task-local buffer (keyed by accumulator
    id) that travels back with the task result.
    """

    def __init__(self, aid: int, param: AccumulatorParam[T], registry: "AccumulatorRegistry"):
        self.aid = aid
        self.param = param
        self._registry: AccumulatorRegistry | None = registry  # driver only

    def add(self, term: T) -> None:
        """Add one element."""
        from . import task_context

        ctx = task_context.get()
        if ctx is not None:
            ctx.accumulate(self.aid, self.param, term)
        elif self._registry is not None:
            self._registry.apply_direct(self.aid, term)
        else:
            raise RuntimeError("accumulator used outside both task and driver")

    def __iadd__(self, term: T) -> "Accumulator[T]":
        self.add(term)
        return self

    @property
    def value(self) -> T:
        """The current value (driver-only; guarded under ``--sanitize``).

        On the processes backend an executor read already fails (the
        registry never ships).  On shared-memory backends it would
        silently observe half-merged driver state — the sanitizer turns
        that into a deterministic `AccumulatorReadError`.
        """
        from . import task_context

        ctx = task_context.get()
        if ctx is not None and ctx.sanitize:
            from .sanitize import AccumulatorReadError

            raise AccumulatorReadError(
                f"accumulator {self.aid} read inside task [{ctx.describe()}]; "
                "accumulators are write-only on executors — only the driver "
                "may read .value"
            )
        if self._registry is None:
            raise RuntimeError("accumulator value is only readable on the driver")
        return self._registry.current_value(self.aid)

    def __getstate__(self) -> dict[str, Any]:
        # Ship only the id + param to executors; the registry stays driver-side.
        return {"aid": self.aid, "param": self.param, "_registry": None}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)


class AccumulatorRegistry:
    """Driver-side store of accumulator values with exactly-once merging."""

    def __init__(self) -> None:
        self._values: dict[int, Any] = {}
        self._params: dict[int, AccumulatorParam[Any]] = {}
        self._applied: set[tuple[int, int, int]] = set()  # (job, stage, partition)
        self._next_id = 0
        self._lock = threading.Lock()

    def new_accumulator(self, param: AccumulatorParam[T]) -> Accumulator[T]:
        """Create an accumulator with the given param."""
        with self._lock:
            aid = self._next_id
            self._next_id += 1
            self._values[aid] = param.zero()
            self._params[aid] = param
        return Accumulator(aid, param, self)

    def current_value(self, aid: int) -> Any:
        """The merged value so far."""
        with self._lock:
            return self._values[aid]

    def apply_direct(self, aid: int, term: Any) -> None:
        """Driver-side add (outside any task)."""
        with self._lock:
            self._values[aid] = self._params[aid].add(self._values[aid], term)

    def apply_task_updates(
        self,
        job_id: int,
        stage_id: int,
        partition: int,
        updates: dict[int, Any],
    ) -> bool:
        """Merge a successful task's buffered updates.

        Returns False (and merges nothing) if an earlier successful
        attempt for the same (job, stage, partition) already reported —
        the exactly-once rule.
        """
        key = (job_id, stage_id, partition)
        with self._lock:
            if key in self._applied:
                return False
            self._applied.add(key)
            for aid, term in updates.items():
                if aid not in self._values:
                    # Accumulator created on an executor copy we never saw;
                    # refuse quietly rather than guess a zero/param.
                    continue
                self._values[aid] = self._params[aid].add(self._values[aid], term)
        return True

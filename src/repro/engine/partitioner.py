"""Partitioners: decide which output partition a key belongs to.

These mirror Spark's ``HashPartitioner`` and ``RangePartitioner``.  The
paper's DBSCAN partitions point *indices* into contiguous ranges
(Section IV-A: "If the current point's index is beyond the range of the
current partition it is taken as a SEED"), which is exactly what
`IndexRangePartitioner` provides.
"""

from __future__ import annotations

import bisect
from collections.abc import Sequence
from typing import Any


class Partitioner:
    """Base partitioner interface."""

    def __init__(self, num_partitions: int):
        if num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive, got {num_partitions}")
        self.num_partitions = num_partitions

    def partition(self, key: Any) -> int:
        """Output partition for the given key."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:  # pragma: no cover - identity-ish hash
        return hash((type(self).__name__, self.num_partitions))


class HashPartitioner(Partitioner):
    """Partition by ``hash(key) mod p`` — Spark's default for shuffles."""

    def partition(self, key: Any) -> int:
        """Output partition for the given key."""
        return hash(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Partition ordered keys into contiguous ranges given split bounds.

    ``bounds`` has ``num_partitions - 1`` ascending elements; keys <=
    bounds[i] land in partition i.
    """

    def __init__(self, bounds: Sequence[Any]):
        super().__init__(len(bounds) + 1)
        self.bounds = list(bounds)
        if any(self.bounds[i] > self.bounds[i + 1] for i in range(len(self.bounds) - 1)):
            raise ValueError("RangePartitioner bounds must be ascending")

    def partition(self, key: Any) -> int:
        """Output partition for the given key."""
        return bisect.bisect_left(self.bounds, key)


class LookupPartitioner(Partitioner):
    """Explicit key → partition table over integer keys ``0..n-1``.

    The cell-partitioned DBSCAN plan owns *scattered* point ids per
    partition (whole grid cells, balanced by load), so contiguous range
    arithmetic cannot answer "whose point is this?"; a precomputed
    table can.  ``table`` may be any integer sequence (typically a numpy
    array) and is held, not copied.
    """

    def __init__(self, table: Sequence[int], num_partitions: int):
        super().__init__(num_partitions)
        self.table = table
        self.n = len(table)

    def partition(self, key: int) -> int:
        """Output partition for the given key."""
        if not 0 <= key < self.n:
            raise IndexError(f"index {key} outside [0, {self.n})")
        return int(self.table[key])

    def owns(self, partition: int, key: int) -> bool:
        """True iff ``key`` is assigned to ``partition``."""
        return self.partition(key) == partition

    def __eq__(self, other: object) -> bool:
        # The base dict comparison trips over numpy tables (elementwise
        # == yields an array); compare the materialised mapping instead.
        return (
            type(self) is type(other)
            and self.num_partitions == other.num_partitions
            and list(self.table) == list(other.table)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity-ish hash
        return hash((type(self).__name__, self.num_partitions, self.n))


class IndexRangePartitioner(Partitioner):
    """Contiguous index ranges over ``0..n-1``, the paper's partitioning.

    Partition ``i`` owns indices ``[start(i), end(i))`` with sizes as even
    as possible (the first ``n % p`` partitions get one extra element).
    """

    def __init__(self, n: int, num_partitions: int):
        super().__init__(num_partitions)
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self.n = n
        base, extra = divmod(n, num_partitions)
        starts = [0]
        for i in range(num_partitions):
            starts.append(starts[-1] + base + (1 if i < extra else 0))
        self._starts = starts  # length p + 1; _starts[p] == n

    def range_of(self, partition: int) -> tuple[int, int]:
        """Return the half-open index range ``[start, end)`` of a partition."""
        if not 0 <= partition < self.num_partitions:
            raise IndexError(f"partition {partition} out of range")
        return self._starts[partition], self._starts[partition + 1]

    def partition(self, key: int) -> int:
        """Output partition for the given key."""
        if not 0 <= key < self.n:
            raise IndexError(f"index {key} outside [0, {self.n})")
        # binary search over starts: rightmost start <= key
        return bisect.bisect_right(self._starts, key) - 1

    def owns(self, partition: int, key: int) -> bool:
        """True iff ``key`` falls inside ``partition``'s index range."""
        lo, hi = self.range_of(partition)
        return lo <= key < hi

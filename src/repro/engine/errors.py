"""Exception hierarchy for the mini-Spark engine.

Mirrors the failure taxonomy that matters for the paper's discussion of
fault tolerance (Section II-B): task-level failures that the scheduler
retries, job-level failures surfaced to the driver, and fetch failures
during shuffle reads.
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all engine errors."""


class TaskError(EngineError):
    """A task raised an exception while executing on an executor.

    Carries enough context for the task scheduler to decide whether to
    retry (lineage makes recomputation safe) or abort the job.
    """

    def __init__(self, stage_id: int, partition: int, attempt: int, cause: BaseException):
        self.stage_id = stage_id
        self.partition = partition
        self.attempt = attempt
        self.cause = cause
        super().__init__(
            f"task failed: stage={stage_id} partition={partition} "
            f"attempt={attempt}: {cause!r}"
        )


class JobAbortedError(EngineError):
    """A job was aborted after a task exhausted its retry budget."""

    def __init__(self, reason: str, cause: BaseException | None = None):
        self.reason = reason
        self.cause = cause
        super().__init__(reason)


class ShuffleFetchError(EngineError):
    """A reduce-side task failed to fetch a map output block."""

    def __init__(self, shuffle_id: int, map_partition: int, reduce_partition: int):
        self.shuffle_id = shuffle_id
        self.map_partition = map_partition
        self.reduce_partition = reduce_partition
        super().__init__(
            f"missing shuffle output: shuffle={shuffle_id} "
            f"map={map_partition} reduce={reduce_partition}"
        )


class InjectedFault(EngineError):
    """Raised by the fault-injection layer to simulate an executor crash."""

    def __init__(self, description: str = "injected fault"):
        super().__init__(description)


class ContextStoppedError(EngineError):
    """An operation was attempted on a stopped SparkContext."""


class EventLogClosedError(EngineError):
    """A write was attempted on a closed EventLog.

    The runtime twin of lint rule LIF002: once `EventLog.close` has
    run, further `emit`/`record_job` calls are a bug — the backing file
    is gone, so the write would silently land only in memory."""

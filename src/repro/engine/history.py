"""History report: render an event log the way Spark's History Server does.

Takes the JSON-lines event log written by ``SparkContext(...,
event_log_path=...)`` and produces a human-readable per-job / per-stage
summary: task counts, failures, total and max task times, shuffle
volume.  Exposed on the CLI as ``python -m repro history <log>``.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

from .event_log import load_event_log


class HistoryError(Exception):
    """An event log that cannot be summarised (missing, empty, malformed)."""


@dataclass
class StageSummary:
    """Aggregated view of one stage from the event log."""
    stage_id: int
    num_tasks: int = 0
    failed_attempts: int = 0
    total_task_time: float = 0.0
    max_task_time: float = 0.0
    shuffle_bytes_written: int = 0
    shuffle_bytes_read: int = 0


@dataclass
class JobSummary:
    """Aggregated view of one job from the event log."""
    job_id: int
    wall_time: float = 0.0
    stages: dict[int, StageSummary] = field(default_factory=dict)

    @property
    def num_stages(self) -> int:
        """Number of stages in the job."""
        return len(self.stages)

    @property
    def failed_attempts(self) -> int:
        """Total failed task attempts across stages."""
        return sum(s.failed_attempts for s in self.stages.values())


@dataclass
class AppHistory:
    """Whole-application summary from the event log."""
    app_name: str = "?"
    master: str = "?"
    jobs: dict[int, JobSummary] = field(default_factory=dict)

    @property
    def total_tasks(self) -> int:
        """Total distinct tasks across all jobs."""
        return sum(
            s.num_tasks for j in self.jobs.values() for s in j.stages.values()
        )


def summarize_events(events: list[dict[str, Any]]) -> AppHistory:
    """Fold raw events into an `AppHistory`."""
    app = AppHistory()
    task_seen: dict[tuple[int, int], set[int]] = defaultdict(set)
    for i, e in enumerate(events):
        if not isinstance(e, dict) or "event" not in e:
            raise HistoryError(f"event {i} is not a valid engine event: {e!r}")
        kind = e["event"]
        if kind == "app_start":
            app.app_name = e.get("app_name", "?")
            app.master = e.get("master", "?")
        elif kind == "job_end":
            app.jobs[e["job_id"]] = JobSummary(
                job_id=e["job_id"], wall_time=e.get("wall_time", 0.0)
            )
        elif kind == "stage_end":
            job = app.jobs.setdefault(e["job_id"], JobSummary(e["job_id"]))
            job.stages[e["stage_id"]] = StageSummary(
                stage_id=e["stage_id"],
                total_task_time=e.get("total_task_time", 0.0),
                max_task_time=e.get("max_task_time", 0.0),
            )
        elif kind == "task_end":
            job = app.jobs.setdefault(e["job_id"], JobSummary(e["job_id"]))
            stage = job.stages.setdefault(
                e["stage_id"], StageSummary(e["stage_id"])
            )
            if e.get("succeeded"):
                key = (e["job_id"], e["stage_id"])
                if e["partition"] not in task_seen[key]:
                    stage.num_tasks += 1
                    task_seen[key].add(e["partition"])
            else:
                stage.failed_attempts += 1
            stage.shuffle_bytes_written += e.get("shuffle_bytes_written", 0)
            stage.shuffle_bytes_read += e.get("shuffle_bytes_read", 0)
    return app


def load_history(path: str) -> AppHistory:
    """Read an event-log file and summarise it.

    Raises `HistoryError` (rather than a raw traceback-provoking
    exception) when the file is missing, empty, or not a JSON-lines
    engine event log.
    """
    try:
        events = load_event_log(path)
    except OSError as exc:
        raise HistoryError(f"cannot read event log {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise HistoryError(f"{path!r} is not JSON-lines: {exc}") from exc
    if not events:
        raise HistoryError(f"event log {path!r} is empty")
    try:
        return summarize_events(events)
    except (KeyError, TypeError, AttributeError) as exc:
        raise HistoryError(
            f"{path!r} is not an engine event log: {exc}"
        ) from exc


def format_history(app: AppHistory) -> str:
    """Render the summary as text."""
    lines = [
        f"application: {app.app_name} (master={app.master})",
        f"jobs: {len(app.jobs)}   tasks: {app.total_tasks}",
        "",
        f"{'job':>4} {'stages':>6} {'wall (s)':>9} {'failures':>8}",
    ]
    for job in sorted(app.jobs.values(), key=lambda j: j.job_id):
        lines.append(
            f"{job.job_id:>4} {job.num_stages:>6} {job.wall_time:>9.3f} "
            f"{job.failed_attempts:>8}"
        )
        for stage in sorted(job.stages.values(), key=lambda s: s.stage_id):
            lines.append(
                f"     stage {stage.stage_id}: {stage.num_tasks} tasks, "
                f"{stage.total_task_time:.3f}s total, "
                f"{stage.max_task_time:.3f}s max"
                + (
                    f", {stage.shuffle_bytes_written} shuffle bytes written"
                    if stage.shuffle_bytes_written
                    else ""
                )
                + (
                    f", {stage.shuffle_bytes_read} shuffle bytes read"
                    if stage.shuffle_bytes_read
                    else ""
                )
            )
    return "\n".join(lines)

"""Mini-Spark execution engine.

A faithful, small-scale reimplementation of the Spark runtime pieces
the paper's DBSCAN relies on: lazy RDDs with lineage, DAG→stage→task
scheduling with retry-based fault tolerance, executor pools (serial,
threads, processes, and a measured-makespan simulator), broadcast
variables, accumulators, and a disk-backed shuffle.

Public entry point::

    from repro.engine import SparkContext

    with SparkContext("processes[4]") as sc:
        sc.parallelize(range(10)).map(lambda x: x + 1).collect()
"""

from .accumulator import (
    FLOAT_SUM,
    INT_SUM,
    LIST_CONCAT,
    Accumulator,
    AccumulatorParam,
)
from .broadcast import Broadcast
from .context import SparkContext
from .errors import (
    ContextStoppedError,
    EngineError,
    EventLogClosedError,
    InjectedFault,
    JobAbortedError,
    ShuffleFetchError,
    TaskError,
)
from .fault import FaultPlan, random_straggler_plan
from .metrics import JobMetrics, StageMetrics, Stopwatch, TaskMetrics, makespan
from .partitioner import (
    HashPartitioner,
    IndexRangePartitioner,
    Partitioner,
    RangePartitioner,
)
from .rdd import RDD, StatCounter
from .sanitize import (
    AccumulatorReadError,
    BroadcastMutationError,
    Sanitizer,
    SanitizerError,
    TrackedLock,
    deep_hash,
)
from .storage import BlockManager, StorageLevel
from .streaming import DStream, StreamingContext

__all__ = [
    "SparkContext",
    "RDD",
    "Broadcast",
    "Accumulator",
    "AccumulatorParam",
    "INT_SUM",
    "FLOAT_SUM",
    "LIST_CONCAT",
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "IndexRangePartitioner",
    "FaultPlan",
    "random_straggler_plan",
    "JobMetrics",
    "StageMetrics",
    "TaskMetrics",
    "Stopwatch",
    "makespan",
    "BlockManager",
    "StorageLevel",
    "StatCounter",
    "StreamingContext",
    "DStream",
    "EngineError",
    "TaskError",
    "JobAbortedError",
    "ShuffleFetchError",
    "InjectedFault",
    "ContextStoppedError",
    "EventLogClosedError",
    "SanitizerError",
    "BroadcastMutationError",
    "AccumulatorReadError",
    "Sanitizer",
    "TrackedLock",
    "deep_hash",
]

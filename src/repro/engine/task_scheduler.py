"""Task scheduler: retries and speculative execution.

Spark retries a failed task (default 4 attempts) because lineage makes
recomputation safe; only after the retry budget is exhausted does the
job abort.  This is the property the paper contrasts with MPI, where
"one failed process causes the whole job to fail" (Section I) — and it
is exercised directly by the fault-injection tests.

Speculative execution attacks the paper's ``t_straggling`` term
(Section IV-C): when a straggler task runs far beyond the median of its
already-finished siblings, the scheduler launches a duplicate attempt
with the straggler's injected delay stripped (modelling placement on a
healthy executor); whichever attempt finishes first wins, and the
accumulator registry's exactly-once rule discards the loser's updates.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Callable

from ..obs.spans import NULL_TRACER, Tracer
from . import sanitize
from .backends import Backend
from .errors import JobAbortedError
from .executor import Task, TaskOutcome
from .fault import FaultPlan


def _raise_sanitizer(outcome: TaskOutcome) -> None:
    """Re-raise a fatal sanitizer violation reported by a task.

    Sanitizer errors are not retryable (a mutated broadcast stays
    mutated), so the job aborts on the first one instead of burning the
    retry budget.  The original error type is reconstructed from the
    outcome so callers can catch e.g. `BroadcastMutationError` even when
    the task ran in a worker process.
    """
    san = sanitize.current()
    if san is not None:
        san.report(
            "violation",
            outcome.error,
            error_type=outcome.error_type,
            stage_id=outcome.stage_id,
            partition=outcome.partition,
        )
    exc_type = sanitize.FATAL_ERROR_TYPES.get(
        outcome.error_type, sanitize.SanitizerError
    )
    raise exc_type(outcome.error)


class TaskScheduler:
    """Runs task sets with retries and optional speculation."""
    def __init__(
        self,
        backend: Backend,
        max_task_failures: int = 4,
        speculation: bool = False,
        speculation_multiplier: float = 2.0,
        tracer: Tracer = NULL_TRACER,
        collect_telemetry: bool | None = None,
        profile: bool = False,
        profile_alloc: bool = False,
    ):
        if max_task_failures < 1:
            raise ValueError("max_task_failures must be >= 1")
        if speculation_multiplier <= 1.0:
            raise ValueError("speculation_multiplier must exceed 1.0")
        self.backend = backend
        self.max_task_failures = max_task_failures
        self.speculation = speculation
        self.speculation_multiplier = speculation_multiplier
        self.speculative_launches = 0
        self.tracer = tracer
        # None = follow the tracer: collect worker telemetry exactly when
        # there is a live tracer to merge it into.
        self.collect_telemetry = collect_telemetry
        self.profile = profile
        self.profile_alloc = profile_alloc

    def run_task_set(
        self,
        tasks: list[Task],
        on_outcome: Callable[[TaskOutcome], None] | None = None,
    ) -> dict[int, TaskOutcome]:
        """Run all tasks; return the first successful outcome per partition.

        ``on_outcome`` observes every attempt (success or failure) — the
        DAG scheduler uses it to record metrics for all attempts.
        """
        collect = (
            self.collect_telemetry
            if self.collect_telemetry is not None
            else self.tracer.enabled
        )
        if collect or self.profile:
            # Stamp run-level observability settings onto every task here,
            # once — retries go through dataclasses.replace and inherit them.
            tasks = [
                dataclasses.replace(
                    t, collect_telemetry=collect, profile=self.profile,
                    profile_alloc=self.profile_alloc,
                )
                for t in tasks
            ]
        by_partition = {t.partition: t for t in tasks}
        completed: dict[int, TaskOutcome] = {}
        pending = list(tasks)
        if self.speculation:
            pending = self._speculative_pass(pending, on_outcome, completed)
        while pending:
            retries: list[Task] = []
            for outcome in self.backend.run(pending):
                if on_outcome is not None:
                    on_outcome(outcome)
                if outcome.succeeded:
                    # Exactly-once per partition: a speculative duplicate
                    # success is dropped here.
                    completed.setdefault(outcome.partition, outcome)
                else:
                    if outcome.fatal:
                        _raise_sanitizer(outcome)
                    next_attempt = outcome.attempt + 1
                    if next_attempt >= self.max_task_failures:
                        raise JobAbortedError(
                            f"task for partition {outcome.partition} failed "
                            f"{next_attempt} times; last error: {outcome.error}"
                        )
                    original = by_partition[outcome.partition]
                    self.tracer.instant(
                        "task_retry", cat="engine",
                        stage_id=original.stage_id,
                        partition=outcome.partition, attempt=next_attempt,
                    )
                    retries.append(dataclasses.replace(original, attempt=next_attempt))
            pending = retries
        return completed

    def _speculative_pass(
        self,
        tasks: list[Task],
        on_outcome: Callable[[TaskOutcome], None] | None,
        completed: dict[int, TaskOutcome],
    ) -> list[Task]:
        """Identify stragglers by duration vs the median sibling and re-run
        them without their injected delay; returns tasks still unresolved
        (failures, handed back to the retry loop)."""
        outcomes: list[TaskOutcome] = []
        failures: list[Task] = []
        by_partition = {t.partition: t for t in tasks}
        for outcome in self.backend.run(tasks):
            if on_outcome is not None:
                on_outcome(outcome)
            outcomes.append(outcome)
        durations = [
            o.metrics.run_time for o in outcomes if o.succeeded and o.metrics
        ]
        median = statistics.median(durations) if durations else 0.0
        threshold = median * self.speculation_multiplier
        respawn: list[Task] = []
        for o in outcomes:
            if not o.succeeded:
                if o.fatal:
                    _raise_sanitizer(o)
                # Same retry budget as the main loop: requeueing here
                # without the check would grant failed tasks one extra
                # attempt whenever speculation is on.
                next_attempt = o.attempt + 1
                if next_attempt >= self.max_task_failures:
                    raise JobAbortedError(
                        f"task for partition {o.partition} failed "
                        f"{next_attempt} times; last error: {o.error}"
                    )
                failures.append(
                    dataclasses.replace(by_partition[o.partition], attempt=next_attempt)
                )
                continue
            if (
                median > 0
                and o.metrics is not None
                and o.metrics.run_time > threshold
            ):
                # Straggler: duplicate on a "healthy executor" — same task,
                # higher attempt number, injected delay removed.
                original = by_partition[o.partition]
                clean = dataclasses.replace(
                    original,
                    attempt=o.attempt + 1,
                    fault_plan=FaultPlan(fail_attempts=original.fault_plan.fail_attempts),
                )
                respawn.append(clean)
                self.speculative_launches += 1
                self.tracer.instant(
                    "speculative_launch", cat="engine",
                    stage_id=original.stage_id, partition=o.partition,
                    attempt=o.attempt + 1,
                    straggler_run_time=round(o.metrics.run_time, 6),
                )
            completed.setdefault(o.partition, o)
        for o2 in self.backend.run(respawn) if respawn else []:
            if on_outcome is not None:
                on_outcome(o2)
            if not o2.succeeded and o2.fatal:
                _raise_sanitizer(o2)
            if o2.succeeded:
                prev = completed[o2.partition]
                if o2.metrics and prev.metrics and o2.metrics.run_time < prev.metrics.run_time:
                    completed[o2.partition] = o2
        return failures

"""Shuffle machinery: map-side bucket writes, reduce-side fetches.

The paper's core argument (Section IV-A) is that shuffles are the
expensive operation to avoid.  To *measure* that claim (Ablation D) we
need a real shuffle: map tasks partition their key/value output into
per-reducer buckets and persist them; reduce tasks fetch and merge the
buckets addressed to them.

Buckets are written as pickle files in a spill directory so the shuffle
works identically across the local/threads/processes backends — and so
the disk-materialisation cost that makes shuffles expensive is actually
paid, not hand-waved.
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import defaultdict
from typing import Any, Iterable, Iterator

from .errors import ShuffleFetchError
from .partitioner import Partitioner


class ShuffleManager:
    """Driver-owned registry of shuffle outputs.

    Map outputs are files on local disk; the manager only tracks paths,
    so worker processes can write buckets and report paths back through
    task results.
    """

    def __init__(self, spill_dir: str):
        self._spill_dir = spill_dir
        # (shuffle_id, map_partition) -> {reduce_partition: path}
        self._outputs: dict[tuple[int, int], dict[int, str]] = {}
        self._next_id = 0
        self._lock = threading.Lock()
        self.bytes_written = 0
        self.bytes_read = 0

    def new_shuffle_id(self) -> int:
        """Allocate a fresh shuffle id."""
        with self._lock:
            sid = self._next_id
            self._next_id += 1
        return sid

    def bucket_dir(self, shuffle_id: int) -> str:
        """Directory holding this shuffle's bucket files."""
        d = os.path.join(self._spill_dir, f"shuffle-{shuffle_id}")
        os.makedirs(d, exist_ok=True)
        return d

    def register_map_output(
        self, shuffle_id: int, map_partition: int, paths: dict[int, str]
    ) -> None:
        """Record one map task's bucket paths."""
        with self._lock:
            self._outputs[(shuffle_id, map_partition)] = paths

    def unregister_map_output(self, shuffle_id: int, map_partition: int) -> None:
        """Forget one map task's output (e.g. lost executor)."""
        with self._lock:
            self._outputs.pop((shuffle_id, map_partition), None)

    def map_output_paths(
        self, shuffle_id: int, num_map_partitions: int, reduce_partition: int
    ) -> list[str]:
        """Bucket paths a reduce task must fetch."""
        paths = []
        with self._lock:
            for m in range(num_map_partitions):
                bucket_map = self._outputs.get((shuffle_id, m))
                if bucket_map is None:
                    raise ShuffleFetchError(shuffle_id, m, reduce_partition)
                path = bucket_map.get(reduce_partition)
                if path is not None:
                    paths.append(path)
        return paths

    def clear(self) -> None:
        """Forget all registered outputs."""
        with self._lock:
            self._outputs.clear()


def write_map_output(
    bucket_dir: str,
    shuffle_id: int,
    map_partition: int,
    records: Iterable[tuple[Any, Any]],
    partitioner: Partitioner,
) -> tuple[dict[int, str], int]:
    """Partition ``records`` into buckets and persist each; returns
    ``(paths_by_reducer, bytes_written)``.
    """
    buckets: dict[int, list[tuple[Any, Any]]] = defaultdict(list)
    for k, v in records:
        buckets[partitioner.partition(k)].append((k, v))
    paths: dict[int, str] = {}
    total = 0
    for reduce_partition, items in buckets.items():
        path = os.path.join(
            bucket_dir, f"map-{map_partition}-reduce-{reduce_partition}.pkl"
        )
        blob = pickle.dumps(items, protocol=pickle.HIGHEST_PROTOCOL)
        with open(path, "wb") as f:
            f.write(blob)
        total += len(blob)
        paths[reduce_partition] = path
    return paths, total


def read_reduce_input(paths: list[str]) -> Iterator[tuple[Any, Any]]:
    """Stream all (k, v) records destined for one reducer.

    Fetched bytes are charged to the running task's
    ``TaskMetrics.shuffle_bytes_read`` (when a task context is active),
    mirroring how `write_map_output` feeds ``shuffle_bytes_written``.
    """
    from . import task_context

    ctx = task_context.get()
    for path in paths:
        with open(path, "rb") as f:
            blob = f.read()
        if ctx is not None:
            ctx.metrics.shuffle_bytes_read += len(blob)
        yield from pickle.loads(blob)

"""Execution backends: where tasks physically run.

Four backends, selected by the master URL:

- ``local`` / ``local[1]``      — serial in the driver thread; deterministic.
  ``local[n]`` for n > 1 is rejected: this backend cannot deliver the
  requested parallelism (use ``threads[n]``/``processes[n]`` for real
  concurrency, or ``simulated[n]`` for measured-makespan analysis).
- ``threads[n]``                — a thread pool; real concurrency for
  I/O-bound tasks (numpy releases the GIL in hot kernels).
- ``processes[n]``              — a process pool with cloudpickle task
  shipping; true parallelism, true serialization boundaries.
- ``simulated[n]``              — runs tasks serially but *times each one*;
  job wall-clock on n virtual slots is then the measured-task makespan.
  This is how the paper's 64–512-core runs (Figure 8e/f) are reproduced
  on a small machine: per-partition work is measured, only the slot
  count is virtual.
"""

from __future__ import annotations

import re
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, ThreadPoolExecutor, wait
from typing import Callable, Iterator

from .executor import Task, TaskOutcome, process_entry, run_task
from .storage import BlockManager

_MASTER_RE = re.compile(r"^(local|threads|processes|simulated)(?:\[(\d+|\*)\])?$")


def parse_master(master: str) -> tuple[str, int]:
    """Parse a master URL like ``threads[4]`` into (mode, slots).

    ``local`` is strictly serial, so it always yields one slot;
    ``local[n]`` with n > 1 (or ``local[*]``) is rejected rather than
    silently dropping the requested parallelism.
    """
    m = _MASTER_RE.match(master)
    if not m:
        raise ValueError(
            f"bad master {master!r}; expected local | threads[n] | "
            "processes[n] | simulated[n]"
        )
    mode, slots = m.group(1), m.group(2)
    if mode == "local":
        if slots is None or slots == "1":
            return "local", 1
        if slots != "*" and int(slots) <= 0:
            raise ValueError(f"slot count must be positive in master {master!r}")
        raise ValueError(
            f"master {master!r} requests parallel slots but the local "
            "backend runs serially; use threads[n] or processes[n] for "
            "real concurrency, or simulated[n] for makespan analysis"
        )
    if slots == "*" or slots is None:
        import os

        n = os.cpu_count() or 1
    else:
        n = int(slots)
    if n <= 0:
        raise ValueError(f"slot count must be positive in master {master!r}")
    return mode, n


class Backend:
    """Runs batches of tasks, yielding outcomes as they complete."""

    name = "base"

    def __init__(self, slots: int):
        self.slots = slots

    def run(self, tasks: list[Task]) -> Iterator[TaskOutcome]:
        """Execute the given tasks, yielding outcomes as they complete."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release executor resources."""
        pass


class LocalBackend(Backend):
    """Serial execution against the driver's block manager."""

    name = "local"

    def __init__(self, slots: int, block_manager: BlockManager):
        super().__init__(slots)
        self._bm = block_manager

    def run(self, tasks: list[Task]) -> Iterator[TaskOutcome]:
        """Execute the given tasks, yielding outcomes as they complete."""
        for t in tasks:
            yield run_task(t, self._bm)


class SimulatedBackend(LocalBackend):
    """Serial execution whose slot count parameterises makespan analysis.

    Identical to `LocalBackend` at run time; the DAG scheduler records
    per-task durations, and `JobMetrics.simulated_wall(slots)` yields
    the virtual parallel wall-clock.
    """

    name = "simulated"


class ThreadBackend(Backend):
    """Thread-pool execution sharing the driver's block manager."""
    name = "threads"

    def __init__(self, slots: int, block_manager: BlockManager):
        super().__init__(slots)
        self._bm = block_manager
        self._pool = ThreadPoolExecutor(max_workers=slots, thread_name_prefix="executor")

    def run(self, tasks: list[Task]) -> Iterator[TaskOutcome]:
        """Execute the given tasks, yielding outcomes as they complete."""
        futures: set[Future[TaskOutcome]] = {
            self._pool.submit(run_task, t, self._bm) for t in tasks
        }
        while futures:
            done, futures = wait(futures, return_when=FIRST_COMPLETED)
            for f in done:
                yield f.result()

    def shutdown(self) -> None:
        """Release executor resources."""
        self._pool.shutdown(wait=True)


class ProcessBackend(Backend):
    """Process pool with cloudpickle task shipping.

    This is the backend with real Spark-like boundaries: closures must
    serialize, broadcast values are fetched from their backing files
    once per worker, and block-manager caches are per-process.
    """

    name = "processes"

    def __init__(self, slots: int):
        super().__init__(slots)
        self._pool = ProcessPoolExecutor(max_workers=slots)

    def run(self, tasks: list[Task]) -> Iterator[TaskOutcome]:
        """Execute the given tasks, yielding outcomes as they complete."""
        import cloudpickle

        futures: set[Future[bytes]] = set()
        for t in tasks:
            blob = cloudpickle.dumps(t)
            futures.add(self._pool.submit(process_entry, blob))
        import pickle

        while futures:
            done, futures = wait(futures, return_when=FIRST_COMPLETED)
            for f in done:
                # process_entry returns an envelope: the pickled outcome
                # plus a trailer timing its own serialization, measured
                # after the outcome's telemetry buffer was sealed.
                payload, trailer = pickle.loads(f.result())
                outcome = pickle.loads(payload)
                if trailer is not None and outcome.telemetry is not None:
                    outcome.telemetry.add_span(
                        "task.serialize", start=trailer["start"],
                        dur=trailer["dur"], nbytes=trailer["nbytes"],
                    )
                yield outcome

    def shutdown(self) -> None:
        """Release executor resources."""
        self._pool.shutdown(wait=True)


def make_backend(
    master: str,
    block_manager: BlockManager,
    factory: Callable[[str, int, BlockManager], Backend] | None = None,
) -> Backend:
    """Instantiate the backend named by ``master``."""
    mode, slots = parse_master(master)
    if factory is not None:
        return factory(mode, slots, block_manager)
    if mode == "local":
        return LocalBackend(slots, block_manager)
    if mode == "simulated":
        return SimulatedBackend(slots, block_manager)
    if mode == "threads":
        return ThreadBackend(slots, block_manager)
    if mode == "processes":
        return ProcessBackend(slots)
    raise AssertionError(f"unreachable mode {mode}")  # pragma: no cover

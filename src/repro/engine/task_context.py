"""Per-task execution context (thread-local), like Spark's TaskContext.

Carries the task's identity, its metrics object, and the task-local
accumulator buffer.  `Accumulator.add` resolves through this so that
updates made inside executor code are buffered and shipped back with
the task result instead of mutating driver state mid-flight.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from .accumulator import AccumulatorParam
from .metrics import TaskMetrics

_tls = threading.local()


@dataclass
class TaskContext:
    """Identity, metrics, and accumulator buffer of the running task."""
    stage_id: int
    partition: int
    attempt: int
    metrics: TaskMetrics
    acc_updates: dict[int, Any] = field(default_factory=dict)
    _acc_params: dict[int, AccumulatorParam[Any]] = field(default_factory=dict)
    sanitize: bool = False
    # Worker-side telemetry buffer (repro.obs.collect.WorkerTelemetry)
    # when the run collects task spans; task code reaches it through
    # repro.obs.collect.task_span, never directly.
    telemetry: Any = None
    # bid -> (broadcast handle, the value object this task observed);
    # re-verified against the broadcast-time hash at task end.
    _broadcasts: dict[int, tuple[Any, Any]] = field(default_factory=dict)

    def accumulate(self, aid: int, param: AccumulatorParam[Any], term: Any) -> None:
        """Buffer an accumulator update for this task."""
        if aid in self.acc_updates:
            self.acc_updates[aid] = param.add(self.acc_updates[aid], term)
        else:
            self.acc_updates[aid] = param.add(param.zero(), term)
            self._acc_params[aid] = param

    def describe(self) -> str:
        """Task identity for sanitizer messages."""
        return (
            f"stage={self.stage_id} partition={self.partition} "
            f"attempt={self.attempt}"
        )

    def note_broadcast(self, broadcast: Any, value: Any) -> None:
        """Remember a broadcast touched by this task (write-barrier)."""
        self._broadcasts.setdefault(broadcast.bid, (broadcast, value))

    def verify_broadcasts(self) -> None:
        """Re-hash every touched broadcast; raise on mutation."""
        for broadcast, value in self._broadcasts.values():
            broadcast.verify(value, self.describe())


def get() -> TaskContext | None:
    """The TaskContext of the currently-running task, or None on the driver."""
    return getattr(_tls, "ctx", None)


def set_context(ctx: TaskContext | None) -> None:
    """Install (or clear) the current thread's TaskContext."""
    _tls.ctx = ctx


class activate:
    """Context manager installing a TaskContext for the current thread."""

    def __init__(self, ctx: TaskContext):
        self._ctx = ctx
        self._prev: TaskContext | None = None

    def __enter__(self) -> TaskContext:
        self._prev = get()
        set_context(self._ctx)
        return self._ctx

    def __exit__(self, *exc: object) -> None:
        set_context(self._prev)

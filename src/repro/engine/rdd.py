"""Resilient Distributed Datasets: lazy, lineage-tracked collections.

This module is the heart of the mini-Spark engine.  An `RDD` is an
immutable description of how to *compute* a partitioned collection:
either from a source (an in-memory list, a file) or by transforming
parent RDDs.  Nothing executes until an action is called; the
`DAGScheduler` then walks the lineage graph, cuts it into stages at
shuffle boundaries, and runs tasks.

Lineage is also the fault-tolerance story (paper Section II-B): a lost
partition — task crash, evicted cache block — is recomputed by
re-running `compute` on the same split, which is deterministic for all
transformations here.
"""

from __future__ import annotations

import itertools
import threading
from collections import defaultdict
from typing import Any, Callable, Generic, Iterable, Iterator, TypeVar

from .partitioner import HashPartitioner, Partitioner
from .storage import BlockManager, StorageLevel

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K")
V = TypeVar("V")

_next_rdd_id = itertools.count()
_id_lock = threading.Lock()


def _new_rdd_id() -> int:
    with _id_lock:
        return next(_next_rdd_id)


class Dependency:
    """Edge in the lineage graph."""

    def __init__(self, parent: "RDD[Any]"):
        self.parent = parent


class NarrowDependency(Dependency):
    """Each child partition depends on a bounded set of parent partitions.

    ``parent_partitions(i)`` lists the parent splits feeding child split i.
    """

    def __init__(self, parent: "RDD[Any]", mapping: Callable[[int], list[int]] | None = None):
        super().__init__(parent)
        self._mapping = mapping or (lambda i: [i])

    def parent_partitions(self, child_partition: int) -> list[int]:
        """Parent splits feeding the given child split."""
        return self._mapping(child_partition)


class ShuffleDependency(Dependency):
    """A wide dependency: all parent partitions feed all child partitions."""

    def __init__(self, parent: "RDD[tuple[Any, Any]]", partitioner: Partitioner, shuffle_id: int):
        super().__init__(parent)
        self.partitioner = partitioner
        self.shuffle_id = shuffle_id


class TaskRuntime:
    """Per-task services handed to `RDD.compute`.

    - ``block_manager``: the executor-local cache for persisted RDDs.
    - ``shuffle_inputs``: map (shuffle_id, reduce_partition) -> list of
      bucket file paths, resolved by the driver when the task was built.
    """

    def __init__(
        self,
        block_manager: BlockManager,
        shuffle_inputs: dict[tuple[int, int], list[str]] | None = None,
    ):
        self.block_manager = block_manager
        self.shuffle_inputs = shuffle_inputs or {}


class RDD(Generic[T]):
    """Base RDD.  Subclasses implement `compute`; everything else is shared."""

    def __init__(self, ctx: Any, deps: list[Dependency], num_partitions: int):
        self.rdd_id = _new_rdd_id()
        self.ctx = ctx
        self.deps = deps
        self._num_partitions = num_partitions
        self.storage_level: StorageLevel | None = None

    # -- pickling: the context never travels to executors -----------------
    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        state["ctx"] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)

    # -- structure ---------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        """Number of partitions in this RDD."""
        return self._num_partitions

    def partitions(self) -> range:
        """Iterable of partition indices."""
        return range(self._num_partitions)

    def compute(self, split: int, runtime: TaskRuntime) -> Iterator[T]:
        """Produce the elements of one partition (subclass hook)."""
        raise NotImplementedError

    def iterator(self, split: int, runtime: TaskRuntime) -> Iterator[T]:
        """Cache-aware compute: serve from the block manager when persisted."""
        if self.storage_level is not None:
            cached = runtime.block_manager.get(self.rdd_id, split)
            if cached is not None:
                return iter(cached)
            data = list(self.compute(split, runtime))
            runtime.block_manager.put(self.rdd_id, split, data, self.storage_level)
            return iter(data)
        return self.compute(split, runtime)

    # -- persistence ---------------------------------------------------------
    def persist(self, level: StorageLevel = StorageLevel.MEMORY) -> "RDD[T]":
        """Materialize partitions into the block manager on first compute."""
        self.storage_level = level
        return self

    def cache(self) -> "RDD[T]":
        """Shorthand for ``persist(StorageLevel.MEMORY)``."""
        return self.persist(StorageLevel.MEMORY)

    def unpersist(self) -> "RDD[T]":
        """Drop cached blocks; future actions recompute via lineage."""
        self.storage_level = None
        if self.ctx is not None:
            self.ctx.block_manager.evict(self.rdd_id)
        return self

    # -- transformations (lazy) ---------------------------------------------
    def map(self, f: Callable[[T], U]) -> "RDD[U]":
        """Element-wise transformation."""
        return MappedRDD(self, f)

    def filter(self, f: Callable[[T], bool]) -> "RDD[T]":
        """Keep elements where ``f`` is true."""
        return FilteredRDD(self, f)

    def flat_map(self, f: Callable[[T], Iterable[U]]) -> "RDD[U]":
        """Map each element to zero or more outputs."""
        return FlatMappedRDD(self, f)

    def map_partitions(self, f: Callable[[Iterator[T]], Iterable[U]]) -> "RDD[U]":
        """Transform a whole partition's iterator at once."""
        return MapPartitionsRDD(self, lambda _i, it: f(it))

    def map_partitions_with_index(
        self, f: Callable[[int, Iterator[T]], Iterable[U]]
    ) -> "RDD[U]":
        """Like map_partitions, with the partition index as first argument."""
        return MapPartitionsRDD(self, f)

    def glom(self) -> "RDD[list[T]]":
        """One list per partition (debug/inspection helper)."""
        return MapPartitionsRDD(self, lambda _i, it: [list(it)])

    def union(self, other: "RDD[T]") -> "RDD[T]":
        """Concatenate two RDDs (partitions are kept side by side)."""
        return UnionRDD(self, other)

    def zip_with_index(self) -> "RDD[tuple[T, int]]":
        """Pair each element with its global index (requires a count pass)."""
        sizes = self.map_partitions(lambda it: [sum(1 for _ in it)]).collect()
        offsets = [0]
        for s in sizes[:-1]:
            offsets.append(offsets[-1] + s)

        def with_index(i: int, it: Iterator[T]) -> Iterator[tuple[T, int]]:
            for j, x in enumerate(it):
                yield (x, offsets[i] + j)

        return MapPartitionsRDD(self, with_index)

    def key_by(self, f: Callable[[T], K]) -> "RDD[tuple[K, T]]":
        """Pair each element with ``f(element)`` as its key."""
        return self.map(lambda x: (f(x), x))

    def map_values(self: "RDD[tuple[K, V]]", f: Callable[[V], U]) -> "RDD[tuple[K, U]]":
        """Transform values, preserving keys (and partitioning)."""
        return self.map(lambda kv: (kv[0], f(kv[1])))

    def partition_by(
        self: "RDD[tuple[K, V]]", partitioner: Partitioner
    ) -> "RDD[tuple[K, V]]":
        """Shuffle pairs so each key lands on ``partitioner``'s partition."""
        return ShuffledRDD(self, partitioner)

    def group_by_key(
        self: "RDD[tuple[K, V]]", num_partitions: int | None = None
    ) -> "RDD[tuple[K, list[V]]]":
        """Group values sharing a key (shuffles, then groups per partition)."""
        p = HashPartitioner(num_partitions or self.num_partitions)
        shuffled = ShuffledRDD(self, p)

        def group(it: Iterator[tuple[K, V]]) -> Iterator[tuple[K, list[V]]]:
            acc: dict[K, list[V]] = defaultdict(list)
            for k, v in it:
                acc[k].append(v)
            yield from acc.items()

        return shuffled.map_partitions(group)

    def reduce_by_key(
        self: "RDD[tuple[K, V]]",
        f: Callable[[V, V], V],
        num_partitions: int | None = None,
    ) -> "RDD[tuple[K, V]]":
        """Per-batch reduce of values sharing a key."""
        p = HashPartitioner(num_partitions or self.num_partitions)

        def combine(it: Iterator[tuple[K, V]]) -> Iterator[tuple[K, V]]:
            acc: dict[K, V] = {}
            for k, v in it:
                acc[k] = f(acc[k], v) if k in acc else v
            yield from acc.items()

        # map-side combine, then shuffle, then reduce-side combine
        combined = MapPartitionsRDD(self, lambda _i, it: combine(it))
        shuffled = ShuffledRDD(combined, p)
        return MapPartitionsRDD(shuffled, lambda _i, it: combine(it))

    def distinct(self, num_partitions: int | None = None) -> "RDD[T]":
        """Unique elements (via a shuffle)."""
        return (
            self.map(lambda x: (x, None))
            .reduce_by_key(lambda a, _b: a, num_partitions)
            .map(lambda kv: kv[0])
        )

    def coalesce(self, num_partitions: int) -> "RDD[T]":
        """Shrink the partition count without shuffling."""
        return CoalescedRDD(self, num_partitions)

    def sample(self, fraction: float, seed: int = 0) -> "RDD[T]":
        """Bernoulli sample of the RDD (deterministic in ``seed``)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")

        def sample_partition(i: int, it: Iterator[T]) -> Iterator[T]:
            import random

            rng = random.Random((seed << 16) ^ i)
            return (x for x in it if rng.random() < fraction)

        return MapPartitionsRDD(self, sample_partition)

    def sort_by(
        self,
        key_func: Callable[[T], Any],
        ascending: bool = True,
        num_partitions: int | None = None,
    ) -> "RDD[T]":
        """Globally sort via a sampled range partitioner + per-partition sort
        (the same two-phase strategy Spark uses)."""
        from .partitioner import RangePartitioner

        p = num_partitions or self.num_partitions
        keys = sorted(key_func(x) for x in self.sample(min(1.0, 0.2)).collect())
        if not keys:
            keys = sorted(key_func(x) for x in self.collect())
        if p > 1 and keys:
            step = max(1, len(keys) // p)
            bounds = keys[step::step][: p - 1]
        else:
            bounds = []
        partitioner = RangePartitioner(bounds) if bounds else HashPartitioner(1)
        shuffled = ShuffledRDD(self.map(lambda x: (key_func(x), x)), partitioner)

        def sort_partition(it: Iterator[tuple[Any, T]]) -> Iterator[T]:
            items = sorted(it, key=lambda kv: kv[0], reverse=not ascending)
            return (v for _k, v in items)

        out = shuffled.map_partitions(sort_partition)
        if not ascending:
            # Range partitions are in ascending key order; emit them reversed.
            return ReorderedPartitionsRDD(out, list(reversed(range(out.num_partitions))))
        return out

    def cartesian(self, other: "RDD[U]") -> "RDD[tuple[T, U]]":
        """All pairs (x, y).  The right side is collected per task — fine
        at mini scale, quadratic like the real thing."""
        other_data = other.glom().collect()

        def pairs(i: int, it: Iterator[T]) -> Iterator[tuple[T, U]]:
            for x in it:
                for chunk in other_data:
                    for y in chunk:
                        yield (x, y)

        return MapPartitionsRDD(self, pairs)

    def keys(self: "RDD[tuple[K, V]]") -> "RDD[K]":
        """First elements of the pairs."""
        return self.map(lambda kv: kv[0])

    def values(self: "RDD[tuple[K, V]]") -> "RDD[V]":
        """Second elements of the pairs."""
        return self.map(lambda kv: kv[1])

    def flat_map_values(
        self: "RDD[tuple[K, V]]", f: Callable[[V], Iterable[U]]
    ) -> "RDD[tuple[K, U]]":
        """flat_map over values, preserving keys."""
        return self.flat_map(lambda kv: ((kv[0], u) for u in f(kv[1])))

    def cogroup(
        self: "RDD[tuple[K, V]]",
        other: "RDD[tuple[K, U]]",
        num_partitions: int | None = None,
    ) -> "RDD[tuple[K, tuple[list[V], list[U]]]]":
        """Group both RDDs by key into ``(key, ([lefts], [rights]))`` —
        the primitive all join flavours are built on."""
        left = self.map_values(lambda v: (0, v))
        right = other.map_values(lambda v: (1, v))
        grouped = left.union(right).group_by_key(
            num_partitions or max(self.num_partitions, other.num_partitions)
        )

        def split(kv: tuple[K, list[tuple[int, Any]]]) -> tuple[K, tuple[list[V], list[U]]]:
            k, tagged = kv
            lefts = [v for tag, v in tagged if tag == 0]
            rights = [v for tag, v in tagged if tag == 1]
            return (k, (lefts, rights))

        return grouped.map(split)

    def join(
        self: "RDD[tuple[K, V]]",
        other: "RDD[tuple[K, U]]",
        num_partitions: int | None = None,
    ) -> "RDD[tuple[K, tuple[V, U]]]":
        """Inner join by key."""

        def emit(kv: tuple[K, tuple[list[V], list[U]]]) -> Iterator[tuple[K, tuple[V, U]]]:
            """Append an event (and stream it to the log file, if any)."""
            k, (lefts, rights) = kv
            for lv in lefts:
                for rv in rights:
                    yield (k, (lv, rv))

        return self.cogroup(other, num_partitions).flat_map(emit)

    def left_outer_join(
        self: "RDD[tuple[K, V]]",
        other: "RDD[tuple[K, U]]",
        num_partitions: int | None = None,
    ) -> "RDD[tuple[K, tuple[V, U | None]]]":
        """Left outer join: unmatched left keys pair with None."""

        def emit(kv: tuple[K, tuple[list[V], list[U]]]) -> Iterator[tuple[K, tuple[V, U | None]]]:
            """Append an event (and stream it to the log file, if any)."""
            k, (lefts, rights) = kv
            for lv in lefts:
                if rights:
                    for rv in rights:
                        yield (k, (lv, rv))
                else:
                    yield (k, (lv, None))

        return self.cogroup(other, num_partitions).flat_map(emit)

    def subtract_by_key(
        self: "RDD[tuple[K, V]]",
        other: "RDD[tuple[K, Any]]",
        num_partitions: int | None = None,
    ) -> "RDD[tuple[K, V]]":
        """Pairs whose key does NOT appear in ``other``."""

        def emit(kv: tuple[K, tuple[list[V], list[Any]]]) -> Iterator[tuple[K, V]]:
            """Append an event (and stream it to the log file, if any)."""
            k, (lefts, rights) = kv
            if not rights:
                for lv in lefts:
                    yield (k, lv)

        return self.cogroup(other, num_partitions).flat_map(emit)

    # -- actions (eager) ------------------------------------------------------
    def _run(self, func: Callable[[int, Iterator[T]], U]) -> list[U]:
        if self.ctx is None:
            raise RuntimeError("actions can only be invoked on the driver")
        return self.ctx.run_job(self, func)

    def collect(self) -> list[T]:
        """Materialize every element on the driver, in partition order."""
        chunks = self._run(lambda _i, it: list(it))
        return [x for chunk in chunks for x in chunk]

    def count(self) -> int:
        """Number of elements."""
        return sum(self._run(lambda _i, it: sum(1 for _ in it)))

    def reduce(self, f: Callable[[T, T], T]) -> T:
        """Fold all elements with an associative operator (empty RDD raises)."""
        def reduce_partition(_i: int, it: Iterator[T]) -> list[T]:
            acc = None
            empty = True
            for x in it:
                acc = x if empty else f(acc, x)
                empty = False
            return [] if empty else [acc]

        parts = [x for chunk in self._run(reduce_partition) for x in chunk]
        if not parts:
            raise ValueError("reduce() of empty RDD")
        out = parts[0]
        for x in parts[1:]:
            out = f(out, x)
        return out

    def take(self, n: int) -> list[T]:
        """First n elements."""
        # Simple implementation: collect then slice (fine at mini scale).
        return self.collect()[:n]

    def first(self) -> T:
        """First element (raises on an empty RDD)."""
        items = self.take(1)
        if not items:
            raise ValueError("first() of empty RDD")
        return items[0]

    def sum(self) -> Any:
        """Sum of all elements."""
        return sum(self._run(lambda _i, it: sum(it)))

    def fold(self, zero: T, f: Callable[[T, T], T]) -> T:
        """Like reduce, but with a neutral element (safe on empty RDDs)."""
        def fold_partition(_i: int, it: Iterator[T]) -> T:
            acc = zero
            for x in it:
                acc = f(acc, x)
            return acc

        out = zero
        for part in self._run(fold_partition):
            out = f(out, part)
        return out

    def aggregate(
        self,
        zero: U,
        seq_op: Callable[[U, T], U],
        comb_op: Callable[[U, U], U],
    ) -> U:
        """Two-operator aggregation: ``seq_op`` folds within a partition,
        ``comb_op`` merges partition results (Spark's aggregate).

        The zero value is deep-copied per partition (as Spark does), so
        mutable accumulators are safe.
        """
        import copy

        def agg_partition(_i: int, it: Iterator[T]) -> U:
            acc = copy.deepcopy(zero)
            for x in it:
                acc = seq_op(acc, x)
            return acc

        parts = self._run(agg_partition)
        out = copy.deepcopy(zero)
        for p in parts:
            out = comb_op(out, p)
        return out

    def max(self) -> T:
        """Largest element."""
        return self.reduce(lambda a, b: a if a >= b else b)

    def min(self) -> T:
        """Smallest element."""
        return self.reduce(lambda a, b: a if a <= b else b)

    def take_ordered(self, n: int, key: Callable[[T], Any] | None = None) -> list[T]:
        """The n smallest elements (by ``key``), merged from per-partition
        heaps — no global sort."""
        import heapq

        if n <= 0:
            return []
        chunks = self._run(lambda _i, it: heapq.nsmallest(n, it, key=key))
        return heapq.nsmallest(n, [x for c in chunks for x in c], key=key)

    def stats(self) -> "StatCounter":
        """Count / mean / variance / min / max in one pass (numerically
        stable parallel Welford merge, like Spark's StatCounter)."""
        return self.aggregate(
            StatCounter(), lambda s, x: s.add(x), lambda a, b: a.merge(b)
        )

    def foreach(self, f: Callable[[T], None]) -> None:
        """Run ``f`` on every element for its side effects (on executors)."""
        def run(_i: int, it: Iterator[T]) -> None:
            """Execute the given tasks, yielding outcomes as they complete."""
            for x in it:
                f(x)

        self._run(run)

    def foreach_partition(self, f: Callable[[Iterator[T]], None]) -> None:
        """Run ``f`` once per partition iterator (on executors)."""
        self._run(lambda _i, it: f(it))

    def foreach_partition_with_index(self, f: Callable[[int, Iterator[T]], None]) -> None:
        """Like foreach_partition, with the partition index as first arg."""
        self._run(lambda i, it: f(i, it))

    def collect_as_map(self: "RDD[tuple[K, V]]") -> dict[K, V]:
        """Collect pairs into a dict (later keys win)."""
        return dict(self.collect())

    def count_by_key(self: "RDD[tuple[K, V]]") -> dict[K, int]:
        """Occurrences of each key."""
        out: dict[K, int] = defaultdict(int)
        for k, n in self.map(lambda kv: (kv[0], 1)).reduce_by_key(lambda a, b: a + b).collect():
            out[k] = n
        return dict(out)

    def save_as_text_file(self, path: str) -> None:
        """Write one ``part-NNNNN`` file per partition under ``path``."""
        import os

        os.makedirs(path, exist_ok=True)
        chunks = self._run(lambda i, it: (i, [str(x) for x in it]))
        for i, lines in chunks:
            with open(os.path.join(path, f"part-{i:05d}"), "w") as f:
                for line in lines:
                    f.write(line + "\n")


class StatCounter:
    """Mergeable streaming statistics (count, mean, variance, min, max)."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, x: float) -> "StatCounter":
        """Add one element."""
        x = float(x)
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        self.min = min(self.min, x)
        self.max = max(self.max, x)
        return self

    def merge(self, other: "StatCounter") -> "StatCounter":
        """Merge another instance into this one; returns self."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count, self.mean, self._m2 = other.count, other.mean, other._m2
            self.min, self.max = other.min, other.max
            return self
        delta = other.mean - self.mean
        total = self.count + other.count
        self.mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    @property
    def variance(self) -> float:
        """Population variance."""
        return self._m2 / self.count if self.count else float("nan")

    @property
    def stdev(self) -> float:
        """Population standard deviation."""
        return self.variance ** 0.5

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StatCounter(count={self.count}, mean={self.mean:.6g}, "
            f"stdev={self.stdev:.6g}, min={self.min:.6g}, max={self.max:.6g})"
        )


class ParallelCollectionRDD(RDD[T]):
    """Source RDD over an in-memory sequence, sliced into partitions."""

    def __init__(self, ctx: Any, data: Iterable[T], num_partitions: int):
        items = list(data)
        if num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive, got {num_partitions}")
        super().__init__(ctx, [], num_partitions)
        base, extra = divmod(len(items), num_partitions)
        self._slices: list[list[T]] = []
        start = 0
        for i in range(num_partitions):
            size = base + (1 if i < extra else 0)
            self._slices.append(items[start : start + size])
            start += size

    def compute(self, split: int, runtime: TaskRuntime) -> Iterator[T]:
        """Compute one partition of this RDD."""
        return iter(self._slices[split])


class SourceRDD(RDD[T]):
    """RDD over any external source exposing ``num_splits()``/``read_split(i)``.

    `MiniHDFS` files plug in here, which is how "read an input file from
    HDFS and generate RDDs" (Algorithm 2, line 1) is realised.
    """

    def __init__(self, ctx: Any, source: Any):
        super().__init__(ctx, [], source.num_splits())
        self._source = source

    def compute(self, split: int, runtime: TaskRuntime) -> Iterator[T]:
        """Compute one partition of this RDD."""
        return iter(self._source.read_split(split))


class MappedRDD(RDD[U]):
    """map() as a concrete RDD node."""
    def __init__(self, parent: RDD[T], f: Callable[[T], U]):
        super().__init__(parent.ctx, [NarrowDependency(parent)], parent.num_partitions)
        self._parent = parent
        self._f = f

    def compute(self, split: int, runtime: TaskRuntime) -> Iterator[U]:
        """Compute one partition of this RDD."""
        return map(self._f, self._parent.iterator(split, runtime))


class FilteredRDD(RDD[T]):
    """filter() as a concrete RDD node."""
    def __init__(self, parent: RDD[T], f: Callable[[T], bool]):
        super().__init__(parent.ctx, [NarrowDependency(parent)], parent.num_partitions)
        self._parent = parent
        self._f = f

    def compute(self, split: int, runtime: TaskRuntime) -> Iterator[T]:
        """Compute one partition of this RDD."""
        return filter(self._f, self._parent.iterator(split, runtime))


class FlatMappedRDD(RDD[U]):
    """flat_map() as a concrete RDD node."""
    def __init__(self, parent: RDD[T], f: Callable[[T], Iterable[U]]):
        super().__init__(parent.ctx, [NarrowDependency(parent)], parent.num_partitions)
        self._parent = parent
        self._f = f

    def compute(self, split: int, runtime: TaskRuntime) -> Iterator[U]:
        """Compute one partition of this RDD."""
        for x in self._parent.iterator(split, runtime):
            yield from self._f(x)


class MapPartitionsRDD(RDD[U]):
    """map_partitions_with_index() as a concrete RDD node."""
    def __init__(self, parent: RDD[T], f: Callable[[int, Iterator[T]], Iterable[U]]):
        super().__init__(parent.ctx, [NarrowDependency(parent)], parent.num_partitions)
        self._parent = parent
        self._f = f

    def compute(self, split: int, runtime: TaskRuntime) -> Iterator[U]:
        """Compute one partition of this RDD."""
        return iter(self._f(split, self._parent.iterator(split, runtime)))


class UnionRDD(RDD[T]):
    """Concatenation of two RDDs; child partitions map 1:1 onto parents'."""

    def __init__(self, left: RDD[T], right: RDD[T]):
        n_left = left.num_partitions
        mapping_left = lambda i: [i] if i < n_left else []  # noqa: E731
        mapping_right = lambda i: [i - n_left] if i >= n_left else []  # noqa: E731
        super().__init__(
            left.ctx,
            [NarrowDependency(left, mapping_left), NarrowDependency(right, mapping_right)],
            n_left + right.num_partitions,
        )
        self._left = left
        self._right = right
        self._n_left = n_left

    def compute(self, split: int, runtime: TaskRuntime) -> Iterator[T]:
        """Compute one partition of this RDD."""
        if split < self._n_left:
            return self._left.iterator(split, runtime)
        return self._right.iterator(split - self._n_left, runtime)


class CoalescedRDD(RDD[T]):
    """Reduce partition count without a shuffle (narrow many-to-one dep)."""

    def __init__(self, parent: RDD[T], num_partitions: int):
        if num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive, got {num_partitions}")
        n_parent = parent.num_partitions
        groups: list[list[int]] = [[] for _ in range(min(num_partitions, n_parent))]
        for i in range(n_parent):
            groups[i % len(groups)].append(i)
        super().__init__(
            parent.ctx,
            [NarrowDependency(parent, lambda i, g=groups: g[i])],
            len(groups),
        )
        self._parent = parent
        self._groups = groups

    def compute(self, split: int, runtime: TaskRuntime) -> Iterator[T]:
        """Compute one partition of this RDD."""
        for p in self._groups[split]:
            yield from self._parent.iterator(p, runtime)


class ReorderedPartitionsRDD(RDD[T]):
    """Present a parent's partitions in a different order (narrow dep)."""

    def __init__(self, parent: RDD[T], order: list[int]):
        if sorted(order) != list(range(parent.num_partitions)):
            raise ValueError("order must be a permutation of parent partitions")
        super().__init__(
            parent.ctx,
            [NarrowDependency(parent, lambda i, o=order: [o[i]])],
            parent.num_partitions,
        )
        self._parent = parent
        self._order = order

    def compute(self, split: int, runtime: TaskRuntime) -> Iterator[T]:
        """Compute one partition of this RDD."""
        return self._parent.iterator(self._order[split], runtime)


class ShuffledRDD(RDD[tuple[K, V]]):
    """Reduce side of a shuffle: reads the bucket files addressed to it.

    The map side is executed by the DAGScheduler as a separate
    ShuffleMapStage; by the time this RDD computes, its input paths are
    in ``runtime.shuffle_inputs``.
    """

    def __init__(self, parent: RDD[tuple[K, V]], partitioner: Partitioner):
        if parent.ctx is None:
            raise RuntimeError("ShuffledRDD must be created on the driver")
        shuffle_id = parent.ctx.shuffle_manager.new_shuffle_id()
        super().__init__(
            parent.ctx,
            [ShuffleDependency(parent, partitioner, shuffle_id)],
            partitioner.num_partitions,
        )
        self.shuffle_id = shuffle_id
        self.partitioner = partitioner

    def compute(self, split: int, runtime: TaskRuntime) -> Iterator[tuple[K, V]]:
        """Compute one partition of this RDD."""
        from .shuffle import read_reduce_input

        paths = runtime.shuffle_inputs.get((self.shuffle_id, split))
        if paths is None:
            raise RuntimeError(
                f"shuffle {self.shuffle_id} inputs for partition {split} were not "
                "resolved; was this RDD computed outside the scheduler?"
            )
        return read_reduce_input(paths)

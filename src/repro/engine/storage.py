"""Block manager: the executor-side cache backing ``rdd.cache()``.

Supports two storage levels, like Spark: MEMORY (a dict of materialized
partition lists) and DISK (pickled partition files in a spill
directory).  Eviction drops blocks; lineage makes that safe because a
lost block is recomputed from the parent RDD — the fault-recovery
mechanism the paper contrasts against MapReduce's replication
(Section II-B, "Spark reconstructs RDDs via lineage").
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from enum import Enum
from typing import Any


class StorageLevel(Enum):
    """Where a cached block lives."""
    MEMORY = "memory"
    DISK = "disk"


class BlockManager:
    """Stores materialized RDD partitions keyed by (rdd_id, partition)."""

    def __init__(self, spill_dir: str | None = None):
        self._memory: dict[tuple[int, int], list[Any]] = {}
        self._disk: dict[tuple[int, int], str] = {}
        self._spill_dir = spill_dir
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def _sanitize_touch(self, key: tuple[int, int], write: bool) -> None:
        """Feed the race detector when a sanitized task touches a block.

        Every internal access happens under ``self._lock``, so the lock
        name is passed explicitly — correct engine code never shrinks
        the candidate lockset to empty.
        """
        from . import sanitize, task_context

        if task_context.get() is None:
            return
        san = sanitize.current()
        if san is not None:
            san.record_access(
                f"block:{key[0]}.{key[1]}",
                write=write,
                locks=("BlockManager._lock",),
            )

    def put(self, rdd_id: int, partition: int, data: list[Any], level: StorageLevel) -> None:
        """Store a materialized partition."""
        key = (rdd_id, partition)
        self._sanitize_touch(key, write=True)
        if level is StorageLevel.MEMORY:
            with self._lock:
                self._memory[key] = data
        else:
            spill_dir = self._spill_dir or tempfile.gettempdir()
            os.makedirs(spill_dir, exist_ok=True)
            fd, path = tempfile.mkstemp(prefix=f"block-{rdd_id}-{partition}-", dir=spill_dir)
            with os.fdopen(fd, "wb") as f:
                pickle.dump(data, f, protocol=pickle.HIGHEST_PROTOCOL)
            with self._lock:
                self._disk[key] = path

    def get(self, rdd_id: int, partition: int) -> list[Any] | None:
        """Fetch a cached partition, or None on a miss."""
        key = (rdd_id, partition)
        self._sanitize_touch(key, write=False)
        with self._lock:
            if key in self._memory:
                self.hits += 1
                return self._memory[key]
            path = self._disk.get(key)
        if path is not None and os.path.exists(path):
            with open(path, "rb") as f:
                data = pickle.load(f)
            self.hits += 1
            return data
        self.misses += 1
        return None

    def contains(self, rdd_id: int, partition: int) -> bool:
        """True iff the block is cached at any level."""
        key = (rdd_id, partition)
        with self._lock:
            return key in self._memory or key in self._disk

    def evict(self, rdd_id: int, partition: int | None = None) -> int:
        """Drop cached blocks for an RDD (all partitions if None). Returns count."""
        dropped = 0
        with self._lock:
            for key in list(self._memory):
                if key[0] == rdd_id and (partition is None or key[1] == partition):
                    del self._memory[key]
                    dropped += 1
            for key in list(self._disk):
                if key[0] == rdd_id and (partition is None or key[1] == partition):
                    path = self._disk.pop(key)
                    if os.path.exists(path):
                        os.unlink(path)
                    dropped += 1
        return dropped

    def clear(self) -> None:
        """Drop every cached block."""
        with self._lock:
            self._memory.clear()
            for path in self._disk.values():
                if os.path.exists(path):
                    os.unlink(path)
            self._disk.clear()

    @property
    def num_memory_blocks(self) -> int:
        """Count of memory-resident blocks."""
        with self._lock:
            return len(self._memory)

    @property
    def num_disk_blocks(self) -> int:
        """Count of disk-spilled blocks."""
        with self._lock:
            return len(self._disk)

"""Fault and straggler injection.

The paper motivates Spark over MPI with fault tolerance ("one failed
process causes the whole job to fail", Section I) and models straggler
wait explicitly in its cost analysis (``t_straggling``, Section IV-C).
`FaultPlan` lets tests and benchmarks inject both: tasks that crash on
their first k attempts (then succeed via lineage recomputation) and
tasks that are artificially delayed.

Plans are plain data (picklable) so they travel to worker processes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .errors import InjectedFault


@dataclass
class FaultPlan:
    """Deterministic fault schedule keyed by (stage, partition).

    ``fail_attempts[(stage, partition)] = k`` makes attempts 0..k-1 of
    that task raise `InjectedFault`; attempt k succeeds.  A key of
    ``(-1, partition)`` applies to any stage.

    ``delays[(stage, partition)] = seconds`` injects a sleep before the
    task body runs — a deterministic straggler.
    """

    fail_attempts: dict[tuple[int, int], int] = field(default_factory=dict)
    delays: dict[tuple[int, int], float] = field(default_factory=dict)

    def _lookup(self, table: dict[tuple[int, int], float], stage: int, partition: int):
        if (stage, partition) in table:
            return table[(stage, partition)]
        return table.get((-1, partition))

    def check(self, stage: int, partition: int, attempt: int) -> None:
        """Raise `InjectedFault` if this attempt is scheduled to fail."""
        k = self._lookup(self.fail_attempts, stage, partition)
        if k is not None and attempt < k:
            raise InjectedFault(
                f"planned fault: stage={stage} partition={partition} attempt={attempt}"
            )

    def delay_for(self, stage: int, partition: int) -> float:
        """Injected straggler delay for this task, if any."""
        return self._lookup(self.delays, stage, partition) or 0.0

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing."""
        return not self.fail_attempts and not self.delays


def random_straggler_plan(
    num_partitions: int,
    prob: float,
    delay: float,
    seed: int = 0,
    stage: int = -1,
) -> FaultPlan:
    """Build a plan delaying each partition with probability ``prob``.

    Models the paper's ``t_straggling`` term: the framework must wait
    for the slowest executor before the driver-side merge can start.
    """
    rng = random.Random(seed)
    delays = {
        (stage, p): delay for p in range(num_partitions) if rng.random() < prob
    }
    return FaultPlan(delays=delays)

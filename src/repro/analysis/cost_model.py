"""Section IV-C analytical cost model.

The paper's notation:

- ``n`` points, ``p`` partitions, ``m`` partial clusters,
  ``K`` max partial-cluster size, ``t_straggling`` straggler wait;
- ``Δ`` — driver-side read/transform time;
- ``V`` — per-point neighbour-search time, between ``log n`` and
  ``n^(1-1/d) + k``.

    Ts = Δ + n·log n + n·V + n + K·m
    Tp = Δ + n·log n + (n/p)·V + m·V + t_straggling + n + K·m
    S  = Ts / Tp

The model is in abstract "operation" units; `CalibratedCostModel`
turns it into seconds by fitting the two free constants (per-query
cost and per-element merge cost) from a single measured run, then
predicts speedups at any p — Ablation F compares those predictions
with measured speedups.

The ``n + K·m`` driver-merge term is the paper's — it assumes the
driver collects O(points) of partial state.  The edge-based merge path
collects only O(edges) digests, so the term depends on *which plan* is
modelled.  Rather than hand-maintaining per-plan constants, the merge
term is derived from the statically checked size classes: the
``SIZE_MANIFEST`` in `repro.pipeline.plans` (the same literal the
``SCL`` lint rules prove the code against) declares each stage's
driver-resident output class, `merge_input_class` looks up what the
plan's collect stage actually hands the driver, and `merge_units`
turns that class into model units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadParams:
    """Inputs to the Section IV-C formulas."""

    n: int                      # number of points
    d: int = 10                 # dimensionality (enters the V upper bound)
    m: int = 1                  # number of partial clusters
    K: int = 1                  # max partial-cluster size
    delta: float = 0.0          # Δ: read + transform time
    t_straggling: float = 0.0   # average straggler wait
    k_neighbors: float = 10.0   # k: reported neighbours per range query

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        if self.d < 1:
            raise ValueError(f"d must be >= 1, got {self.d}")


def merge_input_class(plan: str) -> str:
    """The size class the driver's merge consumes under ``plan``.

    Reads the pipeline's ``STAGE_MANIFEST``/``SIZE_MANIFEST`` literals:
    the plan's (last) collect stage declares what actually lands on the
    driver.  Plans with no collect stage merge in-memory state, which
    is the paper's O(points) assumption.
    """
    from repro.pipeline.plans import SIZE_MANIFEST, STAGE_MANIFEST

    stages = STAGE_MANIFEST.get(plan)
    if stages is None:
        known = ", ".join(sorted(STAGE_MANIFEST))
        raise ValueError(f"unknown plan {plan!r}; expected one of {known}")
    for cls in reversed(stages):
        if "Collect" in cls:
            return SIZE_MANIFEST.get(cls, {}).get("output", "O(points)")
    return "O(points)"


def merge_units(params: WorkloadParams, size_class: str = "O(points)") -> float:
    """Driver-merge cost in model units for a collected ``size_class``.

    - ``O(points)``: the paper's ``n + K·m`` (seed digging over every
      point plus K·m merge comparisons);
    - ``O(edges)``: ``K·m + m`` (union over the merge edges; K·m bounds
      the edge count, plus m find operations for the relabel map);
    - ``O(partials)``/``O(cells)``: ``m`` (one pass over the partials;
      the model has no cell count, partials are its closest proxy);
    - ``O(1)``: a constant unit.
    """
    if size_class == "O(points)":
        return params.n + params.K * params.m
    if size_class == "O(edges)":
        return params.K * params.m + params.m
    if size_class in ("O(partials)", "O(cells)"):
        return float(params.m)
    if size_class == "O(1)":
        return 1.0
    raise ValueError(f"unknown size class {size_class!r}")


def search_time_lower(params: WorkloadParams) -> float:
    """V lower bound: O(log n) — a balanced-tree point search."""
    return math.log2(max(params.n, 2))


def search_time_upper(params: WorkloadParams) -> float:
    """V upper bound: O(n^(1-1/d) + k) — the range-search bound [Kakde]."""
    return params.n ** (1.0 - 1.0 / params.d) + params.k_neighbors


@dataclass(frozen=True)
class CostModel:
    """Abstract-unit model with a chosen V within the paper's bounds.

    ``v_weight`` interpolates V geometrically between the log-n lower
    bound (0.0) and the range-search upper bound (1.0).
    """

    params: WorkloadParams
    v_weight: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.v_weight <= 1.0:
            raise ValueError(f"v_weight must be in [0, 1], got {self.v_weight}")

    @property
    def V(self) -> float:
        """The per-query search-time term, interpolated between the bounds."""
        lo, hi = search_time_lower(self.params), search_time_upper(self.params)
        return lo ** (1.0 - self.v_weight) * hi**self.v_weight

    def build_time(self) -> float:
        """Δ + n·log n (driver read/transform + kd-tree construction)."""
        n = self.params.n
        return self.params.delta + n * math.log2(max(n, 2))

    def merge_time(self, size_class: str = "O(points)") -> float:
        """Driver-side merge units; ``O(points)`` is the paper's
        ``n + K·m``, other classes come from `merge_units` (pass
        `merge_input_class(plan)` to model a specific plan)."""
        return merge_units(self.params, size_class)

    def sequential_time(self) -> float:
        """Ts = Δ + n·log n + n·V + n + K·m."""
        return self.build_time() + self.params.n * self.V + self.merge_time()

    def parallel_time(self, p: int) -> float:
        """Tp = Δ + n·log n + (n/p)·V + m·V + t_straggling + n + K·m."""
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        return (
            self.build_time()
            + (self.params.n / p) * self.V
            + self.params.m * self.V
            + self.params.t_straggling
            + self.merge_time()
        )

    def speedup(self, p: int) -> float:
        """S = Ts / Tp."""
        return self.sequential_time() / self.parallel_time(p)

    def executor_only_speedup(self, p: int) -> float:
        """Speedup counting only executor-side work (Figure 8, left column)."""
        seq = self.params.n * self.V
        par = (self.params.n / p) * self.V + self.params.m * self.V + self.params.t_straggling
        return seq / par


@dataclass
class CalibratedCostModel:
    """Seconds-valued model fitted from one measured run.

    ``query_cost`` (s per range query) and ``merge_unit_cost`` (s per
    merged element) are the two free constants; Δ and t_straggling are
    taken from measurement directly.  ``merge_size_class`` selects the
    driver-merge term (see `merge_units`); fit and prediction must use
    the same class or the free constant absorbs the mismatch.
    """

    params: WorkloadParams
    query_cost: float
    merge_unit_cost: float
    merge_size_class: str = "O(points)"

    @classmethod
    def fit(
        cls,
        params: WorkloadParams,
        measured_executor_total: float,
        measured_merge: float,
        merge_size_class: str = "O(points)",
    ) -> "CalibratedCostModel":
        """Calibrate from a run's executor-total and driver-merge seconds."""
        if measured_executor_total < 0 or measured_merge < 0:
            raise ValueError("measured times must be non-negative")
        query_cost = measured_executor_total / max(params.n, 1)
        merge_unit = measured_merge / max(merge_units(params, merge_size_class), 1)
        return cls(
            params=params,
            query_cost=query_cost,
            merge_unit_cost=merge_unit,
            merge_size_class=merge_size_class,
        )

    def parallel_time(self, p: int) -> float:
        """Predicted parallel time on p cores (seconds)."""
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        executor = (self.params.n / p + self.params.m) * self.query_cost
        merge = merge_units(self.params, self.merge_size_class) * self.merge_unit_cost
        return self.params.delta + executor + self.params.t_straggling + merge

    def sequential_time(self) -> float:
        """Predicted 1-core time (seconds)."""
        executor = self.params.n * self.query_cost
        merge = merge_units(self.params, self.merge_size_class) * self.merge_unit_cost
        return self.params.delta + executor + merge

    def speedup(self, p: int) -> float:
        """Predicted speedup Ts / Tp at p cores."""
        return self.sequential_time() / self.parallel_time(p)

"""Analytical tooling: the Section IV-C cost model and workload-balance
diagnostics."""

from .balance import BalanceReport, analyze_balance, speedup_ceiling
from .cost_model import (
    CalibratedCostModel,
    CostModel,
    WorkloadParams,
    merge_input_class,
    merge_units,
    search_time_lower,
    search_time_upper,
)

__all__ = [
    "CostModel",
    "CalibratedCostModel",
    "WorkloadParams",
    "merge_input_class",
    "merge_units",
    "search_time_lower",
    "search_time_upper",
    "BalanceReport",
    "analyze_balance",
    "speedup_ceiling",
]

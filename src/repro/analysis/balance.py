"""Workload-balance analysis.

The paper's conclusion flags its own weakness: "We did not partition
data points based on the neighbourhood relationship ... that might
cause workload to be unbalanced."  This module quantifies that: given
per-partition task durations (or any work measure), it reports the
imbalance factor, the straggler slack, and the parallel efficiency —
the numbers that justify the spatial-partitioning extension.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BalanceReport:
    """Summary of a stage's per-partition work distribution."""

    num_partitions: int
    total: float          # sum of work
    mean: float
    max: float
    min: float
    imbalance: float      # max / mean; 1.0 = perfectly balanced
    cv: float             # coefficient of variation (stdev / mean)
    efficiency: float     # mean / max = achieved fraction of ideal speedup
    straggler_slack: float  # max - mean: time every other core sits idle

    def __str__(self) -> str:  # pragma: no cover - human formatting
        return (
            f"partitions={self.num_partitions} imbalance={self.imbalance:.2f} "
            f"cv={self.cv:.2f} efficiency={self.efficiency:.0%} "
            f"slack={self.straggler_slack:.4f}"
        )


def analyze_balance(work: list[float] | np.ndarray) -> BalanceReport:
    """Balance statistics over per-partition work measurements."""
    arr = np.asarray(work, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no work measurements")
    if (arr < 0).any():
        raise ValueError("work measurements must be non-negative")
    mean = float(arr.mean())
    mx = float(arr.max())
    return BalanceReport(
        num_partitions=int(arr.size),
        total=float(arr.sum()),
        mean=mean,
        max=mx,
        min=float(arr.min()),
        imbalance=mx / mean if mean > 0 else 1.0,
        cv=float(arr.std() / mean) if mean > 0 else 0.0,
        efficiency=mean / mx if mx > 0 else 1.0,
        straggler_slack=mx - mean,
    )


def partition_point_counts(labels_per_partition: list[int], n: int) -> BalanceReport:
    """Balance of raw point counts across partitions (data skew, as
    opposed to time skew)."""
    return analyze_balance(labels_per_partition)


def speedup_ceiling(work: list[float] | np.ndarray) -> float:
    """The best speedup this work distribution allows on one-slot-per-
    partition scheduling: total / max."""
    report = analyze_balance(work)
    return report.total / report.max if report.max > 0 else float("inf")

"""Brute-force neighbor search: the O(n²) reference implementation.

The paper cites DBSCAN's complexity dropping from O(n²) with naive
linear search to O(n log n) with a spatial index (Section II-A).  This
module is that naive linear search — used as the correctness oracle for
the kd-tree and as the baseline in Ablation E.
"""

from __future__ import annotations

import numpy as np


class BruteForceIndex:
    """Exact eps-range queries by scanning every point."""

    def __init__(self, points: np.ndarray):
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D (n, d), got shape {points.shape}")
        self.points = points
        self.n, self.d = points.shape

    def query_radius(self, q: np.ndarray, eps: float) -> np.ndarray:
        """Indices of all points within distance ``eps`` of ``q`` (inclusive)."""
        q = np.asarray(q, dtype=np.float64)
        d2 = np.einsum("ij,ij->i", self.points - q, self.points - q)
        return np.flatnonzero(d2 <= eps * eps)

    def query_radius_count(self, q: np.ndarray, eps: float) -> int:
        """Size of the eps-neighbourhood."""
        return int(self.query_radius(q, eps).size)

    def query_knn(self, q: np.ndarray, k: int) -> np.ndarray:
        """Indices of the k nearest points to ``q`` (including an exact match)."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        q = np.asarray(q, dtype=np.float64)
        d2 = np.einsum("ij,ij->i", self.points - q, self.points - q)
        k = min(k, self.n)
        idx = np.argpartition(d2, k - 1)[:k]
        return idx[np.argsort(d2[idx])]

"""kd-tree (Bentley 1975) built from scratch, as the paper does in Java.

Design: a median-split kd-tree stored in flat arrays (no node objects),
with points permuted so each leaf owns a contiguous block — leaf scans
are then single vectorised numpy operations, which is the idiomatic way
to get HPC-grade throughput out of pure Python (per the repo's
optimization guides: vectorise the hot loop, keep memory contiguous).

Complexities match the paper's Section IV-C citations: O(n log n)
construction, range search between O(log n) and O(n^(1-1/d) + k).

The ``max_neighbors`` query cap implements the paper's
"kd-tree with pruning branches" used for the 1m-point runs
(Section V-E): descent stops once enough neighbours are found, trading
exact neighbourhoods for bounded work.
"""

from __future__ import annotations

import numpy as np


class KDTree:
    """Static kd-tree over an (n, d) float array.

    Parameters
    ----------
    points:
        Data matrix; a float64 copy is made if needed.
    leaf_size:
        Max points per leaf.  Smaller leaves prune harder; larger leaves
        vectorise better.  64 is a good default for d=10.

    Notes
    -----
    Queries return indices into the *original* point order.
    """

    def __init__(self, points: np.ndarray, leaf_size: int = 64):
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D (n, d), got shape {points.shape}")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.n, self.d = points.shape
        self.leaf_size = leaf_size
        self.points = points

        # Flat node arrays.  Node i is a leaf iff split_dim[i] < 0; then
        # (start[i], end[i]) is its block in the permuted order.  Internal
        # nodes store the split hyperplane and children ids.
        self._split_dim: list[int] = []
        self._split_val: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._start: list[int] = []
        self._end: list[int] = []

        self._perm = np.arange(self.n, dtype=np.intp)
        if self.n > 0:
            self._build(0, self.n)
        # Contiguous copies in permuted order make leaf scans cache-friendly.
        self._pts_perm = points[self._perm] if self.n else points
        self.num_nodes = len(self._split_dim)

    # -- construction ---------------------------------------------------------
    def _add_node(self) -> int:
        self._split_dim.append(-1)
        self._split_val.append(0.0)
        self._left.append(-1)
        self._right.append(-1)
        self._start.append(0)
        self._end.append(0)
        return len(self._split_dim) - 1

    def _build(self, start: int, end: int) -> int:
        """Build the subtree over perm[start:end]; returns its node id."""
        node = self._add_node()
        count = end - start
        if count <= self.leaf_size:
            self._start[node] = start
            self._end[node] = end
            return node
        block = self.points[self._perm[start:end]]
        # Split on the widest dimension — better balance than cycling when
        # clusters make some dimensions much more spread than others.
        spans = block.max(axis=0) - block.min(axis=0)
        dim = int(np.argmax(spans))
        if spans[dim] == 0.0:
            # All points identical: keep as an (oversized) leaf.
            self._start[node] = start
            self._end[node] = end
            return node
        mid = count // 2
        order = np.argpartition(block[:, dim], mid)
        self._perm[start:end] = self._perm[start:end][order]
        split_val = float(self.points[self._perm[start + mid], dim])
        self._split_dim[node] = dim
        self._split_val[node] = split_val
        self._left[node] = self._build(start, start + mid)
        self._right[node] = self._build(start + mid, end)
        return node

    # -- queries -----------------------------------------------------------------
    def query_radius(
        self, q: np.ndarray, eps: float, max_neighbors: int | None = None
    ) -> np.ndarray:
        """Indices of points within ``eps`` of ``q`` (boundary inclusive).

        With ``max_neighbors`` set, descent stops as soon as that many
        neighbours are collected (the paper's pruned variant); the result
        is then a *subset* of the true neighbourhood.
        """
        if eps < 0:
            raise ValueError(f"eps must be non-negative, got {eps}")
        if self.n == 0:
            return np.empty(0, dtype=np.intp)
        q = np.asarray(q, dtype=np.float64)
        eps2 = eps * eps
        out: list[np.ndarray] = []
        found = 0
        stack = [0]
        split_dim = self._split_dim
        split_val = self._split_val
        while stack:
            node = stack.pop()
            dim = split_dim[node]
            if dim < 0:  # leaf: vectorised block scan
                s, e = self._start[node], self._end[node]
                block = self._pts_perm[s:e]
                diff = block - q
                d2 = np.einsum("ij,ij->i", diff, diff)
                hit = d2 <= eps2
                if hit.any():
                    idx = self._perm[s:e][hit]
                    out.append(idx)
                    found += idx.size
                    if max_neighbors is not None and found >= max_neighbors:
                        break
                continue
            delta = q[dim] - split_val[node]
            if delta <= eps:
                stack.append(self._left[node])
            if delta >= -eps:
                stack.append(self._right[node])
        if not out:
            return np.empty(0, dtype=np.intp)
        result = np.concatenate(out)
        if max_neighbors is not None and result.size > max_neighbors:
            result = result[:max_neighbors]
        return result

    def query_radius_count(self, q: np.ndarray, eps: float) -> int:
        """Size of the eps-neighbourhood (the density of Definition 1)."""
        return int(self.query_radius(q, eps).size)

    # -- batched queries ---------------------------------------------------------
    #
    # The executor hot loop issues one `query_radius` per BFS pop — n
    # Python-level tree walks per partition.  The batched kernels below
    # answer a whole block of queries in one shared descent: the stack
    # holds (node, active-query-ids) pairs, internal nodes split the
    # active set with one vectorised plane test, and leaves compute a
    # query-block × leaf-block distance tile in a single einsum.
    #
    # Equivalence contract (tested property-style): for every query row,
    # the returned neighbour list is *element-for-element identical* to
    # `query_radius` — same indices in the same order, including under
    # `max_neighbors` pruning.  Two details make that hold: children are
    # pushed left-then-right exactly as the per-point walk does (so
    # leaves are visited in the same right-first DFS order), and leaf
    # distances use the same diff/einsum arithmetic (no ||a||²-2ab+||b||²
    # expansion, whose rounding differs at the eps boundary).

    def _batch_traverse(
        self,
        Q: np.ndarray,
        eps: float,
        max_neighbors: int | None,
        collect_indices: bool,
        query_block: int,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Shared kernel: per-query neighbour counts, plus (optionally)
        the neighbour indices as CSR chunks.  Returns ``(counts, indices)``
        with ``indices`` ordered by (query, leaf-visit order) or None."""
        nq = Q.shape[0]
        eps2 = eps * eps
        counts = np.zeros(nq, dtype=np.intp)
        out_blocks: list[np.ndarray] = []
        split_dim = self._split_dim
        split_val = self._split_val
        for base in range(0, nq, query_block):
            block_ids = np.arange(base, min(base + query_block, nq), dtype=np.intp)
            bs = block_ids.size
            # Per-query "still collecting" flag for max_neighbors pruning.
            alive = np.ones(bs, dtype=bool)
            # Per-tile hit chunks, query ids kept block-relative.
            q_chunks: list[np.ndarray] = []
            i_chunks: list[np.ndarray] = []
            stack: list[tuple[int, np.ndarray]] = [(0, np.arange(bs))]
            while stack:
                node, active = stack.pop()
                if max_neighbors is not None:
                    active = active[alive[active]]
                    if active.size == 0:
                        continue
                dim = split_dim[node]
                if dim < 0:  # leaf: one distance tile for all active queries
                    s, e = self._start[node], self._end[node]
                    block = self._pts_perm[s:e]
                    diff = Q[block_ids[active], None, :] - block[None, :, :]
                    d2 = np.einsum("qbd,qbd->qb", diff, diff)
                    hit = d2 <= eps2
                    rows, cols = np.nonzero(hit)
                    if rows.size:
                        counts[block_ids[active]] += hit.sum(axis=1)
                        if collect_indices:
                            q_chunks.append(active[rows])
                            i_chunks.append(self._perm[s:e][cols])
                        if max_neighbors is not None:
                            full = counts[block_ids[active]] >= max_neighbors
                            alive[active[full]] = False
                    continue
                delta = Q[block_ids[active], dim] - split_val[node]
                # Push left then right — popped right-first, matching the
                # per-point walk's leaf order.
                go_left = active[delta <= eps]
                go_right = active[delta >= -eps]
                if go_left.size:
                    stack.append((self._left[node], go_left))
                if go_right.size:
                    stack.append((self._right[node], go_right))
            if not collect_indices or not q_chunks:
                continue
            # Assemble this block's CSR segment with a counting scatter.
            # Every hit of a block query lands in this block's traversal,
            # so counts[block_ids] are final; `np.nonzero`'s row-major
            # order means each chunk is query-grouped in leaf-visit
            # order already — a stable sort is pure overhead (and its
            # random-access gather is cache-hostile at 10^7+ hits).
            bcounts = counts[block_ids]
            bstart = np.zeros(bs + 1, dtype=np.intp)
            np.cumsum(bcounts, out=bstart[1:])
            out = np.empty(bstart[-1], dtype=np.intp)
            fill = np.zeros(bs, dtype=np.intp)
            for qrel, ichunk in zip(q_chunks, i_chunks):
                cchunk = np.bincount(qrel, minlength=bs)
                gstart = np.zeros(bs, dtype=np.intp)
                np.cumsum(cchunk[:-1], out=gstart[1:])
                within = np.arange(qrel.size, dtype=np.intp) - gstart[qrel]
                out[bstart[qrel] + fill[qrel] + within] = ichunk
                fill += cchunk
            out_blocks.append(out)
        if not collect_indices:
            return counts, None
        if not out_blocks:
            return counts, np.empty(0, dtype=np.intp)
        if len(out_blocks) == 1:
            return counts, out_blocks[0]
        return counts, np.concatenate(out_blocks)

    def _check_batch_args(self, Q: np.ndarray, eps: float) -> np.ndarray:
        if eps < 0:
            raise ValueError(f"eps must be non-negative, got {eps}")
        Q = np.ascontiguousarray(Q, dtype=np.float64)
        if Q.ndim != 2 or (self.n > 0 and Q.shape[1] != self.d):
            raise ValueError(
                f"queries must be 2-D (m, {self.d}), got shape {Q.shape}"
            )
        return Q

    def query_radius_batch(
        self,
        Q: np.ndarray,
        eps: float,
        max_neighbors: int | None = None,
        query_block: int = 512,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Eps-neighbourhoods of all query rows in one shared traversal.

        Returns CSR-style ``(indptr, indices)``: the neighbours of query
        ``k`` are ``indices[indptr[k]:indptr[k+1]]``, element-for-element
        identical to ``query_radius(Q[k], eps, max_neighbors)``.
        ``query_block`` bounds the distance-tile size (memory, not
        results).
        """
        Q = self._check_batch_args(Q, eps)
        nq = Q.shape[0]
        if self.n == 0 or nq == 0:
            return np.zeros(nq + 1, dtype=np.intp), np.empty(0, dtype=np.intp)
        counts, indices = self._batch_traverse(
            Q, eps, max_neighbors, collect_indices=True, query_block=query_block
        )
        if max_neighbors is not None and (counts > max_neighbors).any():
            # Over-collection only within the leaf where the cap tripped;
            # trim each row to its first max_neighbors hits.
            lengths = np.minimum(counts, max_neighbors)
            starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
            pos = np.arange(indices.size) - np.repeat(starts, counts)
            indices = indices[pos < np.repeat(lengths, counts)]
            counts = lengths
        indptr = np.zeros(nq + 1, dtype=np.intp)
        np.cumsum(counts, out=indptr[1:])
        return indptr, indices

    def count_radius_batch(
        self, Q: np.ndarray, eps: float, query_block: int = 512
    ) -> np.ndarray:
        """Neighbourhood sizes of all query rows (the Definition 1 density
        test) without materialising the neighbour lists."""
        Q = self._check_batch_args(Q, eps)
        if self.n == 0 or Q.shape[0] == 0:
            return np.zeros(Q.shape[0], dtype=np.intp)
        counts, _ = self._batch_traverse(
            Q, eps, None, collect_indices=False, query_block=query_block
        )
        return counts

    def query_knn(self, q: np.ndarray, k: int) -> np.ndarray:
        """The k nearest neighbours of ``q``, nearest first.

        Simple best-first implementation: maintains the current k-th
        distance as the prune radius.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if self.n == 0:
            return np.empty(0, dtype=np.intp)
        q = np.asarray(q, dtype=np.float64)
        k = min(k, self.n)
        best_d2 = np.full(k, np.inf)
        best_idx = np.full(k, -1, dtype=np.intp)
        split_dim = self._split_dim
        split_val = self._split_val

        def visit(node: int) -> None:
            nonlocal best_d2, best_idx
            dim = split_dim[node]
            if dim < 0:
                s, e = self._start[node], self._end[node]
                block = self._pts_perm[s:e]
                diff = block - q
                d2 = np.einsum("ij,ij->i", diff, diff)
                cand_d2 = np.concatenate([best_d2, d2])
                cand_idx = np.concatenate([best_idx, self._perm[s:e]])
                top = np.argpartition(cand_d2, k - 1)[:k]
                order = np.argsort(cand_d2[top])
                best_d2 = cand_d2[top][order]
                best_idx = cand_idx[top][order]
                return
            delta = q[dim] - split_val[node]
            near, far = (
                (self._left[node], self._right[node])
                if delta <= 0
                else (self._right[node], self._left[node])
            )
            visit(near)
            if delta * delta <= best_d2[k - 1]:
                visit(far)

        visit(0)
        return best_idx[best_idx >= 0]

    # -- introspection -------------------------------------------------------------
    def depth(self) -> int:
        """Height of the tree (leaf-only tree has depth 1)."""
        if self.num_nodes == 0:
            return 0
        depths = {0: 1}
        best = 1
        stack = [0]
        while stack:
            node = stack.pop()
            for child in (self._left[node], self._right[node]):
                if child >= 0:
                    depths[child] = depths[node] + 1
                    best = max(best, depths[child])
                    stack.append(child)
        return best

    @property
    def num_leaves(self) -> int:
        """Number of leaf nodes."""
        return sum(1 for d in self._split_dim if d < 0)

"""kd-tree (Bentley 1975) built from scratch, as the paper does in Java.

Design: a median-split kd-tree stored in flat arrays (no node objects),
with points permuted so each leaf owns a contiguous block — leaf scans
are then single vectorised numpy operations, which is the idiomatic way
to get HPC-grade throughput out of pure Python (per the repo's
optimization guides: vectorise the hot loop, keep memory contiguous).

Complexities match the paper's Section IV-C citations: O(n log n)
construction, range search between O(log n) and O(n^(1-1/d) + k).

The ``max_neighbors`` query cap implements the paper's
"kd-tree with pruning branches" used for the 1m-point runs
(Section V-E): descent stops once enough neighbours are found, trading
exact neighbourhoods for bounded work.
"""

from __future__ import annotations

import numpy as np


class KDTree:
    """Static kd-tree over an (n, d) float array.

    Parameters
    ----------
    points:
        Data matrix; a float64 copy is made if needed.
    leaf_size:
        Max points per leaf.  Smaller leaves prune harder; larger leaves
        vectorise better.  64 is a good default for d=10.

    Notes
    -----
    Queries return indices into the *original* point order.
    """

    def __init__(self, points: np.ndarray, leaf_size: int = 64):
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D (n, d), got shape {points.shape}")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.n, self.d = points.shape
        self.leaf_size = leaf_size
        self.points = points

        # Flat node arrays.  Node i is a leaf iff split_dim[i] < 0; then
        # (start[i], end[i]) is its block in the permuted order.  Internal
        # nodes store the split hyperplane and children ids.
        self._split_dim: list[int] = []
        self._split_val: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._start: list[int] = []
        self._end: list[int] = []

        self._perm = np.arange(self.n, dtype=np.intp)
        if self.n > 0:
            self._build(0, self.n)
        # Contiguous copies in permuted order make leaf scans cache-friendly.
        self._pts_perm = points[self._perm] if self.n else points
        self.num_nodes = len(self._split_dim)

    # -- construction ---------------------------------------------------------
    def _add_node(self) -> int:
        self._split_dim.append(-1)
        self._split_val.append(0.0)
        self._left.append(-1)
        self._right.append(-1)
        self._start.append(0)
        self._end.append(0)
        return len(self._split_dim) - 1

    def _build(self, start: int, end: int) -> int:
        """Build the subtree over perm[start:end]; returns its node id."""
        node = self._add_node()
        count = end - start
        if count <= self.leaf_size:
            self._start[node] = start
            self._end[node] = end
            return node
        block = self.points[self._perm[start:end]]
        # Split on the widest dimension — better balance than cycling when
        # clusters make some dimensions much more spread than others.
        spans = block.max(axis=0) - block.min(axis=0)
        dim = int(np.argmax(spans))
        if spans[dim] == 0.0:
            # All points identical: keep as an (oversized) leaf.
            self._start[node] = start
            self._end[node] = end
            return node
        mid = count // 2
        order = np.argpartition(block[:, dim], mid)
        self._perm[start:end] = self._perm[start:end][order]
        split_val = float(self.points[self._perm[start + mid], dim])
        self._split_dim[node] = dim
        self._split_val[node] = split_val
        self._left[node] = self._build(start, start + mid)
        self._right[node] = self._build(start + mid, end)
        return node

    # -- queries -----------------------------------------------------------------
    def query_radius(
        self, q: np.ndarray, eps: float, max_neighbors: int | None = None
    ) -> np.ndarray:
        """Indices of points within ``eps`` of ``q`` (boundary inclusive).

        With ``max_neighbors`` set, descent stops as soon as that many
        neighbours are collected (the paper's pruned variant); the result
        is then a *subset* of the true neighbourhood.
        """
        if eps < 0:
            raise ValueError(f"eps must be non-negative, got {eps}")
        if self.n == 0:
            return np.empty(0, dtype=np.intp)
        q = np.asarray(q, dtype=np.float64)
        eps2 = eps * eps
        out: list[np.ndarray] = []
        found = 0
        stack = [0]
        split_dim = self._split_dim
        split_val = self._split_val
        while stack:
            node = stack.pop()
            dim = split_dim[node]
            if dim < 0:  # leaf: vectorised block scan
                s, e = self._start[node], self._end[node]
                block = self._pts_perm[s:e]
                diff = block - q
                d2 = np.einsum("ij,ij->i", diff, diff)
                hit = d2 <= eps2
                if hit.any():
                    idx = self._perm[s:e][hit]
                    out.append(idx)
                    found += idx.size
                    if max_neighbors is not None and found >= max_neighbors:
                        break
                continue
            delta = q[dim] - split_val[node]
            if delta <= eps:
                stack.append(self._left[node])
            if delta >= -eps:
                stack.append(self._right[node])
        if not out:
            return np.empty(0, dtype=np.intp)
        result = np.concatenate(out)
        if max_neighbors is not None and result.size > max_neighbors:
            result = result[:max_neighbors]
        return result

    def query_radius_count(self, q: np.ndarray, eps: float) -> int:
        """Size of the eps-neighbourhood (the density of Definition 1)."""
        return int(self.query_radius(q, eps).size)

    def query_knn(self, q: np.ndarray, k: int) -> np.ndarray:
        """The k nearest neighbours of ``q``, nearest first.

        Simple best-first implementation: maintains the current k-th
        distance as the prune radius.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if self.n == 0:
            return np.empty(0, dtype=np.intp)
        q = np.asarray(q, dtype=np.float64)
        k = min(k, self.n)
        best_d2 = np.full(k, np.inf)
        best_idx = np.full(k, -1, dtype=np.intp)
        split_dim = self._split_dim
        split_val = self._split_val

        def visit(node: int) -> None:
            nonlocal best_d2, best_idx
            dim = split_dim[node]
            if dim < 0:
                s, e = self._start[node], self._end[node]
                block = self._pts_perm[s:e]
                diff = block - q
                d2 = np.einsum("ij,ij->i", diff, diff)
                cand_d2 = np.concatenate([best_d2, d2])
                cand_idx = np.concatenate([best_idx, self._perm[s:e]])
                top = np.argpartition(cand_d2, k - 1)[:k]
                order = np.argsort(cand_d2[top])
                best_d2 = cand_d2[top][order]
                best_idx = cand_idx[top][order]
                return
            delta = q[dim] - split_val[node]
            near, far = (
                (self._left[node], self._right[node])
                if delta <= 0
                else (self._right[node], self._left[node])
            )
            visit(near)
            if delta * delta <= best_d2[k - 1]:
                visit(far)

        visit(0)
        return best_idx[best_idx >= 0]

    # -- introspection -------------------------------------------------------------
    def depth(self) -> int:
        """Height of the tree (leaf-only tree has depth 1)."""
        if self.num_nodes == 0:
            return 0
        depths = {0: 1}
        best = 1
        stack = [0]
        while stack:
            node = stack.pop()
            for child in (self._left[node], self._right[node]):
                if child >= 0:
                    depths[child] = depths[node] + 1
                    best = max(best, depths[child])
                    stack.append(child)
        return best

    @property
    def num_leaves(self) -> int:
        """Number of leaf nodes."""
        return sum(1 for d in self._split_dim if d < 0)

"""From-scratch kd-tree (Bentley 1975) with eps-range and kNN queries.

The paper builds its own Java kd-tree to cut DBSCAN's neighbour search
from O(n²) to O(n log n); this package is the Python equivalent, plus
the brute-force reference oracle and the pruned-query variant used for
the paper's 1m-point runs.
"""

from .brute import BruteForceIndex
from .kdtree import KDTree

__all__ = ["KDTree", "BruteForceIndex"]

"""Command-line interface: generate data, cluster, and run scaling studies.

    python -m repro datasets
    python -m repro generate c10k -o points.txt
    python -m repro cluster points.txt --eps 25 --minpts 5 --partitions 8
    python -m repro cluster r10k --algorithm mapreduce
    python -m repro run c10k --checkpoint-dir ckpt --resume
    python -m repro scaling r10k --cores 2 4 8
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.dbscan.merge import MERGE_MODES, MERGE_STRATEGIES
from repro.dbscan.partial import NEIGHBOR_MODES, SEED_POLICIES

ALGORITHMS = ("spark", "sequential", "naive", "mapreduce", "spatial")


def _load_points(source: str) -> np.ndarray:
    """A dataset name from Table I, or a path to a points file."""
    from repro.data import PAPER_SIZES, load_points, make_dataset

    if source in PAPER_SIZES:
        return make_dataset(source).points
    return load_points(source)


def cmd_datasets(_args: argparse.Namespace) -> int:
    """List the Table I datasets and their effective sizes."""
    from repro.data import PAPER_SIZES, dataset_spec

    print(f"{'name':>6}  {'paper-points':>12}  {'effective':>9}  d  eps  minpts")
    for name in PAPER_SIZES:
        s = dataset_spec(name)
        print(f"{s.name:>6}  {s.paper_n:>12}  {s.n:>9}  {s.d}  {s.eps}  {s.minpts}")
    print("\n(set REPRO_SCALE=1.0 for full paper sizes)")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    """Generate a Table I dataset into a points file."""
    from repro.data import make_dataset, save_points

    data = make_dataset(args.dataset)
    save_points(args.output, data.points)
    print(f"wrote {data.n} points (d={data.d}) to {args.output}")
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    """Cluster a dataset/points file with the chosen implementation."""
    from repro.obs import NULL_TRACER, MetricsRegistry, Tracer

    points = _load_points(args.source)
    print(f"{points.shape[0]} points, d={points.shape[1]}; "
          f"algorithm={args.algorithm}, eps={args.eps}, minpts={args.minpts}")

    tracer = Tracer() if args.trace_out else NULL_TRACER
    registry = MetricsRegistry() if args.metrics_out else None

    if args.sanitize and args.algorithm in ("sequential", "mapreduce"):
        print(f"error: --sanitize requires a Spark-engine algorithm "
              f"(spark, spatial, naive), not {args.algorithm!r}", file=sys.stderr)
        return 1
    if (args.profile or args.profile_alloc) \
            and args.algorithm in ("sequential", "mapreduce", "naive"):
        print(f"error: --profile requires a pipeline algorithm with task "
              f"profiling (spark, spatial), not {args.algorithm!r}",
              file=sys.stderr)
        return 1
    profile = args.profile or args.profile_alloc
    if args.merge_mode != "partials" and args.algorithm not in ("spark", "spatial"):
        print(f"error: --merge-mode edges requires a SEED pipeline "
              f"(spark, spatial), not {args.algorithm!r}", file=sys.stderr)
        return 1

    if args.algorithm == "sequential":
        from repro.dbscan import dbscan_sequential

        result = dbscan_sequential(points, args.eps, args.minpts,
                                   neighbor_mode=args.neighbor_mode,
                                   tracer=tracer)
    elif args.algorithm == "spark":
        from repro.dbscan import SparkDBSCAN

        result = SparkDBSCAN(args.eps, args.minpts,
                             num_partitions=args.partitions,
                             master=args.master,
                             neighbor_mode=args.neighbor_mode,
                             merge_mode=args.merge_mode,
                             tracer=tracer,
                             metrics_registry=registry,
                             sanitize=args.sanitize,
                             profile=profile,
                             profile_alloc=args.profile_alloc).fit(points)
    elif args.algorithm == "spatial":
        from repro.dbscan import SpatialSparkDBSCAN

        result = SpatialSparkDBSCAN(args.eps, args.minpts,
                                    num_partitions=args.partitions,
                                    master=args.master,
                                    neighbor_mode=args.neighbor_mode,
                                    merge_mode=args.merge_mode,
                                    tracer=tracer,
                                    metrics_registry=registry,
                                    sanitize=args.sanitize,
                                    profile=profile,
                                    profile_alloc=args.profile_alloc).fit(points)
    elif args.algorithm == "naive":
        from repro.dbscan import NaiveSparkDBSCAN

        result = NaiveSparkDBSCAN(args.eps, args.minpts,
                                  num_partitions=args.partitions,
                                  master=args.master,
                                  tracer=tracer,
                                  sanitize=args.sanitize).fit(points)
    else:  # mapreduce
        from repro.dbscan import MapReduceDBSCAN

        result = MapReduceDBSCAN(args.eps, args.minpts,
                                 num_maps=args.partitions,
                                 startup_overhead=0.0,
                                 tracer=tracer).fit(points)

    print(result.summary())
    t = result.timings
    print(f"timing: kdtree {t.kdtree_build:.3f}s | executors "
          f"{t.executor_total:.3f}s total / {t.executor_max:.3f}s max | "
          f"driver merge {t.driver_merge:.3f}s")
    if args.labels_out:
        np.savetxt(args.labels_out, result.labels, fmt="%d")
        print(f"labels written to {args.labels_out}")
    if args.trace_out:
        tracer.write_jsonl(args.trace_out)
        print(f"trace written to {args.trace_out} "
              f"({len(tracer.spans)} spans; render with `repro trace`)")
    if registry is not None:
        registry.gauge(
            "repro_run_wall_seconds", "End-to-end wall clock of the run."
        ).set(t.wall)
        registry.gauge("repro_clusters", "Clusters found.").set(result.num_clusters)
        registry.gauge("repro_noise_points", "Noise points.").set(result.num_noise)
        registry.gauge(
            "repro_partial_clusters", "Partial clusters before merging."
        ).set(result.num_partial_clusters)
        registry.write(args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run a pipeline plan directly, with per-stage checkpoint/resume."""
    from repro.obs import NULL_TRACER, MetricsRegistry, Tracer
    from repro.pipeline import PipelineCrash, PipelineRunner, RunConfig, build_plan

    if args.sanitize and args.algorithm in ("sequential", "mapreduce"):
        print(f"error: --sanitize requires a Spark-engine algorithm "
              f"(spark, spatial, naive), not {args.algorithm!r}", file=sys.stderr)
        return 1

    points = _load_points(args.source)
    try:
        config = RunConfig(
            eps=args.eps,
            minpts=args.minpts,
            algorithm=args.algorithm,
            num_partitions=args.partitions,
            master=args.master,
            seed_policy=args.seed_policy,
            merge_strategy=args.merge_strategy,
            max_neighbors=args.max_neighbors,
            min_cluster_size=args.min_cluster_size,
            leaf_size=args.leaf_size,
            neighbor_mode=args.neighbor_mode,
            partitioning=args.partitioning,
            merge_mode=args.merge_mode,
            impl=args.impl,
            max_rounds=args.max_rounds,
            sanitize=args.sanitize,
            profile=args.profile or args.profile_alloc,
            profile_alloc=args.profile_alloc,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    tracer = Tracer() if args.trace_out else NULL_TRACER
    registry = MetricsRegistry() if args.metrics_out else None
    plan = build_plan(config)
    runner = PipelineRunner(
        plan, config, tracer=tracer, metrics_registry=registry,
        checkpoint_dir=args.checkpoint_dir, resume=args.resume,
        fail_after=args.fail_after,
    )
    print(f"{points.shape[0]} points, d={points.shape[1]}; "
          f"plan={plan.name} ({' -> '.join(plan.stage_names())})")
    if args.checkpoint_dir:
        mode = "resume" if args.resume else "cold"
        print(f"checkpoints: {args.checkpoint_dir} ({mode}, "
              f"run key {config.content_hash(points)[:16]}…)")
    try:
        state = runner.run(points)
    except PipelineCrash as exc:
        print(f"pipeline crashed: {exc}", file=sys.stderr)
        print("re-run with --resume to continue from the last checkpoint",
              file=sys.stderr)
        return 3

    for name in plan.stage_names():
        print(f"  {name:<16} {state.stage_status.get(name, '?')}")
    labels = state.labels
    num_clusters = int(np.unique(labels[labels >= 0]).size)
    num_noise = int(np.count_nonzero(labels == -1))
    t = state.timings
    print(f"{num_clusters} clusters, {num_noise} noise points out of "
          f"{labels.shape[0]} (wall {t.wall:.3f}s)")
    if args.labels_out:
        np.savetxt(args.labels_out, labels, fmt="%d")
        print(f"labels written to {args.labels_out}")
    if args.trace_out:
        tracer.write_jsonl(args.trace_out)
        print(f"trace written to {args.trace_out} "
              f"({len(tracer.spans)} spans; render with `repro trace`)")
    if registry is not None:
        registry.gauge(
            "repro_run_wall_seconds", "End-to-end wall clock of the run."
        ).set(t.wall)
        registry.gauge("repro_clusters", "Clusters found.").set(num_clusters)
        registry.gauge("repro_noise_points", "Noise points.").set(num_noise)
        registry.write(args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    return 0


def cmd_scaling(args: argparse.Namespace) -> int:
    """Run a Figure 8-style core sweep and print speedups."""
    from repro.dbscan import SparkDBSCAN
    from repro.kdtree import KDTree

    points = _load_points(args.source)
    tree = KDTree(points)

    def run(p: int):
        """Execute the given tasks, yielding outcomes as they complete."""
        res = SparkDBSCAN(args.eps, args.minpts, num_partitions=p,
                          neighbor_mode=args.neighbor_mode).fit(
            points, tree=tree
        )
        return res.timings.executor_max, res.timings.driver_time, \
            res.num_partial_clusters

    base_exec, base_driver, _ = run(1)
    print(f"baseline: executor {base_exec:.3f}s, driver {base_driver:.3f}s")
    print(f"{'cores':>5}  {'exec-speedup':>12}  {'total-speedup':>13}  {'partials':>8}")
    for p in args.cores:
        ex, dr, partials = run(p)
        print(f"{p:>5}  {base_exec / ex:>12.2f}  "
              f"{(base_exec + base_driver) / (ex + dr):>13.2f}  {partials:>8}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SEED-based shuffle-free parallel DBSCAN (IPDPSW 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table I datasets").set_defaults(
        func=cmd_datasets
    )

    g = sub.add_parser("generate", help="generate a Table I dataset to a file")
    g.add_argument("dataset")
    g.add_argument("-o", "--output", required=True)
    g.set_defaults(func=cmd_generate)

    c = sub.add_parser("cluster", help="cluster a dataset name or points file")
    c.add_argument("source")
    c.add_argument("--eps", type=float, default=25.0)
    c.add_argument("--minpts", type=int, default=5)
    c.add_argument("--partitions", type=int, default=4)
    c.add_argument("--algorithm", choices=ALGORITHMS, default="spark")
    c.add_argument("--master", default=None, metavar="URL",
                   help="engine master (simulated[k], threads[k], processes[k]); "
                        "default simulated[partitions]")
    c.add_argument("--merge-mode", choices=MERGE_MODES, default="partials",
                   help="how partials reach the driver: whole point lists "
                        "(partials) or compact digests with a distributed "
                        "relabel pass (edges); labels are identical")
    c.add_argument("--neighbor-mode", choices=NEIGHBOR_MODES, default="per_point",
                   help="executor neighbourhood kernel (batched = vectorised fast path; "
                        "only spark/spatial/sequential honour it)")
    c.add_argument("--labels-out", default=None)
    c.add_argument("--trace-out", default=None, metavar="FILE",
                   help="write a span trace (Chrome trace-event JSON lines, "
                        "Perfetto-loadable; render with `repro trace FILE`)")
    c.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write a Prometheus text exposition of run metrics")
    c.add_argument("--sanitize", action="store_true",
                   help="enable runtime sanitizers (broadcast write-barrier, "
                        "accumulator read guard, race detector); Spark-engine "
                        "algorithms only")
    c.add_argument("--profile", action="store_true",
                   help="per-task resource profiling (CPU time, peak RSS) "
                        "aggregated into --metrics-out; spark/spatial only")
    c.add_argument("--profile-alloc", action="store_true",
                   help="additionally track per-task allocation peaks via "
                        "tracemalloc (slower; implies the tracemalloc "
                        "overhead on every task)")
    c.set_defaults(func=cmd_cluster)

    r = sub.add_parser(
        "run",
        help="run a pipeline plan with per-stage checkpoint/resume",
        description="Run one DBSCAN pipeline plan (see DESIGN.md §9). "
                    "With --checkpoint-dir, checkpointable stages persist "
                    "their outputs keyed by the config+data content hash; "
                    "--resume restores completed stages instead of "
                    "re-running them.",
    )
    r.add_argument("source")
    r.add_argument("--eps", type=float, default=25.0)
    r.add_argument("--minpts", type=int, default=5)
    r.add_argument("--partitions", type=int, default=4)
    r.add_argument("--algorithm", choices=ALGORITHMS, default="spark")
    r.add_argument("--master", default=None, metavar="URL",
                   help="engine master (simulated[k], threads[k], processes[k]); "
                        "default simulated[partitions]")
    r.add_argument("--seed-policy", choices=SEED_POLICIES, default="all")
    r.add_argument("--merge-strategy", choices=MERGE_STRATEGIES,
                   default="union_find")
    r.add_argument("--max-neighbors", type=int, default=None)
    r.add_argument("--min-cluster-size", type=int, default=0)
    r.add_argument("--leaf-size", type=int, default=64)
    r.add_argument("--neighbor-mode", choices=NEIGHBOR_MODES, default="per_point")
    r.add_argument("--partitioning", choices=("range", "cells"), default="range",
                   help="spark-only: 'cells' swaps in the cell plan "
                        "(partition-local indexes, eps-halo, no broadcast)")
    r.add_argument("--merge-mode", choices=MERGE_MODES, default="partials",
                   help="spark/spatial: 'edges' swaps in the edge-based "
                        "merge tail (digests + distributed relabel)")
    r.add_argument("--impl", choices=("array", "hashtable"), default="array",
                   help="sequential-only point-state implementation")
    r.add_argument("--max-rounds", type=int, default=100,
                   help="naive-only propagation round budget")
    r.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="persist per-stage checkpoint artifacts under DIR")
    r.add_argument("--resume", action="store_true",
                   help="restore completed stages from --checkpoint-dir")
    r.add_argument("--fail-after", default=None, metavar="STAGE",
                   help="inject a crash after the named stage completes "
                        "(checkpoint/resume testing)")
    r.add_argument("--labels-out", default=None)
    r.add_argument("--trace-out", default=None, metavar="FILE")
    r.add_argument("--metrics-out", default=None, metavar="FILE")
    r.add_argument("--sanitize", action="store_true")
    r.add_argument("--profile", action="store_true",
                   help="per-task resource profiling (CPU time, peak RSS) "
                        "aggregated into --metrics-out")
    r.add_argument("--profile-alloc", action="store_true",
                   help="additionally track per-task allocation peaks "
                        "(tracemalloc; implies --profile)")
    r.set_defaults(func=cmd_run)

    s = sub.add_parser("scaling", help="Figure 8-style speedup sweep")
    s.add_argument("source")
    s.add_argument("--eps", type=float, default=25.0)
    s.add_argument("--minpts", type=int, default=5)
    s.add_argument("--cores", type=int, nargs="+", default=[2, 4, 8])
    s.add_argument("--neighbor-mode", choices=NEIGHBOR_MODES, default="per_point")
    s.set_defaults(func=cmd_scaling)

    h = sub.add_parser("history", help="summarise an engine event log")
    h.add_argument("log_path")
    h.set_defaults(func=cmd_history)

    tr = sub.add_parser("trace", help="report on a span trace written "
                                      "by --trace-out")
    tr.add_argument("trace_path")
    tr.add_argument("--no-timeline", action="store_true",
                    help="skip the ASCII timeline rendering")
    tr.set_defaults(func=cmd_trace)

    rp = sub.add_parser(
        "report",
        help="skew/straggler analysis of a span trace",
        description="Per-partition cost table, imbalance ratio, makespan "
                    "critical path, and halo-overhead attribution from a "
                    "trace written with --trace-out (worker task spans "
                    "populate the table; run with tracing enabled).",
    )
    rp.add_argument("trace_path")
    rp.add_argument("--no-summary", action="store_true",
                    help="skip the headline phase report, print only the "
                         "skew analysis")
    rp.set_defaults(func=cmd_report)

    pf = sub.add_parser(
        "perf",
        help="benchmark snapshots and the perf-regression gate",
    )
    pfs = pf.add_subparsers(dest="perf_command", required=True)
    pr = pfs.add_parser("run", help="run a benchmark, write BENCH_<name>.json")
    pr.add_argument("source")
    pr.add_argument("-o", "--out", required=True, metavar="FILE")
    pr.add_argument("--name", default=None,
                    help="bench name recorded in the file (default: source)")
    pr.add_argument("--eps", type=float, default=25.0)
    pr.add_argument("--minpts", type=int, default=5)
    pr.add_argument("--partitions", type=int, default=4)
    pr.add_argument("--master", default=None, metavar="URL",
                    help="engine master; default simulated[partitions]")
    pr.add_argument("--partitioning", choices=("range", "cells"),
                    default="range")
    pr.add_argument("--neighbor-mode", choices=NEIGHBOR_MODES,
                    default="batched")
    pr.add_argument("--merge-mode", choices=MERGE_MODES, default="partials")
    pr.add_argument("--repeat", type=int, default=3,
                    help="repetitions; time measures take the min (default 3)")
    pr.add_argument("--trace-out", default=None, metavar="FILE",
                    help="also write the last repeat's merged trace")
    pr.set_defaults(func=cmd_perf_run)
    pd = pfs.add_parser("diff", help="compare two bench files; exit 1 on "
                                     "regression")
    pd.add_argument("baseline")
    pd.add_argument("current")
    pd.add_argument("--tolerance", type=float, default=0.3,
                    help="relative regression tolerance (default 0.3)")
    pd.set_defaults(func=cmd_perf_diff)

    li = sub.add_parser(
        "lint",
        help="static task-closure analysis (capture, determinism, "
             "shuffle-free, picklability, lifecycle/resource-flow, and "
             "driver size-class rules)",
    )
    li.add_argument("paths", nargs="*", default=["src"],
                    help="files or directories to scan (default: src)")
    li.add_argument("--format", choices=("text", "json", "sarif"),
                    default="text", dest="fmt", help="report format")
    li.add_argument("--baseline", default=None, metavar="FILE",
                    help="baseline file grandfathering known findings "
                         "(default: lint-baseline.json when it exists)")
    li.add_argument("--write-baseline", action="store_true",
                    help="write the current findings as the new baseline "
                         "and exit 0")
    li.add_argument("--rules", action="store_true",
                    help="print the rule catalogue and exit")
    li.add_argument("--stats", action="store_true",
                    help="print per-rule finding counts, call-graph size "
                         "(nodes/edges/SCCs), CFG size (functions/"
                         "blocks/edges), and per-size-class value counts "
                         "after the report")
    li.set_defaults(func=cmd_lint)

    return parser


def cmd_history(args: argparse.Namespace) -> int:
    """Render an engine event log as a history report."""
    from repro.engine.history import HistoryError, format_history, load_history

    try:
        history = load_history(args.log_path)
    except HistoryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(format_history(history))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Render a span trace: headline splits plus an ASCII timeline."""
    from repro.obs import TraceReport, format_report, load_trace, render_timeline

    try:
        events = load_trace(args.trace_path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not events:
        print(f"error: trace {args.trace_path!r} contains no events",
              file=sys.stderr)
        return 1
    print(format_report(TraceReport.from_events(events)))
    if not args.no_timeline:
        print()
        print(render_timeline(events))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Skew/straggler analysis of a span trace: per-partition cost
    table, imbalance ratio, makespan critical path, halo overhead."""
    from repro.obs import (
        TraceReport,
        format_report,
        format_skew_report,
        load_trace,
    )

    try:
        events = load_trace(args.trace_path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    report = TraceReport.from_events(events)
    if not args.no_summary:
        print(format_report(report))
        print()
    print(format_skew_report(report))
    return 0


def cmd_perf_run(args: argparse.Namespace) -> int:
    """Run a benchmark and write a ``BENCH_<name>.json`` snapshot.

    Each repeat runs the full job with tracing and metrics on; time
    measures take the min over repeats (best-of-N rejects scheduler
    noise), counts come from the first repeat (the run is
    deterministic, so they cannot legitimately differ).
    """
    import os

    from repro.dbscan import SparkDBSCAN
    from repro.obs import (
        MetricsRegistry,
        TraceReport,
        Tracer,
        build_bench,
        write_bench,
    )

    points = _load_points(args.source)
    name = args.name or args.source
    context = {
        "dataset": args.source,
        "n": int(points.shape[0]),
        "d": int(points.shape[1]),
        "eps": args.eps,
        "minpts": args.minpts,
        "partitions": args.partitions,
        "partitioning": args.partitioning,
        "neighbor_mode": args.neighbor_mode,
        "master": args.master or f"simulated[{args.partitions}]",
        "scale": os.environ.get("REPRO_SCALE", "default"),
    }
    if args.merge_mode != "partials":
        # Only recorded when non-default so pre-existing baselines keep
        # their context (a context mismatch hard-fails perf diff).
        context["merge_mode"] = args.merge_mode
    print(f"perf run {name!r}: {points.shape[0]} points x{args.repeat} "
          f"on {context['master']} ({args.partitioning} partitioning, "
          f"{args.merge_mode} merge)")

    benches = []
    tracer = None
    for i in range(args.repeat):
        tracer = Tracer()
        registry = MetricsRegistry()
        SparkDBSCAN(args.eps, args.minpts,
                    num_partitions=args.partitions,
                    master=args.master,
                    neighbor_mode=args.neighbor_mode,
                    partitioning=args.partitioning,
                    merge_mode=args.merge_mode,
                    tracer=tracer,
                    metrics_registry=registry,
                    profile=True).fit(points)
        events = [s.to_event() for s in tracer.spans]
        report = TraceReport.from_events(events)
        bench = build_bench(name, context, report, registry)
        benches.append(bench)
        print(f"  repeat {i + 1}/{args.repeat}: "
              f"wall {bench['measures']['wall_s']:.3f}s, executors "
              f"{bench['measures']['executor_total_s']:.3f}s total")

    merged = benches[0]
    for b in benches[1:]:
        for k, v in b["measures"].items():
            if k in merged["measures"]:
                merged["measures"][k] = min(merged["measures"][k], v)
    write_bench(args.out, merged)
    print(f"bench written to {args.out}")
    if args.trace_out and tracer is not None:
        tracer.write_jsonl(args.trace_out)
        print(f"trace written to {args.trace_out} "
              f"({len(tracer.spans)} spans; render with `repro report`)")
    return 0


def cmd_perf_diff(args: argparse.Namespace) -> int:
    """Compare two bench snapshots; exit 1 on regression, 2 if the
    benches are not comparable (different context)."""
    from repro.obs import diff_benches, load_bench
    from repro.obs.perf import format_diff

    try:
        base = load_bench(args.baseline)
        cur = load_bench(args.current)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    code, lines = diff_benches(base, cur, tolerance=args.tolerance)
    print(format_diff(code, lines))
    return code


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the task-closure static analyzer; exit 1 on new findings."""
    from repro.lint import (
        DEFAULT_BASELINE,
        BaselineError,
        LintError,
        render_sarif,
        rule_catalogue,
        run_lint,
        write_baseline,
    )

    if args.rules:
        for rid, summary in rule_catalogue().items():
            print(f"{rid}  {summary}")
        return 0
    baseline = args.baseline if args.baseline is not None else DEFAULT_BASELINE
    try:
        report = run_lint(args.paths, baseline_path=baseline,
                          collect_stats=args.stats)
    except (LintError, BaselineError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.write_baseline:
        write_baseline(baseline, report.findings)
        print(f"baseline written to {baseline} "
              f"({len(report.findings)} finding(s))")
        return 0
    if args.fmt == "json":
        print(report.render_json())
    elif args.fmt == "sarif":
        print(render_sarif(report))
    else:
        print(report.render_text())
    if args.stats and args.fmt != "json":
        print(report.render_stats(), file=sys.stderr)
    return 0 if report.clean else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""repro — reproduction of "A Novel Scalable DBSCAN Algorithm with Spark"
(Han, Agrawal, Liao, Choudhary — IEEE IPDPSW 2016).

Layered public API:

- `repro.engine`    — mini-Spark runtime (RDDs, scheduler, shared variables)
- `repro.hdfs`      — block-based mini distributed filesystem
- `repro.mapreduce` — mini Hadoop-MapReduce runtime (Figure 7 baseline)
- `repro.kdtree`    — from-scratch kd-tree with eps-range queries
- `repro.data`      — Table I synthetic dataset generators
- `repro.dbscan`    — sequential DBSCAN, the paper's SEED-based Spark
  DBSCAN, the shuffle-based naive parallel baseline, and the MapReduce
  baseline
- `repro.analysis`  — Section IV-C analytical cost model

Quickstart::

    from repro.data import make_dataset
    from repro.dbscan import SparkDBSCAN

    points = make_dataset("c10k").points
    result = SparkDBSCAN(eps=25.0, minpts=5, num_partitions=8).fit(points)
    print(result.num_clusters, result.num_noise)
"""

__version__ = "1.0.0"

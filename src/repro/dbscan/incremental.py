"""Incremental DBSCAN: maintain a clustering under point insertions.

The paper's related work includes MR-IDBSCAN [Noticewala & Vaghela
2014], an incremental MapReduce DBSCAN.  This module implements the
underlying incremental algorithm [Ester et al. 1998]: when a point is
inserted, only the neighbourhood of the insertion can change state —

- the new point's eps-neighbours gain one neighbour each, so some
  previously non-core points may *become* core ("promoted");
- the new point joins a cluster / starts one / becomes noise depending
  on the cores now in reach;
- clusters previously separated only by a density gap at the insertion
  site may need to merge.

The implementation recomputes exactly the affected region (the new
point's eps-neighbourhood and the promoted points' neighbourhoods),
never the whole dataset, and is property-tested to agree with batch
DBSCAN after every insertion sequence.

The spatial index here is a small grid (cell size = eps) rather than
the kd-tree, because the kd-tree is static and insertion-heavy
workloads need cheap updates — the same trade a production system
would make.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from .core import NOISE


class GridIndex:
    """Uniform grid with cell edge = eps: a point's eps-ball is covered
    by its own cell plus the 3^d neighbouring cells."""

    def __init__(self, d: int, eps: float):
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.d = d
        self.eps = eps
        self._cells: dict[tuple[int, ...], list[int]] = defaultdict(list)
        self._points: list[np.ndarray] = []
        self._active = 0

    def _cell_of(self, x: np.ndarray) -> tuple[int, ...]:
        return tuple(int(np.floor(v / self.eps)) for v in x)

    def add(self, x: np.ndarray) -> int:
        """Add one element."""
        idx = len(self._points)
        self._points.append(np.asarray(x, dtype=np.float64))
        self._cells[self._cell_of(x)].append(idx)
        self._active += 1
        return idx

    def remove(self, idx: int) -> None:
        """Remove a stored point."""
        x = self._points[idx]
        if x is None:
            raise KeyError(f"point {idx} already removed")
        key = self._cell_of(x)
        cell = self._cells[key]
        cell.remove(idx)
        if not cell:
            # Drop emptied cells so the occupied-cell count (which the
            # neighbour-scan strategy choice reads) stays truthful.
            del self._cells[key]
        self._points[idx] = None  # tombstone keeps indices stable
        self._active -= 1

    def point(self, idx: int) -> np.ndarray:
        """Stored coordinates of a point."""
        x = self._points[idx]
        if x is None:
            raise KeyError(f"point {idx} was removed")
        return x

    @property
    def active(self) -> int:
        """Number of stored points that have not been removed."""
        return self._active

    @property
    def num_cells(self) -> int:
        """Number of occupied grid cells."""
        return len(self._cells)

    def _candidates_offsets(self, base: tuple[int, ...]):
        """Candidate indices by enumerating all 3^d neighbouring offsets."""
        for offset in np.ndindex(*(3,) * self.d):
            cell = tuple(b + o - 1 for b, o in zip(base, offset))
            yield from self._cells.get(cell, ())

    def _candidates_scan(self, base: tuple[int, ...]):
        """Candidate indices by scanning the occupied cells instead.

        Equivalent to `_candidates_offsets` up to ordering: a cell is
        Chebyshev-adjacent to ``base`` iff every coordinate differs by at
        most 1.  Preferable whenever the dict holds fewer cells than the
        3^d offset box (59 049 tuples per query at the skew generator's
        default d=10).
        """
        for cell, idxs in self._cells.items():
            if all(abs(c - b) <= 1 for c, b in zip(cell, base)):
                yield from idxs

    def neighbors(self, x: np.ndarray) -> list[int]:
        """Indices of stored points within eps of x (inclusive)."""
        x = np.asarray(x, dtype=np.float64)
        base = self._cell_of(x)
        eps2 = self.eps * self.eps
        if 3 ** self.d <= len(self._cells):
            candidates = self._candidates_offsets(base)
        else:
            candidates = self._candidates_scan(base)
        out: list[int] = []
        for idx in candidates:
            diff = self._points[idx] - x
            if float(diff @ diff) <= eps2:
                out.append(idx)
        return sorted(out)

    def __len__(self) -> int:
        return self._active


class IncrementalDBSCAN:
    """Insertion-only incremental DBSCAN with the same label semantics as
    `dbscan_sequential` (labels >= 0 clusters, -1 noise)."""

    def __init__(self, eps: float, minpts: int, d: int):
        if minpts < 1:
            raise ValueError(f"minpts must be >= 1, got {minpts}")
        self.eps = eps
        self.minpts = minpts
        self.index = GridIndex(d, eps)
        self._neighbor_count: list[int] = []
        self._labels: list[int] = []
        self._next_cluster = 0
        # Union-find over cluster ids: insertions can merge clusters.
        self._cluster_parent: dict[int, int] = {}
        self._deleted: set[int] = set()

    # -- cluster-id union-find ------------------------------------------------
    def _find(self, cid: int) -> int:
        root = cid
        while self._cluster_parent[root] != root:
            root = self._cluster_parent[root]
        while self._cluster_parent[cid] != root:
            self._cluster_parent[cid], cid = root, self._cluster_parent[cid]
        return root

    def _union(self, a: int, b: int) -> int:
        ra, rb = self._find(a), self._find(b)
        if ra != rb:
            self._cluster_parent[rb] = ra
        return ra

    def _new_cluster(self) -> int:
        cid = self._next_cluster
        self._next_cluster += 1
        self._cluster_parent[cid] = cid
        return cid

    # -- queries ----------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of points."""
        return len(self._labels)

    def is_core(self, idx: int) -> bool:
        """True iff the point currently has >= minpts neighbours."""
        return self._neighbor_count[idx] >= self.minpts

    @property
    def labels(self) -> np.ndarray:
        """Current labels, canonicalised by first appearance.  Deleted
        points report NOISE; use `active_mask` to exclude them."""
        raw = [
            self._find(lab) if lab != NOISE and i not in self._deleted else NOISE
            for i, lab in enumerate(self._labels)
        ]
        remap: dict[int, int] = {}
        out = np.empty(len(raw), dtype=np.int64)
        for i, lab in enumerate(raw):
            if lab == NOISE:
                out[i] = NOISE
            else:
                out[i] = remap.setdefault(lab, len(remap))
        return out

    @property
    def active_mask(self) -> np.ndarray:
        """Boolean mask over insertion indices: True if not deleted."""
        mask = np.ones(self.n, dtype=bool)
        for i in self._deleted:
            mask[i] = False
        return mask

    @property
    def num_clusters(self) -> int:
        """Number of distinct clusters."""
        labels = self.labels
        return int(np.unique(labels[labels >= 0]).size)

    # -- insertion ---------------------------------------------------------------
    def insert(self, x: np.ndarray) -> int:
        """Insert one point; returns its index.  Updates only the affected
        neighbourhood (Ester et al. 1998)."""
        x = np.asarray(x, dtype=np.float64)
        neigh = self.index.neighbors(x)  # existing points within eps
        idx = self.index.add(x)
        self._labels.append(NOISE)
        # Neighbour counts include the point itself, matching the kd-tree
        # convention used everywhere else in this repo.
        self._neighbor_count.append(len(neigh) + 1)

        promoted: list[int] = []
        for j in neigh:
            self._neighbor_count[j] += 1
            if self._neighbor_count[j] == self.minpts:
                promoted.append(j)  # j just became a core point

        # Promotions first: they can knit whole neighbourhoods together,
        # and they guarantee every core point is labelled before x picks
        # a cluster.
        for j in promoted:
            self._expand_promoted(j)

        # Core points now reachable from x (all labelled by now).
        core_neighbors = [j for j in neigh if self.is_core(j)]

        if self.is_core(idx):
            if self._labels[idx] == NOISE:  # promotions may have claimed x
                self._labels[idx] = self._new_cluster()
            cid = self._find(self._labels[idx])
            for j in core_neighbors:
                cid = self._absorb(cid, j)
            self._labels[idx] = cid
            # Non-core neighbours of a new core become border points.
            for j in neigh:
                if self._labels[j] == NOISE:
                    self._labels[j] = cid
        elif self._labels[idx] == NOISE and core_neighbors:
            # Border point: join (the merged cluster of) one reachable core.
            self._labels[idx] = self._find(self._labels[core_neighbors[0]])
        # else: noise (stays NOISE) or already claimed as border
        return idx

    def insert_all(self, points: np.ndarray) -> list[int]:
        """Insert many points; returns their indices."""
        return [self.insert(p) for p in np.asarray(points, dtype=np.float64)]

    def _absorb(self, cid: int, core_j: int) -> int:
        """Union cid with core_j's cluster (creating one if j was noise)."""
        if self._labels[core_j] == NOISE:
            self._labels[core_j] = self._find(cid)
            return self._find(cid)
        return self._union(cid, self._labels[core_j])

    def _expand_promoted(self, j: int) -> None:
        """Point j just turned core: everything in its eps-ball is now
        density-reachable from it — join them into one cluster."""
        if self._labels[j] == NOISE:
            self._labels[j] = self._new_cluster()
        cid = self._find(self._labels[j])
        for k in self.index.neighbors(self.index.point(j)):
            if k == j:
                continue
            if self.is_core(k):
                cid = self._absorb(cid, k)
            elif self._labels[k] == NOISE:
                self._labels[k] = cid
        self._labels[j] = cid

    # -- deletion -----------------------------------------------------------------
    def delete(self, idx: int) -> None:
        """Remove a point; re-cluster exactly the affected clusters.

        Deletion can demote cores (neighbour counts only drop) and hence
        *split* a cluster.  Splits cannot be detected locally, so every
        cluster touching the deletion neighbourhood is re-clustered from
        its own points — never the rest of the dataset [Ester et al.
        1998's "affected region", realised at cluster granularity].
        """
        if idx in self._deleted or not 0 <= idx < self.n:
            raise KeyError(f"point {idx} already deleted or unknown")
        x = self.index.point(idx)
        neigh = [j for j in self.index.neighbors(x) if j != idx]
        self.index.remove(idx)
        self._deleted.add(idx)

        demoted: list[int] = []
        for j in neigh:
            self._neighbor_count[j] -= 1
            if self._neighbor_count[j] == self.minpts - 1:
                demoted.append(j)  # j just lost core status

        # Clusters whose structure might have changed.
        affected: set[int] = set()
        if self._labels[idx] != NOISE:
            affected.add(self._find(self._labels[idx]))
        self._labels[idx] = NOISE
        for j in neigh + demoted:
            if self._labels[j] != NOISE:
                affected.add(self._find(self._labels[j]))
        for j in demoted:
            for k in self.index.neighbors(self.index.point(j)):
                if self._labels[k] != NOISE:
                    affected.add(self._find(self._labels[k]))
        if not affected:
            return

        # Gather the affected clusters' members and wipe their labels.
        region = [
            i for i in range(self.n)
            if i not in self._deleted
            and self._labels[i] != NOISE
            and self._find(self._labels[i]) in affected
        ]
        region_set = set(region)
        for i in region:
            self._labels[i] = NOISE

        # Re-cluster the region: BFS over its core points (core status is
        # global and already up to date).
        for s in region:
            if self._labels[s] != NOISE or not self.is_core(s):
                continue
            cid = self._new_cluster()
            self._labels[s] = cid
            queue = [s]
            while queue:
                p = queue.pop()
                for q in self.index.neighbors(self.index.point(p)):
                    if q == p or q not in region_set:
                        continue
                    if self._labels[q] == NOISE:
                        self._labels[q] = cid
                        if self.is_core(q):
                            queue.append(q)
        # Leftover non-core region points may still be border points of an
        # *unaffected* cluster via a core outside the region.
        for s in region:
            if self._labels[s] != NOISE:
                continue
            for q in self.index.neighbors(self.index.point(s)):
                if q != s and self.is_core(q) and self._labels[q] != NOISE:
                    self._labels[s] = self._find(self._labels[q])
                    break

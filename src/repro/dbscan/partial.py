"""Executor-side local clustering with SEED placement (Algorithms 2–3).

Each executor owns a contiguous index range of points.  It runs DBSCAN
expansion *only from its own points*; the full dataset's kd-tree (a
broadcast variable) lets it see foreign neighbours, but instead of
expanding them it records them as **SEEDs** — markers that let the
driver discover which partial clusters belong to the same global
cluster.  No executor⇄executor communication ever happens: that is the
paper's central design point.

Seed policies (DESIGN.md §4):

- ``"all"`` (default): every foreign point reached is recorded as a
  seed.  Guarantees exact equivalence with sequential DBSCAN (every
  cross-partition density edge is witnessed, and every cross-partition
  border point is retained).
- ``"one_per_partition"``: the literal reading of Algorithm 3 — at most
  one seed per foreign partition per partial cluster.  Cheaper, but can
  drop cross-partition border points (Ablation A quantifies this).
"""

from __future__ import annotations

import pickle
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from ..engine.partitioner import IndexRangePartitioner
from ..kdtree import KDTree

SEED_POLICIES = ("all", "one_per_partition")

#: How the executor obtains eps-neighbourhoods (DESIGN.md §6):
#:
#: - ``"per_point"``: one kd-tree walk per BFS pop (the paper's loop).
#: - ``"batched"``: phase A answers every owned point's neighbourhood in
#:   one vectorised kernel call (`KDTree.query_radius_batch`) and stores
#:   them in CSR arrays; phase B runs the identical BFS/SEED expansion
#:   over the precomputed rows with no per-pop tree queries.
NEIGHBOR_MODES = ("per_point", "batched")


@dataclass
class OpCounters:
    """Operation counts of one executor's run — the quantities the paper's
    Section III-B data-structure analysis reasons about.

    The paper: "The number of add operations should be the same as the
    number of remove operations according to the condition in Line 9
    (while loop will not terminate until it is empty)."  That invariant
    (``queue_adds == queue_removes`` at completion) is checked in tests.
    """

    range_queries: int = 0       # kd-tree eps-neighbourhood lookups
    queue_adds: int = 0          # Queue.add (Lines 7 and 17)
    queue_removes: int = 0       # Queue.remove (Line 10)
    hashtable_puts: int = 0      # visited/assignment writes (Line 11)
    hashtable_lookups: int = 0   # containsKey (Lines 5, 7, 17)
    seeds_placed: int = 0
    seeds_skipped: int = 0       # suppressed by the one-per-partition cap

    def merge(self, other: "OpCounters") -> "OpCounters":
        """Merge another instance into this one; returns self."""
        for f in self.__dataclass_fields__:
            setattr(self, f, getattr(self, f) + getattr(other, f))
        return self


@dataclass
class PartialCluster:
    """One locally-built cluster, as shipped through the accumulator.

    ``members`` are regular elements (indices inside the partition's
    range); ``seeds`` are foreign indices.  ``status`` mirrors the
    paper's unfinished/finished merge bookkeeping (Figure 4).

    ``borders`` is the subset of ``members`` that are *not* core points.
    The driver's merge needs it: density-connectivity only passes
    through core points, so a SEED that is merely a border member of
    another partial cluster must NOT merge the two (a border point
    shared by two clusters is legal in DBSCAN and does not join them).
    The paper's Algorithm 4 overlooks this distinction — see DESIGN.md
    §4.
    """

    partition: int
    local_id: int
    lo: int                      # partition index range [lo, hi)
    hi: int
    members: list[int] = field(default_factory=list)
    seeds: list[int] = field(default_factory=list)
    borders: set[int] = field(default_factory=set)
    status: str = "unfinished"

    def is_core_member(self, index: int) -> bool:
        """True iff ``index`` is a member and a core point."""
        return index not in self.borders

    @property
    def cid(self) -> tuple[int, int]:
        """Globally-unique cluster id: (partition, local id)."""
        return (self.partition, self.local_id)

    @property
    def size(self) -> int:
        """Total number of elements."""
        return len(self.members) + len(self.seeds)

    def owns(self, index: int) -> bool:
        """True iff ``index`` falls inside this partition's range.

        A range check only — it does NOT test membership; an owned index
        may belong to a sibling partial cluster or be noise.  Use
        ``index in cluster.members`` for membership.
        """
        return self.lo <= index < self.hi

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartialCluster(p{self.partition}#{self.local_id}, "
            f"range=[{self.lo},{self.hi}), members={len(self.members)}, "
            f"seeds={len(self.seeds)}, {self.status})"
        )


def local_dbscan(
    partition_id: int,
    own_indices: Iterable[int],
    points: np.ndarray,
    tree: KDTree,
    eps: float,
    minpts: int,
    partitioner: IndexRangePartitioner,
    seed_policy: str = "all",
    max_neighbors: int | None = None,
    counters: OpCounters | None = None,
    neighbor_mode: str = "per_point",
    boundary_out: set[int] | None = None,
) -> list[PartialCluster]:
    """Build the partial clusters of one partition (Algorithm 2 lines 4–29).

    ``own_indices`` is the iterator the executor receives for its
    partition; every index must fall inside the partition's range.
    Returns the partial clusters; noise is implicit (points of this
    partition that are members of no partial cluster anywhere).

    Pass an `OpCounters` to collect the Section III-B operation counts
    (range queries, queue adds/removes, hashtable puts/lookups).

    ``neighbor_mode="batched"`` precomputes every owned point's
    eps-neighbourhood with one `KDTree.query_radius_batch` call (phase A)
    and expands over the stored CSR rows (phase B).  The partial
    clusters — members, member order, borders, seeds — are identical to
    the per-point mode; ``range_queries`` counts the whole owned range
    (which per-point mode also queries exactly once per point).

    ``boundary_out``, when given, collects every *queried* owned point
    that has at least one foreign neighbour within eps.  Intersected
    with a partial cluster's members it yields exactly the points some
    other partition can see as a SEED (eps-symmetry) — the export set
    of the edge-based merge (DESIGN.md §11).  Requires
    ``max_neighbors=None``: truncation breaks the symmetry argument.
    """
    if seed_policy not in SEED_POLICIES:
        raise ValueError(f"seed_policy must be one of {SEED_POLICIES}, got {seed_policy!r}")
    if neighbor_mode not in NEIGHBOR_MODES:
        raise ValueError(
            f"neighbor_mode must be one of {NEIGHBOR_MODES}, got {neighbor_mode!r}"
        )
    lo, hi = partitioner.range_of(partition_id)
    if neighbor_mode == "batched":
        from ..obs.collect import task_span

        # Phase A: one shared-descent kernel call over the owned range.
        with task_span("task.kdtree_query", n=hi - lo):
            indptr, indices = tree.query_radius_batch(
                points[lo:hi], eps, max_neighbors
            )
        if boundary_out is not None:
            # A row is boundary iff any neighbour falls outside [lo, hi).
            # cumsum-of-flags handles empty rows, unlike np.add.reduceat.
            outside = (indices < lo) | (indices >= hi)
            cs = np.concatenate(([0], np.cumsum(outside)))
            rows = np.flatnonzero(cs[indptr[1:]] > cs[indptr[:-1]])
            boundary_out.update((rows + lo).tolist())
        if counters is None:
            # Phase B fast path: row-at-a-time vectorised expansion.
            return _expand_batched(
                partition_id, own_indices, indptr, indices,
                points.shape[0], lo, hi, minpts, partitioner, seed_policy,
            )
        # Instrumented runs replay the per-element loop over the stored
        # rows so every Section III-B count is observed exactly.
        counters.range_queries += hi - lo

        def neigh_of(j: int) -> np.ndarray:
            k = j - lo
            return indices[indptr[k]:indptr[k + 1]]
    elif counters is not None:
        query = tree.query_radius

        def neigh_of(j: int) -> np.ndarray:
            counters.range_queries += 1
            return query(points[j], eps, max_neighbors)
    else:
        query = tree.query_radius

        def neigh_of(j: int) -> np.ndarray:
            return query(points[j], eps, max_neighbors)

    if boundary_out is not None and neighbor_mode != "batched":
        # Per-point modes record boundary lazily: only visited points
        # get queried, but every cluster member is visited, so the
        # export set (boundary ∩ members) matches the batched mode.
        inner = neigh_of

        def neigh_of(j: int, _inner=inner) -> np.ndarray:
            row = _inner(j)
            if row.size and bool(((row < lo) | (row >= hi)).any()):
                boundary_out.add(j)
            return row

    if counters is not None:
        return _expand_counted(
            partition_id, own_indices, neigh_of, lo, hi, minpts,
            partitioner, seed_policy, counters,
        )
    return _expand(
        partition_id, own_indices, neigh_of, lo, hi, minpts,
        partitioner, seed_policy,
    )


def _expand(
    partition_id: int,
    own_indices: Iterable[int],
    neigh_of: Callable[[int], np.ndarray],
    lo: int,
    hi: int,
    minpts: int,
    partitioner: IndexRangePartitioner,
    seed_policy: str,
) -> list[PartialCluster]:
    """The BFS/SEED expansion (phase B), shared by both neighbour modes."""
    # The paper's Hashtable: point index -> visited/assigned state.
    visited: dict[int, bool] = {}
    assignment: dict[int, int] = {}
    core_flag: dict[int, bool] = {}
    partials: list[PartialCluster] = []

    for i in own_indices:
        i = int(i)
        if not lo <= i < hi:
            raise ValueError(
                f"index {i} handed to partition {partition_id} whose range is "
                f"[{lo}, {hi}) — partitioning is inconsistent"
            )
        if i in visited:  # Algorithm 2 line 5: already in hashtable
            continue
        visited[i] = True
        neigh = neigh_of(i)
        if len(neigh) < minpts:
            core_flag[i] = False
            continue  # noise unless claimed later as a border point
        core_flag[i] = True
        cluster = PartialCluster(
            partition=partition_id, local_id=len(partials), lo=lo, hi=hi, members=[i]
        )
        assignment[i] = cluster.local_id
        seeds_by_partition: dict[int, int] = {}
        seed_set: set[int] = set()
        # The Queue N of Algorithm 2 (LinkedList in the paper's Java).
        queue: deque[int] = deque(int(x) for x in neigh)
        while queue:
            p = queue.popleft()
            if lo <= p < hi:
                # Own point: classic expansion (Algorithm 2 lines 13–22).
                if p not in visited:
                    visited[p] = True
                    neigh2 = neigh_of(p)
                    if len(neigh2) >= minpts:
                        core_flag[p] = True
                        queue.extend(int(x) for x in neigh2)
                    else:
                        core_flag[p] = False
                if p not in assignment:
                    assignment[p] = cluster.local_id
                    cluster.members.append(p)
                    if not core_flag[p]:
                        cluster.borders.add(p)
            else:
                # Foreign point: SEED placement (Algorithm 3).  Never
                # expanded — its home executor computes its neighbourhood.
                if p in seed_set:
                    continue
                if seed_policy == "one_per_partition":
                    par = partitioner.partition(p)
                    if par in seeds_by_partition:
                        continue  # Algorithm 3 line 11: one seed placed already
                    seeds_by_partition[par] = p
                seed_set.add(p)
                cluster.seeds.append(p)
        partials.append(cluster)
    return partials


def _expand_batched(
    partition_id: int,
    own_indices: Iterable[int],
    indptr: np.ndarray,
    indices: np.ndarray,
    n_total: int,
    lo: int,
    hi: int,
    minpts: int,
    partitioner: IndexRangePartitioner,
    seed_policy: str,
) -> list[PartialCluster]:
    """Phase B over precomputed CSR rows, vectorised row-at-a-time.

    Exactly equivalent to `_expand`: the flat FIFO queue pops a point's
    whole neighbour row contiguously (expansions append at the back),
    and rows never repeat an index, so processing one row's elements
    against the row-start state with numpy masks visits, assigns, and
    enqueues in the same order as the per-element loop.  The per-point
    BFS therefore reduces to a queue of *row ids* — one numpy pass per
    row instead of one Python iteration per neighbour.
    """
    counts = np.diff(indptr)
    core = counts >= minpts            # every owned point, known up front
    visited = np.zeros(hi - lo, dtype=bool)
    assigned = np.zeros(hi - lo, dtype=bool)
    partials: list[PartialCluster] = []
    # Per-cluster foreign-seed dedup, reset via the seed list itself.
    seen_seed = np.zeros(n_total, dtype=bool)
    p_minus_1 = partitioner.num_partitions - 1

    for i in own_indices:
        i = int(i)
        if not lo <= i < hi:
            raise ValueError(
                f"index {i} handed to partition {partition_id} whose range is "
                f"[{lo}, {hi}) — partitioning is inconsistent"
            )
        k = i - lo
        if visited[k]:
            continue
        visited[k] = True
        if not core[k]:
            continue  # noise unless claimed later as a border point
        cluster = PartialCluster(
            partition=partition_id, local_id=len(partials), lo=lo, hi=hi, members=[i]
        )
        assigned[k] = True
        seeds_by_partition: dict[int, int] = {}
        rows: deque[int] = deque([k])
        while rows:
            r = rows.popleft()
            row = indices[indptr[r]:indptr[r + 1]]
            own_mask = (row >= lo) & (row < hi)
            own = row[own_mask] - lo
            newly = own[~visited[own]]
            visited[newly] = True
            rows.extend(newly[core[newly]].tolist())
            join = own[~assigned[own]]
            assigned[join] = True
            cluster.members.extend((join + lo).tolist())
            cluster.borders.update((join[~core[join]] + lo).tolist())
            foreign = row[~own_mask]
            if foreign.size == 0:
                continue
            if seed_policy == "all":
                # Row elements are distinct, so only cross-row dedup needed.
                new = foreign[~seen_seed[foreign]]
                seen_seed[new] = True
                cluster.seeds.extend(new.tolist())
            elif len(seeds_by_partition) < p_minus_1:
                # one_per_partition: caps fill fast; loop only until then.
                for s in foreign.tolist():
                    if seen_seed[s]:
                        continue
                    par = partitioner.partition(s)
                    if par in seeds_by_partition:
                        continue
                    seeds_by_partition[par] = s
                    seen_seed[s] = True
                    cluster.seeds.append(s)
                    if len(seeds_by_partition) == p_minus_1:
                        break
        if cluster.seeds:
            seen_seed[np.asarray(cluster.seeds)] = False
        partials.append(cluster)
    return partials


def _expand_counted(
    partition_id: int,
    own_indices: Iterable[int],
    neigh_of: Callable[[int], np.ndarray],
    lo: int,
    hi: int,
    minpts: int,
    partitioner: IndexRangePartitioner,
    seed_policy: str,
    c: OpCounters,
) -> list[PartialCluster]:
    """Instrumented twin of the `_expand` hot loop.

    Kept separate so the common path pays nothing for the counters;
    tests assert both paths produce identical partial clusters.
    ``range_queries`` is counted by the caller (inside ``neigh_of`` for
    per-point mode, as one batch for batched mode).
    """
    visited: dict[int, bool] = {}
    assignment: dict[int, int] = {}
    core_flag: dict[int, bool] = {}
    partials: list[PartialCluster] = []

    for i in own_indices:
        i = int(i)
        if not lo <= i < hi:
            raise ValueError(
                f"index {i} handed to partition {partition_id} whose range is "
                f"[{lo}, {hi}) — partitioning is inconsistent"
            )
        c.hashtable_lookups += 1
        if i in visited:
            continue
        visited[i] = True
        c.hashtable_puts += 1
        neigh = neigh_of(i)
        if len(neigh) < minpts:
            core_flag[i] = False
            continue
        core_flag[i] = True
        cluster = PartialCluster(
            partition=partition_id, local_id=len(partials), lo=lo, hi=hi, members=[i]
        )
        assignment[i] = cluster.local_id
        c.hashtable_puts += 1
        seeds_by_partition: dict[int, int] = {}
        seed_set: set[int] = set()
        queue: deque[int] = deque(int(x) for x in neigh)
        c.queue_adds += len(neigh)
        while queue:
            p = queue.popleft()
            c.queue_removes += 1
            if lo <= p < hi:
                c.hashtable_lookups += 1
                if p not in visited:
                    visited[p] = True
                    c.hashtable_puts += 1
                    neigh2 = neigh_of(p)
                    if len(neigh2) >= minpts:
                        core_flag[p] = True
                        queue.extend(int(x) for x in neigh2)
                        c.queue_adds += len(neigh2)
                    else:
                        core_flag[p] = False
                c.hashtable_lookups += 1
                if p not in assignment:
                    assignment[p] = cluster.local_id
                    c.hashtable_puts += 1
                    cluster.members.append(p)
                    if not core_flag[p]:
                        cluster.borders.add(p)
            else:
                if p in seed_set:
                    continue
                if seed_policy == "one_per_partition":
                    par = partitioner.partition(p)
                    if par in seeds_by_partition:
                        c.seeds_skipped += 1
                        continue
                    seeds_by_partition[par] = p
                seed_set.add(p)
                cluster.seeds.append(p)
                c.seeds_placed += 1
        partials.append(cluster)
    return partials


# --------------------------------------------------------------------------
# Edge-based merge representation (DESIGN.md §11).
#
# In ``merge_mode="edges"`` the executor keeps its partial clusters local
# and ships only a `PartitionDigest`: point-free summaries, the seed lists
# (the outgoing half-edges), and the *export* table — boundary members
# another partition can reach, keyed so the driver can join seeds against
# them.  Collected bytes scale with the cross-partition surface, not with
# the number of points.
# --------------------------------------------------------------------------


@dataclass
class PartialSummary:
    """Point-free description of one partial cluster.

    ``founder`` is ``members[0]`` — the cluster's first-expanded point.
    Founders are globally unique (every point is a member of at most one
    partial cluster), so sorting summaries by founder reproduces the
    canonical order `CollectPartials` gives the full partial list, which
    is what keeps gid numbering identical across merge modes.
    """

    partition: int
    local_id: int
    founder: int
    n_members: int
    n_seeds: int
    n_borders: int

    @property
    def cid(self) -> tuple[int, int]:
        """Globally-unique cluster id: (partition, local id)."""
        return (self.partition, self.local_id)

    @property
    def size(self) -> int:
        """Total number of elements — matches `PartialCluster.size`."""
        return self.n_members + self.n_seeds


@dataclass
class LocalExpansion:
    """One partition's expansion output, retained executor-side.

    Cached in the lineage (never collected): job 1 derives the digest
    from it, job 2 applies the broadcast gid map to its members.
    ``boundary`` is the queried-points-with-foreign-neighbours set from
    ``local_dbscan(boundary_out=...)``.
    """

    partition: int
    partials: list[PartialCluster]
    boundary: set[int]
    counters: OpCounters | None = None


@dataclass
class PartitionDigest:
    """The compact merge input one partition ships to the driver.

    ``seeds[k]`` lists the foreign points ``summaries[k]`` reached
    (outgoing half-edges); ``exports`` holds ``(point, local_id,
    is_core)`` for every boundary member — the incoming half-edges.  By
    eps-symmetry a point is a SEED of some other partition iff it has a
    foreign neighbour, so joining seeds against exports recovers exactly
    the owner-map edges the partial-mode merge walks.
    """

    partition: int
    summaries: list[PartialSummary]
    seeds: list[list[int]]
    exports: list[tuple[int, int, bool]]


def partition_digest(exp: LocalExpansion) -> PartitionDigest:
    """Distill one partition's expansion into its merge digest."""
    summaries: list[PartialSummary] = []
    seeds: list[list[int]] = []
    exports: list[tuple[int, int, bool]] = []
    for c in exp.partials:
        summaries.append(
            PartialSummary(
                partition=c.partition,
                local_id=c.local_id,
                founder=c.members[0],
                n_members=len(c.members),
                n_seeds=len(c.seeds),
                n_borders=len(c.borders),
            )
        )
        seeds.append([int(s) for s in c.seeds])
        for m in c.members:
            if m in exp.boundary:
                exports.append((int(m), c.local_id, m not in c.borders))
    return PartitionDigest(
        partition=exp.partition, summaries=summaries, seeds=seeds, exports=exports
    )


def digest_from_partials(partials: list[PartialCluster]) -> list[PartitionDigest]:
    """Digests equivalent to what the executors would have emitted.

    Reference path for tests and benchmarks: without the executors'
    boundary sets, the export table is reconstructed as members ∩
    union-of-all-seeds — every point that actually participates in a
    seed/export join.  (The executor-side export set is a superset —
    boundary members nobody seeded — which the join simply never probes.)
    """
    targets: set[int] = set()
    for c in partials:
        targets.update(c.seeds)
    by_partition: dict[int, list[PartialCluster]] = {}
    for c in partials:
        by_partition.setdefault(c.partition, []).append(c)
    digests = []
    for pid in sorted(by_partition):
        exp = LocalExpansion(
            partition=pid,
            partials=by_partition[pid],
            boundary={m for c in by_partition[pid] for m in c.members if m in targets},
        )
        digests.append(partition_digest(exp))
    return digests


def partials_payload_nbytes(partials: list[PartialCluster]) -> int:
    """Canonical driver-collect size of the partial-mode payload.

    Pickles a plain-tuple rendering (sorted borders, fixed protocol),
    one item at a time, so the byte count is deterministic across
    backends and Python versions — pickling the whole list at once would
    let the memo deduplicate objects shared *across* items (e.g.
    interned status strings), and how much is shared depends on whether
    partials were unpickled per-partition or created in-process.  The
    sum feeds the ``repro_driver_collect_bytes`` gauge the perf gate
    compares exactly.
    """
    return sum(
        len(pickle.dumps(
            (c.partition, c.local_id, c.lo, c.hi, list(c.members),
             list(c.seeds), sorted(c.borders), c.status),
            protocol=4,
        ))
        for c in partials
    )


def digest_payload_nbytes(digests: list[PartitionDigest]) -> int:
    """Canonical driver-collect size of the edge-mode payload.

    Per-digest pickling, summed, for the same backend-invariance reason
    as :func:`partials_payload_nbytes`.
    """
    return sum(
        len(pickle.dumps(
            (
                d.partition,
                [(s.partition, s.local_id, s.founder, s.n_members,
                  s.n_seeds, s.n_borders) for s in d.summaries],
                [[int(x) for x in ss] for ss in d.seeds],
                [(int(p), int(l), bool(core)) for (p, l, core) in d.exports],
            ),
            protocol=4,
        ))
        for d in digests
    )

"""Executor-side local clustering with SEED placement (Algorithms 2–3).

Each executor owns a contiguous index range of points.  It runs DBSCAN
expansion *only from its own points*; the full dataset's kd-tree (a
broadcast variable) lets it see foreign neighbours, but instead of
expanding them it records them as **SEEDs** — markers that let the
driver discover which partial clusters belong to the same global
cluster.  No executor⇄executor communication ever happens: that is the
paper's central design point.

Seed policies (DESIGN.md §4):

- ``"all"`` (default): every foreign point reached is recorded as a
  seed.  Guarantees exact equivalence with sequential DBSCAN (every
  cross-partition density edge is witnessed, and every cross-partition
  border point is retained).
- ``"one_per_partition"``: the literal reading of Algorithm 3 — at most
  one seed per foreign partition per partial cluster.  Cheaper, but can
  drop cross-partition border points (Ablation A quantifies this).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..engine.partitioner import IndexRangePartitioner
from ..kdtree import KDTree

SEED_POLICIES = ("all", "one_per_partition")


@dataclass
class OpCounters:
    """Operation counts of one executor's run — the quantities the paper's
    Section III-B data-structure analysis reasons about.

    The paper: "The number of add operations should be the same as the
    number of remove operations according to the condition in Line 9
    (while loop will not terminate until it is empty)."  That invariant
    (``queue_adds == queue_removes`` at completion) is checked in tests.
    """

    range_queries: int = 0       # kd-tree eps-neighbourhood lookups
    queue_adds: int = 0          # Queue.add (Lines 7 and 17)
    queue_removes: int = 0       # Queue.remove (Line 10)
    hashtable_puts: int = 0      # visited/assignment writes (Line 11)
    hashtable_lookups: int = 0   # containsKey (Lines 5, 7, 17)
    seeds_placed: int = 0
    seeds_skipped: int = 0       # suppressed by the one-per-partition cap

    def merge(self, other: "OpCounters") -> "OpCounters":
        """Merge another instance into this one; returns self."""
        for f in self.__dataclass_fields__:
            setattr(self, f, getattr(self, f) + getattr(other, f))
        return self


@dataclass
class PartialCluster:
    """One locally-built cluster, as shipped through the accumulator.

    ``members`` are regular elements (indices inside the partition's
    range); ``seeds`` are foreign indices.  ``status`` mirrors the
    paper's unfinished/finished merge bookkeeping (Figure 4).

    ``borders`` is the subset of ``members`` that are *not* core points.
    The driver's merge needs it: density-connectivity only passes
    through core points, so a SEED that is merely a border member of
    another partial cluster must NOT merge the two (a border point
    shared by two clusters is legal in DBSCAN and does not join them).
    The paper's Algorithm 4 overlooks this distinction — see DESIGN.md
    §4.
    """

    partition: int
    local_id: int
    lo: int                      # partition index range [lo, hi)
    hi: int
    members: list[int] = field(default_factory=list)
    seeds: list[int] = field(default_factory=list)
    borders: set[int] = field(default_factory=set)
    status: str = "unfinished"

    def is_core_member(self, index: int) -> bool:
        """True iff ``index`` is a member and a core point."""
        return index not in self.borders

    @property
    def cid(self) -> tuple[int, int]:
        """Globally-unique cluster id: (partition, local id)."""
        return (self.partition, self.local_id)

    @property
    def size(self) -> int:
        """Total number of elements."""
        return len(self.members) + len(self.seeds)

    def owns(self, index: int) -> bool:
        """True iff ``index`` is a *regular* element (in range, a member)."""
        return self.lo <= index < self.hi

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartialCluster(p{self.partition}#{self.local_id}, "
            f"range=[{self.lo},{self.hi}), members={len(self.members)}, "
            f"seeds={len(self.seeds)}, {self.status})"
        )


def local_dbscan(
    partition_id: int,
    own_indices: Iterable[int],
    points: np.ndarray,
    tree: KDTree,
    eps: float,
    minpts: int,
    partitioner: IndexRangePartitioner,
    seed_policy: str = "all",
    max_neighbors: int | None = None,
    counters: OpCounters | None = None,
) -> list[PartialCluster]:
    """Build the partial clusters of one partition (Algorithm 2 lines 4–29).

    ``own_indices`` is the iterator the executor receives for its
    partition; every index must fall inside the partition's range.
    Returns the partial clusters; noise is implicit (points of this
    partition that are members of no partial cluster anywhere).

    Pass an `OpCounters` to collect the Section III-B operation counts
    (range queries, queue adds/removes, hashtable puts/lookups).
    """
    if seed_policy not in SEED_POLICIES:
        raise ValueError(f"seed_policy must be one of {SEED_POLICIES}, got {seed_policy!r}")
    if counters is not None:
        return _local_dbscan_counted(
            partition_id, own_indices, points, tree, eps, minpts, partitioner,
            seed_policy, max_neighbors, counters,
        )
    lo, hi = partitioner.range_of(partition_id)

    # The paper's Hashtable: point index -> visited/assigned state.
    visited: dict[int, bool] = {}
    assignment: dict[int, int] = {}
    core_flag: dict[int, bool] = {}
    partials: list[PartialCluster] = []
    query = tree.query_radius

    for i in own_indices:
        i = int(i)
        if not lo <= i < hi:
            raise ValueError(
                f"index {i} handed to partition {partition_id} whose range is "
                f"[{lo}, {hi}) — partitioning is inconsistent"
            )
        if i in visited:  # Algorithm 2 line 5: already in hashtable
            continue
        visited[i] = True
        neigh = query(points[i], eps, max_neighbors)
        if len(neigh) < minpts:
            core_flag[i] = False
            continue  # noise unless claimed later as a border point
        core_flag[i] = True
        cluster = PartialCluster(
            partition=partition_id, local_id=len(partials), lo=lo, hi=hi, members=[i]
        )
        assignment[i] = cluster.local_id
        seeds_by_partition: dict[int, int] = {}
        seed_set: set[int] = set()
        # The Queue N of Algorithm 2 (LinkedList in the paper's Java).
        queue: deque[int] = deque(int(x) for x in neigh)
        while queue:
            p = queue.popleft()
            if lo <= p < hi:
                # Own point: classic expansion (Algorithm 2 lines 13–22).
                if p not in visited:
                    visited[p] = True
                    neigh2 = query(points[p], eps, max_neighbors)
                    if len(neigh2) >= minpts:
                        core_flag[p] = True
                        queue.extend(int(x) for x in neigh2)
                    else:
                        core_flag[p] = False
                if p not in assignment:
                    assignment[p] = cluster.local_id
                    cluster.members.append(p)
                    if not core_flag[p]:
                        cluster.borders.add(p)
            else:
                # Foreign point: SEED placement (Algorithm 3).  Never
                # expanded — its home executor computes its neighbourhood.
                if p in seed_set:
                    continue
                if seed_policy == "one_per_partition":
                    par = partitioner.partition(p)
                    if par in seeds_by_partition:
                        continue  # Algorithm 3 line 11: one seed placed already
                    seeds_by_partition[par] = p
                seed_set.add(p)
                cluster.seeds.append(p)
        partials.append(cluster)
    return partials


def _local_dbscan_counted(
    partition_id: int,
    own_indices: Iterable[int],
    points: np.ndarray,
    tree: KDTree,
    eps: float,
    minpts: int,
    partitioner: IndexRangePartitioner,
    seed_policy: str,
    max_neighbors: int | None,
    c: OpCounters,
) -> list[PartialCluster]:
    """Instrumented twin of the `local_dbscan` hot loop.

    Kept separate so the common path pays nothing for the counters;
    tests assert both paths produce identical partial clusters.
    """
    lo, hi = partitioner.range_of(partition_id)
    visited: dict[int, bool] = {}
    assignment: dict[int, int] = {}
    core_flag: dict[int, bool] = {}
    partials: list[PartialCluster] = []
    query = tree.query_radius

    for i in own_indices:
        i = int(i)
        if not lo <= i < hi:
            raise ValueError(
                f"index {i} handed to partition {partition_id} whose range is "
                f"[{lo}, {hi}) — partitioning is inconsistent"
            )
        c.hashtable_lookups += 1
        if i in visited:
            continue
        visited[i] = True
        c.hashtable_puts += 1
        c.range_queries += 1
        neigh = query(points[i], eps, max_neighbors)
        if len(neigh) < minpts:
            core_flag[i] = False
            continue
        core_flag[i] = True
        cluster = PartialCluster(
            partition=partition_id, local_id=len(partials), lo=lo, hi=hi, members=[i]
        )
        assignment[i] = cluster.local_id
        c.hashtable_puts += 1
        seeds_by_partition: dict[int, int] = {}
        seed_set: set[int] = set()
        queue: deque[int] = deque(int(x) for x in neigh)
        c.queue_adds += len(neigh)
        while queue:
            p = queue.popleft()
            c.queue_removes += 1
            if lo <= p < hi:
                c.hashtable_lookups += 1
                if p not in visited:
                    visited[p] = True
                    c.hashtable_puts += 1
                    c.range_queries += 1
                    neigh2 = query(points[p], eps, max_neighbors)
                    if len(neigh2) >= minpts:
                        core_flag[p] = True
                        queue.extend(int(x) for x in neigh2)
                        c.queue_adds += len(neigh2)
                    else:
                        core_flag[p] = False
                c.hashtable_lookups += 1
                if p not in assignment:
                    assignment[p] = cluster.local_id
                    c.hashtable_puts += 1
                    cluster.members.append(p)
                    if not core_flag[p]:
                        cluster.borders.add(p)
            else:
                if p in seed_set:
                    continue
                if seed_policy == "one_per_partition":
                    par = partitioner.partition(p)
                    if par in seeds_by_partition:
                        c.seeds_skipped += 1
                        continue
                    seeds_by_partition[par] = p
                seed_set.add(p)
                cluster.seeds.append(p)
                c.seeds_placed += 1
        partials.append(cluster)
    return partials

"""Spatial partitioning — the paper's stated future work, implemented.

Section VI: "We did not partition data points based on the
neighbourhood relationship in our work and that might cause workload to
be unbalanced. So, in the future, we will consider partitioning the
input data points before they are assigned to executors."

The SEED mechanism works on index ranges, so spatial partitioning
reduces to *reordering indices spatially* and reusing the whole
pipeline unchanged.  We reorder by kd-tree leaf order: the tree's
median splits recursively bisect space, so consecutive permuted indices
are spatial neighbours and contiguous index ranges become compact
spatial cells.  Consequences measured in the ablation benches: far
fewer cross-partition SEEDs and partial clusters, cheaper driver-side
merging.
"""

from __future__ import annotations

import time

import numpy as np

from ..kdtree import KDTree
from .core import Timings
from .spark_job import SparkDBSCAN, SparkDBSCANResult


def spatial_order(points: np.ndarray, leaf_size: int = 64) -> np.ndarray:
    """Permutation putting spatially-near points at nearby indices.

    Uses the kd-tree build permutation: leaves are contiguous blocks of
    mutually-close points, visited in space-partition order.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    tree = KDTree(points, leaf_size=leaf_size)
    return tree._perm.copy()


class SpatialSparkDBSCAN(SparkDBSCAN):
    """`SparkDBSCAN` with neighbourhood-aware partitioning.

    Points are spatially reordered before index-range partitioning;
    labels are mapped back to the caller's original point order, so the
    API is a drop-in replacement.  With ``keep_partials=True`` the
    partial clusters' ``members``/``seeds``/``borders`` are likewise
    remapped to caller order (so they align with ``labels``); the
    ``lo``/``hi`` partition ranges necessarily stay in the *reordered*
    index space (a spatial cell is not an index range in caller order) —
    ``result.perm`` carries the reordering for anyone who needs them.
    """

    def fit(self, points, sc=None, tree=None) -> SparkDBSCANResult:
        """Run the clustering over the given points."""
        points = np.ascontiguousarray(points, dtype=np.float64)
        with self.tracer.span("driver.spatial_reorder", cat="driver") as sp:
            t0 = time.perf_counter()
            perm = spatial_order(points, leaf_size=self.leaf_size)
            reorder_time = time.perf_counter() - t0
            reordered = points[perm]
            sp.annotate(n=int(points.shape[0]), leaf_size=self.leaf_size)
        result = super().fit(reordered, sc=sc, tree=None)
        with self.tracer.span("driver.relabel", cat="driver"):
            # Undo the permutation: reordered[k] is original point perm[k].
            labels = np.empty_like(result.labels)
            labels[perm] = result.labels
            result.labels = labels
            if result.partials is not None:
                for c in result.partials:
                    c.members = [int(perm[m]) for m in c.members]
                    c.seeds = [int(perm[s]) for s in c.seeds]
                    c.borders = {int(perm[b]) for b in c.borders}
        result.perm = perm
        result.timings.setup += reorder_time
        result.timings.wall += reorder_time
        return result

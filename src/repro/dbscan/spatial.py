"""Spatial partitioning — the paper's stated future work, implemented.

Section VI: "We did not partition data points based on the
neighbourhood relationship in our work and that might cause workload to
be unbalanced. So, in the future, we will consider partitioning the
input data points before they are assigned to executors."

The SEED mechanism works on index ranges, so spatial partitioning
reduces to *reordering indices spatially* and reusing the whole
pipeline unchanged.  We reorder by kd-tree leaf order: the tree's
median splits recursively bisect space, so consecutive permuted indices
are spatial neighbours and contiguous index ranges become compact
spatial cells.  Consequences measured in the ablation benches: far
fewer cross-partition SEEDs and partial clusters, cheaper driver-side
merging.

As a plan composition this is literally the Spark plan plus a
`SpatialReorder` stage after `LoadPoints` and a permutation-undoing
`RelabelFilter` tail (`repro.pipeline.spatial_plan`).
"""

from __future__ import annotations

import warnings

import numpy as np

from ..kdtree import KDTree
from .spark_job import SparkDBSCAN, SparkDBSCANResult


def spatial_order(points: np.ndarray, leaf_size: int = 64) -> np.ndarray:
    """Permutation putting spatially-near points at nearby indices.

    Uses the kd-tree build permutation: leaves are contiguous blocks of
    mutually-close points, visited in space-partition order.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    tree = KDTree(points, leaf_size=leaf_size)
    return tree._perm.copy()


class SpatialSparkDBSCAN(SparkDBSCAN):
    """`SparkDBSCAN` with neighbourhood-aware partitioning.

    Points are spatially reordered before index-range partitioning;
    labels are mapped back to the caller's original point order, so the
    API is a drop-in replacement.  With ``keep_partials=True`` the
    partial clusters' ``members``/``seeds``/``borders`` are likewise
    remapped to caller order (so they align with ``labels``); the
    ``lo``/``hi`` partition ranges necessarily stay in the *reordered*
    index space (a spatial cell is not an index range in caller order) —
    ``result.perm`` carries the reordering for anyone who needs them.
    """

    ALGORITHM = "spatial"

    def fit(self, points, sc=None, *, tree=None) -> SparkDBSCANResult:
        """Run the clustering over the given points.

        A caller-provided ``tree`` is deprecated here and ignored: the
        kd-tree must be built over the *reordered* points, so a tree in
        caller order cannot be reused (the pre-refactor implementation
        silently discarded it; now it warns).
        """
        if tree is not None:
            warnings.warn(
                "SpatialSparkDBSCAN.fit() ignores a prebuilt tree: the "
                "index must be rebuilt over the spatially-reordered "
                "points; drop the argument",
                DeprecationWarning,
                stacklevel=2,
            )
        return super().fit(points, sc=sc, tree=None)

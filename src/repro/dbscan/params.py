"""Parameter selection: the sorted k-dist heuristic.

The paper takes (eps=25, minpts=5) as given for its Table I datasets.
Downstream users need a way to pick them: the original DBSCAN paper
[Ester et al. 1996, Section 4.2] proposes the *sorted k-dist graph* —
plot each point's distance to its k-th nearest neighbour in descending
order; the "valley" (knee) separates noise from cluster points and its
height is a good eps.  ``minpts = k + 1`` is the matching threshold.

`suggest_eps` automates the knee detection with the maximum-curvature
(furthest-from-chord) rule; `k_distances` exposes the raw curve for
callers who prefer to eyeball it.
"""

from __future__ import annotations

import numpy as np

from ..kdtree import KDTree


def k_distances(
    points: np.ndarray,
    k: int = 4,
    sample: int | None = 2000,
    seed: int = 0,
    tree: KDTree | None = None,
) -> np.ndarray:
    """Each (sampled) point's distance to its k-th nearest neighbour,
    sorted descending — the k-dist curve of Ester et al.

    ``k`` counts *other* points (the conventional definition), so the
    query asks the tree for k+1 neighbours and drops the self-match.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n <= k:
        raise ValueError(f"need more than k={k} points, got {n}")
    if tree is None:
        tree = KDTree(points)
    if sample is not None and sample < n:
        rng = np.random.default_rng(seed)
        idx = rng.choice(n, size=sample, replace=False)
    else:
        idx = np.arange(n)
    dists = np.empty(len(idx))
    for out_i, i in enumerate(idx):
        neigh = tree.query_knn(points[i], k + 1)
        d = np.linalg.norm(points[neigh] - points[i], axis=1)
        dists[out_i] = np.sort(d)[k]  # k-th non-self neighbour
    return np.sort(dists)[::-1]


def suggest_eps(
    points: np.ndarray,
    minpts: int = 5,
    sample: int | None = 2000,
    seed: int = 0,
    tree: KDTree | None = None,
) -> float:
    """Suggest eps for a given minpts via the k-dist knee.

    Uses ``k = minpts - 1`` (a point is core when its eps-ball holds
    minpts points including itself).  The knee is the curve point with
    maximum distance from the chord joining the curve's endpoints — the
    standard automatic reading of "the first point in the first valley".
    """
    if minpts < 2:
        raise ValueError(f"minpts must be >= 2, got {minpts}")
    curve = k_distances(points, k=minpts - 1, sample=sample, seed=seed, tree=tree)
    m = curve.size
    if m < 3:
        return float(curve[-1])
    x = np.arange(m, dtype=np.float64)
    # Normalise both axes so curvature is scale-free.
    x /= x[-1]
    y = curve.copy()
    span = y[0] - y[-1]
    if span <= 0:
        return float(curve[0])
    y = (y - y[-1]) / span
    # Distance from each point to the chord (0, y0=1) -> (1, 0):
    # the line x + y - 1 = 0 after normalisation.
    dist_to_chord = np.abs(x + y - 1.0) / np.sqrt(2.0)
    knee = int(np.argmax(dist_to_chord))
    return float(curve[knee])

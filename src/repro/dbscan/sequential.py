"""Sequential DBSCAN — the paper's Algorithm 1.

Two interchangeable implementations of the point-state bookkeeping,
reproducing the paper's Section III-B data-structure discussion:

- ``impl="array"``: numpy boolean/int arrays for visited/labels state —
  the fast idiomatic-Python choice.
- ``impl="hashtable"``: dict + deque, the literal translation of the
  paper's Java ``Hashtable`` + ``LinkedList``-backed ``Queue``.

Both produce identical clusterings; Ablation C benchmarks them
head-to-head.

As a pipeline composition this is the degenerate single-partition plan
(`repro.pipeline.sequential_plan`): LoadPoints → BuildIndex →
SequentialExpand, no engine, no merge.  The expansion kernels below are
what `repro.pipeline.stages.SequentialExpand` calls.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..kdtree import KDTree
from ..obs.spans import Tracer
from ..pipeline.config import RunConfig
from .core import NOISE, UNCLASSIFIED, ClusteringResult


def dbscan_sequential(
    points: np.ndarray,
    eps: float,
    minpts: int,
    tree: KDTree | None = None,
    impl: str = "array",
    leaf_size: int = 64,
    max_neighbors: int | None = None,
    neighbor_mode: str = "per_point",
    tracer: Tracer | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
) -> ClusteringResult:
    """Cluster ``points`` with classic DBSCAN (Algorithm 1).

    Parameters mirror the paper: ``eps`` neighbourhood radius, ``minpts``
    core-point threshold.  A prebuilt `KDTree` may be passed to skip
    construction (used when timing query cost separately).

    ``neighbor_mode="batched"`` precomputes all n neighbourhoods with one
    `KDTree.query_radius_batch` call before expanding; labels are
    identical to the per-point mode.
    """
    config = RunConfig(
        eps=eps,
        minpts=minpts,
        algorithm="sequential",
        num_partitions=1,
        impl=impl,
        leaf_size=leaf_size,
        max_neighbors=max_neighbors,
        neighbor_mode=neighbor_mode,
    )
    from ..pipeline.plans import build_plan
    from ..pipeline.runner import PipelineRunner

    runner = PipelineRunner(
        build_plan(config), config, tracer=tracer,
        checkpoint_dir=checkpoint_dir, resume=resume,
    )
    state = runner.run(points, tree=tree, algo_label="sequential")
    timings = state.timings
    # Single-partition accounting: everything past the tree build is the
    # one executor's task.
    timings.executor_total = timings.wall - timings.kdtree_build
    timings.executor_max = timings.executor_total
    timings.executor_task_durations = [timings.executor_total]
    return ClusteringResult(labels=state.labels, timings=timings)


def _dbscan_array(n: int, minpts: int, neigh_of) -> np.ndarray:
    visited = np.zeros(n, dtype=bool)
    labels = np.full(n, UNCLASSIFIED, dtype=np.int64)
    next_cluster = 0
    for i in range(n):
        if visited[i]:
            continue
        visited[i] = True
        neigh = neigh_of(i)
        if neigh.size < minpts:
            labels[i] = NOISE
            continue
        cid = next_cluster
        next_cluster += 1
        labels[i] = cid
        queue = deque(neigh.tolist())
        while queue:
            j = queue.popleft()
            if not visited[j]:
                visited[j] = True
                neigh2 = neigh_of(j)
                if neigh2.size >= minpts:
                    queue.extend(neigh2.tolist())
            if labels[j] < 0:  # UNCLASSIFIED or previously marked NOISE
                labels[j] = cid
    labels[labels == UNCLASSIFIED] = NOISE
    return labels


def _dbscan_hashtable(n: int, minpts: int, neigh_of) -> np.ndarray:
    """Literal port of the paper's Java data-structure choices.

    Visited state and cluster membership live in hash tables
    (``dict``), the expansion frontier in a linked-list queue
    (``deque``), matching Section III-B's O(1) put/containsKey and O(1)
    add/remove analysis.
    """
    visited: dict[int, bool] = {}
    assignment: dict[int, int] = {}
    noise: dict[int, bool] = {}
    next_cluster = 0
    for i in range(n):
        if i in visited:
            continue
        visited[i] = True
        neigh = neigh_of(i)
        if len(neigh) < minpts:
            noise[i] = True
            continue
        cid = next_cluster
        next_cluster += 1
        assignment[i] = cid
        queue: deque[int] = deque(int(x) for x in neigh)
        while queue:
            j = queue.popleft()
            if j not in visited:
                visited[j] = True
                neigh2 = neigh_of(j)
                if len(neigh2) >= minpts:
                    queue.extend(int(x) for x in neigh2)
            if j not in assignment:
                assignment[j] = cid
    labels = np.full(n, NOISE, dtype=np.int64)
    for idx, cid in assignment.items():
        labels[idx] = cid
    return labels


def core_point_mask(
    points: np.ndarray, eps: float, minpts: int, tree: KDTree | None = None
) -> np.ndarray:
    """Boolean mask of core points (Definition 1: ≥ minpts points within eps)."""
    points = np.ascontiguousarray(points, dtype=np.float64)
    if tree is None:
        tree = KDTree(points)
    return tree.count_radius_batch(points, eps) >= minpts

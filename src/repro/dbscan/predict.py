"""Out-of-sample assignment: label new points against a fitted clustering.

DBSCAN has no parametric model, but its density semantics give a
natural rule for unseen points [consistent with Ester et al.]:

- a new point within eps of a *core* point of cluster C belongs to C
  (it would have been a border or core member had it been present);
- otherwise it is noise.

Ties (cores of several clusters within eps) go to the nearest core,
which is also what an incremental insertion would most plausibly do.
"""

from __future__ import annotations

import numpy as np

from ..kdtree import KDTree
from .core import NOISE


class DBSCANPredictor:
    """Frozen view of a fitted clustering, queryable for new points.

    Parameters
    ----------
    points, labels:
        The fitted dataset and its labels (from any of this package's
        DBSCAN implementations).
    eps, minpts:
        The parameters the model was fitted with.
    tree:
        Optional prebuilt kd-tree over ``points``.
    """

    def __init__(
        self,
        points: np.ndarray,
        labels: np.ndarray,
        eps: float,
        minpts: int,
        tree: KDTree | None = None,
    ):
        points = np.ascontiguousarray(points, dtype=np.float64)
        labels = np.asarray(labels)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {points.shape}")
        if labels.shape != (points.shape[0],):
            raise ValueError("labels must have one entry per point")
        self.points = points
        self.labels = labels.astype(np.int64)
        self.eps = eps
        self.minpts = minpts
        self.tree = tree if tree is not None else KDTree(points)
        # Core mask: a point is core iff it has >= minpts neighbours.
        n = points.shape[0]
        self._core = np.zeros(n, dtype=bool)
        for i in range(n):
            self._core[i] = self.tree.query_radius(points[i], eps).size >= minpts

    def predict_one(self, x: np.ndarray) -> int:
        """Cluster id for ``x``, or NOISE."""
        x = np.asarray(x, dtype=np.float64)
        neigh = self.tree.query_radius(x, self.eps)
        cores = neigh[self._core[neigh]]
        if cores.size == 0:
            return NOISE
        d = np.linalg.norm(self.points[cores] - x, axis=1)
        return int(self.labels[cores[np.argmin(d)]])

    def predict(self, xs: np.ndarray) -> np.ndarray:
        """Vector of cluster ids (NOISE for outliers)."""
        xs = np.ascontiguousarray(xs, dtype=np.float64)
        if xs.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {xs.shape}")
        return np.array([self.predict_one(x) for x in xs], dtype=np.int64)

    def would_be_core(self, x: np.ndarray) -> bool:
        """Would ``x`` itself be a core point if inserted?  (Counts x.)"""
        x = np.asarray(x, dtype=np.float64)
        return self.tree.query_radius(x, self.eps).size + 1 >= self.minpts

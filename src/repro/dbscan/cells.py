"""Cell partitioning with eps-halos — local indexes, no global broadcast.

The paper (Section VI) defers spatial partitioning: its executors all
receive *one broadcast kd-tree over the whole dataset*, which caps the
scalable dataset size at driver memory.  MR-DBSCAN [He et al. 2014] and
the dDBGSCAN family show the production shape, built here:

1. **CellGrid** — bin points into a uniform grid with cell edge = eps
   (the batch counterpart of `GridIndex`: a point's eps-ball is covered
   by its own cell plus the 3^d - 1 Chebyshev-adjacent cells).
2. **Balanced cell partitions** — greedily pack whole cells into
   ``num_partitions`` groups by per-cell point counts (LPT scheduling),
   so skewed data cannot starve or overload executors the way
   contiguous index ranges do.
3. **eps-halo replication** — each partition additionally receives the
   points of *foreign* adjacent cells that lie within eps of one of its
   own cells' bounding boxes.  Owned points therefore see their entire
   eps-neighbourhood locally, and each executor builds a kd-tree over
   only (owned + halo) points: no executor ever holds a global index.
4. **`cell_local_dbscan`** — the SEED expansion (Algorithm 2 lines
   4-29) over a partition payload: owned points expand, halo points are
   recorded as SEEDs exactly like foreign points in the index-range
   plan, and the unchanged union-find merge (Algorithm 4) stitches the
   partial clusters over those halo edges.

Determinism contract (tests/pipeline/test_cell_plan.py): partitions
scan their owned points in ascending global index, and the collect
stage sorts partials by founder index, so the merged labels are
byte-identical to `SparkDBSCAN` whenever border assignment is
unambiguous (see DESIGN.md §10 for the tie-break rule when it is not).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..kdtree import KDTree
from .partial import (
    NEIGHBOR_MODES,
    SEED_POLICIES,
    OpCounters,
    PartialCluster,
)

#: Relative slack on the eps comparison used by the halo filter only.
#: ``floor(x / eps)`` and ``cell * eps`` round differently, so a point at
#: *exactly* distance eps from an owned point could otherwise be dropped
#: from the halo by half an ulp.  Over-approximating the halo is always
#: safe: the kd-tree recomputes exact distances inside the partition.
HALO_SLACK = 1e-9


class CellGrid:
    """Batch uniform grid over a fixed point set, cell edge = ``eps``.

    The batch counterpart of `GridIndex` (which is mutable and
    insert-oriented): built once over the whole array with vectorised
    binning, it exposes the occupied cells, their point lists (ascending
    global index), and Chebyshev adjacency between occupied cells.
    """

    def __init__(self, points: np.ndarray, eps: float):
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        points = np.ascontiguousarray(points, dtype=np.float64)  # lint: allow[SCL001] ROADMAP item 1: central driver binning
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {points.shape}")
        self.points = points  # lint: allow[SCL001] ROADMAP item 1: central driver binning
        self.eps = float(eps)
        self.n, self.d = points.shape
        coords = np.floor(points / eps).astype(np.int64)  # lint: allow[SCL001] ROADMAP item 1: central driver binning
        if self.n:
            # Occupied cells in lexicographic order; `inverse` maps each
            # point to its cell's row in `cells`.
            cells, inverse = np.unique(coords, axis=0, return_inverse=True)  # lint: allow[SCL001] ROADMAP item 1: central driver binning
            inverse = inverse.ravel()  # lint: allow[SCL001] ROADMAP item 1: central driver binning
        else:
            cells = np.empty((0, self.d), dtype=np.int64)
            inverse = np.empty(0, dtype=np.int64)
        self.cells = cells  # lint: allow[SCL001] ROADMAP item 1: central driver binning
        self.cell_of_point = inverse  # lint: allow[SCL001] ROADMAP item 1: central driver binning
        self.counts = np.bincount(inverse, minlength=len(cells)).astype(np.int64)
        # Points grouped by cell; stable sort keeps ascending global
        # index within each cell (the determinism contract needs it).
        order = np.argsort(inverse, kind="stable")  # lint: allow[SCL001] ROADMAP item 1: central driver binning
        starts = np.concatenate(([0], np.cumsum(self.counts)))
        self.cell_points = [  # lint: allow[SCL001,SCL002] ROADMAP item 1: central driver binning
            order[starts[i]:starts[i + 1]] for i in range(len(cells))
        ]

    @property
    def num_cells(self) -> int:
        """Number of occupied cells."""
        return int(len(self.cells))

    def cell_of(self, x: np.ndarray) -> tuple[int, ...]:
        """Grid coordinates of an arbitrary location."""
        x = np.asarray(x, dtype=np.float64)
        return tuple(int(v) for v in np.floor(x / self.eps).astype(np.int64))

    def adjacent_pairs(self) -> Iterator[tuple[int, int]]:
        """Ordered pairs ``(i, j)``, ``i != j``, of Chebyshev-adjacent
        occupied cells (coordinates differing by at most 1 everywhere).

        Two strategies, same trade as `GridIndex.neighbors`: enumerate
        the 3^d offset box through a dict when it is smaller than the
        occupied-cell count, otherwise scan occupied cells pairwise in
        vectorised blocks (3^d explodes at d=10 while real datasets
        occupy far fewer cells).
        """
        m = self.num_cells
        if m == 0:
            return
        if 3 ** self.d <= m:
            index = {tuple(c): i for i, c in enumerate(self.cells.tolist())}
            for i, c in enumerate(self.cells.tolist()):
                for offset in np.ndindex(*(3,) * self.d):
                    if all(o == 1 for o in offset):
                        continue
                    j = index.get(tuple(b + o - 1 for b, o in zip(c, offset)))
                    if j is not None:
                        yield i, j
        else:
            # Block size keeps the (block, m, d) difference tensor small.
            block = max(1, (1 << 22) // max(1, m * self.d))
            for s in range(0, m, block):
                rows = self.cells[s:s + block]
                cheb = np.abs(
                    rows[:, None, :] - self.cells[None, :, :]
                ).max(axis=2)
                for bi, j in zip(*np.nonzero(cheb <= 1)):
                    i = int(bi) + s
                    j = int(j)
                    if i != j:
                        yield i, j


@dataclass
class CellPayload:
    """Everything one executor needs — shipped as an RDD element, never
    broadcast.  Arrays are global point ids (ascending) and their
    coordinates; ``halo_home`` is each halo point's owning partition."""

    partition: int
    owned_ids: np.ndarray
    halo_ids: np.ndarray
    halo_home: np.ndarray
    owned_points: np.ndarray
    halo_points: np.ndarray

    @property
    def nbytes(self) -> int:
        """Serialized-array payload size (ids + coordinates)."""
        return int(
            self.owned_ids.nbytes + self.halo_ids.nbytes
            + self.halo_home.nbytes + self.owned_points.nbytes
            + self.halo_points.nbytes
        )


@dataclass
class CellAssignment:
    """The driver-side partition plan: who owns what, who sees what.

    ``owned[p]``/``halo[p]`` are ascending global point ids;
    ``halo_home[p]`` gives, per halo point, the partition that owns it
    (the cell plan's analogue of `IndexRangePartitioner.partition`).
    """

    n: int
    num_partitions: int
    num_cells: int
    owned: list[np.ndarray]
    halo: list[np.ndarray]
    halo_home: list[np.ndarray]

    @property
    def halo_points_total(self) -> int:
        """Replicated (halo) point slots across all partitions."""
        return int(sum(len(h) for h in self.halo))

    def to_partitioner(self):
        """An `engine.partitioner.LookupPartitioner` over this ownership
        table — the cell plan's counterpart of `IndexRangePartitioner`
        (ownership is not contiguous, so range checks do not apply)."""
        from ..engine.partitioner import LookupPartitioner

        pid = np.empty(self.n, dtype=np.int64)
        for p, idx in enumerate(self.owned):
            pid[idx] = p
        return LookupPartitioner(pid, self.num_partitions)

    def payloads(self, points: np.ndarray) -> list[CellPayload]:
        """Materialise one `CellPayload` per partition."""
        points = np.ascontiguousarray(points, dtype=np.float64)
        return [
            CellPayload(
                partition=p,
                owned_ids=self.owned[p],
                halo_ids=self.halo[p],
                halo_home=self.halo_home[p],
                owned_points=points[self.owned[p]],
                halo_points=points[self.halo[p]],
            )
            for p in range(self.num_partitions)
        ]


def balance_cells(counts: np.ndarray, num_partitions: int) -> np.ndarray:
    """Assign each cell to a partition, balancing total point counts.

    Greedy LPT: place cells in decreasing size order onto the currently
    least-loaded partition (ties broken by lowest partition id, cells
    tied in size by cell row — all deterministic).
    """
    m = len(counts)
    cell_pid = np.zeros(m, dtype=np.int64)
    if m == 0 or num_partitions <= 1:
        return cell_pid
    order = np.lexsort((np.arange(m), -np.asarray(counts)))
    heap = [(0, p) for p in range(num_partitions)]
    heapq.heapify(heap)
    for i in order:
        load, p = heapq.heappop(heap)
        cell_pid[i] = p
        heapq.heappush(heap, (load + int(counts[i]), p))
    return cell_pid


def build_cell_assignment(
    points: np.ndarray, eps: float, num_partitions: int
) -> CellAssignment:
    """Grid-partition ``points`` and compute each partition's eps-halo.

    A point q in a *foreign* adjacent cell belongs to partition P's halo
    iff q lies within eps of the bounding box of one of P's cells —
    points farther than eps from every owned box cannot be within eps of
    any owned point, so they are never needed.  The comparison carries
    `HALO_SLACK` so halos only ever over-approximate.
    """
    if num_partitions < 1:
        raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
    grid = CellGrid(points, eps)  # lint: allow[SCL001] ROADMAP item 1: central driver binning
    cell_pid = balance_cells(grid.counts, num_partitions)
    point_pid = (  # lint: allow[SCL001] ROADMAP item 1: central driver binning
        cell_pid[grid.cell_of_point] if grid.n
        else np.empty(0, dtype=np.int64)
    )

    halo_mask = np.zeros((num_partitions, grid.n), dtype=bool)  # lint: allow[SCL001] ROADMAP item 1: central driver binning
    eps2 = (eps * eps) * (1.0 + HALO_SLACK)
    for i, j in grid.adjacent_pairs():
        pi, pj = int(cell_pid[i]), int(cell_pid[j])
        if pi == pj:
            continue
        idx = grid.cell_points[j]
        q = grid.points[idx]
        lo = grid.cells[i] * eps
        hi = lo + eps
        excess = np.maximum(np.maximum(lo - q, q - hi), 0.0)
        near = (excess * excess).sum(axis=1) <= eps2
        halo_mask[pi, idx[near]] = True

    owned = [  # lint: allow[SCL001] ROADMAP item 1: central driver binning
        np.flatnonzero(point_pid == p).astype(np.int64)
        for p in range(num_partitions)
    ]
    halo = [
        np.flatnonzero(halo_mask[p]).astype(np.int64)
        for p in range(num_partitions)
    ]
    return CellAssignment(
        n=grid.n,
        num_partitions=num_partitions,
        num_cells=grid.num_cells,
        owned=owned,
        halo=halo,
        halo_home=[point_pid[h] for h in halo],
    )


def cell_local_dbscan(
    payload: CellPayload,
    eps: float,
    minpts: int,
    *,
    leaf_size: int = 64,
    seed_policy: str = "all",
    max_neighbors: int | None = None,
    neighbor_mode: str = "batched",
    counters: OpCounters | None = None,
    boundary_out: set[int] | None = None,
) -> list[PartialCluster]:
    """SEED expansion over one cell partition's (owned + halo) points.

    Builds a kd-tree over the local payload only, expands owned points
    (in ascending global index, like `local_dbscan` over a range), and
    records reached halo points as SEEDs for the driver merge.  The halo
    makes every owned point's eps-neighbourhood complete locally, so
    core status and memberships match the global-tree computation
    exactly.  ``lo``/``hi`` on the emitted partials are 0: cell
    partitions are not contiguous ranges (`PartialCluster.owns` is a
    range check and does not apply).

    ``boundary_out``, when given, collects *global* ids of queried owned
    points with ≥1 halo neighbour within eps — the export candidates of
    the edge-based merge (DESIGN.md §11).  The eps-halo over-approximates
    slightly (HALO_SLACK), which only widens this set; the seed/export
    join never probes the extras.
    """
    if seed_policy not in SEED_POLICIES:
        raise ValueError(
            f"seed_policy must be one of {SEED_POLICIES}, got {seed_policy!r}"
        )
    if neighbor_mode not in NEIGHBOR_MODES:
        raise ValueError(
            f"neighbor_mode must be one of {NEIGHBOR_MODES}, got {neighbor_mode!r}"
        )
    n_own = int(len(payload.owned_ids))
    if n_own == 0:
        return []
    from ..obs.collect import task_span

    if len(payload.halo_ids):
        local_points = np.vstack([payload.owned_points, payload.halo_points])
    else:
        local_points = payload.owned_points
    with task_span("task.kdtree_build", n_own=n_own,
                   n_halo=int(len(payload.halo_ids))):
        tree = KDTree(local_points, leaf_size=leaf_size)

    if neighbor_mode == "batched":
        # Phase A: every owned neighbourhood in one vectorised call.
        with task_span("task.kdtree_query", n=n_own):
            indptr, indices = tree.query_radius_batch(
                local_points[:n_own], eps, max_neighbors
            )
        if counters is not None:
            counters.range_queries += n_own
        if boundary_out is not None:
            # A row is boundary iff any neighbour is a halo point (local
            # id >= n_own); cumsum-of-flags handles empty rows.
            halo_flag = indices >= n_own
            cs = np.concatenate(([0], np.cumsum(halo_flag)))
            rows = np.flatnonzero(cs[indptr[1:]] > cs[indptr[:-1]])
            boundary_out.update(np.asarray(payload.owned_ids)[rows].tolist())

        def neigh_of(k: int) -> np.ndarray:
            return indices[indptr[k]:indptr[k + 1]]
    else:
        owned_ids_arr = np.asarray(payload.owned_ids)

        def neigh_of(k: int) -> np.ndarray:
            if counters is not None:
                counters.range_queries += 1
            row = tree.query_radius(local_points[k], eps, max_neighbors)
            if (
                boundary_out is not None
                and row.size
                and bool((row >= n_own).any())
            ):
                boundary_out.add(int(owned_ids_arr[k]))
            return row

    return _expand_cells(payload, neigh_of, n_own, minpts, seed_policy, counters)


def _expand_cells(
    payload: CellPayload,
    neigh_of,
    n_own: int,
    minpts: int,
    seed_policy: str,
    counters: OpCounters | None,
) -> list[PartialCluster]:
    """The BFS/SEED loop of `_expand`, over local (owned + halo) ids.

    Local ids < n_own are owned (classic expansion); the rest are halo
    points, handled exactly like foreign points in the index-range plan:
    recorded as SEEDs, never expanded — their home partition computes
    their neighbourhoods.
    """
    from collections import deque

    owned_ids = payload.owned_ids
    halo_ids = payload.halo_ids
    halo_home = payload.halo_home
    visited = np.zeros(n_own, dtype=bool)
    assigned = np.zeros(n_own, dtype=bool)
    core = np.zeros(n_own, dtype=bool)
    partials: list[PartialCluster] = []

    for k in range(n_own):
        if counters is not None:
            counters.hashtable_lookups += 1
        if visited[k]:
            continue
        visited[k] = True
        neigh = neigh_of(k)
        if counters is not None:
            counters.hashtable_puts += 1
        if len(neigh) < minpts:
            continue  # noise unless claimed later as a border point
        core[k] = True
        cluster = PartialCluster(
            partition=payload.partition, local_id=len(partials),
            lo=0, hi=0, members=[int(owned_ids[k])],
        )
        assigned[k] = True
        if counters is not None:
            counters.hashtable_puts += 1
        seeds_by_partition: dict[int, int] = {}
        seed_set: set[int] = set()
        queue: deque[int] = deque(int(x) for x in neigh)
        if counters is not None:
            counters.queue_adds += len(neigh)
        while queue:
            p = queue.popleft()
            if counters is not None:
                counters.queue_removes += 1
            if p < n_own:
                if counters is not None:
                    counters.hashtable_lookups += 1
                if not visited[p]:
                    visited[p] = True
                    if counters is not None:
                        counters.hashtable_puts += 1
                    neigh2 = neigh_of(p)
                    if len(neigh2) >= minpts:
                        core[p] = True
                        queue.extend(int(x) for x in neigh2)
                        if counters is not None:
                            counters.queue_adds += len(neigh2)
                if counters is not None:
                    counters.hashtable_lookups += 1
                if not assigned[p]:
                    assigned[p] = True
                    if counters is not None:
                        counters.hashtable_puts += 1
                    g = int(owned_ids[p])
                    cluster.members.append(g)
                    if not core[p]:
                        cluster.borders.add(g)
            else:
                h = p - n_own
                g = int(halo_ids[h])
                if g in seed_set:
                    continue
                if seed_policy == "one_per_partition":
                    par = int(halo_home[h])
                    if par in seeds_by_partition:
                        if counters is not None:
                            counters.seeds_skipped += 1
                        continue
                    seeds_by_partition[par] = g
                seed_set.add(g)
                cluster.seeds.append(g)
                if counters is not None:
                    counters.seeds_placed += 1
        partials.append(cluster)
    return partials


__all__ = [
    "CellAssignment",
    "CellGrid",
    "CellPayload",
    "balance_cells",
    "build_cell_assignment",
    "cell_local_dbscan",
]

"""The *traditional* shuffle-based parallel DBSCAN the paper argues against.

Section IV-A: "According to the traditional method, we need to update
data points' state by map function and then propagate this update to
other executors ... it will introduce a shuffle operation."  This
module implements that traditional method so the SEED design has a
measurable opponent (Ablation D):

1. one parallel pass computes each point's core flag and its
   density-reachability edges (core → neighbour);
2. cluster discovery is iterative min-label propagation over the core
   graph — **every iteration is a join + reduceByKey, i.e. two shuffle
   stages**, repeated until the labelling converges;
3. border points take the label of any adjacent core point.

The result is the same clustering; the cost is O(graph diameter)
shuffle rounds with all-points record volume in each, versus zero
shuffles for the SEED algorithm.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..engine import SparkContext
from ..kdtree import KDTree
from ..obs.spans import NULL_TRACER, Tracer
from .core import NOISE, ClusteringResult, Timings


@dataclass
class NaiveSparkResult(ClusteringResult):
    """ClusteringResult plus shuffle-round/byte accounting."""
    shuffle_rounds: int = 0
    shuffle_bytes: int = 0


class NaiveSparkDBSCAN:
    """Shuffle-per-round parallel DBSCAN (the baseline design)."""

    def __init__(
        self,
        eps: float,
        minpts: int,
        num_partitions: int = 4,
        master: str | None = None,
        max_rounds: int = 100,
        leaf_size: int = 64,
        tracer: Tracer | None = None,
        sanitize: bool = False,
    ):
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if minpts < 1:
            raise ValueError(f"minpts must be >= 1, got {minpts}")
        self.eps = eps
        self.minpts = minpts
        self.num_partitions = num_partitions
        self.master = master or f"simulated[{num_partitions}]"
        self.max_rounds = max_rounds
        self.leaf_size = leaf_size
        self.tracer = tracer or NULL_TRACER
        self.sanitize = sanitize

    def fit(self, points: np.ndarray, sc: SparkContext | None = None) -> NaiveSparkResult:
        """Run the clustering over the given points."""
        points = np.ascontiguousarray(points, dtype=np.float64)
        n = points.shape[0]
        timings = Timings()
        wall_start = time.perf_counter()

        tracer = self.tracer
        if not tracer.enabled and sc is not None and sc.tracer.enabled:
            tracer = sc.tracer

        with tracer.span("driver.kdtree_build", cat="driver"):
            t0 = time.perf_counter()
            tree = KDTree(points, leaf_size=self.leaf_size)
            timings.kdtree_build = time.perf_counter() - t0

        own_sc = sc is None
        if own_sc:
            sc = SparkContext(
                self.master, app_name="naive-spark-dbscan", tracer=tracer,
                sanitize=self.sanitize,
            )
        rounds = 0
        try:
            eps, minpts = self.eps, self.minpts
            tree_b = sc.broadcast(tree)

            # Pass 1 (no shuffle yet): core flags + adjacency edges.
            def neighbourhoods(it):
                t = tree_b.value
                for i in it:
                    neigh = t.query_radius(t.points[i], eps)
                    yield (i, neigh.tolist(), len(neigh) >= minpts)

            info = sc.parallelize(range(n), self.num_partitions).map_partitions(
                neighbourhoods
            )
            info.cache()
            core_flags = dict(info.map(lambda rec: (rec[0], rec[2])).collect())
            core_b = sc.broadcast(core_flags)

            # Core-graph edges, both directions between core points.
            def core_edges(rec):
                i, neigh, is_core = rec
                if not is_core:
                    return []
                flags = core_b.value
                return [(j, i) for j in neigh if flags[j]]

            edges = info.flat_map(core_edges)
            edges.cache()

            # labels: every core point starts in its own cluster.
            labels = {i: i for i in range(n) if core_flags[i]}

            # Iterative min-label propagation; each round shuffles.
            for _ in range(self.max_rounds):
                rounds += 1
                with tracer.span("naive.propagation_round", round=rounds) as round_sp:
                    lab_b = sc.broadcast(labels)
                    new_pairs = (
                        edges.map(lambda e: (e[1], lab_b.value[e[0]]))
                        .reduce_by_key(min, self.num_partitions)
                        .collect()
                    )
                    changed = 0
                    for i, incoming in new_pairs:
                        if incoming < labels[i]:
                            labels[i] = incoming
                            changed += 1
                    round_sp.annotate(changed=changed)
                if changed == 0:
                    break

            # Border assignment: non-core point takes the min label among
            # adjacent core points (one more shuffled pass).
            lab_b = sc.broadcast(labels)

            def border_claims(rec):
                i, neigh, is_core = rec
                if is_core:
                    return []
                cores = [lab_b.value[j] for j in neigh if j in lab_b.value]
                return [(i, min(cores))] if cores else []

            border = dict(
                info.flat_map(border_claims).reduce_by_key(min, self.num_partitions).collect()
            )
            rounds += 1
            shuffle_bytes = sum(
                tm.shuffle_bytes_written
                for jm in sc.dag_scheduler.job_metrics
                for st in jm.stages
                for tm in st.task_metrics
            )
        finally:
            if own_sc:
                sc.stop()

        out = np.full(n, NOISE, dtype=np.int64)
        remap: dict[int, int] = {}
        for i, lab in labels.items():
            out[i] = remap.setdefault(lab, len(remap))
        for i, lab in border.items():
            out[i] = remap[lab] if lab in remap else NOISE

        timings.wall = time.perf_counter() - wall_start
        timings.executor_total = timings.wall - timings.kdtree_build
        return NaiveSparkResult(
            labels=out,
            timings=timings,
            shuffle_rounds=rounds,
            shuffle_bytes=shuffle_bytes,
        )

"""The *traditional* shuffle-based parallel DBSCAN the paper argues against.

Section IV-A: "According to the traditional method, we need to update
data points' state by map function and then propagate this update to
other executors ... it will introduce a shuffle operation."  This
module implements that traditional method so the SEED design has a
measurable opponent (Ablation D):

1. one parallel pass computes each point's core flag and its
   density-reachability edges (core → neighbour);
2. cluster discovery is iterative min-label propagation over the core
   graph — **every iteration is a join + reduceByKey, i.e. two shuffle
   stages**, repeated until the labelling converges;
3. border points take the label of any adjacent core point.

The result is the same clustering; the cost is O(graph diameter)
shuffle rounds with all-points record volume in each, versus zero
shuffles for the SEED algorithm.

The propagation body lives in `repro.pipeline.stages_naive` (the plan
is `repro.pipeline.naive_plan`); this class is the thin frontend shim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine import SparkContext
from ..obs.spans import NULL_TRACER, Tracer
from ..pipeline.config import RunConfig
from .core import ClusteringResult


@dataclass
class NaiveSparkResult(ClusteringResult):
    """ClusteringResult plus shuffle-round/byte accounting."""
    shuffle_rounds: int = 0
    shuffle_bytes: int = 0


class NaiveSparkDBSCAN:
    """Shuffle-per-round parallel DBSCAN (the baseline design)."""

    def __init__(
        self,
        eps: float,
        minpts: int,
        num_partitions: int = 4,
        master: str | None = None,
        max_rounds: int = 100,
        leaf_size: int = 64,
        tracer: Tracer | None = None,
        sanitize: bool = False,
        checkpoint_dir: str | None = None,
        resume: bool = False,
        fail_after: str | None = None,
    ):
        self.config = RunConfig(
            eps=eps,
            minpts=minpts,
            algorithm="naive",
            num_partitions=num_partitions,
            master=master,
            max_rounds=max_rounds,
            leaf_size=leaf_size,
            sanitize=sanitize,
        )
        self.tracer = tracer or NULL_TRACER
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.fail_after = fail_after

    def __getattr__(self, name: str):
        if name in ("config", "__setstate__"):
            raise AttributeError(name)
        if name == "master":
            return self.config.resolved_master
        try:
            return getattr(self.config, name)
        except AttributeError:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            ) from None

    def fit(
        self, points: np.ndarray, sc: SparkContext | None = None
    ) -> NaiveSparkResult:
        """Run the clustering over the given points."""
        from ..pipeline.plans import build_plan
        from ..pipeline.runner import PipelineRunner

        runner = PipelineRunner(
            build_plan(self.config),
            self.config,
            tracer=self.tracer,
            checkpoint_dir=self.checkpoint_dir,
            resume=self.resume,
            fail_after=self.fail_after,
        )
        state = runner.run(points, sc=sc, algo_label=type(self).__name__)
        timings = state.timings
        # Historical accounting: everything past the tree build is
        # charged to the (shuffle-bound) executor side.
        timings.executor_total = timings.wall - timings.kdtree_build
        return NaiveSparkResult(
            labels=state.labels,
            timings=timings,
            shuffle_rounds=state.extras["shuffle_rounds"],
            shuffle_bytes=state.extras["shuffle_bytes"],
        )

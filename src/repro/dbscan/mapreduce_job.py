"""DBSCAN over the mini-MapReduce runtime — the paper's Figure 7 baseline.

The paper implemented its own MapReduce DBSCAN to compare against the
Spark version ("we have implemented our own DBSCAN with MapReduce
approach", Section V-D).  Following the MR-DBSCAN family of designs
[He et al. 2014], the computation takes **two MapReduce rounds**, and —
unlike the Spark job — pays MapReduce's structural costs:

- the kd-tree cannot be broadcast: every map task re-loads it from a
  distributed-cache file on disk (Spark executors deserialise it once);
- partial clusters travel to the reducer through sorted on-disk spills;
- round 2 re-materialises every (point, label) record through the
  shuffle again to produce the final relabelled output.

Wall-clock on p cores is the measured-task makespan plus the configured
per-job startup overhead, identical methodology to the Spark side.

The two MR jobs live in `repro.pipeline.stages_mapreduce` (the plan is
`repro.pipeline.mapreduce_plan`); this class is the thin frontend shim.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field

import numpy as np

from ..mapreduce import JobStats
from ..obs.spans import NULL_TRACER, Tracer
from ..pipeline.config import RunConfig
from .core import ClusteringResult


@dataclass
class MRDBSCANResult(ClusteringResult):
    """ClusteringResult plus per-MR-job statistics."""
    job_stats: list[JobStats] = field(default_factory=list)

    def wall_on(self, slots: int) -> float:
        """End-to-end MR wall-clock on ``slots`` cores: both jobs plus
        the driver-side tree build."""
        return self.timings.kdtree_build + sum(s.wall(slots) for s in self.job_stats)


class MapReduceDBSCAN:
    """Two-round MapReduce DBSCAN (see module docstring).

    ``startup_overhead`` is charged once per MR job (two jobs per fit) —
    it models job submission / JVM spin-up, which our in-process runtime
    does not otherwise pay.  The default (1.0 s) is deliberately modest
    compared to real Hadoop; Figure 7's benchmark reports results both
    with and without it.
    """

    def __init__(
        self,
        eps: float,
        minpts: int,
        num_maps: int = 4,
        seed_policy: str = "all",
        startup_overhead: float = 1.0,
        leaf_size: int = 64,
        tmp_dir: str | None = None,
        tracer: Tracer | None = None,
        checkpoint_dir: str | None = None,
        resume: bool = False,
        fail_after: str | None = None,
    ):
        self.config = RunConfig(
            eps=eps,
            minpts=minpts,
            algorithm="mapreduce",
            num_partitions=num_maps,
            seed_policy=seed_policy,
            startup_overhead=startup_overhead,
            leaf_size=leaf_size,
            tmp_dir=tmp_dir or tempfile.mkdtemp(prefix="mrdbscan-"),
        )
        self.tracer = tracer or NULL_TRACER
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.fail_after = fail_after

    @property
    def num_maps(self) -> int:
        """Map-task count (the MR name for ``num_partitions``)."""
        return self.config.num_partitions

    def __getattr__(self, name: str):
        if name in ("config", "__setstate__"):
            raise AttributeError(name)
        try:
            return getattr(self.config, name)
        except AttributeError:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            ) from None

    def fit(self, points: np.ndarray, sc=None) -> MRDBSCANResult:
        """Run the clustering over the given points.

        ``sc`` exists only for frontend-contract uniformity; the
        MapReduce runtime has no Spark engine to lend, so it is unused.
        """
        from ..pipeline.plans import build_plan
        from ..pipeline.runner import PipelineRunner

        runner = PipelineRunner(
            build_plan(self.config),
            self.config,
            tracer=self.tracer,
            checkpoint_dir=self.checkpoint_dir,
            resume=self.resume,
            fail_after=self.fail_after,
        )
        state = runner.run(points, algo_label=type(self).__name__)
        job1_stats: JobStats = state.extras["job1_stats"]
        job2_stats: JobStats = state.extras["job2_stats"]
        merge_info = state.extras["mr_merge_info"]
        timings = state.timings
        timings.executor_task_durations = (
            job1_stats.map_task_durations + job2_stats.map_task_durations
        )
        timings.executor_total = (
            job1_stats.total_task_time + job2_stats.total_task_time
        )
        timings.executor_max = max(timings.executor_task_durations, default=0.0)
        return MRDBSCANResult(
            labels=state.labels,
            timings=timings,
            num_partial_clusters=int(merge_info.get("num_partials", 0)),
            num_merges=int(merge_info.get("num_merges", 0)),
            job_stats=[job1_stats, job2_stats],
        )

"""DBSCAN over the mini-MapReduce runtime — the paper's Figure 7 baseline.

The paper implemented its own MapReduce DBSCAN to compare against the
Spark version ("we have implemented our own DBSCAN with MapReduce
approach", Section V-D).  Following the MR-DBSCAN family of designs
[He et al. 2014], the computation takes **two MapReduce rounds**, and —
unlike the Spark job — pays MapReduce's structural costs:

- the kd-tree cannot be broadcast: every map task re-loads it from a
  distributed-cache file on disk (Spark executors deserialise it once);
- partial clusters travel to the reducer through sorted on-disk spills;
- round 2 re-materialises every (point, label) record through the
  shuffle again to produce the final relabelled output.

Wall-clock on p cores is the measured-task makespan plus the configured
per-job startup overhead, identical methodology to the Spark side.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field

import numpy as np

from ..engine.partitioner import IndexRangePartitioner
from ..kdtree import KDTree
from ..mapreduce import JobStats, MapReduceJob
from ..obs.spans import NULL_TRACER, Tracer
from .core import ClusteringResult, Timings
from .merge import merge_partials
from .partial import local_dbscan


@dataclass
class MRDBSCANResult(ClusteringResult):
    """ClusteringResult plus per-MR-job statistics."""
    job_stats: list[JobStats] = field(default_factory=list)

    def wall_on(self, slots: int) -> float:
        """End-to-end MR wall-clock on ``slots`` cores: both jobs plus
        the driver-side tree build."""
        return self.timings.kdtree_build + sum(s.wall(slots) for s in self.job_stats)


class MapReduceDBSCAN:
    """Two-round MapReduce DBSCAN (see module docstring).

    ``startup_overhead`` is charged once per MR job (two jobs per fit) —
    it models job submission / JVM spin-up, which our in-process runtime
    does not otherwise pay.  The default (1.0 s) is deliberately modest
    compared to real Hadoop; Figure 7's benchmark reports results both
    with and without it.
    """

    def __init__(
        self,
        eps: float,
        minpts: int,
        num_maps: int = 4,
        seed_policy: str = "all",
        startup_overhead: float = 1.0,
        leaf_size: int = 64,
        tmp_dir: str | None = None,
        tracer: Tracer | None = None,
    ):
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if minpts < 1:
            raise ValueError(f"minpts must be >= 1, got {minpts}")
        if num_maps < 1:
            raise ValueError(f"num_maps must be >= 1, got {num_maps}")
        self.eps = eps
        self.minpts = minpts
        self.num_maps = num_maps
        self.seed_policy = seed_policy
        self.startup_overhead = startup_overhead
        self.leaf_size = leaf_size
        self.tmp_dir = tmp_dir or tempfile.mkdtemp(prefix="mrdbscan-")
        self.tracer = tracer or NULL_TRACER

    @staticmethod
    def _graft_map_spans(tracer: Tracer, stats: JobStats, job: str) -> None:
        """Record each measured map task as an executor-lane span."""
        if not tracer.enabled:
            return
        for m, dur in enumerate(stats.map_task_durations):
            tracer.add_span(
                "executor.map_task", dur, cat="executor",
                tid=f"{job}-map-{m}", partition=m, job=job,
            )

    def fit(self, points: np.ndarray) -> MRDBSCANResult:
        """Run the clustering over the given points."""
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {points.shape}")
        n = points.shape[0]
        timings = Timings()
        wall_start = time.perf_counter()

        tracer = self.tracer

        # Driver: build the tree once and stage it in the distributed cache.
        os.makedirs(self.tmp_dir, exist_ok=True)
        with tracer.span("driver.kdtree_build", cat="driver") as sp:
            t0 = time.perf_counter()
            tree = KDTree(points, leaf_size=self.leaf_size)
            cache_path = os.path.join(self.tmp_dir, "kdtree.cache.pkl")
            with open(cache_path, "wb") as f:
                pickle.dump(tree, f, protocol=pickle.HIGHEST_PROTOCOL)
            timings.kdtree_build = time.perf_counter() - t0
            sp.annotate(n=n, cache_bytes=os.path.getsize(cache_path))

        partitioner = IndexRangePartitioner(n, self.num_maps)
        eps, minpts, seed_policy = self.eps, self.minpts, self.seed_policy

        # ---- Round 1: local clustering + merge ------------------------------
        def map_local_cluster(map_id, index_range):
            # Distributed cache read: every task pays the deserialisation.
            with open(cache_path, "rb") as fh:
                local_tree = pickle.load(fh)
            partials = local_dbscan(
                map_id, range(*index_range), local_tree.points, local_tree,
                eps, minpts, partitioner, seed_policy=seed_policy,
            )
            yield (0, partials)

        merged_labels: dict[str, np.ndarray] = {}

        def reduce_merge(_key, partial_lists):
            partials = [c for chunk in partial_lists for c in chunk]
            outcome = merge_partials(partials, n)
            merged_labels["labels"] = outcome.labels
            merged_labels["num_partials"] = len(partials)  # type: ignore[assignment]
            merged_labels["num_merges"] = outcome.num_merges  # type: ignore[assignment]
            for i, lab in enumerate(outcome.labels):
                yield (int(i), int(lab))

        job1 = MapReduceJob(
            mapper=map_local_cluster,
            reducer=reduce_merge,
            num_reducers=1,
            tmp_dir=os.path.join(self.tmp_dir, "job1"),
            startup_overhead=self.startup_overhead,
        )
        splits = [
            [(m, partitioner.range_of(m))] for m in range(self.num_maps)
        ]
        with tracer.span("mr.job1", round=1, startup_overhead=self.startup_overhead):
            labelled = [kv for out in job1.run(splits) for kv in out]
        self._graft_map_spans(tracer, job1.stats, "mr1")

        # ---- Round 2: relabel/validate — re-materialise all records ---------
        def map_identity(idx, label):
            yield (idx % self.num_maps, (idx, label))

        def reduce_collect(_key, values):
            yield from values

        job2 = MapReduceJob(
            mapper=map_identity,
            reducer=reduce_collect,
            num_reducers=self.num_maps,
            tmp_dir=os.path.join(self.tmp_dir, "job2"),
            startup_overhead=self.startup_overhead,
        )
        with tracer.span("mr.job2", round=2, startup_overhead=self.startup_overhead):
            out2 = job2.run_on_records(labelled, self.num_maps)
        self._graft_map_spans(tracer, job2.stats, "mr2")

        labels = np.full(n, -1, dtype=np.int64)
        for idx, lab in out2:
            labels[idx] = lab

        timings.wall = time.perf_counter() - wall_start
        timings.executor_task_durations = (
            job1.stats.map_task_durations + job2.stats.map_task_durations
        )
        timings.executor_total = job1.stats.total_task_time + job2.stats.total_task_time
        timings.executor_max = max(timings.executor_task_durations, default=0.0)
        return MRDBSCANResult(
            labels=labels,
            timings=timings,
            num_partial_clusters=int(merged_labels.get("num_partials", 0)),
            num_merges=int(merged_labels.get("num_merges", 0)),
            job_stats=[job1.stats, job2.stats],
        )

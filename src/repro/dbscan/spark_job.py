"""The paper's contribution end-to-end: DBSCAN as a Spark job (Algorithm 2).

Driver side::

    1. read / receive points, build the kd-tree          (driver)
    2. broadcast tree + parameters                        (driver)
    3. parallelize point indices into p range partitions  (driver)
    4. foreachPartition: local DBSCAN with SEED placement (executors)
    5. partial clusters flow back through an accumulator  (executors→driver)
    6. dig SEEDs, merge partial clusters                  (driver)

Executors never talk to each other — no shuffle stage exists anywhere
in the job's lineage, which is the property the whole design buys.

Since the pipeline refactor this class is a thin shim: the sequence
above lives in `repro.pipeline` as a composition of typed stages
(`repro.pipeline.spark_plan`), and ``fit`` just assembles a `RunConfig`,
hands it to a `PipelineRunner`, and repackages the final state as the
historical result object.  Labels, partials, and counters are
byte-identical to the pre-refactor monolithic implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine import SparkContext
from ..kdtree import KDTree
from ..obs.spans import NULL_TRACER, Tracer
from ..pipeline.config import RunConfig
from .core import ClusteringResult
from .partial import PartialCluster


@dataclass
class SparkDBSCANResult(ClusteringResult):
    """ClusteringResult plus the collected partial clusters (optional).

    ``perm`` is set by `SpatialSparkDBSCAN`: the spatial reordering that
    was applied before partitioning (``perm[k]`` is the original index of
    reordered point ``k``).  ``None`` when no reordering happened.
    """

    partials: list[PartialCluster] | None = None
    perm: np.ndarray | None = None


class SparkDBSCAN:
    """Parallel DBSCAN with SEED-based shuffle-free merging.

    Parameters
    ----------
    eps, minpts:
        DBSCAN density parameters (paper Table I uses 25.0 / 5).
    num_partitions:
        Number of executor partitions; the paper runs one per core.
    master:
        Engine master URL; defaults to ``simulated[num_partitions]``
        (serial execution with per-task timing, see DESIGN.md §2).
        Use ``processes[k]`` for real parallel execution.
    seed_policy:
        ``"all"`` (exact, default) or ``"one_per_partition"``
        (Algorithm 3 literal) — see `repro.dbscan.partial`.
    merge_strategy:
        ``"union_find"`` (default) or ``"paper"`` (Algorithm 4 literal).
    max_neighbors:
        Optional kd-tree pruning cap (the paper's r1m branch-pruning).
    neighbor_mode:
        ``"per_point"`` (one kd-tree walk per BFS pop, the paper's loop)
        or ``"batched"`` (executors precompute all owned neighbourhoods
        with one vectorised kernel call, then expand over CSR rows).
        Results are identical; batched is the fast path (DESIGN.md §6).
    min_cluster_size:
        Drop partial clusters smaller than this before merging (the
        paper's r1m small-cluster filter).
    leaf_size:
        kd-tree leaf size.
    keep_partials:
        Retain partial clusters on the result for inspection.
    partitioning:
        ``"range"`` (default): the paper's contiguous index slicing with
        a whole-tree broadcast.  ``"cells"``: eps-grid cell partitions
        with partition-local kd-trees and an eps-halo — the driver never
        builds a global index and never broadcasts anything
        dataset-sized (DESIGN.md §10).  Labels are byte-identical.
    merge_mode:
        ``"partials"`` (default): executors ship whole partial clusters
        to the driver (the paper's path).  ``"edges"``: executors ship
        compact partition digests, the driver union-finds over cluster
        keys — O(edges + partials), not O(points) — and a second
        distributed pass applies the broadcast gid map (DESIGN.md §11).
        Labels are byte-identical.
    tracer:
        `repro.obs.Tracer` receiving the run's phase spans (DESIGN.md
        §7).  Defaults to the no-op `NULL_TRACER`; labels are identical
        either way.
    metrics_registry:
        `repro.obs.MetricsRegistry` receiving task metrics and the
        executors' `OpCounters` (collected through a second accumulator
        only when a registry is present).
    checkpoint_dir, resume, fail_after:
        Per-stage checkpointing (DESIGN.md §9): with ``checkpoint_dir``
        set, checkpointable stages persist their outputs keyed by the
        config+data content hash; ``resume=True`` restores completed
        stages instead of re-running them; ``fail_after`` injects a
        `repro.pipeline.PipelineCrash` after the named stage (testing).

    All parameter validation lives in `repro.pipeline.RunConfig`.
    """

    #: pipeline plan this frontend composes (subclasses override).
    ALGORITHM = "spark"

    def __init__(
        self,
        eps: float,
        minpts: int,
        num_partitions: int = 4,
        master: str | None = None,
        seed_policy: str = "all",
        merge_strategy: str = "union_find",
        max_neighbors: int | None = None,
        min_cluster_size: int = 0,
        leaf_size: int = 64,
        keep_partials: bool = False,
        neighbor_mode: str = "per_point",
        partitioning: str = "range",
        merge_mode: str = "partials",
        tracer: Tracer | None = None,
        metrics_registry=None,
        sanitize: bool = False,
        profile: bool = False,
        profile_alloc: bool = False,
        checkpoint_dir: str | None = None,
        resume: bool = False,
        fail_after: str | None = None,
    ):
        self.config = RunConfig(
            eps=eps,
            minpts=minpts,
            algorithm=self.ALGORITHM,
            num_partitions=num_partitions,
            master=master,
            seed_policy=seed_policy,
            merge_strategy=merge_strategy,
            max_neighbors=max_neighbors,
            min_cluster_size=min_cluster_size,
            leaf_size=leaf_size,
            keep_partials=keep_partials,
            neighbor_mode=neighbor_mode,
            partitioning=partitioning,
            merge_mode=merge_mode,
            sanitize=sanitize,
            profile=profile,
            profile_alloc=profile_alloc,
        )
        self.tracer = tracer or NULL_TRACER
        self.metrics_registry = metrics_registry
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.fail_after = fail_after

    def __getattr__(self, name: str):
        # Legacy attribute surface: the old kwargs lived directly on the
        # instance; forward them to the config so callers keep working.
        if name in ("config", "__setstate__"):
            raise AttributeError(name)
        if name == "master":
            return self.config.resolved_master
        try:
            return getattr(self.config, name)
        except AttributeError:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            ) from None

    def _fit_state(self, points: np.ndarray, sc=None, tree=None):
        """Run this frontend's plan and return the final pipeline state."""
        # Imported lazily: repro.pipeline's stage modules import from
        # repro.dbscan, so a module-level import here would be circular.
        from ..pipeline.plans import build_plan
        from ..pipeline.runner import PipelineRunner

        runner = PipelineRunner(
            build_plan(self.config),
            self.config,
            tracer=self.tracer,
            metrics_registry=self.metrics_registry,
            checkpoint_dir=self.checkpoint_dir,
            resume=self.resume,
            fail_after=self.fail_after,
        )
        return runner.run(points, sc=sc, tree=tree, algo_label=type(self).__name__)

    def fit(
        self,
        points: np.ndarray,
        sc: SparkContext | None = None,
        *,
        tree: KDTree | None = None,
    ) -> SparkDBSCANResult:
        """Run the full job; returns labels plus the driver/executor
        timing split the paper's figures are built from.

        ``tree`` (keyword-only) lends a prebuilt kd-tree, skipping the
        build — used when timing query cost separately.
        """
        state = self._fit_state(points, sc=sc, tree=tree)
        partials = state.partials
        if partials is not None:
            num_partials = len(partials)
            num_seeds = sum(len(c.seeds) for c in partials)
        else:
            # merge_mode="edges": no partials ever reach the driver; the
            # counts come from the digest summaries via MergeEdges.
            num_partials = int(state.extras.get("num_partials", 0))
            num_seeds = int(state.extras.get("num_seeds", 0))
        return SparkDBSCANResult(
            labels=state.labels,
            timings=state.timings,
            num_partial_clusters=num_partials,
            num_seeds=num_seeds,
            num_merges=state.outcome.num_merges,
            partials=(partials or []) if self.config.keep_partials else None,
            perm=state.perm,
        )

"""The paper's contribution end-to-end: DBSCAN as a Spark job (Algorithm 2).

Driver side::

    1. read / receive points, build the kd-tree          (driver)
    2. broadcast tree + parameters                        (driver)
    3. parallelize point indices into p range partitions  (driver)
    4. foreachPartition: local DBSCAN with SEED placement (executors)
    5. partial clusters flow back through an accumulator  (executors→driver)
    6. dig SEEDs, merge partial clusters                  (driver)

Executors never talk to each other — no shuffle stage exists anywhere
in the job's lineage, which is the property the whole design buys.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..engine import LIST_CONCAT, SparkContext
from ..engine.partitioner import IndexRangePartitioner
from ..kdtree import KDTree
from ..obs.spans import NULL_TRACER, Tracer
from .core import ClusteringResult, Timings
from .merge import MERGE_STRATEGIES, merge_partials
from .partial import NEIGHBOR_MODES, SEED_POLICIES, OpCounters, PartialCluster, local_dbscan


@dataclass
class SparkDBSCANResult(ClusteringResult):
    """ClusteringResult plus the collected partial clusters (optional).

    ``perm`` is set by `SpatialSparkDBSCAN`: the spatial reordering that
    was applied before partitioning (``perm[k]`` is the original index of
    reordered point ``k``).  ``None`` when no reordering happened.
    """

    partials: list[PartialCluster] | None = None
    perm: np.ndarray | None = None


class SparkDBSCAN:
    """Parallel DBSCAN with SEED-based shuffle-free merging.

    Parameters
    ----------
    eps, minpts:
        DBSCAN density parameters (paper Table I uses 25.0 / 5).
    num_partitions:
        Number of executor partitions; the paper runs one per core.
    master:
        Engine master URL; defaults to ``simulated[num_partitions]``
        (serial execution with per-task timing, see DESIGN.md §2).
        Use ``processes[k]`` for real parallel execution.
    seed_policy:
        ``"all"`` (exact, default) or ``"one_per_partition"``
        (Algorithm 3 literal) — see `repro.dbscan.partial`.
    merge_strategy:
        ``"union_find"`` (default) or ``"paper"`` (Algorithm 4 literal).
    max_neighbors:
        Optional kd-tree pruning cap (the paper's r1m branch-pruning).
    neighbor_mode:
        ``"per_point"`` (one kd-tree walk per BFS pop, the paper's loop)
        or ``"batched"`` (executors precompute all owned neighbourhoods
        with one vectorised kernel call, then expand over CSR rows).
        Results are identical; batched is the fast path (DESIGN.md §6).
    min_cluster_size:
        Drop partial clusters smaller than this before merging (the
        paper's r1m small-cluster filter).
    leaf_size:
        kd-tree leaf size.
    keep_partials:
        Retain partial clusters on the result for inspection.
    tracer:
        `repro.obs.Tracer` receiving the run's phase spans (DESIGN.md
        §7).  Defaults to the no-op `NULL_TRACER`; labels are identical
        either way.
    metrics_registry:
        `repro.obs.MetricsRegistry` receiving task metrics and the
        executors' `OpCounters` (collected through a second accumulator
        only when a registry is present).
    """

    def __init__(
        self,
        eps: float,
        minpts: int,
        num_partitions: int = 4,
        master: str | None = None,
        seed_policy: str = "all",
        merge_strategy: str = "union_find",
        max_neighbors: int | None = None,
        min_cluster_size: int = 0,
        leaf_size: int = 64,
        keep_partials: bool = False,
        neighbor_mode: str = "per_point",
        tracer: Tracer | None = None,
        metrics_registry=None,
        sanitize: bool = False,
    ):
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if minpts < 1:
            raise ValueError(f"minpts must be >= 1, got {minpts}")
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        if seed_policy not in SEED_POLICIES:
            raise ValueError(f"unknown seed_policy {seed_policy!r}")
        if merge_strategy not in MERGE_STRATEGIES:
            raise ValueError(f"unknown merge_strategy {merge_strategy!r}")
        if neighbor_mode not in NEIGHBOR_MODES:
            raise ValueError(f"unknown neighbor_mode {neighbor_mode!r}")
        self.eps = eps
        self.minpts = minpts
        self.num_partitions = num_partitions
        self.master = master or f"simulated[{num_partitions}]"
        self.seed_policy = seed_policy
        self.merge_strategy = merge_strategy
        self.max_neighbors = max_neighbors
        self.min_cluster_size = min_cluster_size
        self.leaf_size = leaf_size
        self.keep_partials = keep_partials
        self.neighbor_mode = neighbor_mode
        self.tracer = tracer or NULL_TRACER
        self.metrics_registry = metrics_registry
        self.sanitize = sanitize

    def fit(
        self,
        points: np.ndarray,
        sc: SparkContext | None = None,
        tree: KDTree | None = None,
    ) -> SparkDBSCANResult:
        """Run the full job; returns labels plus the driver/executor
        timing split the paper's figures are built from."""
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {points.shape}")
        n = points.shape[0]
        timings = Timings()
        wall_start = time.perf_counter()

        # When fitted inside a caller's traced SparkContext, adopt its
        # tracer so algorithm and engine spans land in one trace.
        tracer = self.tracer
        if not tracer.enabled and sc is not None and sc.tracer.enabled:
            tracer = sc.tracer

        with tracer.span(
            "dbscan.fit", algorithm=type(self).__name__, n=n,
            partitions=self.num_partitions, eps=self.eps, minpts=self.minpts,
        ):
            # ---- driver: build the kd-tree over the whole dataset ----------
            if tree is None:
                with tracer.span("driver.kdtree_build", cat="driver") as sp:
                    t0 = time.perf_counter()
                    tree = KDTree(points, leaf_size=self.leaf_size)
                    timings.kdtree_build = time.perf_counter() - t0
                    sp.annotate(n=n, leaf_size=self.leaf_size)

            own_sc = sc is None
            if own_sc:
                sc = SparkContext(
                    self.master, app_name="spark-dbscan", tracer=tracer,
                    metrics_registry=self.metrics_registry,
                    sanitize=self.sanitize,
                )
            try:
                partials = self._run_job(sc, points, tree, n, timings, tracer)
                # ---- driver: dig SEEDs and merge (Algorithm 4) --------------
                with tracer.span("driver.merge", cat="driver") as sp:
                    t0 = time.perf_counter()
                    outcome = merge_partials(
                        partials,
                        n,
                        strategy=self.merge_strategy,
                        min_cluster_size=self.min_cluster_size,
                    )
                    timings.driver_merge = time.perf_counter() - t0
                    sp.annotate(
                        strategy=self.merge_strategy,
                        num_partials=len(partials),
                        num_seeds=sum(len(c.seeds) for c in partials),
                        num_merges=outcome.num_merges,
                        num_global_clusters=outcome.num_global_clusters,
                        overlapping_points=outcome.overlapping_points,
                    )
            finally:
                if own_sc:
                    sc.stop()

        timings.wall = time.perf_counter() - wall_start
        return SparkDBSCANResult(
            labels=outcome.labels,
            timings=timings,
            num_partial_clusters=len(partials),
            num_seeds=sum(len(c.seeds) for c in partials),
            num_merges=outcome.num_merges,
            partials=partials if self.keep_partials else None,
        )

    def _run_job(
        self,
        sc: SparkContext,
        points: np.ndarray,
        tree: KDTree,
        n: int,
        timings: Timings,
        tracer: Tracer = NULL_TRACER,
    ) -> list[PartialCluster]:
        """Algorithm 2 lines 1–29: distribute, cluster locally, accumulate."""
        partitioner = IndexRangePartitioner(n, self.num_partitions)
        eps, minpts = self.eps, self.minpts
        seed_policy, max_neighbors = self.seed_policy, self.max_neighbors
        neighbor_mode = self.neighbor_mode
        collect_counters = self.metrics_registry is not None

        with tracer.span("driver.setup", cat="driver"):
            t0 = time.perf_counter()
            tree_b = sc.broadcast(tree)
            indices = sc.parallelize(range(n), self.num_partitions)
            acc = sc.accumulator(LIST_CONCAT)
            counters_acc = sc.accumulator(LIST_CONCAT) if collect_counters else None
            timings.setup = time.perf_counter() - t0

        def run_partition(pid: int, it) -> None:
            t = tree_b.value
            counters = OpCounters() if collect_counters else None
            result = local_dbscan(
                pid, it, t.points, t, eps, minpts, partitioner,
                seed_policy=seed_policy, max_neighbors=max_neighbors,
                neighbor_mode=neighbor_mode, counters=counters,
            )
            # Algorithm 2 lines 26–28: ship partial clusters to the driver
            # through the accumulator as the task finishes.
            acc.add(result)
            if counters_acc is not None:
                counters_acc.add([(pid, counters)])

        indices.foreach_partition_with_index(run_partition)

        durations = sc.last_job_metrics.task_durations()
        timings.executor_task_durations = durations
        timings.executor_total = sum(durations)
        timings.executor_max = max(durations) if durations else 0.0

        with tracer.span("driver.accumulator_drain", cat="driver") as sp:
            partials = list(acc.value)
            sp.annotate(num_partials=len(partials))

        if tracer.enabled:
            partials_per = [0] * self.num_partitions
            seeds_per = [0] * self.num_partitions
            for c in partials:
                partials_per[c.partition] += 1
                seeds_per[c.partition] += len(c.seeds)
            # Graft per-partition expansion spans: with one partition per
            # core (the paper's setup) their max is the executor wall.
            for pid, dur in enumerate(durations):
                tracer.add_span(
                    "executor.partition_expand", dur, cat="executor",
                    tid=f"executor-{pid}", partition=pid,
                    partials=partials_per[pid], seeds=seeds_per[pid],
                )
        if collect_counters:
            from ..obs.registry import record_op_counters

            for pid, oc in counters_acc.value:
                record_op_counters(self.metrics_registry, oc, partition=pid)
        return partials

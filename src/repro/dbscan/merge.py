"""Driver-side merging of partial clusters via SEEDs (Algorithm 4).

A SEED in partial cluster ``Ci`` that is a *regular* element of partial
cluster ``Cj`` proves the two pieces belong to one global cluster
(Figure 4: C[0]'s seed 3000 is a regular element of C[5], so they
merge).

Two strategies:

- ``"union_find"`` (default): connected components of the
  seed-containment graph.  Handles arbitrary merge chains (A→B→C) and
  is the correct closure of the paper's idea.
- ``"paper"``: a literal single pass of Algorithm 4 — for each
  unfinished cluster, dig its seeds, absorb each master, mark statuses.
  Seeds of absorbed masters are *not* re-followed, so long chains can
  stay split; Ablation B exhibits exactly that divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .core import NOISE
from .partial import PartialCluster, PartitionDigest

MERGE_STRATEGIES = ("union_find", "paper")

#: How partial clusters reach the driver (DESIGN.md §11):
#:
#: - ``"partials"``: executors ship whole member/seed point lists;
#:   `merge_partials` works over them — O(points) collect + merge.
#: - ``"edges"``: executors ship `PartitionDigest`s (summaries, seed
#:   half-edges, boundary exports); `merge_edges` runs the same
#:   union-find over cluster keys — O(edges + partials) — and labels are
#:   applied by a second distributed pass (`apply_gid_map` per task).
MERGE_MODES = ("partials", "edges")


class UnionFind:
    """Weighted quick-union with path halving."""

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.rank = [0] * n
        self.components = n

    def find(self, x: int) -> int:
        """Union-find root of the given element."""
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]
            x = p[x]
        return x

    def union(self, a: int, b: int) -> bool:
        """Join two components; True if they were previously disjoint."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self.components -= 1
        return True


@dataclass
class MergeOutcome:
    """Labels and bookkeeping produced by a merge strategy."""
    labels: np.ndarray
    num_merges: int
    num_global_clusters: int
    # Paper-strategy diagnostic: distinct points that are core members of
    # one global cluster while also being a seed of a *different* global
    # cluster — unfollowed merge evidence the single pass left behind.
    # Always 0 for union_find (those edges get merged).
    overlapping_points: int = 0
    groups: list[list[int]] = field(default_factory=list)  # partial idxs per global


def _member_owner_map(partials: list[PartialCluster]) -> dict[int, int]:
    """point index -> index (into ``partials``) of the cluster owning it
    as a regular element.  Ownership is unique because each executor
    assigns its own points to at most one partial cluster."""
    owner: dict[int, int] = {}
    for ci, c in enumerate(partials):
        for m in c.members:
            owner[m] = ci
    return owner


def _links_clusters(partials: list[PartialCluster], oi: int, s: int) -> bool:
    """A seed ``s`` owned by cluster ``oi`` links the two clusters only if
    ``s`` is a *core* member there — density-connectivity never passes
    through a border point (two clusters may legitimately share one)."""
    return partials[oi].is_core_member(s)


def merge_union_find(partials: list[PartialCluster], n: int) -> MergeOutcome:
    """Global clusters = connected components over core-seed-containment
    edges."""
    owner = _member_owner_map(partials)
    uf = UnionFind(len(partials))
    merges = 0
    for ci, c in enumerate(partials):
        for s in c.seeds:
            oi = owner.get(s)
            if (
                oi is not None
                and _links_clusters(partials, oi, s)
                and uf.union(ci, oi)
            ):
                merges += 1

    root_to_gid: dict[int, int] = {}
    labels = np.full(n, NOISE, dtype=np.int64)
    groups: dict[int, list[int]] = {}
    for ci, c in enumerate(partials):
        root = uf.find(ci)
        gid = root_to_gid.setdefault(root, len(root_to_gid))
        groups.setdefault(gid, []).append(ci)
        for m in c.members:
            labels[m] = gid
    # Seeds that are regular members elsewhere already got their label.
    # Unowned seeds are cross-partition *border* points: claimed by the
    # first cluster that reached them (standard DBSCAN tie-breaking).
    # "First" is pinned to ascending founder order, not list order —
    # accumulator arrival order varies across backends and the tie-break
    # must not vary with it.
    for ci in sorted(
        range(len(partials)),
        key=lambda i: partials[i].members[0] if partials[i].members else i,
    ):
        gid = root_to_gid[uf.find(ci)]
        for s in partials[ci].seeds:
            if s not in owner and labels[s] == NOISE:
                labels[s] = gid
    return MergeOutcome(
        labels=labels,
        num_merges=merges,
        num_global_clusters=len(root_to_gid),
        groups=[groups[g] for g in sorted(groups)],
    )


def merge_paper(partials: list[PartialCluster], n: int) -> MergeOutcome:
    """Literal Algorithm 4: one pass, no transitive re-digging.

    For each cluster still ``unfinished``: identify its seeds, find each
    seed's master cluster (the one holding it as a regular element),
    absorb the master, mark the master ``finished``; finally mark the
    current cluster ``finished``.  Absorbed masters are dropped from the
    output.  Chains (a master whose own seeds point further) are NOT
    followed — the documented limitation.
    """
    for c in partials:
        c.status = "unfinished"
    owner = _member_owner_map(partials)
    absorbed: set[int] = set()
    _absorber: dict[int, int] = {}  # absorbed partial -> its absorbing cluster
    # group representative -> partial indices merged into it
    merged_into: dict[int, list[int]] = {ci: [ci] for ci in range(len(partials))}
    merges = 0
    for ci, c in enumerate(partials):
        if ci in absorbed or c.status != "unfinished":  # Algorithm 4 line 2
            continue
        for s in c.seeds:  # lines 3–8: only the *current* cluster's own
            # seeds are dug; seeds of absorbed masters are never followed
            # (the single-pass limitation).
            oi = owner.get(s)
            if oi is None or not _links_clusters(partials, oi, s):
                continue
            # Figure 4b semantics: after a merge, the master's elements are
            # findable in the merged cluster — follow the redirect.
            while oi in absorbed and oi != ci:
                oi = _absorber[oi]
            if oi == ci:
                continue
            group = merged_into.pop(oi)
            merged_into[ci].extend(group)
            for pi in group:
                absorbed.add(pi)
                _absorber[pi] = ci
                partials[pi].status = "finished"  # line 7
            merges += 1
        c.status = "finished"  # line 9

    labels = np.full(n, NOISE, dtype=np.int64)
    groups: list[list[int]] = []
    gid = 0
    gid_of: dict[int, int] = {}
    for ci in sorted(merged_into):
        groups.append(merged_into[ci])
        gid_of[ci] = gid
        for pi in merged_into[ci]:
            for m in partials[pi].members:
                labels[m] = gid
        gid += 1
    # Border seeds, as in union-find merging.
    for ci, group in zip(sorted(merged_into), groups):
        for pi in group:
            for s in partials[pi].seeds:
                if s not in owner and labels[s] == NOISE:
                    labels[s] = gid_of[ci]
    # The single-pass limitation, quantified: a core-seed edge between two
    # partials that ended up in different global groups is a merge the
    # pass failed to perform; count the distinct points witnessing one.
    partial_gid: dict[int, int] = {}
    for ci, group in zip(sorted(merged_into), groups):
        for pi in group:
            partial_gid[pi] = gid_of[ci]
    overlapping: set[int] = set()
    for pi, c in enumerate(partials):
        for s in c.seeds:
            oi = owner.get(s)
            if (
                oi is not None
                and _links_clusters(partials, oi, s)
                and partial_gid[oi] != partial_gid[pi]
            ):
                overlapping.add(s)
    return MergeOutcome(
        labels=labels,
        num_merges=merges,
        num_global_clusters=gid,
        overlapping_points=len(overlapping),
        groups=groups,
    )


def merge_partials(
    partials: list[PartialCluster],
    n: int,
    strategy: str = "union_find",
    min_cluster_size: int = 0,
) -> MergeOutcome:
    """Merge partial clusters into global labels.

    ``min_cluster_size`` filters tiny *partial* clusters before merging —
    the paper's r1m trick ("we filter out those partial clusters whose
    size is too small", Section V-E).  ``MergeOutcome.groups`` always
    indexes the ``partials`` list *as passed in*, filtered or not.
    """
    if strategy not in MERGE_STRATEGIES:
        raise ValueError(
            f"strategy must be one of {MERGE_STRATEGIES}, got {strategy!r}"
        )
    original: list[int] | None = None
    if min_cluster_size > 0:
        original = [ci for ci, c in enumerate(partials)
                    if c.size >= min_cluster_size]
        partials = [partials[ci] for ci in original]
    if strategy == "union_find":
        outcome = merge_union_find(partials, n)
    else:
        outcome = merge_paper(partials, n)
    if original is not None:
        # The strategies numbered the filtered list; translate each group
        # back to indices into the caller's original list.
        outcome.groups = [[original[ci] for ci in g] for g in outcome.groups]
    return outcome


@dataclass
class EdgeMergePlan:
    """Driver-side merge decisions computed from digests alone.

    ``gid_of`` maps each kept partial cluster's ``(partition, local_id)``
    key to its global cluster id; the second distributed pass applies it
    to the executor-resident member lists.  ``claims`` resolves the only
    points the driver must label itself: cross-partition border seeds
    owned by nobody — a dict of O(boundary) size, not O(points).

    ``groups`` indexes partial clusters in canonical (founder-sorted)
    order, matching what `merge_partials` produces over the
    founder-sorted collected list.
    """

    gid_of: dict[tuple[int, int], int]
    claims: dict[int, int]
    num_partials: int
    num_seeds: int
    num_edges: int
    num_merges: int
    num_global_clusters: int
    groups: list[list[int]] = field(default_factory=list)


def merge_edges(
    digests: list[PartitionDigest],
    min_cluster_size: int = 0,
) -> EdgeMergePlan:
    """Union-find over cluster keys: O(edges + partials), no point lists.

    Joins each kept cluster's seeds against the export table (point →
    owning cluster, core?).  A hit on a *core* export is exactly an
    owner-map edge of `merge_union_find`; border hits are skipped for
    the same reason `_links_clusters` skips them.  Gid numbering, the
    ``min_cluster_size`` filter, and the border-seed claim tie-break all
    replay the partial-mode semantics over founder-sorted order, so the
    resulting labels are byte-identical.
    """
    flat: list[tuple] = []  # (summary, seed list), canonical order
    for d in digests:
        for summ, seed_list in zip(d.summaries, d.seeds):
            flat.append((summ, seed_list))
    flat.sort(key=lambda e: e[0].founder)
    index_of = {summ.cid: i for i, (summ, _) in enumerate(flat)}
    if min_cluster_size > 0:
        kept = [i for i, (summ, _) in enumerate(flat)
                if summ.size >= min_cluster_size]
    else:
        kept = list(range(len(flat)))
    kept_set = set(kept)

    # Export table over kept clusters only: point -> (canonical cluster
    # index, is_core).  Ownership is unique, so no collisions.
    exports: dict[int, tuple[int, bool]] = {}
    for d in digests:
        for point, local_id, is_core in d.exports:
            oi = index_of[(d.partition, local_id)]
            if oi in kept_set:
                exports[point] = (oi, is_core)

    uf = UnionFind(len(flat))
    merges = 0
    num_edges = 0
    for ci in kept:
        for s in flat[ci][1]:
            hit = exports.get(s)
            if hit is None:
                continue
            oi, is_core = hit
            if not is_core:
                continue  # border export: legal overlap, not an edge
            num_edges += 1
            if uf.union(ci, oi):
                merges += 1

    root_to_gid: dict[int, int] = {}
    gid_of: dict[tuple[int, int], int] = {}
    groups: dict[int, list[int]] = {}
    for ci in kept:
        root = uf.find(ci)
        gid = root_to_gid.setdefault(root, len(root_to_gid))
        groups.setdefault(gid, []).append(ci)
        gid_of[flat[ci][0].cid] = gid

    # Border-seed claims, founder-sorted as in `merge_union_find`: a
    # seed that is a member of a kept cluster is in the export table
    # (members with foreign neighbours are always exported), so
    # ``s not in exports`` ⟺ ``s not in owner`` over seed points.
    claims: dict[int, int] = {}
    for ci in kept:
        gid = root_to_gid[uf.find(ci)]
        for s in flat[ci][1]:
            if s not in exports and s not in claims:
                claims[s] = gid

    return EdgeMergePlan(
        gid_of=gid_of,
        claims=claims,
        num_partials=len(flat),
        num_seeds=sum(len(seed_list) for _, seed_list in flat),
        num_edges=num_edges,
        num_merges=merges,
        num_global_clusters=len(root_to_gid),
        groups=[groups[g] for g in sorted(groups)],
    )


def apply_gid_map(
    partials: list[PartialCluster],
    plan: EdgeMergePlan,
    n: int,
) -> np.ndarray:
    """Reference label application (the distributed pass, run locally).

    The pipeline's `ApplyGidMap` stage does this executor-side per
    partition; this helper exists for tests and benchmarks that hold the
    partials in one process.
    """
    labels = np.full(n, NOISE, dtype=np.int64)
    for c in partials:
        gid = plan.gid_of.get(c.cid)
        if gid is not None and c.members:
            labels[np.asarray(c.members, dtype=np.int64)] = gid
    for s, gid in plan.claims.items():
        labels[s] = gid
    return labels

"""Clustering validation: equivalence checks and agreement indices.

The paper states "all parallel executions generate the same result as
the serial execution" (Section V).  Exact label equality is the wrong
test — cluster ids are arbitrary and DBSCAN border points may be
legitimately assigned to either of two adjacent clusters depending on
visit order.  `clusterings_equivalent` therefore checks the strongest
property that is actually order-invariant:

1. identical noise sets restricted to *core-reachable* structure:
   a point is noise in one labelling iff it is noise in the other,
   except border points (non-core points with a core neighbour) which
   must be clustered in both;
2. core points are partitioned identically (same-cluster relation
   restricted to core points matches exactly);
3. every border point's cluster contains a core point within eps of it
   (its assignment is *valid*, even if the two labelings disagree).
"""

from __future__ import annotations

import numpy as np

from ..kdtree import KDTree
from .core import NOISE


def relabel_canonical(labels: np.ndarray) -> np.ndarray:
    """Renumber cluster ids by order of first appearance (noise preserved)."""
    labels = np.asarray(labels)
    out = np.full(labels.shape, NOISE, dtype=np.int64)
    mapping: dict[int, int] = {}
    for i, lab in enumerate(labels):
        if lab < 0:
            continue
        if lab not in mapping:
            mapping[lab] = len(mapping)
        out[i] = mapping[lab]
    return out


def clusterings_equivalent(
    labels_a: np.ndarray,
    labels_b: np.ndarray,
    points: np.ndarray,
    eps: float,
    minpts: int,
    tree: KDTree | None = None,
    core: np.ndarray | None = None,
) -> tuple[bool, str]:
    """DBSCAN-aware equivalence (see module docstring).

    Returns ``(ok, reason)``; ``reason`` pinpoints the first violation.
    """
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    points = np.ascontiguousarray(points, dtype=np.float64)
    n = points.shape[0]
    if labels_a.shape != (n,) or labels_b.shape != (n,):
        return False, "label arrays have wrong shape"
    if tree is None:
        tree = KDTree(points)
    if core is None:
        core = np.zeros(n, dtype=bool)
        for i in range(n):
            core[i] = tree.query_radius(points[i], eps).size >= minpts

    # 1. Noise agreement.  Core points can never be noise; non-core points
    # are noise iff no core point lies within eps (border otherwise).
    for name, lab in (("A", labels_a), ("B", labels_b)):
        bad = np.flatnonzero(core & (lab == NOISE))
        if bad.size:
            return False, f"labelling {name}: core point {bad[0]} marked noise"
    disagree = np.flatnonzero((labels_a == NOISE) != (labels_b == NOISE))
    if disagree.size:
        i = int(disagree[0])
        return False, (
            f"point {i} noise in one labelling but clustered in the other "
            f"(A={labels_a[i]}, B={labels_b[i]})"
        )

    # 2. Core partition must match exactly: same-cluster relation on cores.
    core_idx = np.flatnonzero(core)
    map_ab: dict[int, int] = {}
    map_ba: dict[int, int] = {}
    for i in core_idx:
        a, b = int(labels_a[i]), int(labels_b[i])
        if map_ab.setdefault(a, b) != b:
            return False, (
                f"core cluster split: A-cluster {a} maps to both "
                f"{map_ab[a]} and {b} in B (witness core point {i})"
            )
        if map_ba.setdefault(b, a) != a:
            return False, (
                f"core cluster merged: B-cluster {b} maps to both "
                f"{map_ba[b]} and {a} in A (witness core point {i})"
            )

    # 3. Border points: assignment must be *valid* in both labellings.
    border_idx = np.flatnonzero(~core & (labels_a != NOISE))
    for i in border_idx:
        neigh = tree.query_radius(points[i], eps)
        for lab in (labels_a, labels_b):
            cid = lab[i]
            if not any(core[j] and lab[j] == cid for j in neigh):
                return False, (
                    f"border point {i} assigned to cluster {cid} with no "
                    "core point of that cluster within eps"
                )
    return True, "equivalent"


def rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Rand index over all point pairs (noise treated as singleton ids)."""
    a = _noise_as_singletons(np.asarray(labels_a))
    b = _noise_as_singletons(np.asarray(labels_b))
    n = a.size
    if n != b.size:
        raise ValueError("label arrays differ in length")
    if n < 2:
        return 1.0
    c = _contingency(a, b)
    sum_sq = float((c.astype(np.float64) ** 2).sum())
    sum_a = float((c.sum(axis=1).astype(np.float64) ** 2).sum())
    sum_b = float((c.sum(axis=0).astype(np.float64) ** 2).sum())
    pairs = n * (n - 1) / 2
    same_same = (sum_sq - n) / 2
    diff_diff = pairs - (sum_a - n) / 2 - (sum_b - n) / 2 + same_same
    return float((same_same + diff_diff) / pairs)


def adjusted_rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Adjusted Rand index (chance-corrected agreement)."""
    a = _noise_as_singletons(np.asarray(labels_a))
    b = _noise_as_singletons(np.asarray(labels_b))
    n = a.size
    if n != b.size:
        raise ValueError("label arrays differ in length")
    c = _contingency(a, b)

    def comb2(x: np.ndarray) -> float:
        return float((x * (x - 1) / 2).sum())

    sum_comb = comb2(c.astype(np.float64))
    sum_a = comb2(c.sum(axis=1).astype(np.float64))
    sum_b = comb2(c.sum(axis=0).astype(np.float64))
    total = n * (n - 1) / 2
    expected = sum_a * sum_b / total if total else 0.0
    max_index = (sum_a + sum_b) / 2
    if max_index == expected:
        return 1.0
    return float((sum_comb - expected) / (max_index - expected))


def _noise_as_singletons(labels: np.ndarray) -> np.ndarray:
    """Give each noise point its own cluster id so indices compare sanely."""
    out = labels.astype(np.int64).copy()
    next_id = int(out.max(initial=-1)) + 1
    for i in np.flatnonzero(out == NOISE):
        out[i] = next_id
        next_id += 1
    return out


def _contingency(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    ua, ia = np.unique(a, return_inverse=True)
    ub, ib = np.unique(b, return_inverse=True)
    c = np.zeros((ua.size, ub.size), dtype=np.int64)
    np.add.at(c, (ia, ib), 1)
    return c

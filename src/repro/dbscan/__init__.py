"""DBSCAN implementations: sequential, SEED-based Spark-parallel, the
shuffle-based naive parallel baseline, and the MapReduce baseline."""

from .core import NOISE, UNCLASSIFIED, ClusteringResult, Timings
from .merge import (
    MERGE_MODES,
    MERGE_STRATEGIES,
    EdgeMergePlan,
    MergeOutcome,
    UnionFind,
    apply_gid_map,
    merge_edges,
    merge_paper,
    merge_partials,
    merge_union_find,
)
from .cells import (
    CellAssignment,
    CellGrid,
    CellPayload,
    build_cell_assignment,
    cell_local_dbscan,
)
from .params import k_distances, suggest_eps
from .predict import DBSCANPredictor
from .partial import (
    NEIGHBOR_MODES,
    SEED_POLICIES,
    LocalExpansion,
    PartialCluster,
    PartialSummary,
    PartitionDigest,
    digest_from_partials,
    digest_payload_nbytes,
    local_dbscan,
    partials_payload_nbytes,
    partition_digest,
)
from .incremental import GridIndex, IncrementalDBSCAN
from .mapreduce_job import MapReduceDBSCAN, MRDBSCANResult
from .naive_spark import NaiveSparkDBSCAN, NaiveSparkResult
from .sequential import core_point_mask, dbscan_sequential
from .spark_job import SparkDBSCAN, SparkDBSCANResult
from .spatial import SpatialSparkDBSCAN, spatial_order
from .validation import (
    adjusted_rand_index,
    clusterings_equivalent,
    rand_index,
    relabel_canonical,
)

__all__ = [
    "NOISE",
    "UNCLASSIFIED",
    "CellAssignment",
    "CellGrid",
    "CellPayload",
    "build_cell_assignment",
    "cell_local_dbscan",
    "MapReduceDBSCAN",
    "MRDBSCANResult",
    "NaiveSparkDBSCAN",
    "NaiveSparkResult",
    "SpatialSparkDBSCAN",
    "spatial_order",
    "suggest_eps",
    "k_distances",
    "IncrementalDBSCAN",
    "GridIndex",
    "DBSCANPredictor",
    "ClusteringResult",
    "Timings",
    "dbscan_sequential",
    "core_point_mask",
    "SparkDBSCAN",
    "SparkDBSCANResult",
    "PartialCluster",
    "local_dbscan",
    "SEED_POLICIES",
    "NEIGHBOR_MODES",
    "MERGE_MODES",
    "MERGE_STRATEGIES",
    "MergeOutcome",
    "EdgeMergePlan",
    "UnionFind",
    "merge_partials",
    "merge_union_find",
    "merge_paper",
    "merge_edges",
    "apply_gid_map",
    "LocalExpansion",
    "PartialSummary",
    "PartitionDigest",
    "partition_digest",
    "digest_from_partials",
    "partials_payload_nbytes",
    "digest_payload_nbytes",
    "clusterings_equivalent",
    "rand_index",
    "adjusted_rand_index",
    "relabel_canonical",
]

"""Shared DBSCAN types: label conventions and result objects.

Label conventions follow the classic implementation:

- ``>= 0``            cluster id
- ``NOISE`` (-1)      noise point
- ``UNCLASSIFIED`` (-2) internal sentinel, never present in final output
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

NOISE = -1
UNCLASSIFIED = -2


@dataclass
class Timings:
    """Driver/executor wall-clock split (paper Figures 6 and 8).

    ``executor_task_durations`` holds each partition task's measured
    run time; with one partition per core (the paper's setup) the
    executor-side parallel wall-clock is their max.
    """

    kdtree_build: float = 0.0
    setup: float = 0.0            # driver: data transform + broadcast
    executor_total: float = 0.0   # sum of task durations (total work)
    executor_max: float = 0.0     # max task duration (parallel wall-clock)
    driver_merge: float = 0.0     # driver: SEED digging + merging
    wall: float = 0.0             # real end-to-end wall-clock
    executor_task_durations: list[float] = field(default_factory=list)

    @property
    def driver_time(self) -> float:
        """All driver-side time: tree build + setup + merge."""
        return self.kdtree_build + self.setup + self.driver_merge

    def parallel_wall(self) -> float:
        """Virtual wall-clock with one core per partition: driver time plus
        the slowest executor."""
        return self.driver_time + self.executor_max


@dataclass
class ClusteringResult:
    """Outcome of a DBSCAN run."""

    labels: np.ndarray           # (n,) int64
    timings: Timings = field(default_factory=Timings)
    num_partial_clusters: int = 0
    num_seeds: int = 0
    num_merges: int = 0

    @property
    def n(self) -> int:
        """Number of points."""
        return int(self.labels.shape[0])

    @property
    def num_clusters(self) -> int:
        """Number of distinct clusters."""
        labels = self.labels
        return int(np.unique(labels[labels >= 0]).size)

    @property
    def num_noise(self) -> int:
        """Number of noise points."""
        return int(np.count_nonzero(self.labels == NOISE))

    def cluster_sizes(self) -> dict[int, int]:
        """Mapping cluster id -> member count."""
        ids, counts = np.unique(self.labels[self.labels >= 0], return_counts=True)
        return {int(i): int(c) for i, c in zip(ids, counts)}

    def summary(self) -> str:
        """One-line human-readable result summary."""
        return (
            f"{self.num_clusters} clusters, {self.num_noise} noise points "
            f"out of {self.n} (partial clusters: {self.num_partial_clusters}, "
            f"wall {self.timings.wall:.3f}s)"
        )

"""SARIF 2.1.0 emission for lint reports (``repro lint --format sarif``).

One run, one tool (``repro-lint``), one result per finding.  The
emitter sticks to the stable core of the spec so CI's ``upload-sarif``
can annotate PR diffs:

- the *full* rule catalogue appears in ``tool.driver.rules`` with its
  one-line summaries (so catalogue parity is checkable from the SARIF
  alone), and each result links back via ``ruleId``/``ruleIndex``;
- locations use repo-relative POSIX URIs and 1-based line/column
  regions (lint columns are 0-based AST offsets);
- the linter's own line-free fingerprint rides along as a
  ``partialFingerprints`` entry, and ``baselineState`` distinguishes
  findings that are new versus grandfathered by ``lint-baseline.json``;
- flow findings (LIF*/RES*) carry ``relatedLocations`` pointing back at
  the acquire/stop/close/persist site the message refers to.
"""

from __future__ import annotations

import json

from .findings import Finding, LintReport

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
FINGERPRINT_KEY = "reproLint/v1"
TOOL_NAME = "repro-lint"


def _result(finding: Finding, rule_index: dict[str, int], is_new: bool) -> dict:
    uri = finding.path.replace("\\", "/").lstrip("./")
    related = [
        {
            "physicalLocation": {
                "artifactLocation": {"uri": rpath.replace("\\", "/").lstrip("./")},
                "region": {"startLine": max(rline, 1)},
            },
            "message": {"text": rmessage},
        }
        for (rpath, rline, rmessage) in finding.related
    ]
    return {
        "ruleId": finding.rule,
        "ruleIndex": rule_index[finding.rule],
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                },
                **(
                    {"logicalLocations": [{"fullyQualifiedName": finding.symbol}]}
                    if finding.symbol
                    else {}
                ),
            }
        ],
        **({"relatedLocations": related} if related else {}),
        "partialFingerprints": {FINGERPRINT_KEY: finding.fingerprint},
        "baselineState": "new" if is_new else "unchanged",
    }


def to_sarif(report: LintReport, catalogue: dict[str, str] | None = None) -> dict:
    """The report as a SARIF 2.1.0 log (a plain JSON-ready dict)."""
    if catalogue is None:
        from .rules import rule_catalogue

        catalogue = rule_catalogue()
    # The whole catalogue, not just the fired rules: rule descriptors
    # are the machine-readable half of the 18-rule parity contract.
    ids = sorted(set(catalogue) | {f.rule for f in report.findings})
    rules = [
        {
            "id": rid,
            "name": rid,
            "shortDescription": {
                "text": catalogue.get(rid, "repro lint rule"),
            },
            "defaultConfiguration": {"level": "error"},
        }
        for rid in ids
    ]
    rule_index = {rid: i for i, rid in enumerate(ids)}
    new_ids = {id(f) for f in report.new}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "rules": rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": [
                    _result(f, rule_index, id(f) in new_ids)
                    for f in report.findings
                ],
            }
        ],
    }


def render_sarif(report: LintReport) -> str:
    """The report serialized as a SARIF 2.1.0 JSON document."""
    return json.dumps(to_sarif(report), indent=2)

"""The rule catalogue of the task-closure linter.

Each rule checks one invariant the engine's retry/speculation/shipping
machinery relies on (DESIGN.md §8):

- ``CAP001`` capture-driver-state — functions passed to RDD operations
  must not capture driver-side engine objects (`SparkContext`, `RDD`,
  `EventLog`, block/shuffle managers).  Tasks are retried, speculated,
  and (on the processes backend) cloudpickled; captured driver state
  either fails to serialize or silently diverges per executor.
- ``PCK001`` capture-unpicklable — task closures must not capture
  locks, open file handles, threads, or sockets: the processes backend
  cloudpickles closures, and these types do not survive the trip.
- ``DET001`` nondeterminism — no wall-clock (`time.time`) or unseeded
  RNG (`random.random`, `np.random.*`, zero-arg `random.Random()` /
  `default_rng()`) reachable from task code.  A retried or speculative
  attempt must produce byte-identical output, or label-equivalence
  tests are meaningless.  Driver-only uses are not flagged; intentional
  exceptions carry a ``# lint: allow[DET001]`` pragma.
- ``SHF001`` shuffle-free — the paper-pipeline executor path
  (`dbscan/spark_job.py`, `dbscan/spatial.py`, `dbscan/partial.py`)
  must not import the shuffle subsystem or call wide-dependency RDD
  APIs: zero shuffles is the paper's headline property (Algorithms 3–4).

Rules only fire on *positively identified* hazards — an unknown type
never triggers a finding.
"""

from __future__ import annotations

import ast
from typing import Callable

from .closures import ModuleAnalysis, _calls_in
from .findings import Finding

# Captured types that are driver state (semantic hazard).
DRIVER_STATE_TYPES = {
    "SparkContext": "the SparkContext (driver-only: owns the backend and scheduler)",
    "StreamingContext": "the StreamingContext (driver-only)",
    "RDD": "an RDD (lineage handles live on the driver; ship data, not plans)",
    "EventLog": "the EventLog (driver-side append-only log)",
    "BlockManager": "a BlockManager (executor-local storage, never shipped)",
    "ShuffleManager": "the ShuffleManager (driver-side shuffle bookkeeping)",
}

# Captured types cloudpickle cannot ship to worker processes.
UNPICKLABLE_TYPES = {
    "Lock": "a lock/condition/semaphore (unpicklable; invisible to other processes)",
    "File": "an open file handle (unpicklable; fd is process-local)",
    "Thread": "a thread object (unpicklable)",
    "Socket": "a socket (unpicklable; fd is process-local)",
}

# Fully-resolved call targets that are nondeterministic per attempt.
NONDET_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbits",
    "random.random",
    "random.randint",
    "random.randrange",
    "random.choice",
    "random.choices",
    "random.shuffle",
    "random.sample",
    "random.uniform",
    "random.gauss",
    "random.getrandbits",
    "numpy.random.rand",
    "numpy.random.randn",
    "numpy.random.randint",
    "numpy.random.random",
    "numpy.random.random_sample",
    "numpy.random.choice",
    "numpy.random.shuffle",
    "numpy.random.permutation",
    "numpy.random.normal",
    "numpy.random.uniform",
    "numpy.random.seed",
}

# Callables that are fine *seeded* but nondeterministic with no argument.
SEEDABLE_CTORS = {"random.Random", "numpy.random.default_rng"}

# Executor-path modules under the shuffle-free contract (path suffixes).
SHUFFLE_FREE_MODULES = (
    "dbscan/spark_job.py",
    "dbscan/spatial.py",
    "dbscan/partial.py",
    # The SEED pipeline itself: every stage of the paper's driver
    # sequence must stay shuffle-free.  The shuffle-based baselines live
    # in pipeline/stages_naive.py and pipeline/stages_mapreduce.py,
    # deliberately outside this contract.
    "pipeline/config.py",
    "pipeline/checkpoint.py",
    "pipeline/state.py",
    "pipeline/stages.py",
    "pipeline/plans.py",
    "pipeline/runner.py",
)

# RDD APIs introducing a wide dependency (a shuffle stage).
WIDE_DEP_APIS = {
    "partition_by",
    "group_by_key",
    "reduce_by_key",
    "distinct",
    "sort_by",
    "join",
    "cogroup",
    "left_outer_join",
    "subtract_by_key",
    "count_by_key",
}


RuleFn = Callable[[ModuleAnalysis], list[Finding]]
RULES: dict[str, tuple[str, RuleFn]] = {}


def rule(rule_id: str, summary: str) -> Callable[[RuleFn], RuleFn]:
    """Register a rule implementation under its id."""

    def deco(fn: RuleFn) -> RuleFn:
        RULES[rule_id] = (summary, fn)
        return fn

    return deco


def _task_scopes(analysis: ModuleAnalysis):
    """(task fn node, scope, via-op) without duplicates."""
    seen: set[int] = set()
    for tf in analysis.task_functions:
        if id(tf.node) in seen:
            continue
        seen.add(id(tf.node))
        yield tf


@rule("CAP001", "task closure captures driver-side engine state")
def check_driver_state_capture(analysis: ModuleAnalysis) -> list[Finding]:
    out: list[Finding] = []
    for tf in _task_scopes(analysis):
        for name, node, binder in analysis.captures(tf.node):
            tag = binder.types.get(name)
            if tag in DRIVER_STATE_TYPES:
                out.append(
                    Finding(
                        rule="CAP001",
                        path=analysis.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"task function passed to .{tf.via}() captures "
                            f"{name!r}, {DRIVER_STATE_TYPES[tag]}"
                        ),
                        symbol=tf.scope.name,
                    )
                )
    return out


@rule("PCK001", "task closure captures an unpicklable object")
def check_unpicklable_capture(analysis: ModuleAnalysis) -> list[Finding]:
    out: list[Finding] = []
    for tf in _task_scopes(analysis):
        for name, node, binder in analysis.captures(tf.node):
            tag = binder.types.get(name)
            if tag in UNPICKLABLE_TYPES:
                out.append(
                    Finding(
                        rule="PCK001",
                        path=analysis.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"task function passed to .{tf.via}() captures "
                            f"{name!r}, {UNPICKLABLE_TYPES[tag]}; the processes "
                            "backend cannot cloudpickle it"
                        ),
                        symbol=tf.scope.name,
                    )
                )
    return out


@rule("DET001", "nondeterministic call reachable from task code")
def check_task_determinism(analysis: ModuleAnalysis) -> list[Finding]:
    out: list[Finding] = []
    reported: set[tuple[int, int]] = set()
    for func_node in analysis.task_reachable:
        scope = analysis.scope_of(func_node)
        for call in _calls_in(func_node):
            dotted = analysis.resolve_dotted(call.func)
            if dotted is None:
                continue
            key = (call.lineno, call.col_offset)
            if key in reported:
                continue
            if dotted in NONDET_CALLS:
                reported.add(key)
                out.append(
                    Finding(
                        rule="DET001",
                        path=analysis.path,
                        line=call.lineno,
                        col=call.col_offset,
                        message=(
                            f"{dotted}() is nondeterministic per task attempt; "
                            "retries/speculation would diverge (seed an RNG from "
                            "the partition id, or move this to the driver)"
                        ),
                        symbol=scope.name,
                    )
                )
            elif dotted in SEEDABLE_CTORS and not call.args and not call.keywords:
                reported.add(key)
                out.append(
                    Finding(
                        rule="DET001",
                        path=analysis.path,
                        line=call.lineno,
                        col=call.col_offset,
                        message=(
                            f"{dotted}() without a seed is nondeterministic per "
                            "task attempt; derive the seed from the partition id"
                        ),
                        symbol=scope.name,
                    )
                )
    return out


def _is_benign_join(func: ast.Attribute) -> bool:
    """True for ``join`` calls that are not RDD joins: ``os.path.join``
    (and friends) and string-literal ``", ".join(...)``."""
    if func.attr != "join":
        return False
    recv = func.value
    if isinstance(recv, ast.Constant) and isinstance(recv.value, str):
        return True
    if isinstance(recv, ast.Attribute) and recv.attr == "path":
        return True
    return isinstance(recv, ast.Name) and recv.id in (
        "os", "posixpath", "ntpath", "sep",
    )


@rule("SHF001", "shuffle machinery referenced from a shuffle-free module")
def check_shuffle_free(analysis: ModuleAnalysis) -> list[Finding]:
    path = analysis.path.replace("\\", "/")
    if not any(path.endswith(suffix) for suffix in SHUFFLE_FREE_MODULES):
        return []
    out: list[Finding] = []
    for node in ast.walk(analysis.tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.split(".")[-1] == "shuffle":
                out.append(
                    Finding(
                        rule="SHF001",
                        path=analysis.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"import from {module!r}: the paper pipeline is "
                            "shuffle-free by construction (Algorithms 3-4); no "
                            "shuffle code may enter this module"
                        ),
                    )
                )
            for alias in node.names:
                if alias.name == "shuffle":
                    out.append(
                        Finding(
                            rule="SHF001",
                            path=analysis.path,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                "imports the shuffle module: the paper pipeline "
                                "is shuffle-free by construction (Algorithms 3-4)"
                            ),
                        )
                    )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[-1] == "shuffle":
                    out.append(
                        Finding(
                            rule="SHF001",
                            path=analysis.path,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"import {alias.name!r}: the paper pipeline is "
                                "shuffle-free by construction (Algorithms 3-4)"
                            ),
                        )
                    )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in WIDE_DEP_APIS and not _is_benign_join(node.func):
                out.append(
                    Finding(
                        rule="SHF001",
                        path=analysis.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f".{node.func.attr}() introduces a wide dependency "
                            "(a shuffle stage); the paper pipeline must stay "
                            "shuffle-free"
                        ),
                    )
                )
    return out


def run_rules(analysis: ModuleAnalysis) -> list[Finding]:
    """Run every registered rule over one module analysis."""
    out: list[Finding] = []
    for _summary, fn in RULES.values():
        out.extend(fn(analysis))
    return out


def rule_catalogue() -> dict[str, str]:
    """{rule id: one-line summary} for docs and ``--list-rules``."""
    return {rid: summary for rid, (summary, _fn) in RULES.items()}

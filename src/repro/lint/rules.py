"""The rule catalogue of the task-closure linter.

Each rule checks one invariant the engine's retry/speculation/shipping
machinery relies on (DESIGN.md §8).  Rules come in two kinds:

*Module rules* run over one `ModuleAnalysis` — after the project layer
has injected cross-module task functions and widened the task-reachable
set, so they fire through helper modules too:

- ``CAP001`` capture-driver-state — functions passed to RDD operations
  (and everything they transitively call) must not capture driver-side
  engine objects (`SparkContext`, `RDD`, `EventLog`, block/shuffle
  managers).  Tasks are retried, speculated, and (on the processes
  backend) cloudpickled; captured driver state either fails to
  serialize or silently diverges per executor.
- ``PCK001`` capture-unpicklable — task closures must not capture
  locks, open file handles, threads, or sockets: the processes backend
  cloudpickles closures, and these types do not survive the trip.
- ``DET001`` nondeterminism — no wall-clock (`time.time`) or unseeded
  RNG (`random.random`, `np.random.*`, zero-arg `random.Random()` /
  `default_rng()`) reachable from task code.  A retried or speculative
  attempt must produce byte-identical output, or label-equivalence
  tests are meaningless.  Driver-only uses are not flagged; intentional
  exceptions carry a ``# lint: allow[DET001]`` pragma.

*Project rules* run once over the whole `repro.lint.callgraph.Project`:

- ``SHF001`` shuffle-free (`repro.lint.lineage`) — proven from the
  interprocedural call graph: no wide-dependency RDD API or shuffle
  import reachable from the paper-pipeline entry points.
- ``ACC001``/``BRD001``/``ACT001`` task-dataflow (`repro.lint.lineage`)
  — accumulator reads, broadcast mutations, and RDD actions inside
  task-reachable code.
- ``PLN001``/``PLN002`` plan contracts (`repro.lint.plans`) — every
  manifest plan's Stage needs/provides chain is complete and acyclic.
- ``LIF001``/``LIF002``/``LIF003`` lifecycle ordering and
  ``RES001``/``RES002`` resource leaks (`repro.lint.typestate`) —
  flow-sensitive typestate over per-function CFGs: use-after-stop
  (SparkContext), write-after-close (EventLog), action-after-unpersist
  (RDD/Broadcast), persist with no unpersist on an exit path, and
  lock/context held across an escaping exception path.
- ``SCL001``–``SCL004`` size classes (`repro.lint.sizeclass`) — an
  abstract interpretation over the O(1) ⊑ O(cells) ⊑ O(partials) ⊑
  O(edges) ⊑ O(points) lattice, seeded from the ``SIZE_MANIFEST``:
  O(points) materialized/retained on the driver outside the sanctioned
  stages (SCL001), a driver loop with O(points) trip count (SCL002), a
  dataset-sized broadcast in a cell/edges plan (SCL003), and a collect
  of an un-digested RDD when a digest reduction exists (SCL004).

Rules only fire on *positively identified* hazards — an unknown type
never triggers a finding.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .closures import ModuleAnalysis, TaskFunction, _calls_in
from .findings import Finding
from .lineage import (
    check_accumulator_reads,
    check_broadcast_mutations,
    check_rdd_actions,
    check_shuffle_free,
)
from .plans import check_plan_contracts
from .sizeclass import check_sizeclass
from .typestate import check_typestate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .callgraph import Project

# Captured types that are driver state (semantic hazard).
DRIVER_STATE_TYPES = {
    "SparkContext": "the SparkContext (driver-only: owns the backend and scheduler)",
    "StreamingContext": "the StreamingContext (driver-only)",
    "RDD": "an RDD (lineage handles live on the driver; ship data, not plans)",
    "EventLog": "the EventLog (driver-side append-only log)",
    "BlockManager": "a BlockManager (executor-local storage, never shipped)",
    "ShuffleManager": "the ShuffleManager (driver-side shuffle bookkeeping)",
}

# Captured types cloudpickle cannot ship to worker processes.
UNPICKLABLE_TYPES = {
    "Lock": "a lock/condition/semaphore (unpicklable; invisible to other processes)",
    "File": "an open file handle (unpicklable; fd is process-local)",
    "Thread": "a thread object (unpicklable)",
    "Socket": "a socket (unpicklable; fd is process-local)",
}

# Fully-resolved call targets that are nondeterministic per attempt.
NONDET_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbits",
    "random.random",
    "random.randint",
    "random.randrange",
    "random.choice",
    "random.choices",
    "random.shuffle",
    "random.sample",
    "random.uniform",
    "random.gauss",
    "random.getrandbits",
    "numpy.random.rand",
    "numpy.random.randn",
    "numpy.random.randint",
    "numpy.random.random",
    "numpy.random.random_sample",
    "numpy.random.choice",
    "numpy.random.shuffle",
    "numpy.random.permutation",
    "numpy.random.normal",
    "numpy.random.uniform",
    "numpy.random.seed",
}

# Callables that are fine *seeded* but nondeterministic with no argument.
SEEDABLE_CTORS = {"random.Random", "numpy.random.default_rng"}


RuleFn = Callable[[ModuleAnalysis], list[Finding]]
ProjectRuleFn = Callable[["Project"], list[Finding]]
RULES: dict[str, tuple[str, RuleFn]] = {}
PROJECT_RULES: dict[str, tuple[str, ProjectRuleFn]] = {}


def rule(rule_id: str, summary: str) -> Callable[[RuleFn], RuleFn]:
    """Register a per-module rule implementation under its id."""

    def deco(fn: RuleFn) -> RuleFn:
        RULES[rule_id] = (summary, fn)
        return fn

    return deco


def project_rule(rule_id: str, summary: str, fn: ProjectRuleFn) -> None:
    """Register a whole-program rule implementation under its id."""
    PROJECT_RULES[rule_id] = (summary, fn)


def _task_scopes(analysis: ModuleAnalysis):
    """(task fn node, scope, via-op) without duplicates — local task
    functions plus cross-module ones injected by the project layer."""
    seen: set[int] = set()
    for tf in analysis.task_functions + analysis.extra_task_functions:
        if id(tf.node) in seen:
            continue
        seen.add(id(tf.node))
        yield tf


def _capture_findings(
    analysis: ModuleAnalysis,
    rule_id: str,
    hazards: dict[str, str],
    render: Callable[[TaskFunction | None, str, str], str],
) -> list[Finding]:
    """Capture-rule core shared by CAP001/PCK001: check the captures of
    every task function, then of every further task-reachable helper."""
    out: list[Finding] = []
    direct: set[int] = set()
    for tf in _task_scopes(analysis):
        direct.add(id(tf.node))
        for name, node, binder in analysis.captures(tf.node):
            tag = binder.types.get(name)
            if tag in hazards:
                out.append(
                    Finding(
                        rule=rule_id,
                        path=analysis.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=render(tf, name, tag),
                        symbol=tf.scope.name,
                    )
                )
    for func_node in analysis.task_reachable:
        if id(func_node) in direct:
            continue
        scope = analysis.scope_of(func_node)
        for name, node, binder in analysis.captures(func_node):
            tag = binder.types.get(name)
            if tag in hazards:
                out.append(
                    Finding(
                        rule=rule_id,
                        path=analysis.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=render(None, name, tag),
                        symbol=scope.name,
                    )
                )
    return out


@rule("CAP001", "task closure captures driver-side engine state")
def check_driver_state_capture(analysis: ModuleAnalysis) -> list[Finding]:
    def render(tf: TaskFunction | None, name: str, tag: str) -> str:
        where = (
            f"task function passed to .{tf.via}()" if tf is not None
            else "function reachable from task code"
        )
        return f"{where} captures {name!r}, {DRIVER_STATE_TYPES[tag]}"

    return _capture_findings(analysis, "CAP001", DRIVER_STATE_TYPES, render)


@rule("PCK001", "task closure captures an unpicklable object")
def check_unpicklable_capture(analysis: ModuleAnalysis) -> list[Finding]:
    def render(tf: TaskFunction | None, name: str, tag: str) -> str:
        where = (
            f"task function passed to .{tf.via}()" if tf is not None
            else "function reachable from task code"
        )
        return (
            f"{where} captures {name!r}, {UNPICKLABLE_TYPES[tag]}; "
            "the processes backend cannot cloudpickle it"
        )

    return _capture_findings(analysis, "PCK001", UNPICKLABLE_TYPES, render)


@rule("DET001", "nondeterministic call reachable from task code")
def check_task_determinism(analysis: ModuleAnalysis) -> list[Finding]:
    out: list[Finding] = []
    reported: set[tuple[int, int]] = set()
    for func_node in analysis.task_reachable:
        scope = analysis.scope_of(func_node)
        for call in _calls_in(func_node):
            dotted = analysis.resolve_dotted(call.func)
            if dotted is None:
                continue
            key = (call.lineno, call.col_offset)
            if key in reported:
                continue
            if dotted in NONDET_CALLS:
                reported.add(key)
                out.append(
                    Finding(
                        rule="DET001",
                        path=analysis.path,
                        line=call.lineno,
                        col=call.col_offset,
                        message=(
                            f"{dotted}() is nondeterministic per task attempt; "
                            "retries/speculation would diverge (seed an RNG from "
                            "the partition id, or move this to the driver)"
                        ),
                        symbol=scope.name,
                    )
                )
            elif dotted in SEEDABLE_CTORS and not call.args and not call.keywords:
                reported.add(key)
                out.append(
                    Finding(
                        rule="DET001",
                        path=analysis.path,
                        line=call.lineno,
                        col=call.col_offset,
                        message=(
                            f"{dotted}() without a seed is nondeterministic per "
                            "task attempt; derive the seed from the partition id"
                        ),
                        symbol=scope.name,
                    )
                )
    return out


project_rule(
    "SHF001",
    "shuffle machinery reachable from the paper pipeline",
    check_shuffle_free,
)
project_rule(
    "ACC001",
    "accumulator value read inside task code",
    check_accumulator_reads,
)
project_rule(
    "BRD001",
    "broadcast value mutated inside task code",
    check_broadcast_mutations,
)
project_rule(
    "ACT001",
    "RDD action invoked inside task code",
    check_rdd_actions,
)
project_rule(
    "PLN001",
    "plan stage contract incomplete or unknown",
    lambda project: check_plan_contracts(project, rules=("PLN001",)),
)
project_rule(
    "PLN002",
    "plan stage contract chain is circular",
    lambda project: check_plan_contracts(project, rules=("PLN002",)),
)
project_rule(
    "LIF001",
    "SparkContext used after stop() on every path",
    lambda project: check_typestate(project, rules=("LIF001",)),
)
project_rule(
    "LIF002",
    "EventLog written after close() on every path",
    lambda project: check_typestate(project, rules=("LIF002",)),
)
project_rule(
    "LIF003",
    "RDD action / Broadcast.value after unpersist() on every path",
    lambda project: check_typestate(project, rules=("LIF003",)),
)
project_rule(
    "RES001",
    "RDD persisted/cached with no unpersist() on some exit path",
    lambda project: check_typestate(project, rules=("RES001",)),
)
project_rule(
    "RES002",
    "lock or context acquired but not released on an exception path",
    lambda project: check_typestate(project, rules=("RES002",)),
)
project_rule(
    "SCL001",
    "O(points) value materialized or retained on the driver",
    lambda project: check_sizeclass(project, rules=("SCL001",)),
)
project_rule(
    "SCL002",
    "driver-side loop with an O(points) trip count",
    lambda project: check_sizeclass(project, rules=("SCL002",)),
)
project_rule(
    "SCL003",
    "dataset-sized broadcast in a cell/edges plan",
    lambda project: check_sizeclass(project, rules=("SCL003",)),
)
project_rule(
    "SCL004",
    "collect of an un-digested RDD where a digest reduction exists",
    lambda project: check_sizeclass(project, rules=("SCL004",)),
)


def run_rules(analysis: ModuleAnalysis) -> list[Finding]:
    """Run every registered per-module rule over one module analysis."""
    out: list[Finding] = []
    for _summary, fn in RULES.values():
        out.extend(fn(analysis))
    return out


def run_project_rules(project: "Project") -> list[Finding]:
    """Run every registered whole-program rule once over the project."""
    out: list[Finding] = []
    for _summary, fn in PROJECT_RULES.values():
        out.extend(fn(project))
    return out


def rule_catalogue() -> dict[str, str]:
    """{rule id: one-line summary} for docs and ``--rules``."""
    out = {rid: summary for rid, (summary, _fn) in RULES.items()}
    out.update({rid: summary for rid, (summary, _fn) in PROJECT_RULES.items()})
    return dict(sorted(out.items()))
